#![allow(clippy::needless_range_loop)]

//! Cross-crate validation of the extensions beyond the paper: error
//! magnitude/distribution vs the simulator, sum-bit probabilities, and
//! datapath composition vs the plain per-adder analysis.

use std::collections::BTreeMap;

use sealpaa::analysis::{error_distribution, error_magnitude, success_sum_probabilities};
use sealpaa::cells::{AdderChain, InputProfile, StandardCell};
use sealpaa::datapath::{estimate, Datapath};
use sealpaa::num::{Prob, Rational};
use sealpaa::sim::exhaustive;
use sealpaa::{analyze, exact_error_analysis};

#[test]
fn distribution_matches_simulator_histogram_at_uniform_inputs() {
    for cell in [
        StandardCell::Lpaa1,
        StandardCell::Lpaa5,
        StandardCell::Lpaa6,
    ] {
        let chain = AdderChain::uniform(cell.cell(), 4);
        let profile = InputProfile::<Rational>::uniform(4);
        let dist = error_distribution(&chain, &profile).expect("widths match");
        let sim = exhaustive(&chain, &profile).expect("feasible width");
        // At uniform inputs each case has weight 1/cases, so the exact PMF
        // must equal histogram-count / cases.
        let expect: BTreeMap<i64, Rational> = sim
            .histogram
            .iter()
            .map(|(&d, &count)| (d, Rational::from_ratio(count as i64, sim.cases as i64)))
            .collect();
        let got: BTreeMap<i64, Rational> = dist.pmf.iter().cloned().collect();
        assert_eq!(got, expect, "{cell}");
    }
}

#[test]
fn magnitude_moments_match_simulator_metrics() {
    let chain = AdderChain::uniform(StandardCell::Lpaa4.cell(), 5);
    let profile = InputProfile::constant(5, 0.5);
    let moments = error_magnitude(&chain, &profile).expect("widths match");
    let sim = exhaustive(&chain, &profile).expect("feasible width");
    assert!(
        (moments.mean_error_distance - sim.metrics.mean_error_distance).abs() < 1e-9,
        "mean: {} vs {}",
        moments.mean_error_distance,
        sim.metrics.mean_error_distance
    );
    // The simulator tracks E[|D|]; the analytical module tracks E[D²]. The
    // RMS must dominate the mean absolute error (Jensen).
    assert!(moments.rms_error_distance() >= sim.metrics.mean_absolute_error_distance - 1e-9);
    // And the distribution's max equals the simulator's max.
    let dist = error_distribution(&chain, &profile).expect("widths match");
    assert_eq!(
        dist.max_absolute_error(),
        sim.metrics.max_absolute_error_distance
    );
}

#[test]
fn distribution_zero_mass_equals_success_probability() {
    let chain = AdderChain::uniform(StandardCell::Lpaa7.cell(), 6);
    let profile = InputProfile::<Rational>::constant(6, Rational::from_ratio(1, 10));
    let dist = error_distribution(&chain, &profile).expect("widths match");
    let joint = exact_error_analysis(&chain, &profile).expect("widths match");
    assert_eq!(dist.probability_of(0), joint.output_error.complement());
}

#[test]
fn sum_bit_probabilities_chain_rule() {
    // Σ over sum values: P(sum_i=1 ∩ S) + P(sum_i=0 ∩ S) = prefix success.
    // We only expose the sum=1 side; check it against the analysis trace via
    // enumeration of the complementary side.
    let chain = AdderChain::uniform(StandardCell::Lpaa6.cell(), 4);
    let profile = InputProfile::<Rational>::constant(4, Rational::from_ratio(3, 7));
    let s1 = success_sum_probabilities(&chain, &profile).expect("widths match");
    let analysis = analyze(&chain, &profile).expect("widths match");
    for i in 0..4 {
        assert!(s1[i] <= analysis.prefix_success(i), "stage {i}");
        if i > 0 {
            // Success mass only shrinks, so the sum-bit mass at stage i is
            // also bounded by the previous prefix.
            assert!(s1[i] <= analysis.prefix_success(i - 1), "stage {i}");
        }
    }
}

#[test]
fn single_adder_datapath_estimate_equals_plain_analysis() {
    let mut dp = Datapath::new();
    let x = dp.input("x", 6);
    let y = dp.input("y", 6);
    let chain = AdderChain::uniform(StandardCell::Lpaa3.cell(), 6);
    let _sum = dp.add(x, y, chain.clone()).expect("fits");

    let pa: Vec<f64> = (0..6).map(|i| 0.1 + 0.1 * i as f64).collect();
    let pb: Vec<f64> = (0..6).map(|i| 0.9 - 0.1 * i as f64).collect();
    let est = estimate(&dp, &[("x", pa.clone()), ("y", pb.clone())]).expect("valid inputs");

    let profile = InputProfile::new(pa, pb, 0.0).expect("valid profile");
    let direct = analyze(&chain, &profile).expect("widths match");
    assert_eq!(est.adders.len(), 1);
    assert!(
        (est.adders[0].error_probability - direct.error_probability()).abs() < 1e-12,
        "datapath {} vs direct {}",
        est.adders[0].error_probability,
        direct.error_probability()
    );
}

#[test]
fn datapath_input_probabilities_flow_to_downstream_adder() {
    // x + 0 through an exact adder must leave x's bit probabilities intact;
    // a following approximate adder then sees exactly those probabilities.
    let mut dp = Datapath::new();
    let x = dp.input("x", 4);
    let zero = dp.constant(0, 4);
    let exact = AdderChain::uniform(StandardCell::Accurate.cell(), 4);
    let pass = dp.add(x, zero, exact).expect("fits");
    let approx = AdderChain::uniform(StandardCell::Lpaa1.cell(), 5);
    let _out = dp.add(pass, zero, approx.clone()).expect("fits");

    let px = vec![0.3, 0.6, 0.2, 0.8];
    let est = estimate(&dp, &[("x", px.clone())]).expect("valid inputs");
    for (i, &p) in px.iter().enumerate() {
        assert!(
            (est.signal_probabilities[pass.index()][i] - p).abs() < 1e-12,
            "bit {i}"
        );
    }
    // The second adder's estimate equals direct analysis over those probs.
    let mut pa = px.clone();
    pa.push(0.0); // the carry bit of x+0 is never set
    let profile = InputProfile::new(pa, vec![0.0; 5], 0.0).expect("valid profile");
    let direct = analyze(&approx, &profile).expect("widths match");
    assert!((est.adders[1].error_probability - direct.error_probability()).abs() < 1e-12);
}

#[test]
fn magnitude_in_f64_and_rational_agree() {
    let chain = AdderChain::uniform(StandardCell::Lpaa2.cell(), 8);
    let f = error_magnitude(&chain, &InputProfile::constant(8, 0.25)).expect("widths match");
    let r = error_magnitude(
        &chain,
        &InputProfile::<Rational>::constant(8, Rational::from_ratio(1, 4)),
    )
    .expect("widths match");
    assert!((f.mean_error_distance - r.mean_error_distance.to_f64()).abs() < 1e-9);
    assert!(
        (f.mean_squared_error_distance - r.mean_squared_error_distance.to_f64()).abs()
            / r.mean_squared_error_distance.to_f64()
            < 1e-9
    );
}
