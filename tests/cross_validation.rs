//! Cross-validation between the four independent implementations of the
//! same quantity: the proposed recursive method, exhaustive enumeration,
//! the inclusion–exclusion baseline, and the exact joint-chain DP. All
//! comparisons run in exact rational arithmetic, so equality is literal —
//! the strongest form of the paper's Table 6 validation.

use sealpaa::analysis::{analyze, exact_error_analysis};
use sealpaa::cells::{AdderChain, InputProfile, StandardCell};
use sealpaa::inclexcl::error_probability as inclexcl_error;
use sealpaa::num::Rational;
use sealpaa::sim::{exhaustive, monte_carlo, MonteCarloConfig};

/// A deterministic selection of awkward rational probabilities.
fn profile(width: usize, salt: i64) -> InputProfile<Rational> {
    let pa = (0..width)
        .map(|i| Rational::from_ratio((i as i64 * 3 + salt) % 7 + 1, 9))
        .collect();
    let pb = (0..width)
        .map(|i| Rational::from_ratio((i as i64 * 5 + salt * 2) % 9 + 1, 11))
        .collect();
    InputProfile::new(pa, pb, Rational::from_ratio(salt % 5 + 1, 6)).expect("valid profile")
}

#[test]
fn analytical_equals_exhaustive_exactly_for_all_cells() {
    for cell in StandardCell::APPROXIMATE {
        for width in [1usize, 2, 3, 4, 5] {
            let chain = AdderChain::uniform(cell.cell(), width);
            let p = profile(width, 3);
            let analytical = analyze(&chain, &p)
                .expect("widths match")
                .error_probability();
            let report = exhaustive(&chain, &p).expect("feasible width");
            assert_eq!(
                analytical, report.stage_error_probability,
                "{cell} N={width}: first-deviation semantics"
            );
            assert_eq!(
                analytical, report.output_error_probability,
                "{cell} N={width}: output-value semantics (no cancellation for homogeneous paper cells)"
            );
        }
    }
}

#[test]
fn analytical_equals_inclusion_exclusion_exactly() {
    for cell in [
        StandardCell::Lpaa1,
        StandardCell::Lpaa4,
        StandardCell::Lpaa6,
    ] {
        for width in [2usize, 4, 6, 8] {
            let chain = AdderChain::uniform(cell.cell(), width);
            let p = profile(width, 1);
            let analytical = analyze(&chain, &p)
                .expect("widths match")
                .error_probability();
            let (baseline, terms) = inclexcl_error(&chain, &p).expect("widths match");
            assert_eq!(analytical, baseline, "{cell} N={width}");
            assert_eq!(terms, (1 << width) - 1);
        }
    }
}

#[test]
fn analytical_equals_joint_dp_stage_error() {
    for cell in StandardCell::APPROXIMATE {
        let chain = AdderChain::uniform(cell.cell(), 7);
        let p = profile(7, 2);
        let analytical = analyze(&chain, &p)
            .expect("widths match")
            .error_probability();
        let joint = exact_error_analysis(&chain, &p).expect("widths match");
        assert_eq!(analytical, joint.stage_error, "{cell}");
    }
}

#[test]
fn hybrid_chains_cross_validate_exactly() {
    // Mixed-cell chains: all four implementations must still agree on the
    // first-deviation probability.
    let chains = [
        vec![
            StandardCell::Lpaa1,
            StandardCell::Lpaa2,
            StandardCell::Lpaa3,
            StandardCell::Lpaa4,
        ],
        vec![
            StandardCell::Lpaa5,
            StandardCell::Accurate,
            StandardCell::Lpaa7,
            StandardCell::Lpaa6,
        ],
        vec![
            StandardCell::Lpaa6,
            StandardCell::Lpaa5,
            StandardCell::Lpaa6,
            StandardCell::Lpaa5,
        ],
    ];
    for cells in chains {
        let chain = AdderChain::from_stages(cells.iter().map(|c| c.cell()).collect());
        let p = profile(4, 4);
        let analytical = analyze(&chain, &p)
            .expect("widths match")
            .error_probability();
        let report = exhaustive(&chain, &p).expect("feasible width");
        let (baseline, _) = inclexcl_error(&chain, &p).expect("widths match");
        let joint = exact_error_analysis(&chain, &p).expect("widths match");
        assert_eq!(analytical, report.stage_error_probability, "{cells:?}");
        assert_eq!(analytical, baseline, "{cells:?}");
        assert_eq!(analytical, joint.stage_error, "{cells:?}");
        // Output-value error can legitimately be smaller (cancellation); the
        // joint DP and exhaustive simulation must agree on it exactly.
        assert_eq!(
            joint.output_error, report.output_error_probability,
            "{cells:?}"
        );
    }
}

#[test]
fn lpaa6_lpaa5_hybrid_shows_cancellation_and_sim_confirms() {
    let chain = AdderChain::from_stages(vec![
        StandardCell::Lpaa6.cell(),
        StandardCell::Lpaa5.cell(),
        StandardCell::Lpaa5.cell(),
    ]);
    let p = InputProfile::<Rational>::uniform(3);
    let report = exhaustive(&chain, &p).expect("feasible width");
    assert!(
        report.output_error_probability < report.stage_error_probability,
        "cancellation must be visible in simulation too"
    );
    let joint = exact_error_analysis(&chain, &p).expect("widths match");
    assert_eq!(joint.output_error, report.output_error_probability);
    assert_eq!(joint.stage_error, report.stage_error_probability);
}

#[test]
fn monte_carlo_agrees_within_statistical_tolerance() {
    // The paper's Table 6 row 2: MC at 10⁶ samples matches to ~3 decimals.
    // We use fewer samples and a 5-sigma bound to stay fast and non-flaky.
    for cell in [StandardCell::Lpaa1, StandardCell::Lpaa7] {
        let chain = AdderChain::uniform(cell.cell(), 10);
        let p = InputProfile::constant(10, 0.1);
        let analytical = analyze(&chain, &p)
            .expect("widths match")
            .error_probability();
        let mc = monte_carlo(
            &chain,
            &p,
            MonteCarloConfig {
                samples: 150_000,
                seed: 99,
                ..Default::default()
            },
        )
        .expect("widths match");
        assert!(
            (mc.error_probability() - analytical).abs() <= 5.0 * mc.standard_error + 1e-9,
            "{cell}: MC {} vs analytical {analytical}",
            mc.error_probability()
        );
    }
}

#[test]
fn per_bit_error_rates_sum_consistency() {
    // The union bound: P(output error) ≤ Σ P(bit i wrong) + P(carry wrong);
    // and each bit error rate is ≤ the stage error probability.
    let chain = AdderChain::uniform(StandardCell::Lpaa3.cell(), 6);
    let p = profile(6, 5);
    let joint = exact_error_analysis(&chain, &p).expect("widths match");
    let bit_sum = joint
        .bit_error
        .iter()
        .fold(Rational::zero(), |acc, b| acc + b.clone());
    assert!(joint.output_error <= bit_sum + joint.stage_error.clone());
    for b in &joint.bit_error {
        assert!(*b <= joint.stage_error);
    }
}
