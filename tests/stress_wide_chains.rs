//! Wide-chain stress tests: the analytical machinery must stay exact and
//! well-behaved far beyond any width a simulator could touch.

use sealpaa::analysis::{analyze, error_magnitude, signal_probabilities};
use sealpaa::cells::{AdderChain, InputProfile, StandardCell};
use sealpaa::num::Rational;

#[test]
fn analysis_at_96_bits_in_exact_rationals() {
    let chain = AdderChain::uniform(StandardCell::Lpaa6.cell(), 96);
    let profile = InputProfile::<Rational>::constant(96, Rational::from_ratio(1, 10));
    let analysis = analyze(&chain, &profile).expect("widths match");
    let err = analysis.error_probability();
    assert!(err > Rational::zero() && err < Rational::one());
    // The invariants survive at scale: success mass is monotone and the
    // final success equals the last carry mass.
    let mut prev = Rational::one();
    for stage in analysis.stages() {
        assert!(stage.success_through <= prev);
        prev = stage.success_through.clone();
    }
    assert_eq!(
        analysis.success_probability(),
        analysis
            .stages()
            .last()
            .expect("non-empty")
            .carry_out
            .success_mass()
    );
}

#[test]
fn f64_and_rational_agree_at_64_bits() {
    let chain = AdderChain::uniform(StandardCell::Lpaa7.cell(), 64);
    let f = analyze(&chain, &InputProfile::constant(64, 0.125))
        .expect("widths match")
        .error_probability();
    let r = analyze(
        &chain,
        &InputProfile::<Rational>::constant(64, Rational::from_ratio(1, 8)),
    )
    .expect("widths match")
    .error_probability();
    assert!(
        (f - r.to_f64()).abs() < 1e-9,
        "f64 {f} vs exact {}",
        r.to_f64()
    );
}

#[test]
fn stage_contributions_sum_exactly_at_scale() {
    let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), 120);
    let profile = InputProfile::<Rational>::constant(120, Rational::from_ratio(3, 7));
    let analysis = analyze(&chain, &profile).expect("widths match");
    let total: Rational = analysis.stage_error_contributions().into_iter().sum();
    assert_eq!(total, analysis.error_probability());
}

#[test]
fn magnitude_moments_stay_consistent_at_64_bits() {
    // E[D²] ≥ E[D]² must hold exactly even with 2^64-scale weights.
    let chain = AdderChain::uniform(StandardCell::Lpaa4.cell(), 64);
    let profile = InputProfile::<Rational>::constant(64, Rational::from_ratio(2, 9));
    let m = error_magnitude(&chain, &profile).expect("widths match");
    assert!(m.variance() >= Rational::zero());
    assert!(!m.mean_squared_error_distance.is_zero());
}

#[test]
fn signal_probabilities_remain_probabilities_at_scale() {
    let chain = AdderChain::uniform(StandardCell::Lpaa2.cell(), 96);
    let profile = InputProfile::<Rational>::constant(96, Rational::from_ratio(4, 11));
    let signals = signal_probabilities(&chain, &profile).expect("widths match");
    assert_eq!(signals.sum.len(), 96);
    assert_eq!(signals.carry.len(), 97);
    for p in signals.sum.iter().chain(&signals.carry) {
        assert!(*p >= Rational::zero() && *p <= Rational::one());
    }
}

#[test]
fn hybrid_megachain_mixing_every_cell() {
    let stages: Vec<_> = (0..96)
        .map(|i| StandardCell::ALL[i % StandardCell::ALL.len()].cell())
        .collect();
    let chain = AdderChain::from_stages(stages);
    let profile = InputProfile::<Rational>::constant(96, Rational::from_ratio(1, 6));
    let analysis = analyze(&chain, &profile).expect("widths match");
    // Accurate stages contribute exactly zero error.
    let contributions = analysis.stage_error_contributions();
    for (i, c) in contributions.iter().enumerate() {
        if chain.stage(i).truth_table().is_accurate() {
            assert!(c.is_zero(), "accurate stage {i} must not contribute");
        }
    }
}
