#![allow(clippy::needless_range_loop)]

//! Regression tests pinning every number the paper publishes that this
//! library re-derives: Tables 2, 3, 4, 5 and Table 7's analytical column.

use sealpaa::analysis::{analyze, table8_resource_model, MklMatrices};
use sealpaa::cells::{AdderChain, InputProfile, StandardCell};
use sealpaa::inclexcl::cost;
use sealpaa::num::Rational;

#[test]
fn table2_error_cases_and_characteristics() {
    let rows = [
        (StandardCell::Lpaa1, 2, Some((771.0, 4.23))),
        (StandardCell::Lpaa2, 2, Some((294.0, 1.94))),
        (StandardCell::Lpaa3, 3, Some((198.0, 1.59))),
        (StandardCell::Lpaa4, 3, Some((416.0, 1.76))),
        (StandardCell::Lpaa5, 4, Some((0.0, 0.0))),
    ];
    for (cell, errors, chars) in rows {
        assert_eq!(cell.truth_table().error_case_count(), errors, "{cell}");
        let c = cell.characteristics().map(|c| (c.power_nw, c.area_ge));
        assert_eq!(c, chars, "{cell}");
    }
}

#[test]
fn table3_exact_rows() {
    for (k, terms, mults, adds, mem) in [
        (4u32, 15u128, 28u128, 14u128, 31u128),
        (8, 255, 1016, 254, 511),
        (12, 4095, 24564, 4094, 8191),
        (16, 65535, 524_272, 65534, 131_071),
    ] {
        let c = cost(k);
        assert_eq!(c.terms, terms, "terms k={k}");
        assert_eq!(c.multiplications, mults, "mults k={k}");
        assert_eq!(c.additions, adds, "adds k={k}");
        assert_eq!(c.memory_units, mem, "memory k={k}");
    }
}

#[test]
fn table4_every_intermediate_value() {
    let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), 4);
    let profile = InputProfile::new(
        vec![
            Rational::from_ratio(9, 10),
            Rational::from_ratio(1, 2),
            Rational::from_ratio(2, 5),
            Rational::from_ratio(4, 5),
        ],
        vec![
            Rational::from_ratio(4, 5),
            Rational::from_ratio(7, 10),
            Rational::from_ratio(3, 5),
            Rational::from_ratio(9, 10),
        ],
        Rational::from_ratio(1, 2),
    )
    .expect("valid profile");
    let a = analyze(&chain, &profile).expect("widths match");
    let expect = [
        // (C̄curr∩S, Ccurr∩S) entering each stage, as printed in the paper.
        ((1, 2), (1, 2)),
        ((2, 100), (85, 100)),
        ((1305, 10000), (7295, 10000)),
        ((2064, 10000), (58574, 100000)),
    ];
    for (i, ((n0, d0), (n1, d1))) in expect.into_iter().enumerate() {
        let s = &a.stages()[i];
        assert_eq!(
            *s.carry_in.p_not_carry_and_success(),
            Rational::from_ratio(n0, d0),
            "stage {i} C̄curr"
        );
        assert_eq!(
            *s.carry_in.p_carry_and_success(),
            Rational::from_ratio(n1, d1),
            "stage {i} Ccurr"
        );
    }
    assert_eq!(
        a.success_probability(),
        Rational::from_ratio(738_476, 1_000_000)
    );
}

#[test]
fn table5_all_matrices() {
    type PaperRow = (StandardCell, [u8; 8], [u8; 8], [u8; 8]);
    let rows: [PaperRow; 7] = [
        (
            StandardCell::Lpaa1,
            [0, 0, 0, 1, 0, 1, 1, 1],
            [1, 1, 0, 0, 0, 0, 0, 0],
            [1, 1, 0, 1, 0, 1, 1, 1],
        ),
        (
            StandardCell::Lpaa2,
            [0, 0, 0, 1, 0, 1, 1, 0],
            [0, 1, 1, 0, 1, 0, 0, 0],
            [0, 1, 1, 1, 1, 1, 1, 0],
        ),
        (
            StandardCell::Lpaa3,
            [0, 0, 0, 1, 0, 1, 1, 0],
            [0, 1, 0, 0, 1, 0, 0, 0],
            [0, 1, 0, 1, 1, 1, 1, 0],
        ),
        (
            StandardCell::Lpaa4,
            [0, 0, 0, 0, 0, 1, 1, 1],
            [1, 1, 0, 0, 0, 0, 0, 0],
            [1, 1, 0, 0, 0, 1, 1, 1],
        ),
        (
            StandardCell::Lpaa5,
            [0, 0, 0, 0, 0, 1, 0, 1],
            [1, 0, 1, 0, 0, 0, 0, 0],
            [1, 0, 1, 0, 0, 1, 0, 1],
        ),
        (
            StandardCell::Lpaa6,
            [0, 0, 0, 1, 0, 1, 0, 1],
            [1, 0, 1, 0, 1, 0, 0, 0],
            [1, 0, 1, 1, 1, 1, 0, 1],
        ),
        (
            StandardCell::Lpaa7,
            [0, 0, 0, 0, 0, 0, 1, 1],
            [1, 1, 1, 0, 1, 0, 0, 0],
            [1, 1, 1, 0, 1, 0, 1, 1],
        ),
    ];
    for (cell, m, k, l) in rows {
        let mkl = MklMatrices::from_truth_table(&cell.truth_table());
        assert_eq!(mkl.m_bits(), m, "M of {cell}");
        assert_eq!(mkl.k_bits(), k, "K of {cell}");
        assert_eq!(mkl.l_bits(), l, "L of {cell}");
    }
}

#[test]
fn table7_analytical_column_within_rounding() {
    let paper: [(usize, [f64; 7]); 6] = [
        (
            2,
            [0.30780, 0.9271, 0.95707, 0.31851, 0.27000, 0.1143, 0.01980],
        ),
        (
            4,
            [
                0.53090, 0.99468, 0.99763, 0.54033, 0.40950, 0.13533, 0.02333,
            ],
        ),
        (
            6,
            [
                0.68240, 0.99961, 0.99986, 0.68999, 0.52170, 0.15266, 0.02685,
            ],
        ),
        (
            8,
            [
                0.78498, 0.99997, 0.99999, 0.79092, 0.61258, 0.16953, 0.03035,
            ],
        ),
        (
            10,
            [
                0.85443, 0.99999, 0.99999, 0.85899, 0.68618, 0.18605, 0.03385,
            ],
        ),
        (
            12,
            [
                0.90145, 0.99999, 0.99999, 0.90490, 0.74581, 0.20225, 0.03733,
            ],
        ),
    ];
    for (n, row) in paper {
        for (c, cell) in StandardCell::APPROXIMATE.into_iter().enumerate() {
            let chain = AdderChain::uniform(cell.cell(), n);
            let profile = InputProfile::constant(n, 0.1);
            let ours = analyze(&chain, &profile)
                .expect("widths match")
                .error_probability();
            assert!(
                (ours - row[c]).abs() < 2e-4,
                "{cell} N={n}: ours {ours:.6} vs paper {:.6}",
                row[c]
            );
        }
    }
}

#[test]
fn table8_model_values() {
    let equal = table8_resource_model(32, true);
    assert_eq!(
        (equal.multipliers, equal.adders, equal.memory_units),
        (32, 21, 3)
    );
    let varying = table8_resource_model(32, false);
    assert_eq!(
        (varying.multipliers, varying.adders, varying.memory_units),
        (48, 21, 33)
    );
}

#[test]
fn fig5_qualitative_rankings() {
    // Sec. 5's qualitative observations about Fig. 5:
    let success = |cell: StandardCell, n: usize, p: f64| {
        analyze(
            &AdderChain::uniform(cell.cell(), n),
            &InputProfile::constant(n, p),
        )
        .expect("widths match")
        .success_probability()
    };
    // (1) LPAA 1 and LPAA 7 tie exactly at equal probabilities…
    for n in 1..=12 {
        let s1 = success(StandardCell::Lpaa1, n, 0.5);
        let s7 = success(StandardCell::Lpaa7, n, 0.5);
        assert!((s1 - s7).abs() < 1e-12, "N={n}: {s1} vs {s7}");
    }
    // (2) …but LPAA 7 wins at low input probabilities and LPAA 1 at high.
    assert!(success(StandardCell::Lpaa7, 8, 0.2) > success(StandardCell::Lpaa1, 8, 0.2));
    assert!(success(StandardCell::Lpaa1, 8, 0.8) > success(StandardCell::Lpaa7, 8, 0.8));
    // (3) LPAA 6 is the "four-season adder": no cell is good in *every*
    // regime, but LPAA 6's worst case across low/equal/high probabilities
    // beats every other cell's worst case (and it dominates LPAA 2-5
    // outright in all three regimes).
    let regimes = [0.2, 0.5, 0.8];
    let minimax = |cell: StandardCell| {
        regimes
            .iter()
            .map(|&p| success(cell, 8, p))
            .fold(f64::INFINITY, f64::min)
    };
    let s6 = minimax(StandardCell::Lpaa6);
    for cell in StandardCell::APPROXIMATE {
        if cell != StandardCell::Lpaa6 {
            assert!(
                s6 > minimax(cell),
                "LPAA 6 worst-case {s6} should beat {cell} worst-case {}",
                minimax(cell)
            );
        }
    }
    for p in regimes {
        let s6 = success(StandardCell::Lpaa6, 8, p);
        for cell in [
            StandardCell::Lpaa2,
            StandardCell::Lpaa3,
            StandardCell::Lpaa4,
            StandardCell::Lpaa5,
        ] {
            assert!(
                s6 >= success(cell, 8, p),
                "LPAA 6 should dominate {cell} at p={p}"
            );
        }
    }
    // (4) At equal probabilities, no LPAA is useful beyond ~10 bits: even
    // the best of LPAA 1-5 succeeds less than half the time.
    for cell in [
        StandardCell::Lpaa1,
        StandardCell::Lpaa4,
        StandardCell::Lpaa5,
    ] {
        assert!(success(cell, 10, 0.5) < 0.5, "{cell}");
    }
}
