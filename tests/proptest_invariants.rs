#![allow(clippy::needless_range_loop)]

//! Property-based invariants spanning the whole workspace, driven by
//! randomly generated chains and input profiles.

use proptest::prelude::*;

use sealpaa::analysis::{analyze, exact_error_analysis, signal_probabilities};
use sealpaa::cells::{AdderChain, Cell, InputProfile, StandardCell};
use sealpaa::gear::{
    error_probability as gear_error, error_probability_inclexcl as gear_inclexcl, GearAdder,
    GearConfig,
};
use sealpaa::inclexcl::error_probability as inclexcl_error;
use sealpaa::num::Rational;
use sealpaa::sim::exhaustive;

/// Any of the 8 standard cells.
fn any_cell() -> impl Strategy<Value = Cell> {
    (0..StandardCell::ALL.len()).prop_map(|i| StandardCell::ALL[i].cell())
}

/// A hybrid chain of 1..=5 standard cells.
fn any_chain() -> impl Strategy<Value = AdderChain> {
    prop::collection::vec(any_cell(), 1..=5).prop_map(AdderChain::from_stages)
}

/// A small exact rational probability in [0, 1].
fn any_prob() -> impl Strategy<Value = Rational> {
    (0i64..=12, 1i64..=12).prop_map(|(n, d)| {
        let n = n.min(d);
        Rational::from_ratio(n, d)
    })
}

/// A rational profile matching `width`.
fn profile_for(width: usize) -> impl Strategy<Value = InputProfile<Rational>> {
    (
        prop::collection::vec(any_prob(), width),
        prop::collection::vec(any_prob(), width),
        any_prob(),
    )
        .prop_map(|(pa, pb, cin)| InputProfile::new(pa, pb, cin).expect("probs are in range"))
}

fn chain_and_profile() -> impl Strategy<Value = (AdderChain, InputProfile<Rational>)> {
    any_chain().prop_flat_map(|chain| {
        let width = chain.width();
        profile_for(width).prop_map(move |p| (chain.clone(), p))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline theorem: the proposed O(N) recursion equals exhaustive
    /// enumeration exactly, for arbitrary hybrid chains and arbitrary
    /// rational profiles.
    #[test]
    fn analytical_equals_exhaustive((chain, profile) in chain_and_profile()) {
        let analytical = analyze(&chain, &profile).expect("widths match").error_probability();
        let report = exhaustive(&chain, &profile).expect("small width");
        prop_assert_eq!(analytical, report.stage_error_probability);
    }

    /// …and equals the 2^k-term inclusion-exclusion baseline exactly.
    #[test]
    fn analytical_equals_inclexcl((chain, profile) in chain_and_profile()) {
        let analytical = analyze(&chain, &profile).expect("widths match").error_probability();
        let (baseline, _) = inclexcl_error(&chain, &profile).expect("widths match");
        prop_assert_eq!(analytical, baseline);
    }

    /// All reported probabilities stay inside [0, 1].
    #[test]
    fn probabilities_in_unit_interval((chain, profile) in chain_and_profile()) {
        let analysis = analyze(&chain, &profile).expect("widths match");
        let zero = Rational::zero();
        let one = Rational::one();
        prop_assert!(analysis.error_probability() >= zero);
        prop_assert!(analysis.error_probability() <= one);
        for stage in analysis.stages() {
            prop_assert!(*stage.carry_out.p_carry_and_success() >= zero);
            prop_assert!(stage.success_through <= one);
        }
    }

    /// The success-conditioned mass can only shrink stage over stage (the
    /// paper: "the carry-out probabilities keep on decreasing").
    #[test]
    fn success_mass_monotone((chain, profile) in chain_and_profile()) {
        let analysis = analyze(&chain, &profile).expect("widths match");
        let mut prev = Rational::one();
        for stage in analysis.stages() {
            prop_assert!(stage.success_through <= prev);
            prev = stage.success_through.clone();
        }
    }

    /// M + K = L pointwise implies: success mass after the stage equals
    /// IPM·L, so the final success always equals the last stage's carry mass.
    #[test]
    fn success_equals_final_carry_mass((chain, profile) in chain_and_profile()) {
        let analysis = analyze(&chain, &profile).expect("widths match");
        let last = analysis.stages().last().expect("chains are non-empty");
        prop_assert_eq!(
            analysis.success_probability(),
            last.carry_out.success_mass()
        );
    }

    /// Output-value error never exceeds first-deviation error, and both
    /// agree with simulation exactly.
    #[test]
    fn output_error_bounded_by_stage_error((chain, profile) in chain_and_profile()) {
        let joint = exact_error_analysis(&chain, &profile).expect("widths match");
        prop_assert!(joint.output_error <= joint.stage_error);
        let report = exhaustive(&chain, &profile).expect("small width");
        prop_assert_eq!(joint.output_error, report.output_error_probability);
    }

    /// Signal probabilities agree with exhaustive enumeration of the
    /// approximate chain.
    #[test]
    fn signal_probabilities_match_enumeration((chain, profile) in chain_and_profile()) {
        prop_assume!(chain.width() <= 3);
        let signals = signal_probabilities(&chain, &profile).expect("widths match");
        let width = chain.width();
        let mut sum_mass = vec![Rational::zero(); width];
        let mut carry_mass = Rational::zero();
        for a in 0..1u64 << width {
            for b in 0..1u64 << width {
                for cin in [false, true] {
                    let w = profile.assignment_probability(a, b, cin);
                    let r = chain.add(a, b, cin);
                    for (i, mass) in sum_mass.iter_mut().enumerate() {
                        if (r.sum_bits() >> i) & 1 == 1 {
                            *mass = mass.clone() + w.clone();
                        }
                    }
                    if r.carry_out() {
                        carry_mass = carry_mass + w;
                    }
                }
            }
        }
        for i in 0..width {
            prop_assert_eq!(&signals.sum[i], &sum_mass[i], "sum bit {}", i);
        }
        prop_assert_eq!(&signals.carry[width], &carry_mass);
    }

    /// Analysing a prefix of the profile equals the prefix of the analysis.
    #[test]
    fn prefix_consistency((chain, profile) in chain_and_profile(), cut in 1usize..=5) {
        let width = chain.width();
        let cut = cut.min(width);
        let full = analyze(&chain, &profile).expect("widths match");
        let prefix_chain = AdderChain::from_stages(
            chain.iter().take(cut).cloned().collect()
        );
        let prefix = analyze(&prefix_chain, &profile.truncate(cut)).expect("widths match");
        prop_assert_eq!(full.prefix_success(cut - 1), prefix.success_probability());
    }

    /// GeAr: the linear DP equals both the inclusion-exclusion expansion and
    /// (at uniform probabilities) the exhaustive functional error count.
    #[test]
    fn gear_three_way_agreement(r in 1usize..=3, p in 0usize..=3, extra in 0usize..=3) {
        let n = (r + p) + r * extra;
        prop_assume!(n <= 9);
        let config = GearConfig::new(n, r, p).expect("constructed to tile");
        let pa = vec![Rational::from_ratio(1, 2); n];
        let cin = Rational::zero();
        let linear = gear_error(&config, &pa, &pa, cin.clone()).expect("widths match");
        let (ie, _) = gear_inclexcl(&config, &pa, &pa, cin).expect("widths match");
        prop_assert_eq!(&linear, &ie);
        let adder = GearAdder::new(config);
        // Count errors over cin = 0 only (the analytical cin is fixed to 0).
        let mut errors = 0u64;
        let mut total = 0u64;
        for a in 0..1u64 << n {
            for b in 0..1u64 << n {
                total += 1;
                if !adder.matches_accurate(a, b, false) {
                    errors += 1;
                }
            }
        }
        prop_assert_eq!(linear, Rational::from_ratio(errors as i64, total as i64));
    }

    /// Worst-case extremes: the DP's claimed extremes are achieved by their
    /// witnesses and bound the exact PMF support for random hybrid chains.
    #[test]
    fn worst_case_extremes_are_tight((chain, profile) in chain_and_profile()) {
        use sealpaa::analysis::{error_distribution, worst_case_error};
        let wc = worst_case_error(&chain).expect("small width");
        for (witness, expect) in [(wc.max_witness, wc.max_error), (wc.min_witness, wc.min_error)] {
            let d = chain
                .add(witness.a, witness.b, witness.carry_in)
                .error_distance(chain.accurate_sum(witness.a, witness.b, witness.carry_in));
            prop_assert_eq!(d as i128, expect);
        }
        // Every achievable error under any profile lies within the extremes;
        // at uniform inputs (all inputs possible) the PMF support endpoints
        // coincide with them.
        let dist = error_distribution(&chain, &profile).expect("small width");
        for (d, _) in &dist.pmf {
            prop_assert!((*d as i128) <= wc.max_error);
            prop_assert!((*d as i128) >= wc.min_error);
        }
        let uniform = InputProfile::<Rational>::uniform(chain.width());
        let full = error_distribution(&chain, &uniform).expect("small width");
        prop_assert_eq!(full.pmf.first().expect("non-empty").0 as i128, wc.min_error);
        prop_assert_eq!(full.pmf.last().expect("non-empty").0 as i128, wc.max_error);
    }

    /// Functional evaluation sanity: an all-accurate chain equals u64
    /// addition for random operands.
    #[test]
    fn accurate_chain_is_binary_addition(a in any::<u64>(), b in any::<u64>(), cin in any::<bool>()) {
        let chain = AdderChain::uniform(StandardCell::Accurate.cell(), 16);
        let r = chain.add(a, b, cin);
        prop_assert!(r.matches_accurate(a, b, cin));
    }

    /// Profile round-trip through f64 is exact for dyadic probabilities.
    #[test]
    fn profile_conversion_round_trip(num in 0u8..=16) {
        let p = num as f64 / 16.0;
        let f = InputProfile::<f64>::constant(3, p);
        let r: InputProfile<Rational> = f.convert();
        let back: InputProfile<f64> = r.convert();
        prop_assert_eq!(*back.pa(0), p);
        prop_assert_eq!(r.pa(0), &Rational::from_ratio(num as i64, 16));
    }
}
