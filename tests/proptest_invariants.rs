#![allow(clippy::needless_range_loop)]

//! Property-based invariants spanning the whole workspace, driven by
//! randomly generated chains and input profiles.
//!
//! Each property runs `CASES` randomized trials from a fixed per-test seed
//! (the in-repo xoshiro256++ generator), so failures are reproducible: the
//! assertion message carries the case number, and re-running the test
//! regenerates the identical inputs.

use sealpaa::analysis::{analyze, exact_error_analysis, signal_probabilities};
use sealpaa::cells::{AdderChain, Cell, InputProfile, StandardCell};
use sealpaa::gear::{
    error_probability as gear_error, error_probability_inclexcl as gear_inclexcl, GearAdder,
    GearConfig,
};
use sealpaa::inclexcl::error_probability as inclexcl_error;
use sealpaa::num::Rational;
use sealpaa::sim::{exhaustive, Xoshiro256pp};

/// Randomized trials per property (the suite's original proptest case
/// count).
const CASES: u64 = 48;

/// Any of the 8 standard cells.
fn rand_cell(rng: &mut Xoshiro256pp) -> Cell {
    let i = rng.next_below(StandardCell::ALL.len() as u64) as usize;
    StandardCell::ALL[i].cell()
}

/// A hybrid chain of `min_width..=max_width` standard cells.
fn rand_chain(rng: &mut Xoshiro256pp, min_width: u64, max_width: u64) -> AdderChain {
    let width = min_width + rng.next_below(max_width - min_width + 1);
    AdderChain::from_stages((0..width).map(|_| rand_cell(rng)).collect())
}

/// A small exact rational probability in [0, 1] (numerators/denominators up
/// to 12, as in the original strategy).
fn rand_prob(rng: &mut Xoshiro256pp) -> Rational {
    let d = 1 + rng.next_below(12) as i64;
    let n = (rng.next_below(13) as i64).min(d);
    Rational::from_ratio(n, d)
}

/// A rational profile matching `width`.
fn rand_profile(rng: &mut Xoshiro256pp, width: usize) -> InputProfile<Rational> {
    let pa = (0..width).map(|_| rand_prob(rng)).collect();
    let pb = (0..width).map(|_| rand_prob(rng)).collect();
    InputProfile::new(pa, pb, rand_prob(rng)).expect("probs are in range")
}

fn rand_chain_and_profile(rng: &mut Xoshiro256pp) -> (AdderChain, InputProfile<Rational>) {
    let chain = rand_chain(rng, 1, 5);
    let profile = rand_profile(rng, chain.width());
    (chain, profile)
}

/// The headline theorem: the proposed O(N) recursion equals exhaustive
/// enumeration exactly, for arbitrary hybrid chains and arbitrary rational
/// profiles.
#[test]
fn analytical_equals_exhaustive() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5EA1_0001);
    for case in 0..CASES {
        let (chain, profile) = rand_chain_and_profile(&mut rng);
        let analytical = analyze(&chain, &profile)
            .expect("widths match")
            .error_probability();
        let report = exhaustive(&chain, &profile).expect("small width");
        assert_eq!(
            analytical, report.stage_error_probability,
            "case {case}: {chain}"
        );
    }
}

/// …and equals the 2^k-term inclusion-exclusion baseline exactly.
#[test]
fn analytical_equals_inclexcl() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5EA1_0002);
    for case in 0..CASES {
        let (chain, profile) = rand_chain_and_profile(&mut rng);
        let analytical = analyze(&chain, &profile)
            .expect("widths match")
            .error_probability();
        let (baseline, _) = inclexcl_error(&chain, &profile).expect("widths match");
        assert_eq!(analytical, baseline, "case {case}: {chain}");
    }
}

/// All reported probabilities stay inside [0, 1].
#[test]
fn probabilities_in_unit_interval() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5EA1_0003);
    for case in 0..CASES {
        let (chain, profile) = rand_chain_and_profile(&mut rng);
        let analysis = analyze(&chain, &profile).expect("widths match");
        let zero = Rational::zero();
        let one = Rational::one();
        assert!(analysis.error_probability() >= zero, "case {case}");
        assert!(analysis.error_probability() <= one, "case {case}");
        for stage in analysis.stages() {
            assert!(
                *stage.carry_out.p_carry_and_success() >= zero,
                "case {case}"
            );
            assert!(stage.success_through <= one, "case {case}");
        }
    }
}

/// The success-conditioned mass can only shrink stage over stage (the
/// paper: "the carry-out probabilities keep on decreasing").
#[test]
fn success_mass_monotone() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5EA1_0004);
    for case in 0..CASES {
        let (chain, profile) = rand_chain_and_profile(&mut rng);
        let analysis = analyze(&chain, &profile).expect("widths match");
        let mut prev = Rational::one();
        for stage in analysis.stages() {
            assert!(stage.success_through <= prev, "case {case}: {chain}");
            prev = stage.success_through.clone();
        }
    }
}

/// M + K = L pointwise implies: success mass after the stage equals IPM·L,
/// so the final success always equals the last stage's carry mass.
#[test]
fn success_equals_final_carry_mass() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5EA1_0005);
    for case in 0..CASES {
        let (chain, profile) = rand_chain_and_profile(&mut rng);
        let analysis = analyze(&chain, &profile).expect("widths match");
        let last = analysis.stages().last().expect("chains are non-empty");
        assert_eq!(
            analysis.success_probability(),
            last.carry_out.success_mass(),
            "case {case}: {chain}"
        );
    }
}

/// Output-value error never exceeds first-deviation error, and both agree
/// with simulation exactly.
#[test]
fn output_error_bounded_by_stage_error() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5EA1_0006);
    for case in 0..CASES {
        let (chain, profile) = rand_chain_and_profile(&mut rng);
        let joint = exact_error_analysis(&chain, &profile).expect("widths match");
        assert!(joint.output_error <= joint.stage_error, "case {case}");
        let report = exhaustive(&chain, &profile).expect("small width");
        assert_eq!(
            joint.output_error, report.output_error_probability,
            "case {case}: {chain}"
        );
    }
}

/// Signal probabilities agree with exhaustive enumeration of the
/// approximate chain.
#[test]
fn signal_probabilities_match_enumeration() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5EA1_0007);
    for case in 0..CASES {
        // The enumeration below is 2^(2w+1); keep w ≤ 3 as the original
        // `prop_assume` did.
        let chain = rand_chain(&mut rng, 1, 3);
        let profile = rand_profile(&mut rng, chain.width());
        let signals = signal_probabilities(&chain, &profile).expect("widths match");
        let width = chain.width();
        let mut sum_mass = vec![Rational::zero(); width];
        let mut carry_mass = Rational::zero();
        for a in 0..1u64 << width {
            for b in 0..1u64 << width {
                for cin in [false, true] {
                    let w = profile.assignment_probability(a, b, cin);
                    let r = chain.add(a, b, cin);
                    for (i, mass) in sum_mass.iter_mut().enumerate() {
                        if (r.sum_bits() >> i) & 1 == 1 {
                            *mass = mass.clone() + w.clone();
                        }
                    }
                    if r.carry_out() {
                        carry_mass = carry_mass + w;
                    }
                }
            }
        }
        for i in 0..width {
            assert_eq!(&signals.sum[i], &sum_mass[i], "case {case}: sum bit {i}");
        }
        assert_eq!(&signals.carry[width], &carry_mass, "case {case}");
    }
}

/// Analysing a prefix of the profile equals the prefix of the analysis.
#[test]
fn prefix_consistency() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5EA1_0008);
    for case in 0..CASES {
        let (chain, profile) = rand_chain_and_profile(&mut rng);
        let width = chain.width();
        let cut = (1 + rng.next_below(5) as usize).min(width);
        let full = analyze(&chain, &profile).expect("widths match");
        let prefix_chain = AdderChain::from_stages(chain.iter().take(cut).cloned().collect());
        let prefix = analyze(&prefix_chain, &profile.truncate(cut)).expect("widths match");
        assert_eq!(
            full.prefix_success(cut - 1),
            prefix.success_probability(),
            "case {case}: {chain} cut at {cut}"
        );
    }
}

/// GeAr: the linear DP equals both the inclusion-exclusion expansion and
/// (at uniform probabilities) the exhaustive functional error count.
#[test]
fn gear_three_way_agreement() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5EA1_0009);
    let mut done = 0;
    while done < CASES {
        let r = 1 + rng.next_below(3) as usize;
        let p = rng.next_below(4) as usize;
        let extra = rng.next_below(4) as usize;
        let n = (r + p) + r * extra;
        if n > 9 {
            continue;
        }
        done += 1;
        let config = GearConfig::new(n, r, p).expect("constructed to tile");
        let pa = vec![Rational::from_ratio(1, 2); n];
        let cin = Rational::zero();
        let linear = gear_error(&config, &pa, &pa, cin.clone()).expect("widths match");
        let (ie, _) = gear_inclexcl(&config, &pa, &pa, cin).expect("widths match");
        assert_eq!(&linear, &ie, "GeAr({n},{r},{p})");
        let adder = GearAdder::new(config);
        // Count errors over cin = 0 only (the analytical cin is fixed to 0).
        let mut errors = 0u64;
        let mut total = 0u64;
        for a in 0..1u64 << n {
            for b in 0..1u64 << n {
                total += 1;
                if !adder.matches_accurate(a, b, false) {
                    errors += 1;
                }
            }
        }
        assert_eq!(
            linear,
            Rational::from_ratio(errors as i64, total as i64),
            "GeAr({n},{r},{p})"
        );
    }
}

/// Worst-case extremes: the DP's claimed extremes are achieved by their
/// witnesses and bound the exact PMF support for random hybrid chains.
#[test]
fn worst_case_extremes_are_tight() {
    use sealpaa::analysis::{error_distribution, worst_case_error};
    let mut rng = Xoshiro256pp::seed_from_u64(0x5EA1_000A);
    for case in 0..CASES {
        let (chain, profile) = rand_chain_and_profile(&mut rng);
        let wc = worst_case_error(&chain).expect("small width");
        for (witness, expect) in [
            (wc.max_witness, wc.max_error),
            (wc.min_witness, wc.min_error),
        ] {
            let d = chain
                .add(witness.a, witness.b, witness.carry_in)
                .error_distance(chain.accurate_sum(witness.a, witness.b, witness.carry_in));
            assert_eq!(d as i128, expect, "case {case}: {chain}");
        }
        // Every achievable error under any profile lies within the extremes;
        // at uniform inputs (all inputs possible) the PMF support endpoints
        // coincide with them.
        let dist = error_distribution(&chain, &profile).expect("small width");
        for (d, _) in &dist.pmf {
            assert!((*d as i128) <= wc.max_error, "case {case}");
            assert!((*d as i128) >= wc.min_error, "case {case}");
        }
        let uniform = InputProfile::<Rational>::uniform(chain.width());
        let full = error_distribution(&chain, &uniform).expect("small width");
        assert_eq!(
            full.pmf.first().expect("non-empty").0 as i128,
            wc.min_error,
            "case {case}: {chain}"
        );
        assert_eq!(
            full.pmf.last().expect("non-empty").0 as i128,
            wc.max_error,
            "case {case}: {chain}"
        );
    }
}

/// Functional evaluation sanity: an all-accurate chain equals u64 addition
/// for random operands.
#[test]
fn accurate_chain_is_binary_addition() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5EA1_000B);
    let chain = AdderChain::uniform(StandardCell::Accurate.cell(), 16);
    for case in 0..CASES {
        let a = rng.next_u64();
        let b = rng.next_u64();
        let cin = rng.next_bool(0.5);
        let r = chain.add(a, b, cin);
        assert!(r.matches_accurate(a, b, cin), "case {case}: {a} + {b}");
    }
}

/// Profile round-trip through f64 is exact for dyadic probabilities.
#[test]
fn profile_conversion_round_trip() {
    for num in 0u8..=16 {
        let p = num as f64 / 16.0;
        let f = InputProfile::<f64>::constant(3, p);
        let r: InputProfile<Rational> = f.convert();
        let back: InputProfile<f64> = r.convert();
        assert_eq!(*back.pa(0), p);
        assert_eq!(r.pa(0), &Rational::from_ratio(num as i64, 16));
    }
}
