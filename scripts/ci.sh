#!/usr/bin/env bash
# The local CI gate: everything a change must pass before it lands.
#
#   scripts/ci.sh            # full gate
#   scripts/ci.sh --quick    # skip the release build (iterating on tests)
#
# Runs entirely offline — the workspace has no third-party dependencies.

set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

run() {
    echo
    echo "==> $*"
    "$@"
}

if [[ $quick -eq 0 ]]; then
    run cargo build --release
    # Examples are documentation that compiles: build them all in the same
    # profile so a drifting API surfaces here, not on a reader's machine.
    run cargo build --examples --release
fi

# The tier-1 gate: the root package's cross-crate integration + property
# tests, exactly as the roadmap specifies them.
run cargo test -q

# The rest of the workspace (every crate's unit, integration and doc tests).
run cargo test --workspace -q

# The differential suite: bitsliced engines vs the scalar reference oracle
# (exact equality for Rational sweeps, tolerance-checked f64, determinism
# across thread counts).
run cargo test -p sealpaa-sim --test differential -q

# The same suite once per SIMD backend the host supports, forced through
# SEALPAA_SIMD — pins that every lane width (u64 / u64x2 / avx2 / avx512)
# reproduces the scalar oracle byte-identically, not just the widest one
# runtime detection happens to pick. `sealpaa simd` lists what the host
# has; forcing an unavailable backend is a hard error, so the loop asks
# the binary itself which names to run.
for backend in $(cargo run -q -p sealpaa-cli --bin sealpaa -- simd --json |
    sed -n 's/.*"available_names":\[\([^]]*\)\].*/\1/p' | tr -d '"' | tr ',' ' '); do
    run env SEALPAA_SIMD="$backend" \
        cargo test -p sealpaa-sim --test differential -q
    run env SEALPAA_SIMD="$backend" \
        cargo test -p sealpaa-trace --test differential -q
done

# The incremental-analysis differential suite: prefix stepper vs fresh
# analyses (bit-for-bit in Rational, exactly equal in f64) and thread-count
# invariance of the design-space exploration.
run cargo test -p sealpaa-core --test incremental -q

# The trace-replay differential suite: bitsliced 64-lane replay vs the
# scalar per-record oracle (bit-for-bit, every workload family and thread
# count) plus the model-fidelity acceptance bounds.
run cargo test -p sealpaa-trace --test differential -q
run cargo test -p sealpaa-trace --test fidelity -q

# The block-adder differential suite: the analytical error-distance engine
# vs exhaustive enumeration (exactly, in Rational, for every library cell)
# and GeAr-as-blocks vs the gear crate's independent DP.
run cargo test -p sealpaa-blocks --test differential -q

# The error-propagation suites: exact-Rational vs f64 consistency of the
# datapath moment engine, then the accuracy acceptance bounds (analytical
# SNR vs Monte-Carlo / replay ground truth, per topology).
run cargo test -p sealpaa-propagate --test consistency -q
run cargo test -p sealpaa-propagate --test acceptance -q

# The server fault-injection suite, once per connection layer: the tests
# run both models by default, but forcing each via SEALPAA_IO_MODEL pins
# that a hang in one model cannot hide behind the other passing first.
run env SEALPAA_IO_MODEL=event \
    cargo test -p sealpaa-server --test fault_injection -q
run env SEALPAA_IO_MODEL=threads \
    cargo test -p sealpaa-server --test fault_injection -q

# Warm-restart durability, once per connection layer: snapshots written by
# one daemon life (periodically and on drain) must reload in the next, and
# damaged snapshot files must be ignored, not half-loaded.
run env SEALPAA_IO_MODEL=event \
    cargo test -p sealpaa-server --test snapshot_persistence -q
run env SEALPAA_IO_MODEL=threads \
    cargo test -p sealpaa-server --test snapshot_persistence -q

# The consistent-hash gateway end-to-end: key placement shared across
# clients, batch fan-out/reassembly, and backend loss/recovery. The router
# itself is epoll-only, but each leg pins the *backends'* connection layer.
run env SEALPAA_IO_MODEL=event \
    cargo test -p sealpaa-server --test router_e2e -q
run env SEALPAA_IO_MODEL=threads \
    cargo test -p sealpaa-server --test router_e2e -q

# Smoke-run the kernel benchmarks (1 sample per bench, no JSON rewrite) so
# kernel regressions that only break under the bench harness surface here
# rather than in the next full bench run.
run env MICROBENCH_QUICK=1 MICROBENCH_SAMPLE_MS=5 \
    cargo bench -p sealpaa-bench --bench simulation_kernels
run env MICROBENCH_QUICK=1 MICROBENCH_SAMPLE_MS=5 \
    cargo bench -p sealpaa-bench --bench analysis_kernels
run env MICROBENCH_QUICK=1 MICROBENCH_SAMPLE_MS=5 \
    cargo bench -p sealpaa-bench --bench trace_kernels
run env MICROBENCH_QUICK=1 MICROBENCH_SAMPLE_MS=5 \
    cargo bench -p sealpaa-bench --bench blocks_kernels
run env MICROBENCH_QUICK=1 MICROBENCH_SAMPLE_MS=5 \
    cargo bench -p sealpaa-bench --bench datapath_kernels
# The daemon throughput bench doubles as an end-to-end smoke of the event
# loop: it boots an in-process server and drives serialized, pipelined and
# batch traffic over real sockets (quick mode never rewrites BENCH JSON).
run env MICROBENCH_QUICK=1 MICROBENCH_SAMPLE_MS=5 \
    cargo bench -p sealpaa-bench --bench server_throughput

# Lints are load-bearing: the gate fails on any clippy warning anywhere in
# the workspace, including tests and benches.
run cargo clippy --workspace --all-targets -- -D warnings

run cargo fmt --all --check

echo
echo "ci: all green"
