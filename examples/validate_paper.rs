//! Re-derives the paper's published numbers and checks them live:
//! Table 4 (the worked 4-bit example, in exact rational arithmetic) and
//! Table 7's analytical column (all 7 LPAAs, N = 2..12, p = 0.1).
//!
//! Run with: `cargo run --release --example validate_paper`

use sealpaa::{analyze, AdderChain, InputProfile, Rational, StandardCell};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Table 4: the worked example, exactly -------------------------
    let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), 4);
    let profile = InputProfile::new(
        vec![
            Rational::from_ratio(9, 10),
            Rational::from_ratio(1, 2),
            Rational::from_ratio(2, 5),
            Rational::from_ratio(4, 5),
        ],
        vec![
            Rational::from_ratio(4, 5),
            Rational::from_ratio(7, 10),
            Rational::from_ratio(3, 5),
            Rational::from_ratio(9, 10),
        ],
        Rational::from_ratio(1, 2),
    )?;
    let analysis = analyze(&chain, &profile)?;
    let expect = Rational::from_ratio(738_476, 1_000_000);
    assert_eq!(analysis.success_probability(), expect);
    println!(
        "Table 4: P(Succ) = {} = {}  ✓ (paper: 0.738476, matched exactly)",
        analysis.success_probability(),
        analysis.success_probability().to_decimal(6),
    );

    // ---- Table 7: analytical column, all cells and widths -------------
    let paper: [(usize, [f64; 7]); 6] = [
        (
            2,
            [0.30780, 0.9271, 0.95707, 0.31851, 0.27000, 0.1143, 0.01980],
        ),
        (
            4,
            [
                0.53090, 0.99468, 0.99763, 0.54033, 0.40950, 0.13533, 0.02333,
            ],
        ),
        (
            6,
            [
                0.68240, 0.99961, 0.99986, 0.68999, 0.52170, 0.15266, 0.02685,
            ],
        ),
        (
            8,
            [
                0.78498, 0.99997, 0.99999, 0.79092, 0.61258, 0.16953, 0.03035,
            ],
        ),
        (
            10,
            [
                0.85443, 0.99999, 0.99999, 0.85899, 0.68618, 0.18605, 0.03385,
            ],
        ),
        (
            12,
            [
                0.90145, 0.99999, 0.99999, 0.90490, 0.74581, 0.20225, 0.03733,
            ],
        ),
    ];
    let mut worst: f64 = 0.0;
    for (n, row) in paper {
        for (c, cell) in StandardCell::APPROXIMATE.into_iter().enumerate() {
            let chain = AdderChain::uniform(cell.cell(), n);
            let p = analyze(&chain, &InputProfile::constant(n, 0.1))?.error_probability();
            let delta = (p - row[c]).abs();
            worst = worst.max(delta);
            assert!(
                delta < 2e-4,
                "{cell} at N={n}: ours {p:.5} vs paper {:.5}",
                row[c]
            );
        }
    }
    println!("Table 7: all 42 analytical P(E) values within {worst:.6} of the paper  ✓");
    println!("\nEvery published number re-derived successfully.");
    Ok(())
}
