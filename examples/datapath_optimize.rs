//! Fit → predict → optimize → verify, end to end, for one datapath.
//!
//! The propagation engine turns the per-adder error models into predicted
//! output moments for a whole graph, so choosing cells for a datapath never
//! needs a simulator in the loop. This example walks the full workflow on a
//! 3-tap binomial FIR filter (the separable half of a Gaussian blur):
//!
//! 1. synthesize a bell-shaped sensor workload and *fit* per-bit input
//!    models from the stream,
//! 2. *predict* the filter's output SNR analytically under those models and
//!    check the prediction against a replay of the very same stream,
//! 3. *optimize* — search every per-adder cell assignment for the best
//!    predicted SNR under a power budget, analytically, and
//! 4. *verify* the winner by replaying the stream through the re-celled
//!    graph, closing the loop against ground truth.
//!
//! Run with: `cargo run --release --example datapath_optimize`

use sealpaa::explore::{accurate_cell_with_proxy_costs, best_datapath_assignment, Budget};
use sealpaa::propagate::{fit_and_check, replay, topologies};
use sealpaa::trace::synth::generate;
use sealpaa::{StandardCell, SynthKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // 1. A workload and a datapath to run it through.
    //
    // GaussianSum values are bell-shaped, so the high bits are biased —
    // exactly the structure a fitted model captures and a blanket
    // "uniform inputs" assumption misses.
    // ------------------------------------------------------------------
    let width = 8;
    let records = generate(SynthKind::GaussianSum, width, 20_000, 7)?;
    let stream: Vec<u64> = records.iter().map(|r| r.a).collect();
    println!(
        "workload      : {} x {} samples",
        SynthKind::GaussianSum,
        stream.len()
    );

    let topo = topologies::fir(&StandardCell::Lpaa5.cell(), &[1, 2, 1], width)?;
    println!("datapath      : 3-tap binomial FIR, {width}-bit samples, LPAA 5 adders");

    // ------------------------------------------------------------------
    // 2. Fit per-bit input models and check the analytical prediction
    //    against a replay of the same stream.
    // ------------------------------------------------------------------
    let (fits, fidelity) = fit_and_check(&topo.datapath, topo.output, &stream)?;
    println!("\nfitted input models:");
    for fit in &fits {
        println!(
            "  {:<4} p(bit) = [{}]  indep. violation {:.4}",
            fit.name,
            fit.bits
                .iter()
                .map(|p| format!("{p:.2}"))
                .collect::<Vec<_>>()
                .join(", "),
            fit.independence_violation
        );
    }
    let predicted = fidelity.predicted.snr_db().expect("LPAA 5 errs");
    let measured = fidelity.measured.snr_db().expect("errors observed");
    println!("\npredicted SNR : {predicted:.2} dB  (analytical, no simulation)");
    println!("replayed SNR  : {measured:.2} dB  (ground truth on the stream)");
    println!("gap           : {:+.2} dB", predicted - measured);

    // ------------------------------------------------------------------
    // 3. Optimize the per-adder cell assignment under a power budget.
    //
    // The accurate cell is error-free but the budget will not pay for it
    // everywhere, so the search must decide *which* adder gets it — a
    // choice the propagated moments make analytically.
    // ------------------------------------------------------------------
    let inputs: Vec<(&str, Vec<f64>)> = fits
        .iter()
        .map(|f| (f.name.as_str(), f.bits.clone()))
        .collect();
    let candidates = [
        accurate_cell_with_proxy_costs(),
        StandardCell::Lpaa2.cell(),
        StandardCell::Lpaa5.cell(),
    ];
    let accurate_power: f64 = candidates[0]
        .characteristics()
        .map_or(0.0, |ch| ch.power_nw);
    // Enough to make one adder accurate, not both.
    let budget = Budget {
        max_power_nw: Some(1.5 * accurate_power * f64::from(u32::try_from(width).unwrap())),
        max_area_ge: None,
    };
    let best = best_datapath_assignment(
        &topo.datapath,
        topo.output,
        &inputs,
        &candidates,
        &budget,
        4,
    )?
    .expect("the budget admits at least one assignment");
    println!(
        "\nbest assignment under {:.0} nW (searched analytically):",
        budget.max_power_nw.unwrap()
    );
    for (i, cell) in best.cells.iter().enumerate() {
        println!("  adder {i}: {}", cell.name());
    }
    println!(
        "  predicted MSE {:.4}, power {:.0} nW, SNR {}",
        best.evaluation.mse,
        best.evaluation.power_nw,
        best.snr_db()
            .map_or("inf (error-free)".to_string(), |db| format!("{db:.2} dB"))
    );

    // ------------------------------------------------------------------
    // 4. Verify the winner on ground truth: re-cell the graph and replay
    //    the original stream through it.
    // ------------------------------------------------------------------
    let tuned = topo.datapath.with_adder_cells(&best.cells)?;
    let quality = replay(&tuned, topo.output, &stream)?;
    println!("\nreplay of the tuned datapath on the same stream:");
    println!("  error rate    : {:.4}", quality.error_rate);
    println!(
        "  measured SNR  : {}",
        quality
            .snr_db()
            .map_or("inf (error-free)".to_string(), |db| format!("{db:.2} dB"))
    );
    let baseline = fidelity.measured.mse;
    if quality.mse < baseline {
        println!(
            "  CONFIRMED — tuned MSE {:.4} beats the all-LPAA-5 baseline {:.4}",
            quality.mse, baseline
        );
    } else {
        println!(
            "  tuned MSE {:.4} vs baseline {:.4} (budget too tight to improve)",
            quality.mse, baseline
        );
    }
    Ok(())
}
