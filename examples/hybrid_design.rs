//! Hybrid-adder design (paper Sec. 5): pick a different LPAA per stage to
//! match a known input-probability profile under a power budget.
//!
//! Scenario: an 8-bit datapath whose operands are magnitude-limited sensor
//! values — LSBs are noisy (p ≈ 0.5) while MSBs are almost always 0. The
//! paper observes that LPAA 7 excels at low input probabilities and LPAA 1
//! at high ones; a budgeted search over hybrid chains exploits exactly that.
//!
//! Run with: `cargo run --release --example hybrid_design`

use sealpaa::cells::InputProfile;
use sealpaa::explore::{
    accurate_cell_with_proxy_costs, enumerate_designs, exhaustive_best, pareto_front, Budget,
};
use sealpaa::{analyze, AdderChain, StandardCell};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let width = 8;
    // P(bit = 1) decays from 0.5 at the LSB to 0.05 at the MSB.
    let pa: Vec<f64> = (0..width)
        .map(|i| 0.5 - 0.45 * i as f64 / (width - 1) as f64)
        .collect();
    let profile = InputProfile::new(pa.clone(), pa, 0.0)?;

    let candidates = vec![
        StandardCell::Lpaa1.cell(),
        StandardCell::Lpaa2.cell(),
        StandardCell::Lpaa3.cell(),
        StandardCell::Lpaa5.cell(),
        accurate_cell_with_proxy_costs(),
    ];

    // Homogeneous baselines first.
    println!("homogeneous baselines:");
    for cell in &candidates {
        let chain = AdderChain::uniform(cell.clone(), width);
        let analysis = analyze(&chain, &profile)?;
        let power = chain.total_power_nw().expect("all candidates are costed");
        println!(
            "  {:<12} P(err) = {:.6}   power = {:>5.0} nW",
            cell.name(),
            analysis.error_probability(),
            power
        );
    }

    // Budgeted optimum: the best hybrid chain at several power caps.
    println!(
        "\nbudgeted hybrid optimum (exhaustive over {} designs):",
        5usize.pow(8)
    );
    for cap in [1000.0, 2500.0, 5000.0, f64::INFINITY] {
        let budget = Budget {
            max_power_nw: if cap.is_finite() { Some(cap) } else { None },
            max_area_ge: None,
        };
        let best = exhaustive_best(&candidates, &profile, &budget)?
            .expect("the zero-power all-LPAA5 chain always fits");
        let cap_str = if cap.is_finite() {
            format!("{cap:>6.0} nW")
        } else {
            "  none  ".to_owned()
        };
        println!(
            "  budget {cap_str}: {}  (P(err) = {:.6}, {:.0} nW)",
            best.chain, best.evaluation.error_probability, best.evaluation.power_nw
        );
    }

    // The full error/power Pareto frontier.
    let front = pareto_front(enumerate_designs(&candidates, &profile)?);
    println!("\nPareto frontier ({} designs):", front.len());
    for design in front.iter().take(10) {
        println!("  {design}");
    }
    if front.len() > 10 {
        println!("  … and {} more", front.len() - 10);
    }
    Ok(())
}
