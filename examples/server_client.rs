//! A self-contained client for the analysis daemon: starts `sealpaa-server`
//! in-process on an ephemeral port, talks to it over a real TCP socket, and
//! shows the cache answering a repeated question.
//!
//! Run with: `cargo run --release --example server_client`
//!
//! Against an already-running daemon (`sealpaa serve`), the protocol is the
//! same — connect to its address instead of spawning one.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use sealpaa::{Json, Server, ServerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Spawn the daemon exactly as `sealpaa serve` would, but on port 0 so
    // the OS picks a free port.
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        threads: 2,
        ..Default::default()
    })?;
    let addr = server.local_addr();
    let daemon = std::thread::spawn(move || server.run());
    println!("daemon listening on {addr}\n");

    // One connection, several requests. Responses come back one line each,
    // in request order.
    let stream = TcpStream::connect(addr)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut ask = |line: &str| -> Result<Json, Box<dyn std::error::Error>> {
        println!("-> {line}");
        writeln!(writer, "{line}")?;
        let mut response = String::new();
        reader.read_line(&mut response)?;
        let parsed = Json::parse(response.trim_end())?;
        let micros = parsed.get("micros").and_then(Json::as_u64).unwrap_or(0);
        let cached = parsed
            .get("cached")
            .and_then(Json::as_bool)
            .unwrap_or(false);
        println!("<- ok in {micros} us (cached: {cached})");
        Ok(parsed)
    };

    // The paper's analytical method, as a service call.
    let analyzed = ask(r#"{"id":1,"kind":"analyze","width":16,"cell":"lpaa6","p":0.1}"#)?;
    let p_error = analyzed
        .get("result")
        .and_then(|r| r.get("error_probability"))
        .and_then(Json::as_f64)
        .ok_or("missing error probability")?;
    println!("   P(error) = {p_error:.6}\n");

    // The identical question again — answered from the cache, no recompute.
    ask(r#"{"id":2,"kind":"analyze","width":16,"cell":"lpaa6","p":0.1}"#)?;
    println!();

    // A Monte-Carlo cross-check of the same adder, fixed seed.
    let simulated = ask(
        r#"{"id":3,"kind":"simulate","width":16,"cell":"lpaa6","p":0.1,"samples":200000,"seed":7,"threads":2}"#,
    )?;
    let estimate = simulated
        .get("result")
        .and_then(|r| r.get("error_probability"))
        .and_then(Json::as_f64)
        .ok_or("missing estimate")?;
    println!("   simulated = {estimate:.6} (analytical {p_error:.6})\n");

    // Daemon introspection, then a graceful stop.
    let stats = ask(r#"{"id":4,"kind":"stats"}"#)?;
    println!(
        "   stats: {}\n",
        stats.get("result").map(Json::render).unwrap_or_default()
    );
    ask(r#"{"id":5,"kind":"shutdown"}"#)?;

    daemon.join().expect("daemon thread")?;
    println!("daemon stopped cleanly");
    Ok(())
}
