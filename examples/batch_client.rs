//! A pipelined batch client for the analysis daemon: starts the server
//! in-process, then exercises the two ways to ask many questions at once —
//! a `batch` request (many sub-requests, one response line) and request
//! pipelining (many request lines written back-to-back, responses
//! reassembled by `id` because they may return out of order).
//!
//! Run with: `cargo run --release --example batch_client`

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use sealpaa::{IoModel, Json, Server, ServerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let io_model = IoModel::default();
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        threads: 2,
        io_model,
        ..Default::default()
    })?;
    let addr = server.local_addr();
    let daemon = std::thread::spawn(move || server.run());
    println!(
        "daemon listening on {addr} (io model: {})\n",
        io_model.name()
    );

    let stream = TcpStream::connect(addr)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut read_response = || -> Result<Json, Box<dyn std::error::Error>> {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        Ok(Json::parse(line.trim_end())?)
    };

    // --- One batch request: mixed kinds, answered in one response line ---
    //
    // The duplicated analyze (items "a16" and "a16-again") is deliberately
    // identical: the daemon routes the batch through its result cache as a
    // group, so the config computes once and answers twice.
    let batch = concat!(
        r#"{"id":"demo","kind":"batch","requests":["#,
        r#"{"id":"a16","kind":"analyze","width":16,"cell":"lpaa6","p":0.1},"#,
        r#"{"id":"blk","kind":"blocks","config":"8:0:accurate,8:2:lpaa1","p":0.5},"#,
        r#"{"id":"dse","kind":"dse","width":3,"p":0.3,"budget_power":0},"#,
        r#"{"id":"a16-again","kind":"analyze","width":16,"cell":"lpaa6","p":0.1}"#,
        r#"]}"#
    );
    println!("-> batch of 4 sub-requests (analyze, blocks, dse, analyze again)");
    writeln!(writer, "{batch}")?;
    let response = read_response()?;
    let result = response.get("result").ok_or("missing batch result")?;
    let count = result.get("count").and_then(Json::as_u64).unwrap_or(0);
    let computed = result.get("computed").and_then(Json::as_u64).unwrap_or(0);
    println!("<- {count} answers from {computed} computes (duplicates deduplicated)\n");
    let subs = result
        .get("results")
        .and_then(Json::as_array)
        .ok_or("missing sub-responses")?;
    for sub in subs {
        let id = sub.get("id").and_then(Json::as_str).unwrap_or("?");
        let ok = sub.get("ok").and_then(Json::as_bool).unwrap_or(false);
        println!("   [{id}] ok={ok}");
        if !ok {
            return Err(format!("sub-request {id} failed: {}", sub.render()).into());
        }
    }
    let (first, last) = (subs.first().ok_or("empty")?, subs.last().ok_or("empty")?);
    assert_eq!(
        first.get("result"),
        last.get("result"),
        "identical configs in one batch must get identical answers"
    );
    println!();

    // --- Pipelining: write every request, then reassemble by id ---
    //
    // Under the event io model nothing waits: a slow request does not hold
    // up a fast one behind it, so responses may arrive out of order. The
    // `id` is the correlation key — never the arrival position.
    let requests: Vec<String> = (2..=6)
        .map(|w| format!(r#"{{"id":"w{w}","kind":"analyze","width":{w},"cell":"lpaa2","p":0.2}}"#))
        .collect();
    println!(
        "-> pipelining {} analyze requests in one write",
        requests.len()
    );
    writer.write_all(requests.join("\n").as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;

    let mut by_id: HashMap<String, Json> = HashMap::new();
    let mut arrival = Vec::new();
    for _ in 0..requests.len() {
        let response = read_response()?;
        let id = response
            .get("id")
            .and_then(Json::as_str)
            .ok_or("response without id")?
            .to_owned();
        arrival.push(id.clone());
        by_id.insert(id, response);
    }
    println!("<- arrival order: {}", arrival.join(", "));
    for w in 2..=6 {
        let response = by_id
            .get(&format!("w{w}"))
            .ok_or("missing pipelined response")?;
        let p = response
            .get("result")
            .and_then(|r| r.get("error_probability"))
            .and_then(Json::as_f64)
            .ok_or("missing error probability")?;
        println!("   [w{w}] P(error) = {p:.6}");
    }
    println!();

    writeln!(writer, r#"{{"kind":"shutdown"}}"#)?;
    read_response()?;
    daemon.join().expect("daemon thread")?;
    println!("daemon stopped cleanly");
    Ok(())
}
