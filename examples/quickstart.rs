//! Quickstart: analyze a multi-bit approximate adder in a few lines.
//!
//! Run with: `cargo run --release --example quickstart`

use sealpaa::{analyze, exhaustive, AdderChain, InputProfile, StandardCell};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 16-bit ripple-carry adder built entirely from LPAA 6 cells (the
    // paper's "four-season adder"), with every input bit being 1 with
    // probability 0.1 — e.g. sparse sensor data.
    let chain = AdderChain::uniform(StandardCell::Lpaa6.cell(), 16);
    let profile = InputProfile::constant(16, 0.1);

    // The paper's analytical method: one linear pass, microseconds.
    let analysis = analyze(&chain, &profile)?;
    println!("adder        : {chain}");
    println!("P(error)     : {:.6}", analysis.error_probability());
    println!("P(success)   : {:.6}", analysis.success_probability());

    // How the success probability decays stage by stage (paper Table 4's
    // trace, here for 16 bits):
    println!("\nstage  P(success through stage)");
    for stage in analysis.stages() {
        println!("{:>5}  {:.6}", stage.stage, stage.success_through);
    }

    // Cross-check against exhaustive simulation — feasible at 16 bits only
    // because this is a one-off demo; the analysis above is what scales.
    let truncated = InputProfile::constant(8, 0.1);
    let small_chain = AdderChain::uniform(StandardCell::Lpaa6.cell(), 8);
    let sim = exhaustive(&small_chain, &truncated)?;
    let ana = analyze(&small_chain, &truncated)?;
    println!("\n8-bit cross-check:");
    println!("  analytical : {:.6}", ana.error_probability());
    println!(
        "  exhaustive : {:.6}  ({} of {} cases err)",
        sim.output_error_probability, sim.error_cases, sim.cases
    );
    Ok(())
}
