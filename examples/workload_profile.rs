//! Workload-driven analysis end to end: generate an "audio-like" trace,
//! profile its bit statistics, and compare the paper's analytical estimate
//! (fed the estimated profile) against trace-replay ground truth.
//!
//! Run with: `cargo run --release --example workload_profile`

use sealpaa::trace::{fidelity, generate, SynthKind, TraceStats, VarId};
use sealpaa::{AdderChain, StandardCell};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A random-walk workload: operand b is operand a plus a small step,
    // like consecutive samples of an audio stream. 2^16 additions at
    // 12 bits.
    let width = 12;
    let records = generate(SynthKind::RandomWalk, width, 1 << 16, 42)?;

    // One streaming pass gives per-bit probabilities and an
    // independence-violation score.
    let stats = TraceStats::from_records(width, &records)?;
    println!("workload     : random-walk, {} records", stats.records());
    println!("\nbit  P(a=1)  P(b=1)");
    for bit in 0..width {
        println!(
            "{bit:>3}  {:.4}  {:.4}",
            stats.p(VarId::A(bit)),
            stats.p(VarId::B(bit))
        );
    }
    if let Some((x, y, score)) = stats.max_violation_pair() {
        println!("\nindependence violation: {score:.4} (worst pair {x} ~ {y})");
        println!("(consecutive audio samples are correlated — the analytical");
        println!(" model assumes independent bits, so expect a fidelity gap)");
    }

    // Replay the trace through a 4-LSB-approximate hybrid and compare the
    // analytical estimates under the estimated profile with ground truth.
    let chain = AdderChain::lsb_approximate(
        StandardCell::Lpaa2.cell(),
        StandardCell::Accurate.cell(),
        4,
        width,
    );
    let report = fidelity(&chain, &records, 4)?;
    println!("\nadder        : {chain}");
    println!("{:<18} {:>12} {:>12}", "metric", "analytical", "replayed");
    println!(
        "{:<18} {:>12.6} {:>12.6}",
        "P(output error)",
        report.analytical_output_error,
        report.replay.output_error_rate()
    );
    println!(
        "{:<18} {:>12.6} {:>12.6}",
        "E[D] (bias)",
        report.analytical_mean_ed,
        report.replay.mean_error_distance()
    );
    if let Some(med) = report.analytical_med {
        println!(
            "{:<18} {:>12.6} {:>12.6}",
            "E[|D|] (MED)",
            med,
            report.replay.mean_absolute_error_distance()
        );
    }
    println!(
        "\noutput-error gap: {:.6} — the cost of the independence assumption",
        report.output_error_gap()
    );
    println!("on this correlated workload; on a uniform trace it collapses to");
    println!("sampling noise (see crates/trace/tests/fidelity.rs).");
    Ok(())
}
