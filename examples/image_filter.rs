//! An error-resilient workload from the paper's motivation: a moving-average
//! smoothing filter (the core of image/video blur kernels) running on
//! approximate adders, with the analytical method *predicting* the observed
//! per-addition error rate from measured operand-bit statistics.
//!
//! Pipeline:
//! 1. synthesize a noisy 8-bit signal,
//! 2. measure the empirical probability of each operand bit being 1,
//! 3. feed those probabilities to the paper's analysis → predicted P(error),
//! 4. actually run the filter on an approximate accumulator and compare the
//!    observed error rate and output quality (PSNR) against an exact run.
//!
//! Run with: `cargo run --release --example image_filter`

use sealpaa::sim::Xoshiro256pp;
use sealpaa::{analyze, AdderChain, InputProfile, StandardCell};

const WIDTH: usize = 10; // accumulator width: 4 samples of 8 bits fit in 10
const SAMPLES: usize = 50_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Synthetic signal: slow sine + uniform noise, quantized to 8 bits.
    let mut rng = Xoshiro256pp::seed_from_u64(2017);
    let signal: Vec<u64> = (0..SAMPLES)
        .map(|i| {
            let clean = 100.0 + 80.0 * (i as f64 / 97.0).sin();
            let noisy = clean + rng.next_range_f64(-20.0, 20.0);
            noisy.clamp(0.0, 255.0) as u64
        })
        .collect();

    // 2. The filter accumulates window sums pairwise:
    //    (s0 + s1) + (s2 + s3). Collect the operands every addition sees to
    //    measure per-bit signal statistics.
    let mut operand_pairs: Vec<(u64, u64)> = Vec::new();
    for w in signal.windows(4) {
        operand_pairs.push((w[0], w[1]));
        operand_pairs.push((w[2], w[3]));
        operand_pairs.push((w[0] + w[1], w[2] + w[3]));
    }
    let mut ones_a = [0u64; WIDTH];
    let mut ones_b = [0u64; WIDTH];
    for &(a, b) in &operand_pairs {
        for bit in 0..WIDTH {
            ones_a[bit] += (a >> bit) & 1;
            ones_b[bit] += (b >> bit) & 1;
        }
    }
    let total = operand_pairs.len() as f64;
    let pa: Vec<f64> = ones_a.iter().map(|&c| c as f64 / total).collect();
    let pb: Vec<f64> = ones_b.iter().map(|&c| c as f64 / total).collect();
    println!("measured P(bit = 1) per position:");
    println!(
        "  A: {:?}",
        pa.iter()
            .map(|p| (p * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    println!(
        "  B: {:?}",
        pb.iter()
            .map(|p| (p * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );

    let profile = InputProfile::new(pa, pb, 0.0)?;

    // 3+4. For each candidate cell: predict, then measure.
    println!("\ncell     predicted P(err)  observed P(err)  filter PSNR (dB)");
    println!("--------------------------------------------------------------");
    for cell in [
        StandardCell::Accurate,
        StandardCell::Lpaa1,
        StandardCell::Lpaa6,
        StandardCell::Lpaa7,
        StandardCell::Lpaa5,
    ] {
        let chain = AdderChain::uniform(cell.cell(), WIDTH);
        let predicted = analyze(&chain, &profile)?.error_probability();

        let mut wrong_adds = 0u64;
        let mut sq_err_sum = 0.0f64;
        let mut outputs = 0u64;
        for w in signal.windows(4) {
            let s01 = chain.add(w[0], w[1], false);
            let s23 = chain.add(w[2], w[3], false);
            let sum = chain.add(s01.sum_bits(), s23.sum_bits(), false);
            for (r, (a, b)) in [
                (s01, (w[0], w[1])),
                (s23, (w[2], w[3])),
                (sum, (s01.sum_bits(), s23.sum_bits())),
            ] {
                if !r.matches_accurate(a, b, false) {
                    wrong_adds += 1;
                }
            }
            let approx_avg = (sum.value() / 4) as f64;
            let exact_avg = (w.iter().sum::<u64>() / 4) as f64;
            sq_err_sum += (approx_avg - exact_avg).powi(2);
            outputs += 1;
        }
        let observed = wrong_adds as f64 / (outputs as f64 * 3.0);
        let mse = sq_err_sum / outputs as f64;
        let psnr = if mse == 0.0 {
            f64::INFINITY
        } else {
            10.0 * (255.0f64.powi(2) / mse).log10()
        };
        println!(
            "{:<8} {:>15.4}  {:>15.4}  {:>15.1}",
            cell.name(),
            predicted,
            observed,
            psnr
        );
    }
    println!(
        "\nNote: predictions assume independent operand bits; the filter's \
         operands are mildly correlated, so small deviations are expected — \
         the ranking is what the analysis is for."
    );
    Ok(())
}
