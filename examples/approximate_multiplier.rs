//! Approximate adders inside bigger arithmetic: a shift-add multiplier and
//! an adder-tree datapath, with the paper's analysis composed across the
//! datapath and validated against Monte-Carlo.
//!
//! Run with: `cargo run --release --example approximate_multiplier`

use sealpaa::cells::{AdderChain, StandardCell};
use sealpaa::datapath::{estimate, simulate, Datapath, ShiftAddMultiplier};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- 8x8 shift-add multipliers, one per cell --------------------
    println!("8x8 shift-add multiplier quality (20k random operand pairs):");
    println!("cell     error rate  MRED      max |error|");
    println!("---------------------------------------------");
    for cell in [
        StandardCell::Accurate,
        StandardCell::Lpaa1,
        StandardCell::Lpaa6,
        StandardCell::Lpaa7,
        StandardCell::Lpaa2,
    ] {
        let m = ShiftAddMultiplier::new(cell.cell(), 8);
        let q = m.quality(20_000, 42);
        println!(
            "{:<8} {:>9.4}  {:>8.5}  {:>10}",
            cell.name(),
            q.error_rate,
            q.mean_relative_error,
            q.max_absolute_error
        );
    }

    // ---- A 4-input adder tree: analytical composition vs Monte-Carlo ---
    let cell = StandardCell::Lpaa6;
    let mut dp = Datapath::new();
    let inputs: Vec<_> = ["a", "b", "c", "d"]
        .into_iter()
        .map(|n| dp.input(n, 8))
        .collect();
    let chain = |w| AdderChain::uniform(cell.cell(), w);
    let ab = dp.add(inputs[0], inputs[1], chain(8))?;
    let cd = dp.add(inputs[2], inputs[3], chain(8))?;
    let sum = dp.add(ab, cd, chain(9))?;

    let input_probs: Vec<(&str, Vec<f64>)> = ["a", "b", "c", "d"]
        .into_iter()
        .map(|n| (n, vec![0.3; 8]))
        .collect();
    let est = estimate(&dp, &input_probs)?;
    println!(
        "\n4-input {} adder tree (8-bit operands, p = 0.3):",
        cell.name()
    );
    for adder in &est.adders {
        println!(
            "  adder #{:<2} analytical P(error) = {:.5}",
            adder.signal.index(),
            adder.error_probability
        );
    }
    println!(
        "  composed P(any adder errs)  = {:.5} (independence heuristic)",
        est.any_adder_error
    );
    let (mc_error, mc_med) = simulate(&dp, sum, &input_probs, 100_000, 7)?;
    println!("  Monte-Carlo output error    = {mc_error:.5} (mean |ED| = {mc_med:.3})");
    Ok(())
}
