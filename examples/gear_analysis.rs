//! GeAr low-latency adder analysis (paper Sec. 2.2): sweep the (R, P)
//! configuration space of a 16-bit GeAr and quantify the accuracy/latency
//! trade-off with the exact linear-time analysis.
//!
//! Run with: `cargo run --release --example gear_analysis`

use sealpaa::gear::{error_probability, GearAdder, GearConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 16;
    println!("GeAr configurations for N = {n} (uniform random operands):\n");
    println!("config              blocks  L (latency ∝)  P(error)");
    println!("----------------------------------------------------");
    let pa = vec![0.5f64; n];
    for r in [1usize, 2, 4, 8] {
        for p in [0usize, 1, 2, 4, 8] {
            let Ok(config) = GearConfig::new(n, r, p) else {
                continue; // (N - R - P) % R != 0: does not tile
            };
            let err = error_probability(&config, &pa, &pa, 0.0)?;
            println!(
                "{:<19} {:>6}  {:>13}  {:.6}",
                config.to_string(),
                config.block_count(),
                config.sub_adder_length(),
                err
            );
        }
    }

    // The carry-chain intuition, concretely: GeAr(16,2,2) fails exactly when
    // a carry must cross more than P=2 propagate positions.
    let adder = GearAdder::new(GearConfig::new(16, 2, 2)?);
    println!("\nconcrete failure of {}:", adder.config());
    let (a, b) = (0x00FF, 0x0001); // long carry chain from bit 0
    let (sum, carry) = adder.add(a, b, false);
    println!(
        "  {a:#06x} + {b:#06x} = {:#06x} (exact {:#06x}, carry {carry})",
        sum,
        a + b
    );
    println!(
        "  matches accurate: {}",
        adder.matches_accurate(a, b, false)
    );
    Ok(())
}
