//! Heterogeneous block-based adders: exact error-distance distributions and
//! budgeted design-space exploration.
//!
//! The GeAr family fixes one sub-adder width R and one prediction depth P
//! for the whole datapath. The block family drops that restriction: every
//! block chooses its own width, its own carry-prediction depth, and its own
//! full-adder cell. This example
//!
//! 1. analyzes one hand-written heterogeneous configuration — exact
//!    ED-PMF, CDF and moments under uniform inputs,
//! 2. confirms the analytical distribution against exhaustive enumeration
//!    of *all* inputs, exactly, in rational arithmetic, and
//! 3. lets the prefix-sharing DSE find the provably-best mean-ED
//!    configuration under a power budget.
//!
//! Run with: `cargo run --release --example heterogeneous_blocks`

use sealpaa::blocks::{error_distance_distribution, exhaustive_distance_histogram, BlockConfig};
use sealpaa::explore::{
    accurate_cell_with_proxy_costs, best_block_design, block_pareto_front, enumerate_block_designs,
    BlockBudget, BlockObjective, BlockSearchSpace,
};
use sealpaa::{InputProfile, Rational, StandardCell};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // 1. One heterogeneous configuration, analyzed exactly.
    //
    // An accurate low block (LSBs carry the numerical weight of rounding),
    // two approximate predicted blocks, and a cheap truncating top block —
    // the kind of mix neither GeAr nor a homogeneous chain can express.
    // ------------------------------------------------------------------
    let config: BlockConfig = "4:0:accurate,3:2:lpaa1,3:2:lpaa2,2:3:accurate".parse()?;
    let width = config.width();
    println!("configuration : {config}");
    println!(
        "width         : {width} bits in {} blocks",
        config.block_count()
    );
    println!("power proxy   : {:.0} nW", config.total_power_nw());
    println!(
        "delay proxy   : {} (longest window)",
        config.max_window_len()
    );

    let uniform = InputProfile::<f64>::uniform(width);
    let dist = error_distance_distribution(&config, &uniform)?;
    println!("\nunder uniform random operands:");
    println!("  P(D != 0)   : {:.6}", dist.error_rate());
    println!("  E[D]        : {:+.4}", dist.mean());
    println!("  E[|D|]      : {:.4}", dist.mean_absolute());
    println!("  E[D^2]      : {:.4}", dist.mean_squared());
    println!("  max |D|     : {}", dist.max_absolute());

    let cdf = dist.cdf();
    println!(
        "\n  error-distance CDF ({} support points); quantiles:",
        cdf.len()
    );
    for q in [0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
        let (d, p) = cdf.iter().find(|(_, p)| *p >= q).expect("CDF reaches 1");
        println!("    P(D <= {d:>4}) = {p:.6}  (first d with CDF >= {q})");
    }

    // ------------------------------------------------------------------
    // 2. Exhaustive confirmation — exact, in Rational, over all inputs.
    // ------------------------------------------------------------------
    let analytical =
        error_distance_distribution(&config, &InputProfile::<Rational>::uniform(width))?;
    let exhaustive = exhaustive_distance_histogram(&config)?;
    let cases = exhaustive.cases();
    assert_eq!(analytical, exhaustive.to_distribution::<Rational>());
    println!("\nexhaustive sweep of all {cases} input combinations:");
    println!("  CONFIRMED — identical PMF, exactly, in rational arithmetic");

    // ------------------------------------------------------------------
    // 3. Budgeted DSE over the heterogeneous family.
    //
    // Every tiling of 12 bits from {2,3,4}-wide blocks, prediction depths
    // {0,1,2}, cells {accurate, LPAA 1, LPAA 2} — under a power budget no
    // fully-accurate deep-window design can meet.
    // ------------------------------------------------------------------
    let space = BlockSearchSpace::new(
        &[2, 3, 4],
        &[0, 1, 2],
        // The plain accurate cell carries no power/area characteristics, so
        // the DSE uses the proxy-costed variant (see `sealpaa-explore`).
        &[
            accurate_cell_with_proxy_costs(),
            StandardCell::Lpaa1.cell(),
            StandardCell::Lpaa2.cell(),
        ],
    )?;
    let budget = BlockBudget {
        max_power_nw: Some(6000.0),
        max_area_ge: None,
        max_window_len: Some(5),
    };
    println!(
        "\nDSE: {} candidate designs at width {width}, budget {} nW / window <= {}",
        space.design_count(width),
        budget.max_power_nw.unwrap(),
        budget.max_window_len.unwrap()
    );

    let best = best_block_design(&space, &uniform, &budget, BlockObjective::MeanAbsolute, 4)?
        .expect("the budget admits at least one design");
    println!("best mean-|D| design:\n  {best}");

    let designs = enumerate_block_designs(&space, &uniform, &budget, 4)?;
    let front = block_pareto_front(designs);
    println!("\nPareto front (E[|D|] vs power), {} designs:", front.len());
    for design in front.iter().take(8) {
        println!("  {design}");
    }
    if front.len() > 8 {
        println!("  ... and {} more", front.len() - 8);
    }
    Ok(())
}
