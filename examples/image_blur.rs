//! Gaussian blur on a synthetic image with approximate adders — the paper's
//! image-processing motivation, end to end.
//!
//! PSNR is driven by error *magnitude*, not just error probability — and in
//! an accumulator, by the error's *bias*: a cell that errs high feeds a
//! bigger accumulator back into its own inputs (more carries → more error
//! rows), while a cell that errs low self-damps. This example measures
//! operand-bit statistics from an exact run, computes each cell's
//! per-addition bias and RMS analytically (this library's error-magnitude
//! extension), and compares them with the PSNR the cell actually achieves.
//!
//! Run with: `cargo run --release --example image_blur`

use sealpaa::analysis::error_magnitude;
use sealpaa::datapath::{Conv2d, Image};
use sealpaa::{analyze, AdderChain, InputProfile, StandardCell};

const ACC_BITS: usize = 12; // 8-bit pixels, kernel gain 16

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let image = Image::synthetic(64, 64, 8);
    let kernel = vec![vec![1u64, 2, 1], vec![2, 4, 2], vec![1, 2, 1]];

    // Measure the bit statistics the accumulator's two operands actually
    // see, by replaying the kernel with exact additions.
    let exact_chain = AdderChain::uniform(StandardCell::Accurate.cell(), ACC_BITS);
    let mut ones_a = [0u64; ACC_BITS];
    let mut ones_b = [0u64; ACC_BITS];
    let mut adds = 0u64;
    for y in 0..image.height() - 2 {
        for x in 0..image.width() - 2 {
            let mut acc = 0u64;
            for (ky, row) in kernel.iter().enumerate() {
                for (kx, &coeff) in row.iter().enumerate() {
                    let p = image.pixel(x + kx, y + ky);
                    for bit in 0..5 {
                        if (coeff >> bit) & 1 == 1 {
                            let term = p << bit;
                            for i in 0..ACC_BITS {
                                ones_a[i] += (acc >> i) & 1;
                                ones_b[i] += (term >> i) & 1;
                            }
                            adds += 1;
                            acc = exact_chain.accurate_sum(acc, term, false).sum_bits();
                        }
                    }
                }
            }
        }
    }
    let pa: Vec<f64> = ones_a.iter().map(|&c| c as f64 / adds as f64).collect();
    let pb: Vec<f64> = ones_b.iter().map(|&c| c as f64 / adds as f64).collect();
    let profile = InputProfile::new(pa, pb, 0.0)?;

    let exact = Conv2d::new(StandardCell::Accurate.cell(), &kernel, 8)?.apply(&image);
    println!("3x3 Gaussian blur, 64x64 synthetic image, 8-bit pixels");
    println!("(per-add predictions use operand statistics measured from the exact run)\n");
    println!("cell     per-add P(err)  bias E[D]  RMS(D)   blur PSNR (dB)");
    println!("---------------------------------------------------------------");
    for cell in [
        StandardCell::Accurate,
        StandardCell::Lpaa1,
        StandardCell::Lpaa6,
        StandardCell::Lpaa7,
        StandardCell::Lpaa4,
        StandardCell::Lpaa2,
    ] {
        let chain = AdderChain::uniform(cell.cell(), ACC_BITS);
        let p_err = analyze(&chain, &profile)?.error_probability();
        let moments = error_magnitude(&chain, &profile)?;
        let rms = moments.rms_error_distance();
        let bias = moments.mean_error_distance;
        let blurred = Conv2d::new(cell.cell(), &kernel, 8)?.apply(&image);
        let psnr_str = match blurred.psnr_against(&exact) {
            None => "identical".to_owned(),
            Some(psnr) => format!("{psnr:.1}"),
        };
        println!(
            "{:<8} {:>14.4}  {:>+9.1}  {:>7.1}  {:>14}",
            cell.name(),
            p_err,
            bias,
            rms,
            psnr_str
        );
    }
    println!(
        "\nThe sign of the analytical bias separates the field: cells that err\n\
         low (negative E[D] — LPAA 1, LPAA 6) self-damp inside an accumulator\n\
         (a smaller accumulator sees fewer carries, hence fewer error rows)\n\
         and keep the best PSNR, while cells that err high (positive E[D] —\n\
         LPAA 7, LPAA 4, LPAA 2) self-amplify and degrade hardest. The\n\
         per-addition moments flag this before convolving a single image."
    );
    Ok(())
}
