//! # SEALPAA — Statistical Error Analysis for Low Power Approximate Adders
//!
//! A from-scratch Rust reproduction of Ayub, Hasan & Shafique,
//! *"Statistical Error Analysis for Low Power Approximate Adders"*
//! (DAC 2017): a recursive, matrix-based analytical method that computes the
//! output error probability of multi-bit low-power approximate adders in
//! linear time, plus every substrate the paper validates it against.
//!
//! This umbrella crate re-exports the workspace so applications can depend
//! on one crate:
//!
//! * [`cells`] — truth tables, the LPAA 1–7 cell library, multi-bit adder
//!   chains and input-probability profiles,
//! * [`analysis`] — the paper's proposed method (Algorithm 1), signal
//!   probabilities, operation counting and the exact joint-chain extension,
//! * [`sim`] — exhaustive and Monte-Carlo bit-true simulators,
//! * [`inclexcl`] — the traditional inclusion–exclusion baseline and its
//!   cost model,
//! * [`gear`] — the GeAr low-latency adder and its analyses,
//! * [`blocks`] — the generalized block-based adder family (per-block
//!   widths, prediction depths and cells) with exact analytical
//!   error-distance distributions,
//! * [`explore`] — hybrid-adder design-space exploration,
//! * [`datapath`] — accelerator datapaths (adder trees, multipliers, FIR
//!   filters, 2-D convolution) built from approximate adders,
//! * [`propagate`] — analytical error propagation through those datapaths:
//!   per-node error models composed into output moments, SNR prediction and
//!   model fitting from traces, no simulation in the loop,
//! * [`hdl`] — structural Verilog emission for cells, chains and GeAr,
//! * [`num`] — exact arbitrary-precision rationals for exact-mode analysis,
//! * [`server`] — the analysis-as-a-service daemon (JSON over TCP/stdio)
//!   behind `sealpaa serve`, with its worker pool and result cache,
//! * [`trace`] — workload trace ingestion, streaming bit-statistics
//!   profiling, synthetic generators and trace-replay validation.
//!
//! The most common entry points are re-exported at the crate root.
//!
//! # Quickstart
//!
//! ```
//! use sealpaa::{analyze, AdderChain, InputProfile, StandardCell};
//!
//! // How often does a 16-bit ripple adder built from LPAA 2 cells err when
//! // its input bits are 1 with probability 0.1?
//! let chain = AdderChain::uniform(StandardCell::Lpaa2.cell(), 16);
//! let profile = InputProfile::constant(16, 0.1);
//! let analysis = analyze(&chain, &profile)?;
//! assert!(analysis.error_probability() > 0.99); // LPAA 2 is hopeless here
//! # Ok::<(), sealpaa::AnalyzeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sealpaa_blocks as blocks;
pub use sealpaa_cells as cells;
pub use sealpaa_core as analysis;
pub use sealpaa_datapath as datapath;
pub use sealpaa_explore as explore;
pub use sealpaa_gear as gear;
pub use sealpaa_hdl as hdl;
pub use sealpaa_inclexcl as inclexcl;
pub use sealpaa_num as num;
pub use sealpaa_propagate as propagate;
pub use sealpaa_server as server;
pub use sealpaa_sim as sim;
pub use sealpaa_trace as trace;

pub use sealpaa_cells::{AdderChain, Cell, InputProfile, StandardCell, TruthTable};
pub use sealpaa_core::{
    analyze, error_distribution, error_magnitude, exact_error_analysis, Analysis, AnalyzeError,
    MklMatrices,
};
pub use sealpaa_num::{Prob, Rational};
pub use sealpaa_server::json::Json;
pub use sealpaa_server::server::{IoModel, Server, ServerConfig};
pub use sealpaa_sim::{exhaustive, monte_carlo, MonteCarloConfig};
pub use sealpaa_trace::{fidelity, replay, FidelityReport, ReplayReport, SynthKind, TraceStats};
