//! Differential validation of the analytical error-distance engine.
//!
//! Every test here compares [`error_distance_distribution`] in **exact
//! `Rational` arithmetic** against a ground truth computed a completely
//! different way — the bitsliced exhaustive sweep over all inputs, or
//! `sealpaa-gear`'s union-of-misses DP — and demands `assert_eq!`-level
//! agreement: identical support, identical probabilities, no tolerance.

use sealpaa_blocks::{error_distance_distribution, exhaustive_distance_histogram, BlockConfig};
use sealpaa_cells::{InputProfile, StandardCell};
use sealpaa_gear::GearConfig;
use sealpaa_num::Rational;

/// Analytical PMF under uniform inputs vs the exhaustive histogram,
/// exactly, in `Rational`.
fn assert_matches_exhaustive(config: &BlockConfig, context: &str) {
    let width = config.width();
    let analytical =
        error_distance_distribution(&config.clone(), &InputProfile::<Rational>::uniform(width))
            .expect("analytical in range");
    let exhaustive = exhaustive_distance_histogram(config)
        .expect("exhaustive in range")
        .to_distribution::<Rational>();
    assert_eq!(analytical, exhaustive, "{context}");
}

#[test]
fn every_cell_matches_exhaustive_exactly_in_rational() {
    // Each library cell as the *only* ripple cell of a predicted block
    // partition: any deviation between the carry-state DP and reality for
    // that cell's truth table shows up as a PMF mismatch.
    for cell in StandardCell::ALL {
        let config = BlockConfig::homogeneous(10, 4, 2, cell.cell()).expect("valid");
        assert_matches_exhaustive(&config, cell.name());
    }
}

#[test]
fn heterogeneous_configs_match_exhaustive_exactly_in_rational() {
    // Mixed cells, mixed widths, mixed depths — including depth 0 (pure
    // truncation of the carry), depth equal to everything below (full
    // re-computation), and windows that span several earlier blocks.
    for spec in [
        "4:0:accurate,3:2:lpaa1,3:3:lpaa2",
        "3:0:lpaa3,3:2:accurate,3:3:lpaa4,2:1:lpaa5",
        "4:0:accurate,2:0:lpaa6,2:2:lpaa7,2:4:accurate",
        "2:0:lpaa1,2:2:lpaa2,2:2:lpaa3,2:2:lpaa4,2:2:lpaa5",
        "5:0:accurate,5:5:lpaa1",
    ] {
        let config: BlockConfig = spec.parse().expect("parses");
        assert_matches_exhaustive(&config, spec);
    }
}

#[test]
fn width_one_blocks_match_exhaustive_exactly_in_rational() {
    // Degenerate geometry: every result segment is a single bit, so every
    // window is almost all prediction. The stepper's open/close bookkeeping
    // has one window per position here.
    for spec in [
        "1:0:accurate,1:1:accurate,1:1:accurate,1:1:accurate,1:1:accurate,1:1:accurate",
        "1:0:lpaa1,1:1:lpaa2,1:2:lpaa3,1:3:lpaa4,1:2:lpaa5,1:1:lpaa6,1:1:lpaa7",
        "4:0:accurate,1:0:lpaa2,1:2:accurate,4:1:lpaa1",
    ] {
        let config: BlockConfig = spec.parse().expect("parses");
        assert_matches_exhaustive(&config, spec);
    }
}

#[test]
fn widest_exhaustive_configs_match_exactly_in_rational() {
    // The acceptance bar: exact agreement at width 12 — the widest the
    // differential suite sweeps — with every cell family represented
    // somewhere across the two configurations.
    for spec in [
        "4:0:accurate,2:1:lpaa1,2:2:lpaa2,2:1:lpaa3,2:2:lpaa4",
        "4:0:lpaa5,3:2:lpaa6,3:1:lpaa7,2:3:accurate",
    ] {
        let config: BlockConfig = spec.parse().expect("parses");
        assert_matches_exhaustive(&config, spec);
    }
}

/// A deliberately lopsided rational profile: no bit probability equals any
/// other, nothing is dyadic, and the carry-in is biased too.
fn skewed_profile(width: usize) -> (Vec<Rational>, Vec<Rational>, Rational) {
    let pa: Vec<Rational> = (0..width)
        .map(|i| Rational::from_ratio(i as i64 + 1, 2 * width as i64 + 3))
        .collect();
    let pb: Vec<Rational> = (0..width)
        .map(|i| Rational::from_ratio(2 * i as i64 + 1, 3 * width as i64 + 1))
        .collect();
    (pa, pb, Rational::from_ratio(2, 7))
}

#[test]
fn gear_as_blocks_error_probability_matches_gear_analysis_in_rational() {
    // The GeAr family is one point of the block family: re-express each
    // GeAr geometry via `from_gear` and check that the ED distribution's
    // error-probability *marginal* reproduces `sealpaa-gear`'s dedicated
    // union-of-misses DP — exactly, in `Rational`, under a lopsided
    // non-uniform profile. (With accurate ripple cells every miss is a
    // strictly negative deficit, so P(D != 0) is exactly P(any miss).)
    let accurate = StandardCell::Accurate.cell();
    for (n, r, p) in [
        (8, 2, 2),
        (8, 1, 1),
        (12, 4, 4),
        (12, 2, 4),
        (16, 4, 4),
        (20, 5, 10),
    ] {
        let gear = GearConfig::new(n, r, p).expect("valid GeAr geometry");
        let config = BlockConfig::from_gear(&gear, accurate.clone());
        assert_eq!(config.width(), n, "from_gear preserves width");

        let (pa, pb, p_cin) = skewed_profile(n);
        let profile =
            InputProfile::new(pa.clone(), pb.clone(), p_cin.clone()).expect("valid profile");
        let distribution =
            error_distance_distribution(&config, &profile).expect("analytical in range");
        let gear_p = sealpaa_gear::error_probability::<Rational>(&gear, &pa, &pb, p_cin)
            .expect("widths match");
        assert_eq!(
            distribution.error_rate(),
            gear_p,
            "GeAr(N={n}, R={r}, P={p})"
        );
    }
}

#[test]
fn gear_as_blocks_full_distribution_matches_exhaustive() {
    // Beyond the marginal: the whole ED-PMF of a GeAr geometry agrees with
    // brute force once routed through the block engine.
    for (n, r, p) in [(8, 2, 2), (10, 2, 4), (11, 3, 2)] {
        let gear = GearConfig::new(n, r, p).expect("valid GeAr geometry");
        let config = BlockConfig::from_gear(&gear, StandardCell::Accurate.cell());
        assert_matches_exhaustive(&config, &format!("GeAr(N={n}, R={r}, P={p})"));
    }
}

#[test]
fn distribution_moments_agree_with_exhaustive_counts() {
    // Spot-check that the derived statistics (not just the raw PMF) line
    // up with counting: mean, mean |D|, mean D², and the error rate of a
    // width-10 heterogeneous configuration, all as exact rationals.
    let config: BlockConfig = "4:0:accurate,3:2:lpaa1,3:2:lpaa2".parse().expect("parses");
    let analytical = error_distance_distribution(&config, &InputProfile::<Rational>::uniform(10))
        .expect("analytical in range");
    let report = exhaustive_distance_histogram(&config).expect("exhaustive in range");
    let total = report.cases();

    let mut errors = 0u64;
    let mut sum = 0i128;
    let mut sum_abs = 0i128;
    let mut sum_sq = 0i128;
    for (&d, &count) in &report.histogram {
        if d != 0 {
            errors += count;
        }
        sum += d * count as i128;
        sum_abs += d.abs() * count as i128;
        sum_sq += d * d * count as i128;
    }
    let ratio =
        |num: i128| Rational::from_ratio(i64::try_from(num).expect("fits i64"), total as i64);
    assert_eq!(analytical.error_rate(), ratio(errors as i128));
    assert_eq!(analytical.mean(), ratio(sum));
    assert_eq!(analytical.mean_absolute(), ratio(sum_abs));
    assert_eq!(analytical.mean_squared(), ratio(sum_sq));
}
