//! Bit-true functional model of a block-based adder.

use sealpaa_cells::FaInput;

use crate::config::{BlockConfig, BlockError};

/// The outcome of one block-based addition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockAdditionResult {
    sum: u64,
    carry_out: bool,
    width: usize,
}

impl BlockAdditionResult {
    /// The sum bits (without the carry).
    pub fn sum_bits(&self) -> u64 {
        self.sum
    }

    /// The final carry-out (the top block's window carry).
    pub fn carry_out(&self) -> bool {
        self.carry_out
    }

    /// The full output value: sum bits plus the carry at bit `width` —
    /// the same convention as `sealpaa_cells::AdditionResult::value`.
    pub fn value(&self) -> u64 {
        self.sum | (self.carry_out as u64) << self.width
    }

    /// Signed error distance against an accurate full value.
    pub fn error_distance(&self, accurate_value: u64) -> i128 {
        self.value() as i128 - accurate_value as i128
    }
}

/// A block-based adder: evaluates a [`BlockConfig`] bit-true, window by
/// window, for simulation-based validation of the analytical engine.
///
/// # Examples
///
/// ```
/// use sealpaa_blocks::{BlockAdder, BlockConfig};
///
/// let config: BlockConfig = "4:0:accurate,4:2:accurate".parse()?;
/// let adder = BlockAdder::new(config);
/// // 0b0000_1111 + 0b0000_0001: the carry out of bit 3 is predicted from
/// // bits 2..4, both 0 in each operand, so block 1 misses it.
/// let r = adder.add(0b0000_1111, 0b0000_0001, false);
/// assert_eq!(r.value(), 0b0000_0000);
/// assert_eq!(adder.accurate_sum(0b0000_1111, 0b0000_0001, false), 16);
/// assert_eq!(r.error_distance(16), -16);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct BlockAdder {
    config: BlockConfig,
}

impl BlockAdder {
    /// Wraps a configuration.
    pub fn new(config: BlockConfig) -> Self {
        BlockAdder { config }
    }

    /// The configuration.
    pub fn config(&self) -> &BlockConfig {
        &self.config
    }

    /// Operand width.
    pub fn width(&self) -> usize {
        self.config.width()
    }

    /// Evaluates one addition. `cin` feeds block 0's window; every other
    /// window starts from carry 0.
    ///
    /// # Panics
    ///
    /// Panics if an operand does not fit the width.
    pub fn add(&self, a: u64, b: u64, cin: bool) -> BlockAdditionResult {
        let width = self.width();
        assert!(width == 64 || a < 1u64 << width, "operand a out of range");
        assert!(width == 64 || b < 1u64 << width, "operand b out of range");
        let bit = |v: u64, t: usize| (v >> t) & 1 == 1;
        let mut sum = 0u64;
        let mut carry_out = false;
        for (j, block) in self.config.blocks().iter().enumerate() {
            let window = self.config.window(j);
            let result_start = window.end - block.width;
            let table = block.cell.truth_table();
            let mut carry = j == 0 && cin;
            for t in window {
                let out = table.eval(FaInput::new(bit(a, t), bit(b, t), carry));
                if t >= result_start && out.sum {
                    sum |= 1 << t;
                }
                carry = out.carry_out;
            }
            carry_out = carry;
        }
        BlockAdditionResult {
            sum,
            carry_out,
            width,
        }
    }

    /// The accurate full value `a + b + cin` (sum bits plus carry at bit
    /// `width`).
    pub fn accurate_sum(&self, a: u64, b: u64, cin: bool) -> u64 {
        a + b + cin as u64
    }

    /// Exhaustively counts erroneous outputs over all `2^{2N}` operand
    /// pairs at a fixed carry-in — the slow oracle for small widths.
    ///
    /// # Errors
    ///
    /// Returns [`BlockError::ExhaustiveWidthTooLarge`] beyond 12 bits
    /// (`2^{24}` evaluations).
    pub fn exhaustive_error_count(&self, cin: bool) -> Result<u64, BlockError> {
        let width = self.width();
        if width > 12 {
            return Err(BlockError::ExhaustiveWidthTooLarge { width });
        }
        let mut errors = 0;
        for a in 0..1u64 << width {
            for b in 0..1u64 << width {
                if self.add(a, b, cin).value() != self.accurate_sum(a, b, cin) {
                    errors += 1;
                }
            }
        }
        Ok(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BlockSpec;
    use sealpaa_cells::{AdderChain, StandardCell};
    use sealpaa_gear::{GearAdder, GearConfig};

    #[test]
    fn single_accurate_block_is_an_exact_adder() {
        let config = BlockConfig::homogeneous(6, 6, 0, StandardCell::Accurate.cell()).unwrap();
        let adder = BlockAdder::new(config);
        for a in 0..64 {
            for b in 0..64 {
                for cin in [false, true] {
                    assert_eq!(adder.add(a, b, cin).value(), adder.accurate_sum(a, b, cin));
                }
            }
        }
    }

    #[test]
    fn gear_expressed_as_blocks_is_bit_identical() {
        for (n, r, p) in [(8, 2, 2), (10, 4, 2), (9, 1, 2), (12, 3, 0)] {
            let gear_config = GearConfig::new(n, r, p).expect("valid");
            let gear = GearAdder::new(gear_config);
            let blocks = BlockAdder::new(BlockConfig::from_gear(
                &gear_config,
                StandardCell::Accurate.cell(),
            ));
            for a in (0..1u64 << n).step_by(7) {
                for b in (0..1u64 << n).step_by(5) {
                    for cin in [false, true] {
                        let (gear_sum, gear_carry) = gear.add(a, b, cin);
                        assert_eq!(
                            blocks.add(a, b, cin).value(),
                            gear_sum | (gear_carry as u64) << n,
                            "GeAr({n},{r},{p}) a={a} b={b} cin={cin}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn single_block_matches_the_cell_chain() {
        // One block over the full width with an approximate cell is exactly
        // the ripple chain of that cell.
        for cell in [StandardCell::Lpaa1, StandardCell::Lpaa4] {
            let chain = AdderChain::uniform(cell.cell(), 5);
            let adder = BlockAdder::new(
                BlockConfig::new(vec![BlockSpec::new(5, 0, cell.cell())]).expect("valid"),
            );
            for a in 0..32 {
                for b in 0..32 {
                    for cin in [false, true] {
                        assert_eq!(adder.add(a, b, cin).value(), chain.add(a, b, cin).value());
                    }
                }
            }
        }
    }

    #[test]
    fn prediction_windows_only_predict() {
        // 4:0 + 4:2 accurate blocks: result bits 4..8 must match the exact
        // sum whenever the carry into bit 4 is correctly predicted, and be
        // short by 16 exactly when a real carry is missed.
        let config: BlockConfig = "4:0:accurate,4:2:accurate".parse().expect("parses");
        let adder = BlockAdder::new(config);
        for a in 0..256 {
            for b in 0..256 {
                let exact = adder.accurate_sum(a, b, false);
                let d = adder.add(a, b, false).error_distance(exact);
                assert!(d == 0 || d == -16, "a={a} b={b} d={d}");
            }
        }
    }

    #[test]
    fn exhaustive_error_count_respects_width_bound() {
        let config = BlockConfig::homogeneous(13, 13, 0, StandardCell::Accurate.cell()).unwrap();
        assert!(matches!(
            BlockAdder::new(config).exhaustive_error_count(false),
            Err(BlockError::ExhaustiveWidthTooLarge { width: 13 })
        ));
        // Depth 1 cannot see a carry generated at bit 0, so errors exist.
        let config: BlockConfig = "2:0:accurate,2:1:accurate".parse().expect("parses");
        let errors = BlockAdder::new(config)
            .exhaustive_error_count(false)
            .unwrap();
        assert!(errors > 0);
        // Depth 2 covers the whole lower block; with carry-in 0 the
        // prediction is perfect.
        let config: BlockConfig = "2:0:accurate,2:2:accurate".parse().expect("parses");
        let errors = BlockAdder::new(config)
            .exhaustive_error_count(false)
            .unwrap();
        assert_eq!(errors, 0);
    }
}
