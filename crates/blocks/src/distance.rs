//! The analytical error-distance engine: the exact PMF of
//! `D = approx − exact` for a block-based adder, by a single linear pass
//! over bit positions.
//!
//! # The recursion
//!
//! Process bit positions `t = 0..N` in order. The joint state is
//!
//! * the *exact* ripple carry into position `t` (1 bit),
//! * the internal carry of every block window that is **open** at `t`
//!   (window `[start_j − depth_j, start_j + width_j)` contains `t`), and
//! * the partial signed error distance accumulated from result bits below
//!   `t`, kept as a sparse map `d → mass`.
//!
//! Windows *open* when `t` reaches their low edge (carry initialized to 0,
//! or to the external carry-in for block 0) and *close* when `t` passes
//! their high edge, at which point their carry bit is marginalized out —
//! only the top block's carry-out survives to the end, where its
//! discrepancy against the exact carry-out contributes `±2^N`. At each
//! position the four `(a_t, b_t)` cases are weighted by the input profile;
//! the block owning result bit `t` adds `(s_approx − s_exact)·2^t` to the
//! partial distance. Prediction windows re-add operand bits that some lower
//! block also consumed — the joint state handles the correlation exactly,
//! which is why the result matches exhaustive enumeration bit for bit.
//!
//! With accurate cells the support stays tiny (each block contributes a
//! deficit of `−2^{start_j}` or nothing), so the engine runs to the full
//! [`MAX_BLOCKS_WIDTH`](crate::MAX_BLOCKS_WIDTH); with approximate cells
//! the support can grow like the chain distribution's, so it is bounded by
//! [`MAX_DISTANCE_SUPPORT`] and overflow is an error, not an OOM.
//!
//! The engine is exposed two ways: [`error_distance_distribution`] for one
//! configuration, and [`BlockDistanceStepper`] — an incremental push/
//! truncate interface that lets design-space exploration share the DP
//! prefix across every configuration with the same leading blocks (the
//! PrefixStepper idea from `sealpaa-core`, lifted to block granularity).

use std::collections::BTreeMap;

use sealpaa_cells::{FaInput, InputProfile, TruthTable};
use sealpaa_core::ErrorDistanceDistribution;
use sealpaa_num::Prob;

use crate::config::{BlockConfig, BlockError};

/// Most support points (summed over joint-carry states) the engine tracks
/// before giving up with [`BlockError::SupportExceeded`].
pub const MAX_DISTANCE_SUPPORT: usize = 1 << 20;

/// One appended block as the stepper sees it.
#[derive(Debug, Clone)]
struct SteppedBlock {
    /// First result-bit position.
    start: usize,
    /// One past the last result-bit position.
    end: usize,
    /// Truth table of the block's cell.
    table: TruthTable,
}

/// A saved stepper position for [`BlockDistanceStepper::truncate`].
#[derive(Debug, Clone)]
struct Snapshot<T> {
    frontier: usize,
    covered: usize,
    open: Vec<usize>,
    pending: Vec<(usize, usize)>,
    states: BTreeMap<u32, BTreeMap<i128, T>>,
}

/// Incremental error-distance analysis over a growing block prefix.
///
/// `push` appends a block and advances the underlying DP as far as any
/// *future* block could possibly reach back (`covered − max_depth`);
/// `truncate` rewinds to a shorter prefix in O(1) state swaps. A
/// design-space search that explores configurations in DFS order therefore
/// pays for each shared prefix once. [`distribution`](Self::distribution)
/// finishes a complete configuration without disturbing the prefix state.
///
/// # Examples
///
/// ```
/// use sealpaa_blocks::{error_distance_distribution, BlockConfig, BlockDistanceStepper};
/// use sealpaa_cells::{InputProfile, StandardCell};
///
/// let profile = InputProfile::<f64>::uniform(6);
/// let acc = StandardCell::Accurate.cell();
/// let mut stepper = BlockDistanceStepper::new(profile.clone(), 2)?;
/// stepper.push(4, 0, &acc)?;
/// stepper.push(2, 2, &acc)?;
/// let dist = stepper.distribution()?;
/// let config: BlockConfig = "4:0:accurate,2:2:accurate".parse()?;
/// assert_eq!(dist, error_distance_distribution(&config, &profile)?);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct BlockDistanceStepper<T> {
    profile: InputProfile<T>,
    accurate: TruthTable,
    /// Deepest prediction any pushed block may use; bounds how far the
    /// frontier may run ahead of the covered width.
    max_depth: usize,
    /// Positions `[0, frontier)` are fully processed.
    frontier: usize,
    /// Result bits covered by pushed blocks.
    covered: usize,
    blocks: Vec<SteppedBlock>,
    /// Block indices whose windows are open at `frontier`, in opening
    /// order (slot `i` owns state bit `1 + i`).
    open: Vec<usize>,
    /// `(position, block index)` open events not yet reached, ascending.
    pending: Vec<(usize, usize)>,
    /// Joint-carry state (bit 0: exact carry; bit `1+i`: slot `i`'s
    /// carry) → partial error distance → probability mass.
    states: BTreeMap<u32, BTreeMap<i128, T>>,
    snapshots: Vec<Snapshot<T>>,
}

impl<T: Prob> BlockDistanceStepper<T> {
    /// Starts an empty stepper targeting `profile.width()` bits, admitting
    /// prediction depths up to `max_depth`.
    ///
    /// # Errors
    ///
    /// Returns [`BlockError::WidthTooLarge`] if the profile is wider than
    /// [`MAX_BLOCKS_WIDTH`](crate::MAX_BLOCKS_WIDTH).
    pub fn new(profile: InputProfile<T>, max_depth: usize) -> Result<Self, BlockError> {
        if profile.width() > crate::MAX_BLOCKS_WIDTH {
            return Err(BlockError::WidthTooLarge {
                width: profile.width(),
            });
        }
        let mut states: BTreeMap<u32, BTreeMap<i128, T>> = BTreeMap::new();
        let p_cin = profile.p_cin().clone();
        if !p_cin.complement().is_zero() {
            states.insert(0, BTreeMap::from([(0, p_cin.complement())]));
        }
        if !p_cin.is_zero() {
            states.insert(1, BTreeMap::from([(0, p_cin)]));
        }
        Ok(BlockDistanceStepper {
            profile,
            accurate: TruthTable::accurate(),
            max_depth,
            frontier: 0,
            covered: 0,
            blocks: Vec::new(),
            open: Vec::new(),
            pending: Vec::new(),
            states,
            snapshots: Vec::new(),
        })
    }

    /// Blocks pushed so far.
    pub fn depth(&self) -> usize {
        self.blocks.len()
    }

    /// Result bits covered so far.
    pub fn covered(&self) -> usize {
        self.covered
    }

    /// Target width.
    pub fn width(&self) -> usize {
        self.profile.width()
    }

    /// Appends a block of `width` result bits predicting its carry from
    /// `prediction` bits, rippling `cell`, and advances the DP to
    /// `covered − max_depth` (everything no future block can reach).
    ///
    /// # Errors
    ///
    /// Rejects zero widths, widths past the target, depths past the
    /// covered prefix or the stepper's `max_depth`, and support overflow.
    pub fn push(
        &mut self,
        width: usize,
        prediction: usize,
        cell: &sealpaa_cells::Cell,
    ) -> Result<(), BlockError> {
        let index = self.blocks.len();
        if width == 0 {
            return Err(BlockError::ZeroWidthBlock { index });
        }
        if self.covered + width > self.width() {
            return Err(BlockError::WidthTooLarge {
                width: self.covered + width,
            });
        }
        if prediction > self.covered {
            return Err(BlockError::DepthOutOfRange {
                index,
                depth: prediction,
                available: self.covered,
            });
        }
        if prediction > self.max_depth {
            return Err(BlockError::DepthExceedsStepper {
                depth: prediction,
                max_depth: self.max_depth,
            });
        }
        self.snapshots.push(Snapshot {
            frontier: self.frontier,
            covered: self.covered,
            open: self.open.clone(),
            pending: self.pending.clone(),
            states: self.states.clone(),
        });
        let start = self.covered;
        self.blocks.push(SteppedBlock {
            start,
            end: start + width,
            table: *cell.truth_table(),
        });
        let open_at = start - prediction;
        debug_assert!(open_at >= self.frontier, "window opens behind the frontier");
        let slot = self.pending.partition_point(|&(pos, _)| pos <= open_at);
        self.pending.insert(slot, (open_at, index));
        self.covered += width;
        let target = self.covered.saturating_sub(self.max_depth);
        if target > self.frontier {
            self.advance_to(target)?;
        }
        Ok(())
    }

    /// Rewinds to the state after `len` pushes.
    ///
    /// # Panics
    ///
    /// Panics if `len > self.depth()`.
    pub fn truncate(&mut self, len: usize) {
        assert!(len <= self.blocks.len(), "cannot truncate forward");
        while self.blocks.len() > len {
            let snapshot = self.snapshots.pop().expect("one snapshot per block");
            self.blocks.pop();
            self.frontier = snapshot.frontier;
            self.covered = snapshot.covered;
            self.open = snapshot.open;
            self.pending = snapshot.pending;
            self.states = snapshot.states;
        }
    }

    /// Finishes the analysis for the current (complete) prefix without
    /// consuming the stepper: processes the remaining positions on a copy
    /// of the state and folds the final carry-out discrepancy.
    ///
    /// # Errors
    ///
    /// Returns [`BlockError::Incomplete`] unless the pushed blocks tile the
    /// target width exactly, and [`BlockError::SupportExceeded`] on support
    /// overflow.
    pub fn distribution(&self) -> Result<ErrorDistanceDistribution<T>, BlockError> {
        let width = self.width();
        if self.covered != width {
            return Err(BlockError::Incomplete {
                covered: self.covered,
                width,
            });
        }
        // Clone only the live cursor — NOT `snapshots`, which holds one
        // full state copy per pushed block and is never consulted by the
        // tail advance (a DSE calls this once per visited leaf).
        let mut tail = BlockDistanceStepper {
            profile: self.profile.clone(),
            accurate: self.accurate,
            max_depth: self.max_depth,
            frontier: self.frontier,
            covered: self.covered,
            blocks: self.blocks.clone(),
            open: self.open.clone(),
            pending: self.pending.clone(),
            states: self.states.clone(),
            snapshots: Vec::new(),
        };
        tail.advance_to(width)?;
        // Every interior window closed during the advance; exactly the top
        // block's window (end == width) is still open in slot 0.
        debug_assert_eq!(tail.open.len(), 1);
        let carry_value = 1i128 << width;
        let mut pmf: BTreeMap<i128, T> = BTreeMap::new();
        for (key, masses) in &tail.states {
            let exact_carry = key & 1 == 1;
            let top_carry = key & 2 == 2;
            let dc = match (top_carry, exact_carry) {
                (true, false) => carry_value,
                (false, true) => -carry_value,
                _ => 0,
            };
            for (d, mass) in masses {
                if mass.is_zero() {
                    continue;
                }
                let entry = pmf.entry(d + dc).or_insert_with(T::zero);
                *entry = entry.clone() + mass.clone();
            }
        }
        Ok(ErrorDistanceDistribution {
            pmf: pmf.into_iter().filter(|(_, p)| !p.is_zero()).collect(),
        })
    }

    /// Processes positions `[frontier, target)`: opens/closes windows and
    /// runs the joint transition at each position.
    fn advance_to(&mut self, target: usize) -> Result<(), BlockError> {
        debug_assert!(target <= self.covered);
        for t in self.frontier..target {
            // Close interior windows whose high edge is behind us. The
            // final block's window (end == width) is never closed here
            // because `target ≤ covered` keeps `t < end`.
            while let Some(slot) = self.open.iter().position(|&j| self.blocks[j].end == t) {
                self.close_slot(slot);
            }
            // Open windows whose low edge is `t` (ascending block index so
            // slot order is deterministic).
            while let Some(&(pos, j)) = self.pending.first() {
                if pos > t {
                    break;
                }
                debug_assert_eq!(pos, t, "missed an open event");
                self.pending.remove(0);
                self.open_slot(j);
            }
            self.step_position(t)?;
        }
        self.frontier = target;
        Ok(())
    }

    /// Opens block `j`'s window in a fresh slot. Block 0's carry is the
    /// external carry-in — i.e. the exact carry at bit 0 — so its slot bit
    /// mirrors state bit 0; every other window starts from constant 0.
    fn open_slot(&mut self, j: usize) {
        let slot_bit = 1u32 << (1 + self.open.len());
        self.open.push(j);
        if j == 0 {
            let mut next: BTreeMap<u32, BTreeMap<i128, T>> = BTreeMap::new();
            for (key, masses) in std::mem::take(&mut self.states) {
                let new_key = if key & 1 == 1 { key | slot_bit } else { key };
                next.insert(new_key, masses);
            }
            self.states = next;
        }
        // j > 0: the new slot bit is already 0 in every key.
    }

    /// Marginalizes slot `slot` out of the state.
    fn close_slot(&mut self, slot: usize) {
        self.open.remove(slot);
        let bit = 1u32 << (1 + slot);
        let low_mask = bit - 1;
        let mut next: BTreeMap<u32, BTreeMap<i128, T>> = BTreeMap::new();
        for (key, masses) in std::mem::take(&mut self.states) {
            let new_key = (key & low_mask) | ((key >> 1) & !low_mask);
            let target = next.entry(new_key).or_default();
            for (d, mass) in masses {
                let entry = target.entry(d).or_insert_with(T::zero);
                *entry = entry.clone() + mass;
            }
        }
        self.states = next;
    }

    /// The joint transition at position `t`.
    fn step_position(&mut self, t: usize) -> Result<(), BlockError> {
        let owner = self
            .open
            .iter()
            .position(|&j| self.blocks[j].start <= t && t < self.blocks[j].end);
        debug_assert!(owner.is_some(), "result bit {t} has no open owner");
        let pa = self.profile.pa(t).clone();
        let pb = self.profile.pb(t).clone();
        // Dead-position fast path: when both operand bits are certainly 0,
        // every live carry is already 0, and every open table (like the
        // exact adder) outputs (sum 0, carry 0) on the all-zero row, the
        // transition is the identity — the one surviving (a, b) case has
        // weight exactly 1, no carry flips, and the owner's dv is 0. The
        // skip is bit-identical to the general path (masses would be
        // rebuilt in the same order, scaled by exactly 1) and is what makes
        // the analysis cost flat across the dead upper bits of
        // low-magnitude workloads.
        if pa.is_zero()
            && pb.is_zero()
            && self.states.len() == 1
            && self.states.keys().next() == Some(&0)
            && self.open.iter().all(|&j| {
                let out = self.blocks[j].table.eval(FaInput::new(false, false, false));
                !out.sum && !out.carry_out
            })
        {
            return Ok(());
        }
        let weight_of = |bit: bool, p: &T| if bit { p.clone() } else { p.complement() };
        let mut next: BTreeMap<u32, BTreeMap<i128, T>> = BTreeMap::new();
        let mut support = 0usize;
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            let w = weight_of(a, &pa) * weight_of(b, &pb);
            if w.is_zero() {
                continue;
            }
            for (key, masses) in &self.states {
                let exact_out = self.accurate.eval(FaInput::new(a, b, key & 1 == 1));
                let mut new_key = exact_out.carry_out as u32;
                let mut dv = 0i128;
                for (slot, &j) in self.open.iter().enumerate() {
                    let carry = key & (1 << (1 + slot)) != 0;
                    let out = self.blocks[j].table.eval(FaInput::new(a, b, carry));
                    new_key |= (out.carry_out as u32) << (1 + slot);
                    if owner == Some(slot) {
                        dv = (out.sum as i128 - exact_out.sum as i128) << t;
                    }
                }
                let target = next.entry(new_key).or_default();
                for (d, mass) in masses {
                    let entry = target.entry(d + dv).or_insert_with(T::zero);
                    if entry.is_zero() {
                        support += 1;
                        if support > MAX_DISTANCE_SUPPORT {
                            return Err(BlockError::SupportExceeded { support });
                        }
                    }
                    *entry = entry.clone() + w.clone() * mass.clone();
                }
            }
        }
        self.states = next;
        Ok(())
    }
}

/// Computes the exact error-distance PMF of a block configuration under an
/// input profile (per-bit operand probabilities plus the carry-in
/// probability feeding block 0).
///
/// # Errors
///
/// [`BlockError::WidthMismatch`] if the profile does not cover the
/// configuration, [`BlockError::SupportExceeded`] if the PMF support
/// outgrows [`MAX_DISTANCE_SUPPORT`].
///
/// # Examples
///
/// ```
/// use sealpaa_blocks::{error_distance_distribution, BlockConfig};
/// use sealpaa_cells::InputProfile;
/// use sealpaa_num::Rational;
///
/// let config: BlockConfig = "4:0:accurate,4:2:accurate".parse()?;
/// let dist = error_distance_distribution(&config, &InputProfile::<Rational>::uniform(8))?;
/// // An accurate-cell block adder only ever *misses* carries: the support
/// // is {−16, 0} and the exact error rate is the mispredict probability.
/// assert_eq!(dist.pmf.len(), 2);
/// assert_eq!(dist.pmf[0].0, -16);
/// // ... P(carry into bit 2) · P(bits 2 and 3 both propagate) = ½ · ¼.
/// assert_eq!(dist.error_rate(), Rational::from_ratio(1, 8));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn error_distance_distribution<T: Prob>(
    config: &BlockConfig,
    profile: &InputProfile<T>,
) -> Result<ErrorDistanceDistribution<T>, BlockError> {
    if config.width() != profile.width() {
        return Err(BlockError::WidthMismatch {
            expected: config.width(),
            actual: profile.width(),
        });
    }
    let mut stepper = BlockDistanceStepper::new(profile.clone(), config.max_prediction())?;
    for block in config.blocks() {
        stepper.push(block.width, block.prediction, &block.cell)?;
    }
    stepper.distribution()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functional::BlockAdder;
    use sealpaa_cells::StandardCell;
    use sealpaa_num::Rational;

    fn brute_force_pmf(
        config: &BlockConfig,
        profile: &InputProfile<Rational>,
    ) -> BTreeMap<i128, Rational> {
        let adder = BlockAdder::new(config.clone());
        let width = config.width();
        let mut pmf = BTreeMap::new();
        for a in 0..1u64 << width {
            for b in 0..1u64 << width {
                for cin in [false, true] {
                    let w = profile.assignment_probability(a, b, cin);
                    if w.is_zero() {
                        continue;
                    }
                    let d = adder
                        .add(a, b, cin)
                        .error_distance(adder.accurate_sum(a, b, cin));
                    let entry = pmf.entry(d).or_insert_with(Rational::zero);
                    *entry = entry.clone() + w;
                }
            }
        }
        pmf.retain(|_, p| !p.is_zero());
        pmf
    }

    fn assert_matches_brute_force(spec: &str, profile: &InputProfile<Rational>) {
        let config: BlockConfig = spec.parse().expect("parses");
        let dist = error_distance_distribution(&config, profile).expect("in range");
        let got: BTreeMap<i128, Rational> = dist.pmf.iter().cloned().collect();
        assert_eq!(got, brute_force_pmf(&config, profile), "{spec}");
    }

    #[test]
    fn pmf_matches_brute_force_for_accurate_blocks() {
        let profile = InputProfile::<Rational>::constant(6, Rational::from_ratio(2, 7));
        for spec in [
            "6:0:accurate",
            "2:0:accurate,2:2:accurate,2:2:accurate",
            "3:0:accurate,1:1:accurate,2:3:accurate",
            "1:0:accurate,1:1:accurate,1:1:accurate,1:1:accurate,1:1:accurate,1:1:accurate",
        ] {
            assert_matches_brute_force(spec, &profile);
        }
    }

    #[test]
    fn pmf_matches_brute_force_under_sparse_profiles() {
        // Dead upper bits (P(bit) = 0) take the identity fast path once the
        // carries die; the result must still be the exact distribution. The
        // LPAA 2 block exercises a table whose all-zero row is NOT (0, 0)
        // (it sums to 1), which must inhibit the skip while it is open.
        let half = Rational::from_ratio(1, 2);
        let zero = Rational::zero();
        let low_live = |width: usize, live: usize| {
            let p: Vec<Rational> = (0..width)
                .map(|i| if i < live { half.clone() } else { zero.clone() })
                .collect();
            InputProfile::new(p.clone(), p, zero.clone()).expect("valid profile")
        };
        for spec in [
            "3:0:accurate,3:1:accurate,3:0:accurate",
            "2:0:accurate,3:1:accurate,2:1:accurate,2:0:accurate",
            "3:0:accurate,3:1:lpaa2,3:1:accurate",
        ] {
            let config: BlockConfig = spec.parse().expect("parses");
            assert_matches_brute_force(spec, &low_live(config.width(), 3));
        }
        // Nonzero cin: the carry dies at the first dead position, not at 0.
        let p: Vec<Rational> = (0..8)
            .map(|i| if i < 2 { half.clone() } else { zero.clone() })
            .collect();
        let profile = InputProfile::new(p.clone(), p, half.clone()).expect("valid profile");
        assert_matches_brute_force("4:0:accurate,4:2:accurate", &profile);
    }

    #[test]
    fn pmf_matches_brute_force_for_heterogeneous_cells() {
        let profile = InputProfile::<Rational>::constant(5, Rational::from_ratio(1, 3));
        for spec in [
            "2:0:lpaa1,3:2:accurate",
            "2:0:accurate,3:1:lpaa2",
            "1:0:lpaa5,2:1:lpaa1,2:2:lpaa6",
        ] {
            assert_matches_brute_force(spec, &profile);
        }
    }

    #[test]
    fn pmf_matches_brute_force_with_nonzero_cin() {
        let profile = InputProfile::new(
            vec![Rational::from_ratio(1, 4); 4],
            vec![Rational::from_ratio(2, 5); 4],
            Rational::from_ratio(1, 2),
        )
        .expect("valid profile");
        for spec in ["2:0:accurate,2:2:accurate", "2:0:lpaa1,2:1:accurate"] {
            assert_matches_brute_force(spec, &profile);
        }
    }

    #[test]
    fn deep_overlapping_windows_are_exact() {
        // Block 2's window reaches below block 1's result segment — three
        // windows are open at once over bits 1..3.
        let profile = InputProfile::<Rational>::uniform(6);
        assert_matches_brute_force("3:0:accurate,1:1:accurate,2:4:accurate", &profile);
    }

    #[test]
    fn pmf_sums_to_one_exactly() {
        let config: BlockConfig = "2:0:lpaa3,2:2:accurate,2:1:lpaa7".parse().expect("parses");
        let profile = InputProfile::<Rational>::constant(6, Rational::from_ratio(3, 11));
        let dist = error_distance_distribution(&config, &profile).expect("in range");
        assert_eq!(dist.total_mass(), Rational::one());
    }

    #[test]
    fn stepper_truncate_restores_prefix() {
        let profile = InputProfile::<Rational>::uniform(6);
        let acc = StandardCell::Accurate.cell();
        let lpaa = StandardCell::Lpaa1.cell();
        let mut stepper = BlockDistanceStepper::new(profile.clone(), 2).expect("width ok");
        stepper.push(3, 0, &acc).expect("push");
        stepper.push(3, 2, &lpaa).expect("push");
        let first = stepper.distribution().expect("complete");
        stepper.truncate(1);
        stepper.push(3, 1, &acc).expect("push");
        let second = stepper.distribution().expect("complete");
        stepper.truncate(1);
        stepper.push(3, 2, &lpaa).expect("push");
        assert_eq!(stepper.distribution().expect("complete"), first);
        let config: BlockConfig = "3:0:accurate,3:1:accurate".parse().expect("parses");
        assert_eq!(
            second,
            error_distance_distribution(&config, &profile).expect("in range")
        );
    }

    #[test]
    fn stepper_rejects_invalid_pushes() {
        let profile = InputProfile::<f64>::uniform(4);
        let acc = StandardCell::Accurate.cell();
        let mut stepper = BlockDistanceStepper::new(profile, 1).expect("width ok");
        assert!(matches!(
            stepper.push(0, 0, &acc),
            Err(BlockError::ZeroWidthBlock { .. })
        ));
        assert!(matches!(
            stepper.push(2, 1, &acc),
            Err(BlockError::DepthOutOfRange { .. })
        ));
        stepper.push(2, 0, &acc).expect("push");
        assert!(matches!(
            stepper.push(2, 2, &acc),
            Err(BlockError::DepthExceedsStepper { .. })
        ));
        assert!(matches!(
            stepper.distribution(),
            Err(BlockError::Incomplete { .. })
        ));
        assert!(matches!(
            stepper.push(3, 0, &acc),
            Err(BlockError::WidthTooLarge { .. })
        ));
    }

    #[test]
    fn fully_accurate_config_is_a_point_mass_at_zero() {
        let config = BlockConfig::homogeneous(8, 8, 0, StandardCell::Accurate.cell()).unwrap();
        let profile = InputProfile::<Rational>::constant(8, Rational::from_ratio(1, 4));
        let dist = error_distance_distribution(&config, &profile).expect("in range");
        assert_eq!(dist.pmf, vec![(0, Rational::one())]);
        assert!(dist.error_rate().is_zero());
    }

    #[test]
    fn wide_accurate_config_runs_at_the_width_bound() {
        // Width 47 = MAX_BLOCKS_WIDTH: the accurate-cell support stays tiny
        // and every distance fits the shared i128 accumulators.
        let config =
            BlockConfig::homogeneous(47, 8, 4, StandardCell::Accurate.cell()).expect("valid");
        let profile = InputProfile::<f64>::uniform(47);
        let dist = error_distance_distribution(&config, &profile).expect("in range");
        let total: f64 = dist.pmf.iter().map(|(_, p)| *p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(dist.error_rate() > 0.0);
        // Deficits are sums of −2^{start_j} over mispredicted blocks.
        assert!(dist.pmf.iter().all(|&(d, _)| d <= 0));
        assert_eq!(
            dist.max_absolute(),
            (1u128 << 40) + (1 << 32) + (1 << 24) + (1 << 16) + (1 << 8)
        );
    }
}
