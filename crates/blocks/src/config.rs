//! The generalized block-based adder configuration.
//!
//! A configuration is a sequence of *blocks*, LSB first. Block `j`
//! contributes `width_j` result bits starting at `start_j = Σ_{i<j}
//! width_i` and computes them with its own sub-adder: a ripple chain of
//! `cell_j` full-adder cells over the *window*
//! `[start_j − prediction_j, start_j + width_j)`. The low `prediction_j`
//! window bits re-add already-covered operand bits purely to *predict* the
//! carry into the result segment; the window's own carry-in is constant 0
//! (the external carry-in for block 0, whose window starts at bit 0).
//!
//! This subsumes the fixed-geometry GeAr scheme (`sealpaa-gear`): GeAr's
//! sub-adder 0 is a depth-0 block over its full window and every later
//! sub-adder a width-`R`, depth-`P` block — see [`BlockConfig::from_gear`].
//! It also expresses the heterogeneous configurations of Farahmand et al.
//! (arXiv:2106.08800): per-block widths, depths *and* cells may all differ.

use std::fmt;
use std::str::FromStr;

use sealpaa_cells::{Cell, StandardCell, TruthTable};
use sealpaa_gear::GearConfig;

/// Widest configuration the analytical engine accepts. Matches the trace
/// crate's `MAX_REPLAY_WIDTH`: every error distance then fits comfortably
/// in the `i128` accumulators both layers share (`|D| ≤ 2^48`).
pub const MAX_BLOCKS_WIDTH: usize = 47;

/// Errors produced by configuration construction and the analyses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockError {
    /// A configuration needs at least one block.
    Empty,
    /// Every block must contribute at least one result bit.
    ZeroWidthBlock {
        /// Offending block index.
        index: usize,
    },
    /// A block's prediction window may not reach below bit 0 (block 0 must
    /// have depth 0).
    DepthOutOfRange {
        /// Offending block index.
        index: usize,
        /// Requested prediction depth.
        depth: usize,
        /// Bits available below the block's result segment.
        available: usize,
    },
    /// The total width exceeds [`MAX_BLOCKS_WIDTH`].
    WidthTooLarge {
        /// Requested total width.
        width: usize,
    },
    /// An input profile does not cover the configuration's width.
    WidthMismatch {
        /// Configuration width.
        expected: usize,
        /// Profile width.
        actual: usize,
    },
    /// A stepper was asked for a distribution before the blocks tile the
    /// target width.
    Incomplete {
        /// Result bits appended so far.
        covered: usize,
        /// Target width.
        width: usize,
    },
    /// A block's prediction depth exceeds the stepper's declared maximum
    /// (the stepper has already marginalized the bits the window needs).
    DepthExceedsStepper {
        /// Requested prediction depth.
        depth: usize,
        /// Maximum depth the stepper was built for.
        max_depth: usize,
    },
    /// The error-distance support outgrew the analytical engine's bound.
    SupportExceeded {
        /// Support size at the point the bound was hit.
        support: usize,
    },
    /// The configuration is too wide for exhaustive enumeration.
    ExhaustiveWidthTooLarge {
        /// Requested total width.
        width: usize,
    },
}

impl fmt::Display for BlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockError::Empty => f.write_str("a block configuration needs at least one block"),
            BlockError::ZeroWidthBlock { index } => {
                write!(f, "block {index} contributes zero result bits")
            }
            BlockError::DepthOutOfRange {
                index,
                depth,
                available,
            } => write!(
                f,
                "block {index} predicts from {depth} bits but only {available} exist below it"
            ),
            BlockError::WidthTooLarge { width } => write!(
                f,
                "total width {width} exceeds the supported maximum {MAX_BLOCKS_WIDTH}"
            ),
            BlockError::WidthMismatch { expected, actual } => write!(
                f,
                "input profile covers {actual} bits but the configuration is {expected} bits wide"
            ),
            BlockError::Incomplete { covered, width } => write!(
                f,
                "blocks cover {covered} of {width} bits; the configuration is incomplete"
            ),
            BlockError::DepthExceedsStepper { depth, max_depth } => write!(
                f,
                "prediction depth {depth} exceeds the stepper's maximum {max_depth}"
            ),
            BlockError::SupportExceeded { support } => write!(
                f,
                "error-distance support reached {support} points; distribution too large"
            ),
            BlockError::ExhaustiveWidthTooLarge { width } => write!(
                f,
                "exhaustive enumeration supports at most 16 bits, got {width}"
            ),
        }
    }
}

impl std::error::Error for BlockError {}

/// One block of a [`BlockConfig`]: result width, carry-prediction depth and
/// the full-adder cell its sub-adder ripples.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockSpec {
    /// Result bits this block contributes.
    pub width: usize,
    /// Prediction bits below the result segment re-added to guess the
    /// carry-in (0 ⇒ the block assumes carry 0).
    pub prediction: usize,
    /// The full-adder cell of the block's sub-adder.
    pub cell: Cell,
}

impl BlockSpec {
    /// Creates a block spec.
    pub fn new(width: usize, prediction: usize, cell: Cell) -> Self {
        BlockSpec {
            width,
            prediction,
            cell,
        }
    }

    /// Window length: result bits plus prediction bits — the number of cell
    /// evaluations the sub-adder performs.
    pub fn window_len(&self) -> usize {
        self.width + self.prediction
    }
}

/// A validated block-based adder configuration.
///
/// # Examples
///
/// ```
/// use sealpaa_blocks::{BlockConfig, BlockSpec};
/// use sealpaa_cells::StandardCell;
///
/// // 8 bits: an accurate 4-bit low block, then two 2-bit blocks each
/// // predicting from the 2 bits below — ETAII-style, but per-block cells.
/// let acc = StandardCell::Accurate.cell();
/// let config = BlockConfig::new(vec![
///     BlockSpec::new(4, 0, acc.clone()),
///     BlockSpec::new(2, 2, acc.clone()),
///     BlockSpec::new(2, 2, acc),
/// ])?;
/// assert_eq!(config.width(), 8);
/// assert_eq!(config.window(1), 2..6);
/// # Ok::<(), sealpaa_blocks::BlockError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BlockConfig {
    blocks: Vec<BlockSpec>,
}

impl BlockConfig {
    /// Validates and creates a configuration.
    ///
    /// # Errors
    ///
    /// See [`BlockError`]: at least one block, positive widths, prediction
    /// windows within `[0, start)`, total width ≤ [`MAX_BLOCKS_WIDTH`].
    pub fn new(blocks: Vec<BlockSpec>) -> Result<Self, BlockError> {
        if blocks.is_empty() {
            return Err(BlockError::Empty);
        }
        let mut start = 0usize;
        for (index, block) in blocks.iter().enumerate() {
            if block.width == 0 {
                return Err(BlockError::ZeroWidthBlock { index });
            }
            if block.prediction > start {
                return Err(BlockError::DepthOutOfRange {
                    index,
                    depth: block.prediction,
                    available: start,
                });
            }
            start += block.width;
        }
        if start > MAX_BLOCKS_WIDTH {
            return Err(BlockError::WidthTooLarge { width: start });
        }
        Ok(BlockConfig { blocks })
    }

    /// A GeAr configuration re-expressed as blocks, every sub-adder rippling
    /// `cell`: sub-adder 0 becomes a depth-0 block over its full window,
    /// every later sub-adder a width-`R` block with depth `P`.
    ///
    /// With an accurate `cell` this is bit-for-bit the same adder as
    /// [`sealpaa_gear::GearAdder`] — the differential suite pins that.
    ///
    /// # Panics
    ///
    /// Panics if the GeAr width exceeds [`MAX_BLOCKS_WIDTH`] (GeAr itself
    /// has no width bound).
    pub fn from_gear(gear: &GearConfig, cell: Cell) -> Self {
        let blocks = gear
            .block_segments()
            .into_iter()
            .map(|(_, width, depth)| BlockSpec::new(width, depth, cell.clone()))
            .collect();
        BlockConfig::new(blocks).expect("a valid GeAr layout is a valid block layout")
    }

    /// A homogeneous configuration: an accurate-style partition of `width`
    /// bits into blocks of `block_width` (the last block absorbs the
    /// remainder), each predicting from `prediction` bits (clamped to the
    /// bits available), all rippling `cell`.
    ///
    /// # Errors
    ///
    /// See [`BlockError`].
    pub fn homogeneous(
        width: usize,
        block_width: usize,
        prediction: usize,
        cell: Cell,
    ) -> Result<Self, BlockError> {
        if block_width == 0 {
            return Err(BlockError::ZeroWidthBlock { index: 0 });
        }
        let mut blocks = Vec::new();
        let mut start = 0;
        while start < width {
            let w = block_width.min(width - start);
            blocks.push(BlockSpec::new(w, prediction.min(start), cell.clone()));
            start += w;
        }
        BlockConfig::new(blocks)
    }

    /// The blocks, LSB first.
    pub fn blocks(&self) -> &[BlockSpec] {
        &self.blocks
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Total operand width.
    pub fn width(&self) -> usize {
        self.blocks.iter().map(|b| b.width).sum()
    }

    /// First result-bit position of block `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.block_count()`.
    pub fn result_start(&self, j: usize) -> usize {
        assert!(j < self.blocks.len(), "block index out of range");
        self.blocks[..j].iter().map(|b| b.width).sum()
    }

    /// The operand-bit window block `j`'s sub-adder ripples:
    /// `[start − prediction, start + width)`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.block_count()`.
    pub fn window(&self, j: usize) -> std::ops::Range<usize> {
        let start = self.result_start(j);
        start - self.blocks[j].prediction..start + self.blocks[j].width
    }

    /// Maximum prediction depth over all blocks.
    pub fn max_prediction(&self) -> usize {
        self.blocks.iter().map(|b| b.prediction).max().unwrap_or(0)
    }

    /// Longest window — the carry ripples at most this many bits, so this
    /// is the delay proxy (an exact RCA's is the full width).
    pub fn max_window_len(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| b.window_len())
            .max()
            .unwrap_or(0)
    }

    /// Total cell evaluations per addition: `Σ (width + prediction)` — the
    /// area proxy in full-adder counts, and the per-case bit-addition count
    /// the simulators charge.
    pub fn total_window_bits(&self) -> usize {
        self.blocks.iter().map(|b| b.window_len()).sum()
    }

    /// Summed cell power (nW), weighting each block's characteristics by
    /// its window length. Cells without characteristics contribute 0.
    pub fn total_power_nw(&self) -> f64 {
        self.blocks
            .iter()
            .map(|b| {
                b.cell
                    .characteristics()
                    .map_or(0.0, |c| c.power_nw * b.window_len() as f64)
            })
            .sum()
    }

    /// Summed cell area (gate equivalents), weighting each block's
    /// characteristics by its window length.
    pub fn total_area_ge(&self) -> f64 {
        self.blocks
            .iter()
            .map(|b| {
                b.cell
                    .characteristics()
                    .map_or(0.0, |c| c.area_ge * b.window_len() as f64)
            })
            .sum()
    }

    /// `true` if every block ripples an accurate cell (the adder may still
    /// err through carry prediction).
    pub fn all_cells_accurate(&self) -> bool {
        self.blocks
            .iter()
            .all(|b| b.cell.truth_table().is_accurate())
    }

    /// The behavioral canonical form: adjacent blocks whose windows start
    /// at the same bit with the same truth table compute the same carries
    /// over their shared prefix, so the upper block is a seamless
    /// continuation of the lower one and the pair folds into a single
    /// block. Folding into block 0 additionally requires the external
    /// carry-in to be known 0 (`cin_is_zero`), because block 0's window
    /// starts from the real carry-in while every later window starts from
    /// constant 0.
    ///
    /// Two configurations with equal canonical forms (and equal truth
    /// tables) produce identical outputs for every input — the server's
    /// cache key builds on this.
    pub fn canonicalized(&self, cin_is_zero: bool) -> BlockConfig {
        let mut out: Vec<BlockSpec> = Vec::with_capacity(self.blocks.len());
        let mut out_start = 0usize; // result start of the last block in `out`
        let mut start = 0usize;
        for (j, block) in self.blocks.iter().enumerate() {
            let merging_into_block0 = out.len() == 1;
            if let Some(last) = out.last_mut() {
                let last_window_start = out_start - last.prediction;
                let window_start = start - block.prediction;
                if window_start == last_window_start
                    && block.cell.truth_table() == last.cell.truth_table()
                    && (!merging_into_block0 || cin_is_zero)
                {
                    last.width += block.width;
                    start += block.width;
                    continue;
                }
            }
            out_start = start;
            start += block.width;
            out.push(self.blocks[j].clone());
        }
        BlockConfig { blocks: out }
    }
}

impl fmt::Display for BlockConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blocks(N={})[", self.width())?;
        for (j, b) in self.blocks.iter().enumerate() {
            if j > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{}:{}:{}", b.width, b.prediction, b.cell.name())?;
        }
        f.write_str("]")
    }
}

/// Error from parsing a [`BlockConfig`] specification string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBlockConfigError {
    message: String,
}

impl fmt::Display for ParseBlockConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid block configuration: {}", self.message)
    }
}

impl std::error::Error for ParseBlockConfigError {}

impl ParseBlockConfigError {
    fn new(message: impl Into<String>) -> Self {
        ParseBlockConfigError {
            message: message.into(),
        }
    }
}

impl FromStr for BlockConfig {
    type Err = ParseBlockConfigError;

    /// Parses `width:prediction:cell` triples separated by commas, LSB
    /// block first. The cell is a standard-cell name (`accurate`, `lpaa1`,
    /// …) or an 8+8-bit truth-table spec `SSSSSSSS/CCCCCCCC`.
    ///
    /// ```
    /// use sealpaa_blocks::BlockConfig;
    ///
    /// let config: BlockConfig = "4:0:accurate,2:2:lpaa1,2:2:accurate".parse()?;
    /// assert_eq!(config.width(), 8);
    /// # Ok::<(), sealpaa_blocks::ParseBlockConfigError>(())
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut blocks = Vec::new();
        for (j, part) in s.split(',').enumerate() {
            let fields: Vec<&str> = part.trim().split(':').collect();
            if fields.len() != 3 {
                return Err(ParseBlockConfigError::new(format!(
                    "block {j} must be width:prediction:cell, got {part:?}"
                )));
            }
            let width: usize = fields[0]
                .parse()
                .map_err(|_| ParseBlockConfigError::new(format!("bad width {:?}", fields[0])))?;
            let prediction: usize = fields[1].parse().map_err(|_| {
                ParseBlockConfigError::new(format!("bad prediction {:?}", fields[1]))
            })?;
            let cell = parse_cell(fields[2])
                .map_err(|e| ParseBlockConfigError::new(format!("block {j}: {e}")))?;
            blocks.push(BlockSpec::new(width, prediction, cell));
        }
        BlockConfig::new(blocks).map_err(|e| ParseBlockConfigError::new(e.to_string()))
    }
}

/// Resolves a cell name (standard-cell alias) or an `SSSSSSSS/CCCCCCCC`
/// truth-table spec into a [`Cell`].
fn parse_cell(spec: &str) -> Result<Cell, String> {
    if let Ok(standard) = spec.parse::<StandardCell>() {
        return Ok(standard.cell());
    }
    if let Ok(table) = spec.parse::<TruthTable>() {
        return Ok(Cell::custom(format!("custom {spec}"), table));
    }
    Err(format!(
        "unknown cell {spec:?} (expected a standard-cell name or SSSSSSSS/CCCCCCCC)"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc() -> Cell {
        StandardCell::Accurate.cell()
    }

    #[test]
    fn validation_rejects_malformed_layouts() {
        assert_eq!(BlockConfig::new(vec![]), Err(BlockError::Empty));
        assert_eq!(
            BlockConfig::new(vec![BlockSpec::new(0, 0, acc())]),
            Err(BlockError::ZeroWidthBlock { index: 0 })
        );
        assert_eq!(
            BlockConfig::new(vec![BlockSpec::new(2, 1, acc())]),
            Err(BlockError::DepthOutOfRange {
                index: 0,
                depth: 1,
                available: 0
            })
        );
        assert_eq!(
            BlockConfig::new(vec![
                BlockSpec::new(2, 0, acc()),
                BlockSpec::new(2, 3, acc()),
            ]),
            Err(BlockError::DepthOutOfRange {
                index: 1,
                depth: 3,
                available: 2
            })
        );
        let too_wide = vec![BlockSpec::new(MAX_BLOCKS_WIDTH + 1, 0, acc())];
        assert_eq!(
            BlockConfig::new(too_wide),
            Err(BlockError::WidthTooLarge {
                width: MAX_BLOCKS_WIDTH + 1
            })
        );
    }

    #[test]
    fn geometry_accessors() {
        let config = BlockConfig::new(vec![
            BlockSpec::new(4, 0, acc()),
            BlockSpec::new(2, 2, StandardCell::Lpaa1.cell()),
            BlockSpec::new(2, 3, acc()),
        ])
        .expect("valid");
        assert_eq!(config.width(), 8);
        assert_eq!(config.result_start(2), 6);
        assert_eq!(config.window(0), 0..4);
        assert_eq!(config.window(1), 2..6);
        assert_eq!(config.window(2), 3..8);
        assert_eq!(config.max_prediction(), 3);
        assert_eq!(config.max_window_len(), 5);
        assert_eq!(config.total_window_bits(), 4 + 4 + 5);
        assert!(!config.all_cells_accurate());
        // LPAA 1 carries Table 2 characteristics; the accurate cell has
        // none, so only the 4 LPAA window bits contribute.
        assert!(config.total_power_nw() > 0.0);
        assert!(config.total_area_ge() > 0.0);
    }

    #[test]
    fn gear_mapping_matches_block_segments() {
        let gear = GearConfig::new(8, 2, 2).expect("valid");
        let config = BlockConfig::from_gear(&gear, acc());
        assert_eq!(config.width(), 8);
        assert_eq!(config.block_count(), gear.block_count());
        for (j, &(start, width, depth)) in gear.block_segments().iter().enumerate() {
            assert_eq!(config.result_start(j), start);
            assert_eq!(config.blocks()[j].width, width);
            assert_eq!(config.blocks()[j].prediction, depth);
            assert_eq!(config.window(j), gear.block_window(j));
        }
    }

    #[test]
    fn homogeneous_partition_covers_and_clamps() {
        let config = BlockConfig::homogeneous(10, 4, 4, acc()).expect("valid");
        assert_eq!(config.width(), 10);
        assert_eq!(config.block_count(), 3);
        assert_eq!(config.blocks()[0].prediction, 0);
        assert_eq!(config.blocks()[1].prediction, 4);
        assert_eq!(config.blocks()[2].width, 2);
    }

    #[test]
    fn parse_round_trips_geometry() {
        let config: BlockConfig = "4:0:accurate, 2:2:lpaa1, 2:2:accurate"
            .parse()
            .expect("parses");
        assert_eq!(config.width(), 8);
        assert_eq!(config.blocks()[1].cell.name(), StandardCell::Lpaa1.name());
        assert!("4:0".parse::<BlockConfig>().is_err());
        assert!("4:0:nonsense".parse::<BlockConfig>().is_err());
        assert!("2:1:accurate".parse::<BlockConfig>().is_err());
    }

    #[test]
    fn canonical_form_merges_seamless_continuations() {
        // Block 2's window starts where block 1's does (depth 2 reaches to
        // bit 2) with the same cell ⇒ it is a continuation.
        let config: BlockConfig = "2:0:accurate,2:0:accurate,2:2:accurate,2:2:lpaa1"
            .parse()
            .expect("parses");
        let canon = config.canonicalized(false);
        assert_eq!(canon.block_count(), 3);
        assert_eq!(canon.blocks()[1].width, 4);
        assert_eq!(canon.blocks()[1].prediction, 0);
        // The LPAA 1 block has a different table and must survive.
        assert_eq!(canon.blocks()[2].width, 2);

        // Folding into block 0 needs a known-zero carry-in.
        let config: BlockConfig = "2:0:accurate,2:2:accurate".parse().expect("parses");
        assert_eq!(config.canonicalized(false).block_count(), 2);
        let folded = config.canonicalized(true);
        assert_eq!(folded.block_count(), 1);
        assert_eq!(folded.blocks()[0].width, 4);
    }

    #[test]
    fn display_is_compact() {
        let config: BlockConfig = "4:0:accurate,2:2:lpaa1".parse().expect("parses");
        let text = config.to_string();
        assert!(text.contains("N=6"), "{text}");
        assert!(text.contains("2:2:LPAA 1"), "{text}");
    }
}
