//! Generalized block-based approximate adders with exact analytical
//! error-distance distributions.
//!
//! The paper's GeAr family fixes one resultant-bit count `R` and one
//! prediction depth `P` for every sub-adder. This crate drops that
//! restriction: a [`BlockConfig`] is any sequence of blocks, each with its
//! own result width, its own carry-prediction depth, and its own full-adder
//! cell (accurate or any approximate [`sealpaa_cells::Cell`]). GeAr — and
//! therefore ACA/ETAII/truncation-style schemes — are single points of this
//! family, recoverable via [`BlockConfig::from_gear`].
//!
//! Three views of the same configuration agree bit for bit:
//!
//! * [`BlockAdder`] — the scalar functional model (one addition at a time);
//! * [`exhaustive_distance_histogram`] — a bitsliced sweep over *all*
//!   inputs, 64 additions per step, producing the exact error-distance
//!   histogram;
//! * [`error_distance_distribution`] — the analytical engine: a linear-time
//!   joint-carry recursion producing the exact PMF of `approx − exact`
//!   under an arbitrary per-bit input profile, in `f64` or exact
//!   [`Rational`](sealpaa_num::Rational) arithmetic.
//!
//! The analytical engine is also exposed incrementally as
//! [`BlockDistanceStepper`], whose push/truncate interface lets
//! design-space exploration (see `sealpaa-explore`) share the recursion's
//! prefix across every candidate configuration with the same leading
//! blocks.
//!
//! ```
//! use sealpaa_blocks::{error_distance_distribution, exhaustive_distance_histogram, BlockConfig};
//! use sealpaa_cells::InputProfile;
//! use sealpaa_num::Rational;
//!
//! // Heterogeneous: a wide accurate low block, then two predicted blocks.
//! let config: BlockConfig = "4:0:accurate,2:2:accurate,2:3:lpaa1".parse()?;
//! let analytical =
//!     error_distance_distribution(&config, &InputProfile::<Rational>::uniform(8))?;
//! let exhaustive = exhaustive_distance_histogram(&config)?.to_distribution::<Rational>();
//! assert_eq!(analytical, exhaustive); // exact, not approximate, agreement
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod config;
mod distance;
mod exhaustive;
mod functional;

pub use config::{BlockConfig, BlockError, BlockSpec, ParseBlockConfigError, MAX_BLOCKS_WIDTH};
pub use distance::{error_distance_distribution, BlockDistanceStepper, MAX_DISTANCE_SUPPORT};
pub use exhaustive::{
    exhaustive_distance_histogram, exhaustive_distance_histogram_with_backend,
    ExhaustiveDistanceReport, MAX_EXHAUSTIVE_WIDTH,
};
pub use functional::{BlockAdder, BlockAdditionResult};
