//! Bitsliced exhaustive error-distance histograms — the ground truth the
//! analytical engine is validated against.
//!
//! The sweep enumerates every `(a, b)` pair (and both carry-ins) and
//! histograms the signed error distance `approx − exact`. Like
//! `sealpaa-sim`'s exhaustive sweep it runs one SIMD word of additions per
//! step (64–512 lanes, following the runtime-detected [`Backend`]):
//! operand `b` advances through consecutive values whose low six bit
//! planes are compile-time lane patterns, each block window ripples its
//! cell's truth table across all lanes at once (SWAR over the eight table
//! rows), and the accurate reference reuses the generic
//! [`accurate_eval`]. Lanes whose outputs match the reference are counted
//! in bulk off the mismatch word; only deviating lanes pay for value
//! reconstruction. Lane order is ascending case order on every backend,
//! and all counts are integers, so the histogram is byte-identical across
//! backends.
//!
//! Work is metered per block: each case charges one bit-addition per
//! *window* bit (prediction bits are re-added, and the meter says so) plus
//! `N` for the accurate reference — so BENCH entries stay comparable
//! between homogeneous chains and heterogeneous block sweeps.

use std::collections::BTreeMap;

use sealpaa_cells::{
    accurate_eval, dispatch, lane_value, splat_planes, Backend, FaInput, SimdKernel, SimdWord,
    TruthTable,
};
use sealpaa_core::ErrorDistanceDistribution;
use sealpaa_num::Prob;
use sealpaa_sim::SimWork;

use crate::config::{BlockConfig, BlockError};
use crate::functional::BlockAdder;

/// Widest configuration [`exhaustive_distance_histogram`] accepts:
/// `2^{2·14+1} ≈ 5·10^8` additions, seconds in release builds.
pub const MAX_EXHAUSTIVE_WIDTH: usize = 14;

/// Bit plane `t < 6` of 64 consecutive lane values `base + l`:
/// bit `l` of `LANE_PATTERNS[t]` is `(l >> t) & 1`.
const LANE_PATTERNS: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// One batch's exhaustive result: the signed error-distance histogram over
/// all operand pairs at both carry-ins, plus the work metered to get it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExhaustiveDistanceReport {
    /// `d → number of input combinations with error distance d`, over all
    /// `2^{2N+1}` combinations (both carry-ins).
    pub histogram: BTreeMap<i128, u64>,
    /// Work performed, metered per block window bit.
    pub work: SimWork,
}

impl ExhaustiveDistanceReport {
    /// Input combinations counted (`2^{2N+1}`).
    pub fn cases(&self) -> u64 {
        self.histogram.values().sum()
    }

    /// Converts the counts into an exact PMF under *uniform* inputs — the
    /// distribution [`error_distance_distribution`] produces for
    /// `InputProfile::uniform`, which is what differential tests compare.
    ///
    /// [`error_distance_distribution`]: crate::error_distance_distribution
    pub fn to_distribution<T: Prob>(&self) -> ErrorDistanceDistribution<T> {
        let total = self.cases();
        ErrorDistanceDistribution {
            pmf: self
                .histogram
                .iter()
                .map(|(&d, &count)| (d, T::from_ratio(count, total)))
                .collect(),
        }
    }
}

/// A block configuration compiled for 64-lane evaluation: per block, the
/// window geometry plus the cell's truth table as row masks.
struct BitslicedBlocks {
    blocks: Vec<BitslicedBlock>,
}

struct BitslicedBlock {
    window_start: usize,
    result_start: usize,
    end: usize,
    accurate: bool,
    /// Bit `r` set iff table row `r` outputs sum = 1.
    sum_rows: u8,
    /// Bit `r` set iff table row `r` outputs carry = 1.
    carry_rows: u8,
}

/// Evaluates one truth table on `W::LANES` lanes by masking each of its 8
/// rows.
#[inline(always)]
fn table_eval<W: SimdWord>(sum_rows: u8, carry_rows: u8, a: W, b: W, c: W) -> (W, W) {
    let mut sum = W::zero();
    let mut carry = W::zero();
    for input in FaInput::all() {
        let mask = (if input.a { a } else { !a })
            & (if input.b { b } else { !b })
            & (if input.carry_in { c } else { !c });
        let row = 1u8 << input.index();
        if sum_rows & row != 0 {
            sum = sum | mask;
        }
        if carry_rows & row != 0 {
            carry = carry | mask;
        }
    }
    (sum, carry)
}

impl BitslicedBlocks {
    fn compile(config: &BlockConfig) -> Self {
        let accurate = TruthTable::accurate();
        let blocks = config
            .blocks()
            .iter()
            .enumerate()
            .map(|(j, block)| {
                let window = config.window(j);
                let table = *block.cell.truth_table();
                let (mut sum_rows, mut carry_rows) = (0u8, 0u8);
                for input in FaInput::all() {
                    let out = table.eval(input);
                    let row = 1u8 << input.index();
                    if out.sum {
                        sum_rows |= row;
                    }
                    if out.carry_out {
                        carry_rows |= row;
                    }
                }
                BitslicedBlock {
                    window_start: window.start,
                    result_start: window.end - block.width,
                    end: window.end,
                    accurate: table == accurate,
                    sum_rows,
                    carry_rows,
                }
            })
            .collect();
        BitslicedBlocks { blocks }
    }

    /// Runs all blocks on `W::LANES` lanes; returns the approximate
    /// carry-out word.
    #[inline(always)]
    fn eval<W: SimdWord>(&self, a_planes: &[W], b_planes: &[W], cin: W, sum_out: &mut [W]) -> W {
        let mut cout = W::zero();
        for (j, block) in self.blocks.iter().enumerate() {
            let mut carry = if j == 0 { cin } else { W::zero() };
            for t in block.window_start..block.end {
                let (a, b) = (a_planes[t], b_planes[t]);
                let (sum, next);
                if block.accurate {
                    let axb = a ^ b;
                    sum = axb ^ carry;
                    next = (a & b) | (carry & axb);
                } else {
                    (sum, next) = table_eval(block.sum_rows, block.carry_rows, a, b, carry);
                }
                if t >= block.result_start {
                    sum_out[t] = sum;
                }
                carry = next;
            }
            cout = carry;
        }
        cout
    }
}

/// Exhaustively histograms the signed error distance of a block
/// configuration over all `2^{2N+1}` input combinations (every operand
/// pair, both carry-ins), bitsliced 64 lanes at a time; widths below 6
/// bits fall back to the scalar [`BlockAdder`].
///
/// # Errors
///
/// Returns [`BlockError::ExhaustiveWidthTooLarge`] beyond
/// [`MAX_EXHAUSTIVE_WIDTH`].
///
/// # Examples
///
/// ```
/// use sealpaa_blocks::{exhaustive_distance_histogram, BlockConfig};
///
/// let config: BlockConfig = "4:0:accurate,4:2:accurate".parse()?;
/// let report = exhaustive_distance_histogram(&config)?;
/// assert_eq!(report.cases(), 1 << 17);
/// // An accurate-cell block adder only ever misses carries into bit 4.
/// assert_eq!(report.histogram.keys().copied().collect::<Vec<_>>(), vec![-16, 0]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn exhaustive_distance_histogram(
    config: &BlockConfig,
) -> Result<ExhaustiveDistanceReport, BlockError> {
    exhaustive_distance_histogram_with_backend(config, None)
}

/// [`exhaustive_distance_histogram`] with an explicit SIMD backend: `None`
/// uses [`Backend::active`] (runtime detection, overridable through the
/// `SEALPAA_SIMD` environment variable). The backend is narrowed when the
/// width offers fewer `b` values than the word has lanes; the histogram is
/// byte-identical on every backend.
///
/// # Errors
///
/// Same conditions as [`exhaustive_distance_histogram`].
pub fn exhaustive_distance_histogram_with_backend(
    config: &BlockConfig,
    backend: Option<Backend>,
) -> Result<ExhaustiveDistanceReport, BlockError> {
    let width = config.width();
    if width > MAX_EXHAUSTIVE_WIDTH {
        return Err(BlockError::ExhaustiveWidthTooLarge { width });
    }
    let mut histogram: BTreeMap<i128, u64> = BTreeMap::new();
    let cases = 1u64 << (2 * width + 1);
    let work = SimWork {
        cases,
        // Per case: every window bit of every block (prediction bits are
        // genuinely re-added, so they are genuinely charged), plus one
        // accurate reference bit per position.
        bit_additions: cases * (config.total_window_bits() + width) as u64,
        comparisons: cases,
    };
    if width < 6 {
        let adder = BlockAdder::new(config.clone());
        for cin in [false, true] {
            for a in 0..1u64 << width {
                for b in 0..1u64 << width {
                    let d = adder
                        .add(a, b, cin)
                        .error_distance(adder.accurate_sum(a, b, cin));
                    *histogram.entry(d).or_insert(0) += 1;
                }
            }
        }
        return Ok(ExhaustiveDistanceReport { histogram, work });
    }
    let backend = backend
        .unwrap_or_else(Backend::active)
        .narrowed_to_lanes(1usize << width);
    let compiled = BitslicedBlocks::compile(config);
    let histogram = dispatch(
        backend,
        HistogramWorker {
            compiled: &compiled,
            width,
        },
    );
    Ok(ExhaustiveDistanceReport { histogram, work })
}

/// The bitsliced sweep dispatched to the selected backend's word type.
struct HistogramWorker<'a> {
    compiled: &'a BitslicedBlocks,
    width: usize,
}

impl SimdKernel for HistogramWorker<'_> {
    type Out = BTreeMap<i128, u64>;

    #[inline(always)]
    fn run<W: SimdWord>(self) -> Self::Out {
        let (compiled, width) = (self.compiled, self.width);
        let lanes_log2 = 6 + W::WORDS.trailing_zeros() as usize;
        debug_assert!(lanes_log2 <= width);
        let mut histogram: BTreeMap<i128, u64> = BTreeMap::new();
        let mut a_planes = vec![W::zero(); width];
        let mut b_planes = vec![W::zero(); width];
        let mut approx = vec![W::zero(); width];
        let mut exact = vec![W::zero(); width];
        let mut sub_approx = vec![0u64; width];
        let mut sub_exact = vec![0u64; width];
        for cin in [W::zero(), W::ones()] {
            for a in 0..1u64 << width {
                splat_planes(a, &mut a_planes);
                for b_base in (0..1u64 << width).step_by(W::LANES) {
                    for (t, plane) in b_planes.iter_mut().enumerate() {
                        *plane = if t < 6 {
                            W::splat(LANE_PATTERNS[t])
                        } else if t < lanes_log2 {
                            W::from_fn(|s| (((s as u64) >> (t - 6)) & 1).wrapping_neg())
                        } else {
                            W::splat(((b_base >> t) & 1).wrapping_neg())
                        };
                    }
                    let approx_cout = compiled.eval(&a_planes, &b_planes, cin, &mut approx);
                    let exact_cout = accurate_eval(&a_planes, &b_planes, cin, &mut exact);
                    let mut mismatch = approx_cout ^ exact_cout;
                    for t in 0..width {
                        mismatch = mismatch | (approx[t] ^ exact[t]);
                    }
                    *histogram.entry(0).or_insert(0) += W::LANES as u64 - mismatch.count_ones();
                    if !mismatch.any() {
                        continue;
                    }
                    // Per-lane value reconstruction walks the wide word one
                    // 64-lane subword at a time, in ascending case order.
                    for s in 0..W::WORDS {
                        let mm = mismatch.word(s);
                        if mm == 0 {
                            continue;
                        }
                        for t in 0..width {
                            sub_approx[t] = approx[t].word(s);
                            sub_exact[t] = exact[t].word(s);
                        }
                        let (ac, ec) = (approx_cout.word(s), exact_cout.word(s));
                        let mut lanes = mm;
                        while lanes != 0 {
                            let lane = lanes.trailing_zeros() as usize;
                            lanes &= lanes - 1;
                            let approx_value = lane_value(&sub_approx, ac, lane);
                            let exact_value = lane_value(&sub_exact, ec, lane);
                            let d = approx_value as i128 - exact_value as i128;
                            *histogram.entry(d).or_insert(0) += 1;
                        }
                    }
                }
            }
        }
        histogram.retain(|_, count| *count > 0);
        histogram
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sealpaa_num::Rational;

    /// Scalar oracle over all combinations, straight off [`BlockAdder`].
    fn scalar_histogram(config: &BlockConfig) -> BTreeMap<i128, u64> {
        let adder = BlockAdder::new(config.clone());
        let width = config.width();
        let mut histogram = BTreeMap::new();
        for cin in [false, true] {
            for a in 0..1u64 << width {
                for b in 0..1u64 << width {
                    let d = adder
                        .add(a, b, cin)
                        .error_distance(adder.accurate_sum(a, b, cin));
                    *histogram.entry(d).or_insert(0) += 1;
                }
            }
        }
        histogram
    }

    #[test]
    fn bitsliced_matches_scalar_oracle() {
        for spec in [
            "4:0:accurate,4:2:accurate",
            "3:0:lpaa1,3:1:accurate,2:2:lpaa4",
            "2:0:accurate,2:1:lpaa2,2:2:accurate,2:1:lpaa7",
        ] {
            let config: BlockConfig = spec.parse().expect("parses");
            let report = exhaustive_distance_histogram(&config).expect("in range");
            assert_eq!(report.histogram, scalar_histogram(&config), "{spec}");
        }
    }

    #[test]
    fn every_backend_matches_scalar_oracle() {
        // Byte-identity across backends, including a width (6) that forces
        // wide backends to narrow and a width (9) that exercises the
        // subword-index planes.
        for spec in ["3:0:lpaa5,3:1:lpaa1", "3:0:lpaa1,3:1:accurate,3:2:lpaa6"] {
            let config: BlockConfig = spec.parse().expect("parses");
            let oracle = scalar_histogram(&config);
            for backend in Backend::available() {
                let report = exhaustive_distance_histogram_with_backend(&config, Some(backend))
                    .expect("in range");
                assert_eq!(report.histogram, oracle, "{spec} on {backend}");
            }
        }
    }

    #[test]
    fn scalar_fallback_matches_oracle_below_six_bits() {
        let config: BlockConfig = "2:0:lpaa3,2:1:accurate,1:1:lpaa1".parse().expect("parses");
        let report = exhaustive_distance_histogram(&config).expect("in range");
        assert_eq!(report.histogram, scalar_histogram(&config));
        assert_eq!(report.cases(), 1 << 11);
    }

    #[test]
    fn work_meter_charges_every_window_bit() {
        let config: BlockConfig = "4:0:accurate,4:2:accurate".parse().expect("parses");
        let report = exhaustive_distance_histogram(&config).expect("in range");
        let cases = 1u64 << 17;
        assert_eq!(report.work.cases, cases);
        // Windows cover 4 + 6 bits; the accurate reference adds 8 more.
        assert_eq!(report.work.bit_additions, cases * 18);
        assert_eq!(report.work.comparisons, cases);
    }

    #[test]
    fn uniform_distribution_is_exact_counts_over_total() {
        let config: BlockConfig = "3:0:accurate,3:3:accurate".parse().expect("parses");
        let report = exhaustive_distance_histogram(&config).expect("in range");
        let dist = report.to_distribution::<Rational>();
        assert_eq!(dist.total_mass(), Rational::one());
        for (d, p) in &dist.pmf {
            assert_eq!(
                *p,
                <Rational as Prob>::from_ratio(report.histogram[d], 1 << 13)
            );
        }
    }

    #[test]
    fn width_bound_is_enforced() {
        let config =
            BlockConfig::homogeneous(15, 5, 2, sealpaa_cells::StandardCell::Accurate.cell())
                .expect("valid");
        assert!(matches!(
            exhaustive_distance_histogram(&config),
            Err(BlockError::ExhaustiveWidthTooLarge { width: 15 })
        ));
    }
}
