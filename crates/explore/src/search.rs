//! Hybrid-adder search algorithms.

use std::fmt;

use sealpaa_cells::{AdderChain, Cell, CellCharacteristics, InputProfile, StandardCell};
use sealpaa_core::analyze;

/// Errors produced by the exploration functions.
#[derive(Debug, Clone, PartialEq)]
pub enum ExploreError {
    /// A candidate cell has no power/area characteristics, so budgeted
    /// search cannot score it.
    MissingCharacteristics {
        /// Name of the offending cell.
        cell: String,
    },
    /// No candidate cells were supplied.
    NoCandidates,
    /// The exhaustive enumeration would exceed the configured cap.
    SpaceTooLarge {
        /// Number of designs the request implies.
        designs: u128,
        /// Maximum the enumerator accepts.
        max: u128,
    },
    /// Bit-true verification of a design failed (e.g. the width exceeds
    /// what exhaustive simulation will enumerate).
    Simulation {
        /// The underlying simulator error.
        source: sealpaa_sim::SimError,
    },
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::MissingCharacteristics { cell } => {
                write!(f, "cell {cell:?} has no power/area characteristics")
            }
            ExploreError::NoCandidates => f.write_str("candidate cell list is empty"),
            ExploreError::SpaceTooLarge { designs, max } => {
                write!(
                    f,
                    "design space of {designs} points exceeds the cap of {max}"
                )
            }
            ExploreError::Simulation { source } => {
                write!(f, "bit-true verification failed: {source}")
            }
        }
    }
}

impl std::error::Error for ExploreError {}

/// Resource budget a design must respect. `None` means unconstrained.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Budget {
    /// Maximum total power in nanowatts.
    pub max_power_nw: Option<f64>,
    /// Maximum total area in gate equivalents.
    pub max_area_ge: Option<f64>,
}

impl Budget {
    /// `true` if an evaluation fits within the budget.
    pub fn admits(&self, eval: &Evaluation) -> bool {
        self.max_power_nw.is_none_or(|cap| eval.power_nw <= cap)
            && self.max_area_ge.is_none_or(|cap| eval.area_ge <= cap)
    }
}

/// The score of one concrete chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evaluation {
    /// Analytical error probability (the proposed method).
    pub error_probability: f64,
    /// Summed cell power (paper Table 2 units: nW).
    pub power_nw: f64,
    /// Summed cell area (gate equivalents).
    pub area_ge: f64,
}

impl Evaluation {
    /// `true` if `self` is at least as good as `other` on every axis and
    /// strictly better on at least one (Pareto dominance).
    pub fn dominates(&self, other: &Evaluation) -> bool {
        let no_worse = self.error_probability <= other.error_probability
            && self.power_nw <= other.power_nw
            && self.area_ge <= other.area_ge;
        let better = self.error_probability < other.error_probability
            || self.power_nw < other.power_nw
            || self.area_ge < other.area_ge;
        no_worse && better
    }
}

/// A scored hybrid design.
#[derive(Debug, Clone, PartialEq)]
pub struct HybridDesign {
    /// The chain itself (stage cells, LSB first).
    pub chain: AdderChain,
    /// Its score under the profile it was searched for.
    pub evaluation: Evaluation,
}

impl fmt::Display for HybridDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} → P(err)={:.6}, {:.0} nW, {:.2} GE",
            self.chain,
            self.evaluation.error_probability,
            self.evaluation.power_nw,
            self.evaluation.area_ge
        )
    }
}

/// An accurate full adder annotated with *estimated* power/area so it can
/// participate in budgeted search (the paper's Table 2 characterises only
/// LPAA 1–5).
///
/// The estimate extrapolates Table 2: LPAA 1 is the least-simplified
/// approximate mirror adder at 771 nW / 4.23 GE; a conventional (unsimplified)
/// mirror adder has roughly 1.4× its transistor count, giving ≈ 1080 nW and
/// ≈ 5.9 GE. The exact figures only shift where budget lines fall — every
/// qualitative conclusion in the examples is insensitive to them.
pub fn accurate_cell_with_proxy_costs() -> Cell {
    Cell::custom_with_characteristics(
        "AccuFA (est.)",
        StandardCell::Accurate.truth_table(),
        CellCharacteristics::new(1080.0, 5.9),
    )
}

/// Scores one chain under a profile: analytical error probability plus
/// summed power/area.
///
/// # Errors
///
/// Returns [`ExploreError::MissingCharacteristics`] if any stage lacks
/// power/area data.
///
/// # Panics
///
/// Panics if `profile.width() != chain.width()` (the chain is constructed by
/// this crate's own search entry points, which guarantee matching widths).
pub fn evaluate(
    chain: &AdderChain,
    profile: &InputProfile<f64>,
) -> Result<Evaluation, ExploreError> {
    for cell in chain {
        if cell.characteristics().is_none() {
            return Err(ExploreError::MissingCharacteristics {
                cell: cell.name().to_owned(),
            });
        }
    }
    let analysis = analyze(chain, profile).expect("widths are validated by callers");
    Ok(Evaluation {
        // `1 − Σ` can round a hair below zero in f64; clamp for sane display
        // and comparisons.
        error_probability: analysis.error_probability().clamp(0.0, 1.0),
        power_nw: chain.total_power_nw().expect("checked above"),
        area_ge: chain.total_area_ge().expect("checked above"),
    })
}

/// Hard cap on the exhaustive enumeration size.
pub const MAX_ENUMERATION: u128 = 2_000_000;

/// Enumerates and scores every `candidates^width` design (small spaces
/// only).
///
/// # Errors
///
/// * [`ExploreError::NoCandidates`] for an empty candidate list.
/// * [`ExploreError::MissingCharacteristics`] if a candidate lacks data.
/// * [`ExploreError::SpaceTooLarge`] beyond [`MAX_ENUMERATION`] designs.
pub fn enumerate_designs(
    candidates: &[Cell],
    profile: &InputProfile<f64>,
) -> Result<Vec<HybridDesign>, ExploreError> {
    if candidates.is_empty() {
        return Err(ExploreError::NoCandidates);
    }
    let width = profile.width();
    let designs = (candidates.len() as u128).saturating_pow(width as u32);
    if designs > MAX_ENUMERATION {
        return Err(ExploreError::SpaceTooLarge {
            designs,
            max: MAX_ENUMERATION,
        });
    }
    let mut out = Vec::with_capacity(designs as usize);
    let mut assignment = vec![0usize; width];
    loop {
        let chain =
            AdderChain::from_stages(assignment.iter().map(|&c| candidates[c].clone()).collect());
        let evaluation = evaluate(&chain, profile)?;
        out.push(HybridDesign { chain, evaluation });
        // Odometer increment over candidate indices.
        let mut i = 0;
        loop {
            if i == width {
                return Ok(out);
            }
            assignment[i] += 1;
            if assignment[i] < candidates.len() {
                break;
            }
            assignment[i] = 0;
            i += 1;
        }
    }
}

/// The provably best design under a budget, by exhaustive enumeration.
/// Returns `None` if no design fits the budget.
///
/// Ties on error probability are broken by lower power, then lower area.
///
/// # Errors
///
/// Same conditions as [`enumerate_designs`].
pub fn exhaustive_best(
    candidates: &[Cell],
    profile: &InputProfile<f64>,
    budget: &Budget,
) -> Result<Option<HybridDesign>, ExploreError> {
    let mut best: Option<HybridDesign> = None;
    for design in enumerate_designs(candidates, profile)? {
        if !budget.admits(&design.evaluation) {
            continue;
        }
        let better = match &best {
            None => true,
            Some(b) => {
                let (e, p, a) = (
                    design.evaluation.error_probability,
                    design.evaluation.power_nw,
                    design.evaluation.area_ge,
                );
                let (be, bp, ba) = (
                    b.evaluation.error_probability,
                    b.evaluation.power_nw,
                    b.evaluation.area_ge,
                );
                (e, p, a) < (be, bp, ba)
            }
        };
        if better {
            best = Some(design);
        }
    }
    Ok(best)
}

/// Deterministic hill-climbing: start from the lowest-power feasible
/// homogeneous chain, then repeatedly apply the single-stage substitution
/// that most reduces the error probability while staying inside the budget,
/// until no substitution improves. Scales to widths where enumeration
/// cannot go; the tests cross-check it against [`exhaustive_best`] on small
/// spaces.
///
/// Returns `None` if not even the cheapest homogeneous chain fits the
/// budget.
///
/// # Errors
///
/// * [`ExploreError::NoCandidates`] for an empty candidate list.
/// * [`ExploreError::MissingCharacteristics`] if a candidate lacks data.
pub fn local_search_best(
    candidates: &[Cell],
    profile: &InputProfile<f64>,
    budget: &Budget,
) -> Result<Option<HybridDesign>, ExploreError> {
    if candidates.is_empty() {
        return Err(ExploreError::NoCandidates);
    }
    let width = profile.width();
    // Start from the cheapest (by power) homogeneous chain.
    let mut cheapest = 0usize;
    for (i, cell) in candidates.iter().enumerate() {
        let ch = cell
            .characteristics()
            .ok_or_else(|| ExploreError::MissingCharacteristics {
                cell: cell.name().to_owned(),
            })?;
        let cheapest_power = candidates[cheapest]
            .characteristics()
            .expect("validated in earlier iterations")
            .power_nw;
        if ch.power_nw < cheapest_power {
            cheapest = i;
        }
    }
    let mut assignment = vec![cheapest; width];
    let chain_of = |assignment: &[usize]| {
        AdderChain::from_stages(assignment.iter().map(|&c| candidates[c].clone()).collect())
    };
    let mut current = evaluate(&chain_of(&assignment), profile)?;
    if !budget.admits(&current) {
        return Ok(None);
    }
    loop {
        let mut best_move: Option<(usize, usize, Evaluation)> = None;
        for stage in 0..width {
            let original = assignment[stage];
            for cand in 0..candidates.len() {
                if cand == original {
                    continue;
                }
                assignment[stage] = cand;
                let eval = evaluate(&chain_of(&assignment), profile)?;
                assignment[stage] = original;
                if !budget.admits(&eval) {
                    continue;
                }
                let improves = eval.error_probability < current.error_probability - 1e-15
                    || (eval.error_probability <= current.error_probability + 1e-15
                        && eval.power_nw < current.power_nw - 1e-12);
                if improves {
                    let better_than_best = match &best_move {
                        None => true,
                        Some((_, _, b)) => {
                            eval.error_probability < b.error_probability
                                || (eval.error_probability == b.error_probability
                                    && eval.power_nw < b.power_nw)
                        }
                    };
                    if better_than_best {
                        best_move = Some((stage, cand, eval));
                    }
                }
            }
        }
        match best_move {
            Some((stage, cand, eval)) => {
                assignment[stage] = cand;
                current = eval;
            }
            None => break,
        }
    }
    let chain = chain_of(&assignment);
    Ok(Some(HybridDesign {
        chain,
        evaluation: current,
    }))
}

/// Filters a design set down to its Pareto frontier over
/// (error probability, power, area), sorted by ascending error.
pub fn pareto_front(mut designs: Vec<HybridDesign>) -> Vec<HybridDesign> {
    let mut front: Vec<HybridDesign> = Vec::new();
    designs.sort_by(|a, b| {
        a.evaluation
            .error_probability
            .total_cmp(&b.evaluation.error_probability)
            .then(a.evaluation.power_nw.total_cmp(&b.evaluation.power_nw))
    });
    for design in designs {
        if !front
            .iter()
            .any(|kept| kept.evaluation.dominates(&design.evaluation))
        {
            front.retain(|kept| !design.evaluation.dominates(&kept.evaluation));
            front.push(design);
        }
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lpaa_candidates() -> Vec<Cell> {
        vec![
            StandardCell::Lpaa1.cell(),
            StandardCell::Lpaa2.cell(),
            StandardCell::Lpaa5.cell(),
        ]
    }

    #[test]
    fn evaluate_requires_characteristics() {
        let chain = AdderChain::uniform(StandardCell::Accurate.cell(), 2);
        let profile = InputProfile::<f64>::uniform(2);
        assert!(matches!(
            evaluate(&chain, &profile),
            Err(ExploreError::MissingCharacteristics { .. })
        ));
    }

    #[test]
    fn evaluate_sums_costs() {
        let chain = AdderChain::uniform(StandardCell::Lpaa2.cell(), 3);
        let profile = InputProfile::constant(3, 0.1);
        let e = evaluate(&chain, &profile).expect("characteristics present");
        assert!((e.power_nw - 3.0 * 294.0).abs() < 1e-9);
        assert!((e.area_ge - 3.0 * 1.94).abs() < 1e-9);
        assert!(e.error_probability > 0.0);
    }

    #[test]
    fn enumeration_counts_candidates_pow_width() {
        let designs =
            enumerate_designs(&lpaa_candidates(), &InputProfile::constant(3, 0.2)).expect("small");
        assert_eq!(designs.len(), 27);
    }

    #[test]
    fn exhaustive_best_respects_budget() {
        let profile = InputProfile::constant(4, 0.1);
        let budget = Budget {
            max_power_nw: Some(900.0),
            max_area_ge: None,
        };
        let best = exhaustive_best(&lpaa_candidates(), &profile, &budget)
            .expect("small space")
            .expect("feasible");
        assert!(best.evaluation.power_nw <= 900.0);
        // And it must be at least as good as any feasible competitor.
        for d in enumerate_designs(&lpaa_candidates(), &profile).expect("small") {
            if budget.admits(&d.evaluation) {
                assert!(
                    best.evaluation.error_probability <= d.evaluation.error_probability + 1e-12
                );
            }
        }
    }

    #[test]
    fn infeasible_budget_yields_none() {
        let profile = InputProfile::constant(2, 0.1);
        let budget = Budget {
            max_power_nw: Some(-1.0),
            max_area_ge: None,
        };
        assert_eq!(
            exhaustive_best(&lpaa_candidates(), &profile, &budget).expect("small"),
            None
        );
    }

    #[test]
    fn local_search_matches_exhaustive_on_small_space() {
        let profile = InputProfile::constant(4, 0.15);
        let budget = Budget {
            max_power_nw: Some(1500.0),
            max_area_ge: None,
        };
        let exhaustive = exhaustive_best(&lpaa_candidates(), &profile, &budget)
            .expect("small")
            .expect("feasible");
        let local = local_search_best(&lpaa_candidates(), &profile, &budget)
            .expect("valid")
            .expect("feasible");
        // Hill climbing may tie rather than find the same chain, but on this
        // small space it should reach the optimal error.
        assert!(
            (local.evaluation.error_probability - exhaustive.evaluation.error_probability).abs()
                < 1e-9,
            "local {} vs exhaustive {}",
            local.evaluation.error_probability,
            exhaustive.evaluation.error_probability
        );
    }

    #[test]
    fn unconstrained_search_prefers_most_accurate_candidate() {
        // With no budget, the best design minimizes error outright.
        let profile = InputProfile::constant(3, 0.5);
        let best = exhaustive_best(&lpaa_candidates(), &profile, &Budget::default())
            .expect("small")
            .expect("feasible");
        let homogeneous_best = lpaa_candidates()
            .iter()
            .map(|c| {
                evaluate(&AdderChain::uniform(c.clone(), 3), &profile)
                    .expect("chars")
                    .error_probability
            })
            .fold(f64::INFINITY, f64::min);
        assert!(best.evaluation.error_probability <= homogeneous_best + 1e-12);
    }

    #[test]
    fn pareto_front_is_mutually_non_dominating() {
        let designs =
            enumerate_designs(&lpaa_candidates(), &InputProfile::constant(3, 0.1)).expect("small");
        let front = pareto_front(designs.clone());
        assert!(!front.is_empty());
        assert!(front.len() < designs.len());
        for a in &front {
            for b in &front {
                assert!(!a.evaluation.dominates(&b.evaluation) || a == b);
            }
        }
        // Every dropped design is dominated by someone on the front.
        for d in &designs {
            if !front.iter().any(|f| f.chain == d.chain) {
                assert!(
                    front.iter().any(|f| f.evaluation.dominates(&d.evaluation)),
                    "{d} should be dominated"
                );
            }
        }
    }

    #[test]
    fn proxy_accurate_cell_is_exact_and_costed() {
        let cell = accurate_cell_with_proxy_costs();
        assert!(cell.truth_table().is_accurate());
        assert!(cell.characteristics().is_some());
    }

    #[test]
    fn empty_candidates_rejected() {
        let profile = InputProfile::constant(2, 0.1);
        assert_eq!(
            enumerate_designs(&[], &profile),
            Err(ExploreError::NoCandidates)
        );
        assert!(local_search_best(&[], &profile, &Budget::default()).is_err());
    }

    #[test]
    fn oversized_space_rejected() {
        let candidates: Vec<Cell> = StandardCell::APPROXIMATE
            .iter()
            .filter_map(|c| c.characteristics().map(|_| c.cell()))
            .collect();
        let profile = InputProfile::constant(16, 0.1);
        assert!(matches!(
            enumerate_designs(&candidates, &profile),
            Err(ExploreError::SpaceTooLarge { .. })
        ));
    }
}
