//! Hybrid-adder search algorithms.
//!
//! # Prefix-sharing design-space exploration
//!
//! The M/K/L recursion is a left-fold over [`CarryState`], so two designs
//! that agree on their first *i* stages share the analysis state after
//! stage *i* exactly. The exhaustive searches below therefore walk the
//! `C^N` assignment space as a depth-first traversal of the per-stage cell
//! tree, carrying a [`PrefixStepper`]: one O(1) stage step per tree edge
//! (`Σ C^i ≈ C^N·C/(C−1)` steps total) instead of a full O(N) analysis per
//! leaf. Power and area accumulate along the same tree path with the same
//! left-fold f64 operation order as [`AdderChain::total_power_nw`], so every
//! reported [`Evaluation`] is bit-identical to the naive
//! re-analyze-per-design route (pinned by `exhaustive_best_reference` in
//! the differential tests).
//!
//! # Determinism contract
//!
//! Parallel variants split the stage-0 subtrees across `std::thread::scope`
//! workers and merge partials in lexicographic (odometer) design order:
//! [`exhaustive_designs`] scatters each leaf into its odometer slot, and
//! [`exhaustive_best_with`] breaks score ties by lowest odometer index. The
//! returned designs — order, best pick, Pareto front, every f64 bit — are
//! identical for every thread count.
//!
//! [`CarryState`]: sealpaa_core::CarryState

use std::fmt;
use std::ops::Range;

use sealpaa_cells::{AdderChain, Cell, CellCharacteristics, InputProfile, StandardCell};
use sealpaa_core::{analyze, MklMatrices, PrefixStepper};

/// Errors produced by the exploration functions.
#[derive(Debug, Clone, PartialEq)]
pub enum ExploreError {
    /// A candidate cell has no power/area characteristics, so budgeted
    /// search cannot score it.
    MissingCharacteristics {
        /// Name of the offending cell.
        cell: String,
    },
    /// No candidate cells were supplied.
    NoCandidates,
    /// The exhaustive enumeration would exceed the configured cap.
    SpaceTooLarge {
        /// Number of designs the request implies.
        designs: u128,
        /// Maximum the enumerator accepts.
        max: u128,
    },
    /// Bit-true verification of a design failed (e.g. the width exceeds
    /// what exhaustive simulation will enumerate).
    Simulation {
        /// The underlying simulator error.
        source: sealpaa_sim::SimError,
    },
    /// The block-based analytical engine rejected a configuration (width
    /// mismatch, stepper misuse, or error-distance support overflow).
    Blocks {
        /// The underlying block-engine error.
        source: sealpaa_blocks::BlockError,
    },
    /// The datapath propagation engine rejected a graph or its inputs
    /// (name mismatch, errorful gate control, …).
    Propagate {
        /// The underlying propagation error.
        source: sealpaa_propagate::PropagateError,
    },
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::MissingCharacteristics { cell } => {
                write!(f, "cell {cell:?} has no power/area characteristics")
            }
            ExploreError::NoCandidates => f.write_str("candidate cell list is empty"),
            ExploreError::SpaceTooLarge { designs, max } => {
                write!(
                    f,
                    "design space of {designs} points exceeds the cap of {max}"
                )
            }
            ExploreError::Simulation { source } => {
                write!(f, "bit-true verification failed: {source}")
            }
            ExploreError::Blocks { source } => {
                write!(f, "block analysis failed: {source}")
            }
            ExploreError::Propagate { source } => {
                write!(f, "datapath propagation failed: {source}")
            }
        }
    }
}

impl std::error::Error for ExploreError {}

/// Resource budget a design must respect. `None` means unconstrained.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Budget {
    /// Maximum total power in nanowatts.
    pub max_power_nw: Option<f64>,
    /// Maximum total area in gate equivalents.
    pub max_area_ge: Option<f64>,
}

impl Budget {
    /// `true` if an evaluation fits within the budget.
    pub fn admits(&self, eval: &Evaluation) -> bool {
        self.max_power_nw.is_none_or(|cap| eval.power_nw <= cap)
            && self.max_area_ge.is_none_or(|cap| eval.area_ge <= cap)
    }
}

/// The score of one concrete chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evaluation {
    /// Analytical error probability (the proposed method).
    pub error_probability: f64,
    /// Summed cell power (paper Table 2 units: nW).
    pub power_nw: f64,
    /// Summed cell area (gate equivalents).
    pub area_ge: f64,
}

impl Evaluation {
    /// `true` if `self` is at least as good as `other` on every axis and
    /// strictly better on at least one (Pareto dominance).
    pub fn dominates(&self, other: &Evaluation) -> bool {
        let no_worse = self.error_probability <= other.error_probability
            && self.power_nw <= other.power_nw
            && self.area_ge <= other.area_ge;
        let better = self.error_probability < other.error_probability
            || self.power_nw < other.power_nw
            || self.area_ge < other.area_ge;
        no_worse && better
    }
}

/// A scored hybrid design.
#[derive(Debug, Clone, PartialEq)]
pub struct HybridDesign {
    /// The chain itself (stage cells, LSB first).
    pub chain: AdderChain,
    /// Its score under the profile it was searched for.
    pub evaluation: Evaluation,
}

impl fmt::Display for HybridDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} → P(err)={:.6}, {:.0} nW, {:.2} GE",
            self.chain,
            self.evaluation.error_probability,
            self.evaluation.power_nw,
            self.evaluation.area_ge
        )
    }
}

/// An accurate full adder annotated with *estimated* power/area so it can
/// participate in budgeted search (the paper's Table 2 characterises only
/// LPAA 1–5).
///
/// The estimate extrapolates Table 2: LPAA 1 is the least-simplified
/// approximate mirror adder at 771 nW / 4.23 GE; a conventional (unsimplified)
/// mirror adder has roughly 1.4× its transistor count, giving ≈ 1080 nW and
/// ≈ 5.9 GE. The exact figures only shift where budget lines fall — every
/// qualitative conclusion in the examples is insensitive to them.
pub fn accurate_cell_with_proxy_costs() -> Cell {
    Cell::custom_with_characteristics(
        "AccuFA (est.)",
        StandardCell::Accurate.truth_table(),
        CellCharacteristics::new(1080.0, 5.9),
    )
}

/// Scores one chain under a profile: analytical error probability plus
/// summed power/area.
///
/// # Errors
///
/// Returns [`ExploreError::MissingCharacteristics`] if any stage lacks
/// power/area data.
///
/// # Panics
///
/// Panics if `profile.width() != chain.width()` (the chain is constructed by
/// this crate's own search entry points, which guarantee matching widths).
pub fn evaluate(
    chain: &AdderChain,
    profile: &InputProfile<f64>,
) -> Result<Evaluation, ExploreError> {
    for cell in chain {
        if cell.characteristics().is_none() {
            return Err(ExploreError::MissingCharacteristics {
                cell: cell.name().to_owned(),
            });
        }
    }
    let analysis = analyze(chain, profile).expect("widths are validated by callers");
    Ok(Evaluation {
        error_probability: analysis.error_probability(),
        power_nw: chain.total_power_nw().expect("checked above"),
        area_ge: chain.total_area_ge().expect("checked above"),
    })
}

/// Hard cap on the exhaustive enumeration size (designs are materialized).
pub const MAX_ENUMERATION: u128 = 2_000_000;

/// Hard cap on the non-materializing best-design search, which keeps only
/// the incumbent and therefore tolerates much larger spaces (N=8 over all
/// 8 cells is 16.7M designs).
pub const MAX_SEARCH: u128 = 100_000_000;

/// Per-candidate data the DFS needs at every tree edge, derived once:
/// M/K/L matrices and power/area increments.
struct DfsContext<'c> {
    candidates: &'c [Cell],
    mkls: Vec<MklMatrices>,
    powers: Vec<f64>,
    areas: Vec<f64>,
}

impl<'c> DfsContext<'c> {
    /// Validates every candidate up front (the DFS scores designs without
    /// materializing chains, so the per-chain characteristics check in
    /// [`evaluate`] never runs). The first candidate missing characteristics
    /// is reported — the same cell the odometer enumeration would have
    /// tripped over first.
    fn new(candidates: &'c [Cell]) -> Result<Self, ExploreError> {
        let mut mkls = Vec::with_capacity(candidates.len());
        let mut powers = Vec::with_capacity(candidates.len());
        let mut areas = Vec::with_capacity(candidates.len());
        for cell in candidates {
            let ch =
                cell.characteristics()
                    .ok_or_else(|| ExploreError::MissingCharacteristics {
                        cell: cell.name().to_owned(),
                    })?;
            mkls.push(MklMatrices::from_truth_table(cell.truth_table()));
            powers.push(ch.power_nw);
            areas.push(ch.area_ge);
        }
        Ok(DfsContext {
            candidates,
            mkls,
            powers,
            areas,
        })
    }

    fn chain_of(&self, assignment: &[usize]) -> AdderChain {
        AdderChain::from_stages(
            assignment
                .iter()
                .map(|&c| self.candidates[c].clone())
                .collect(),
        )
    }
}

/// Splits `0..n` into at most `parts` contiguous non-empty ranges.
///
/// Every search that fans out over these ranges merges its partials in
/// range order, so results are thread-count invariant — which means
/// oversubscribing past the machine's cores can only add scheduling
/// overhead (the `dse/w40 _t4 > _t1` regression in BENCH_blocks.json).
/// `parts` is therefore additionally clamped to available parallelism.
pub(crate) fn split_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let parts = parts.min(cores).clamp(1, n.max(1));
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// One enumeration state threaded through the DFS: the stepper prefix, the
/// partial power/area folds (same f64 operation order as
/// [`AdderChain::total_power_nw`]), and the design's odometer index built
/// digit by digit (`assignment[0]` is the fastest-cycling digit, matching
/// the historical odometer order).
#[allow(clippy::too_many_arguments)] // recursive DFS state, deliberately unpacked
fn enumerate_subtree<'p>(
    ctx: &DfsContext<'_>,
    stepper: &mut PrefixStepper<'p, f64>,
    assignment: &mut Vec<usize>,
    power: f64,
    area: f64,
    index: usize,
    weight: usize,
    out: &mut Vec<(usize, HybridDesign)>,
) {
    let depth = stepper.depth();
    if depth == stepper.max_depth() {
        let evaluation = Evaluation {
            error_probability: stepper.error_probability(),
            power_nw: power,
            area_ge: area,
        };
        out.push((
            index,
            HybridDesign {
                chain: ctx.chain_of(assignment),
                evaluation,
            },
        ));
        return;
    }
    for c in 0..ctx.candidates.len() {
        stepper.push(&ctx.mkls[c]);
        assignment.push(c);
        enumerate_subtree(
            ctx,
            stepper,
            assignment,
            power + ctx.powers[c],
            area + ctx.areas[c],
            index + c * weight,
            weight * ctx.candidates.len(),
            out,
        );
        assignment.pop();
        stepper.truncate(depth);
    }
}

/// Enumerates and scores every `candidates^width` design (small spaces
/// only) with `threads` workers, prefix-sharing the analysis across designs.
///
/// Results are in the same order as [`enumerate_designs`] (stage-0 cell
/// cycling fastest) and are byte-identical for every thread count: workers
/// own contiguous ranges of stage-0 subtrees and every design is scattered
/// into its odometer slot before the merged vector is returned.
///
/// # Errors
///
/// * [`ExploreError::NoCandidates`] for an empty candidate list.
/// * [`ExploreError::MissingCharacteristics`] if a candidate lacks data.
/// * [`ExploreError::SpaceTooLarge`] beyond [`MAX_ENUMERATION`] designs.
pub fn exhaustive_designs(
    candidates: &[Cell],
    profile: &InputProfile<f64>,
    threads: usize,
) -> Result<Vec<HybridDesign>, ExploreError> {
    if candidates.is_empty() {
        return Err(ExploreError::NoCandidates);
    }
    let width = profile.width();
    let designs = (candidates.len() as u128).saturating_pow(width as u32);
    if designs > MAX_ENUMERATION {
        return Err(ExploreError::SpaceTooLarge {
            designs,
            max: MAX_ENUMERATION,
        });
    }
    if width == 0 {
        let chain = AdderChain::from_stages(Vec::new());
        let evaluation = evaluate(&chain, profile)?;
        return Ok(vec![HybridDesign { chain, evaluation }]);
    }
    let ctx = DfsContext::new(candidates)?;
    let ranges = split_ranges(candidates.len(), threads);
    let partials: Vec<Vec<(usize, HybridDesign)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| {
                let ctx = &ctx;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut stepper = PrefixStepper::new(profile);
                    let mut assignment = Vec::with_capacity(profile.width());
                    for c in range {
                        stepper.truncate(0);
                        stepper.push(&ctx.mkls[c]);
                        assignment.push(c);
                        enumerate_subtree(
                            ctx,
                            &mut stepper,
                            &mut assignment,
                            ctx.powers[c],
                            ctx.areas[c],
                            c,
                            ctx.candidates.len(),
                            &mut out,
                        );
                        assignment.pop();
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("enumeration worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<HybridDesign>> = (0..designs as usize).map(|_| None).collect();
    for (index, design) in partials.into_iter().flatten() {
        slots[index] = Some(design);
    }
    Ok(slots
        .into_iter()
        .map(|slot| slot.expect("every odometer index is visited exactly once"))
        .collect())
}

/// Enumerates and scores every `candidates^width` design (small spaces
/// only), single-threaded. See [`exhaustive_designs`] for the parallel
/// variant; both return identical results.
///
/// # Errors
///
/// * [`ExploreError::NoCandidates`] for an empty candidate list.
/// * [`ExploreError::MissingCharacteristics`] if a candidate lacks data.
/// * [`ExploreError::SpaceTooLarge`] beyond [`MAX_ENUMERATION`] designs.
pub fn enumerate_designs(
    candidates: &[Cell],
    profile: &InputProfile<f64>,
) -> Result<Vec<HybridDesign>, ExploreError> {
    exhaustive_designs(candidates, profile, 1)
}

/// The incumbent of the best-design search: score, odometer index (for
/// deterministic tie-breaks across thread partitions) and the assignment to
/// rebuild the chain from.
struct Incumbent {
    evaluation: Evaluation,
    index: u128,
    assignment: Vec<usize>,
}

/// `true` if `challenger` should replace `incumbent`: strictly better on
/// the (error, power, area) tuple, or tied and earlier in odometer order —
/// the same "first seen wins ties" rule the sequential scan had, now
/// partition-independent.
fn replaces(challenger: &Incumbent, incumbent: &Incumbent) -> bool {
    let c = (
        challenger.evaluation.error_probability,
        challenger.evaluation.power_nw,
        challenger.evaluation.area_ge,
    );
    let i = (
        incumbent.evaluation.error_probability,
        incumbent.evaluation.power_nw,
        incumbent.evaluation.area_ge,
    );
    c < i || (c == i && challenger.index < incumbent.index)
}

#[allow(clippy::too_many_arguments)] // recursive DFS state, deliberately unpacked
fn best_subtree<'p>(
    ctx: &DfsContext<'_>,
    budget: &Budget,
    stepper: &mut PrefixStepper<'p, f64>,
    assignment: &mut Vec<usize>,
    power: f64,
    area: f64,
    index: u128,
    weight: u128,
    best: &mut Option<Incumbent>,
) {
    let depth = stepper.depth();
    if depth == stepper.max_depth() {
        let evaluation = Evaluation {
            error_probability: stepper.error_probability(),
            power_nw: power,
            area_ge: area,
        };
        if !budget.admits(&evaluation) {
            return;
        }
        let challenger = Incumbent {
            evaluation,
            index,
            assignment: assignment.clone(),
        };
        let replace = match best {
            None => true,
            Some(incumbent) => replaces(&challenger, incumbent),
        };
        if replace {
            *best = Some(challenger);
        }
        return;
    }
    for c in 0..ctx.candidates.len() {
        let power = power + ctx.powers[c];
        let area = area + ctx.areas[c];
        // Sound pruning: stage costs are non-negative and f64 addition of
        // non-negative values is monotone, so a prefix already over a cap
        // means every completion is over the cap (and inadmissible).
        if budget.max_power_nw.is_some_and(|cap| power > cap)
            || budget.max_area_ge.is_some_and(|cap| area > cap)
        {
            continue;
        }
        stepper.push(&ctx.mkls[c]);
        assignment.push(c);
        best_subtree(
            ctx,
            budget,
            stepper,
            assignment,
            power,
            area,
            index + c as u128 * weight,
            weight * ctx.candidates.len() as u128,
            best,
        );
        assignment.pop();
        stepper.truncate(depth);
    }
}

/// The provably best design under a budget, by exhaustive prefix-sharing
/// search over `threads` workers. Returns `None` if no design fits the
/// budget.
///
/// Ties on error probability are broken by lower power, then lower area,
/// then earliest odometer position — so the winner is identical for every
/// thread count. Designs are never materialized (only the incumbent's
/// assignment is kept), which is why the cap is [`MAX_SEARCH`] rather than
/// [`MAX_ENUMERATION`].
///
/// # Errors
///
/// * [`ExploreError::NoCandidates`] for an empty candidate list.
/// * [`ExploreError::MissingCharacteristics`] if a candidate lacks data.
/// * [`ExploreError::SpaceTooLarge`] beyond [`MAX_SEARCH`] designs.
pub fn exhaustive_best_with(
    candidates: &[Cell],
    profile: &InputProfile<f64>,
    budget: &Budget,
    threads: usize,
) -> Result<Option<HybridDesign>, ExploreError> {
    if candidates.is_empty() {
        return Err(ExploreError::NoCandidates);
    }
    let width = profile.width();
    let designs = (candidates.len() as u128).saturating_pow(width as u32);
    if designs > MAX_SEARCH {
        return Err(ExploreError::SpaceTooLarge {
            designs,
            max: MAX_SEARCH,
        });
    }
    if width == 0 {
        let chain = AdderChain::from_stages(Vec::new());
        let evaluation = evaluate(&chain, profile)?;
        return Ok(budget
            .admits(&evaluation)
            .then_some(HybridDesign { chain, evaluation }));
    }
    let ctx = DfsContext::new(candidates)?;
    let ranges = split_ranges(candidates.len(), threads);
    let partials: Vec<Option<Incumbent>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| {
                let ctx = &ctx;
                scope.spawn(move || {
                    let mut best = None;
                    let mut stepper = PrefixStepper::new(profile);
                    let mut assignment = Vec::with_capacity(profile.width());
                    for c in range {
                        let power = ctx.powers[c];
                        let area = ctx.areas[c];
                        if budget.max_power_nw.is_some_and(|cap| power > cap)
                            || budget.max_area_ge.is_some_and(|cap| area > cap)
                        {
                            continue;
                        }
                        stepper.truncate(0);
                        stepper.push(&ctx.mkls[c]);
                        assignment.push(c);
                        best_subtree(
                            ctx,
                            budget,
                            &mut stepper,
                            &mut assignment,
                            power,
                            area,
                            c as u128,
                            ctx.candidates.len() as u128,
                            &mut best,
                        );
                        assignment.pop();
                    }
                    best
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("search worker panicked"))
            .collect()
    });
    let mut best: Option<Incumbent> = None;
    for challenger in partials.into_iter().flatten() {
        let replace = match &best {
            None => true,
            Some(incumbent) => replaces(&challenger, incumbent),
        };
        if replace {
            best = Some(challenger);
        }
    }
    Ok(best.map(|incumbent| HybridDesign {
        chain: ctx.chain_of(&incumbent.assignment),
        evaluation: incumbent.evaluation,
    }))
}

/// The provably best design under a budget, single-threaded. See
/// [`exhaustive_best_with`]; both return identical results.
///
/// Ties on error probability are broken by lower power, then lower area.
///
/// # Errors
///
/// Same conditions as [`exhaustive_best_with`].
pub fn exhaustive_best(
    candidates: &[Cell],
    profile: &InputProfile<f64>,
    budget: &Budget,
) -> Result<Option<HybridDesign>, ExploreError> {
    exhaustive_best_with(candidates, profile, budget, 1)
}

/// The pre-stepper reference search: a fresh odometer enumeration with one
/// full [`evaluate`] (complete O(N) analysis) per design. Kept as the
/// differential-test oracle and the benchmark baseline for the
/// prefix-sharing engine; do not use it for real workloads.
///
/// # Errors
///
/// Same conditions as [`exhaustive_best_with`].
pub fn exhaustive_best_reference(
    candidates: &[Cell],
    profile: &InputProfile<f64>,
    budget: &Budget,
) -> Result<Option<HybridDesign>, ExploreError> {
    if candidates.is_empty() {
        return Err(ExploreError::NoCandidates);
    }
    let width = profile.width();
    let designs = (candidates.len() as u128).saturating_pow(width as u32);
    if designs > MAX_SEARCH {
        return Err(ExploreError::SpaceTooLarge {
            designs,
            max: MAX_SEARCH,
        });
    }
    let mut best: Option<HybridDesign> = None;
    let mut assignment = vec![0usize; width];
    loop {
        let chain =
            AdderChain::from_stages(assignment.iter().map(|&c| candidates[c].clone()).collect());
        let evaluation = evaluate(&chain, profile)?;
        if budget.admits(&evaluation) {
            let better = match &best {
                None => true,
                Some(b) => {
                    let (e, p, a) = (
                        evaluation.error_probability,
                        evaluation.power_nw,
                        evaluation.area_ge,
                    );
                    let (be, bp, ba) = (
                        b.evaluation.error_probability,
                        b.evaluation.power_nw,
                        b.evaluation.area_ge,
                    );
                    (e, p, a) < (be, bp, ba)
                }
            };
            if better {
                best = Some(HybridDesign { chain, evaluation });
            }
        }
        // Odometer increment over candidate indices.
        let mut i = 0;
        loop {
            if i == width {
                return Ok(best);
            }
            assignment[i] += 1;
            if assignment[i] < candidates.len() {
                break;
            }
            assignment[i] = 0;
            i += 1;
        }
    }
}

/// Deterministic hill-climbing: start from the lowest-power feasible
/// homogeneous chain, then repeatedly apply the single-stage substitution
/// that most reduces the error probability while staying inside the budget,
/// until no substitution improves. Scales to widths where enumeration
/// cannot go; the tests cross-check it against [`exhaustive_best`] on small
/// spaces.
///
/// Returns `None` if not even the cheapest homogeneous chain fits the
/// budget.
///
/// # Errors
///
/// * [`ExploreError::NoCandidates`] for an empty candidate list.
/// * [`ExploreError::MissingCharacteristics`] if a candidate lacks data.
pub fn local_search_best(
    candidates: &[Cell],
    profile: &InputProfile<f64>,
    budget: &Budget,
) -> Result<Option<HybridDesign>, ExploreError> {
    if candidates.is_empty() {
        return Err(ExploreError::NoCandidates);
    }
    let width = profile.width();
    // Start from the cheapest (by power) homogeneous chain.
    let mut cheapest = 0usize;
    for (i, cell) in candidates.iter().enumerate() {
        let ch = cell
            .characteristics()
            .ok_or_else(|| ExploreError::MissingCharacteristics {
                cell: cell.name().to_owned(),
            })?;
        let cheapest_power = candidates[cheapest]
            .characteristics()
            .expect("validated in earlier iterations")
            .power_nw;
        if ch.power_nw < cheapest_power {
            cheapest = i;
        }
    }
    let ctx = DfsContext::new(candidates)?;
    let mut assignment = vec![cheapest; width];
    let mut current = evaluate(&ctx.chain_of(&assignment), profile)?;
    if !budget.admits(&current) {
        return Ok(None);
    }
    // Each neighbor differs from the current chain in exactly one stage, so
    // only the suffix from the mutated stage needs re-analysis: rewind the
    // stepper to the mutated depth, push the substitute, replay the
    // original tail. Power/area are re-folded in plain stage order so every
    // f64 matches a fresh `evaluate` of the neighbor bit for bit.
    let mut stepper = PrefixStepper::new(profile);
    loop {
        let mut best_move: Option<(usize, usize, Evaluation)> = None;
        stepper.truncate(0); // the prefix is stale after an applied move
        for stage in 0..width {
            let original = assignment[stage];
            for cand in 0..candidates.len() {
                if cand == original {
                    continue;
                }
                stepper.truncate(stage);
                stepper.push(&ctx.mkls[cand]);
                for &cell in &assignment[stage + 1..width] {
                    stepper.push(&ctx.mkls[cell]);
                }
                let cost_of = |per_cell: &[f64]| {
                    (0..width).fold(0.0, |acc, t| {
                        acc + per_cell[if t == stage { cand } else { assignment[t] }]
                    })
                };
                let eval = Evaluation {
                    error_probability: stepper.error_probability(),
                    power_nw: cost_of(&ctx.powers),
                    area_ge: cost_of(&ctx.areas),
                };
                if !budget.admits(&eval) {
                    continue;
                }
                let improves = eval.error_probability < current.error_probability - 1e-15
                    || (eval.error_probability <= current.error_probability + 1e-15
                        && eval.power_nw < current.power_nw - 1e-12);
                if improves {
                    let better_than_best = match &best_move {
                        None => true,
                        Some((_, _, b)) => {
                            eval.error_probability < b.error_probability
                                || (eval.error_probability == b.error_probability
                                    && eval.power_nw < b.power_nw)
                        }
                    };
                    if better_than_best {
                        best_move = Some((stage, cand, eval));
                    }
                }
            }
            // Re-seat the original cell so deeper stages rewind onto the
            // current assignment's prefix, not the last neighbor's.
            stepper.truncate(stage);
            stepper.push(&ctx.mkls[original]);
        }
        match best_move {
            Some((stage, cand, eval)) => {
                assignment[stage] = cand;
                current = eval;
            }
            None => break,
        }
    }
    let chain = ctx.chain_of(&assignment);
    Ok(Some(HybridDesign {
        chain,
        evaluation: current,
    }))
}

/// Filters a design set down to its Pareto frontier over
/// (error probability, power, area), sorted by ascending error.
pub fn pareto_front(mut designs: Vec<HybridDesign>) -> Vec<HybridDesign> {
    let mut front: Vec<HybridDesign> = Vec::new();
    designs.sort_by(|a, b| {
        a.evaluation
            .error_probability
            .total_cmp(&b.evaluation.error_probability)
            .then(a.evaluation.power_nw.total_cmp(&b.evaluation.power_nw))
    });
    for design in designs {
        if !front
            .iter()
            .any(|kept| kept.evaluation.dominates(&design.evaluation))
        {
            front.retain(|kept| !design.evaluation.dominates(&kept.evaluation));
            front.push(design);
        }
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lpaa_candidates() -> Vec<Cell> {
        vec![
            StandardCell::Lpaa1.cell(),
            StandardCell::Lpaa2.cell(),
            StandardCell::Lpaa5.cell(),
        ]
    }

    #[test]
    fn evaluate_requires_characteristics() {
        let chain = AdderChain::uniform(StandardCell::Accurate.cell(), 2);
        let profile = InputProfile::<f64>::uniform(2);
        assert!(matches!(
            evaluate(&chain, &profile),
            Err(ExploreError::MissingCharacteristics { .. })
        ));
    }

    #[test]
    fn evaluate_sums_costs() {
        let chain = AdderChain::uniform(StandardCell::Lpaa2.cell(), 3);
        let profile = InputProfile::constant(3, 0.1);
        let e = evaluate(&chain, &profile).expect("characteristics present");
        assert!((e.power_nw - 3.0 * 294.0).abs() < 1e-9);
        assert!((e.area_ge - 3.0 * 1.94).abs() < 1e-9);
        assert!(e.error_probability > 0.0);
    }

    #[test]
    fn enumeration_counts_candidates_pow_width() {
        let designs =
            enumerate_designs(&lpaa_candidates(), &InputProfile::constant(3, 0.2)).expect("small");
        assert_eq!(designs.len(), 27);
    }

    #[test]
    fn exhaustive_best_respects_budget() {
        let profile = InputProfile::constant(4, 0.1);
        let budget = Budget {
            max_power_nw: Some(900.0),
            max_area_ge: None,
        };
        let best = exhaustive_best(&lpaa_candidates(), &profile, &budget)
            .expect("small space")
            .expect("feasible");
        assert!(best.evaluation.power_nw <= 900.0);
        // And it must be at least as good as any feasible competitor.
        for d in enumerate_designs(&lpaa_candidates(), &profile).expect("small") {
            if budget.admits(&d.evaluation) {
                assert!(
                    best.evaluation.error_probability <= d.evaluation.error_probability + 1e-12
                );
            }
        }
    }

    #[test]
    fn infeasible_budget_yields_none() {
        let profile = InputProfile::constant(2, 0.1);
        let budget = Budget {
            max_power_nw: Some(-1.0),
            max_area_ge: None,
        };
        assert_eq!(
            exhaustive_best(&lpaa_candidates(), &profile, &budget).expect("small"),
            None
        );
    }

    #[test]
    fn local_search_matches_exhaustive_on_small_space() {
        let profile = InputProfile::constant(4, 0.15);
        let budget = Budget {
            max_power_nw: Some(1500.0),
            max_area_ge: None,
        };
        let exhaustive = exhaustive_best(&lpaa_candidates(), &profile, &budget)
            .expect("small")
            .expect("feasible");
        let local = local_search_best(&lpaa_candidates(), &profile, &budget)
            .expect("valid")
            .expect("feasible");
        // Hill climbing may tie rather than find the same chain, but on this
        // small space it should reach the optimal error.
        assert!(
            (local.evaluation.error_probability - exhaustive.evaluation.error_probability).abs()
                < 1e-9,
            "local {} vs exhaustive {}",
            local.evaluation.error_probability,
            exhaustive.evaluation.error_probability
        );
    }

    #[test]
    fn unconstrained_search_prefers_most_accurate_candidate() {
        // With no budget, the best design minimizes error outright.
        let profile = InputProfile::constant(3, 0.5);
        let best = exhaustive_best(&lpaa_candidates(), &profile, &Budget::default())
            .expect("small")
            .expect("feasible");
        let homogeneous_best = lpaa_candidates()
            .iter()
            .map(|c| {
                evaluate(&AdderChain::uniform(c.clone(), 3), &profile)
                    .expect("chars")
                    .error_probability
            })
            .fold(f64::INFINITY, f64::min);
        assert!(best.evaluation.error_probability <= homogeneous_best + 1e-12);
    }

    #[test]
    fn pareto_front_is_mutually_non_dominating() {
        let designs =
            enumerate_designs(&lpaa_candidates(), &InputProfile::constant(3, 0.1)).expect("small");
        let front = pareto_front(designs.clone());
        assert!(!front.is_empty());
        assert!(front.len() < designs.len());
        for a in &front {
            for b in &front {
                assert!(!a.evaluation.dominates(&b.evaluation) || a == b);
            }
        }
        // Every dropped design is dominated by someone on the front.
        for d in &designs {
            if !front.iter().any(|f| f.chain == d.chain) {
                assert!(
                    front.iter().any(|f| f.evaluation.dominates(&d.evaluation)),
                    "{d} should be dominated"
                );
            }
        }
    }

    #[test]
    fn proxy_accurate_cell_is_exact_and_costed() {
        let cell = accurate_cell_with_proxy_costs();
        assert!(cell.truth_table().is_accurate());
        assert!(cell.characteristics().is_some());
    }

    #[test]
    fn empty_candidates_rejected() {
        let profile = InputProfile::constant(2, 0.1);
        assert_eq!(
            enumerate_designs(&[], &profile),
            Err(ExploreError::NoCandidates)
        );
        assert!(local_search_best(&[], &profile, &Budget::default()).is_err());
    }

    #[test]
    fn oversized_space_rejected() {
        let candidates: Vec<Cell> = StandardCell::APPROXIMATE
            .iter()
            .filter_map(|c| c.characteristics().map(|_| c.cell()))
            .collect();
        let profile = InputProfile::constant(16, 0.1);
        assert!(matches!(
            enumerate_designs(&candidates, &profile),
            Err(ExploreError::SpaceTooLarge { .. })
        ));
    }
}
