//! Side-by-side cell scorecards: everything a designer asks about a cell at
//! a given width and input profile, in one pass.

use sealpaa_cells::{AdderChain, Cell, InputProfile};
use sealpaa_core::{analyze, error_magnitude, worst_case_error};

/// All the per-cell figures of merit the library can produce for one
/// deployment context (width + input profile).
#[derive(Debug, Clone, PartialEq)]
pub struct CellScore {
    /// The scored cell.
    pub cell: Cell,
    /// The paper's analytical error probability.
    pub error_probability: f64,
    /// Mean signed error distance (bias) — drives drift in accumulators.
    pub mean_error_distance: f64,
    /// RMS error distance.
    pub rms_error_distance: f64,
    /// Largest-magnitude error the chain can ever produce.
    pub worst_case_error: i128,
    /// Total power in nW, when the cell has characteristics.
    pub power_nw: Option<f64>,
    /// Total area in gate equivalents, when the cell has characteristics.
    pub area_ge: Option<f64>,
}

/// Scores each candidate cell as a homogeneous chain over the profile.
///
/// # Panics
///
/// Panics if `profile.width() > 63` (the worst-case analysis reconstructs
/// `u64` witnesses) or `candidates` is empty.
///
/// # Examples
///
/// ```
/// use sealpaa_cells::{InputProfile, StandardCell};
/// use sealpaa_explore::score_cells;
///
/// let scores = score_cells(
///     &[StandardCell::Lpaa1.cell(), StandardCell::Lpaa7.cell()],
///     &InputProfile::constant(8, 0.1),
/// );
/// // At p = 0.1 LPAA 7 is far more accurate than LPAA 1 (paper Table 7).
/// assert!(scores[1].error_probability < scores[0].error_probability / 10.0);
/// ```
pub fn score_cells(candidates: &[Cell], profile: &InputProfile<f64>) -> Vec<CellScore> {
    assert!(!candidates.is_empty(), "candidate cell list is empty");
    let width = profile.width();
    candidates
        .iter()
        .map(|cell| {
            let chain = AdderChain::uniform(cell.clone(), width);
            let analysis = analyze(&chain, profile).expect("widths match by construction");
            let moments = error_magnitude(&chain, profile).expect("widths match by construction");
            let wc = worst_case_error(&chain).expect("width is validated by the caller");
            let worst = if wc.max_error.unsigned_abs() >= wc.min_error.unsigned_abs() {
                wc.max_error
            } else {
                wc.min_error
            };
            CellScore {
                cell: cell.clone(),
                error_probability: analysis.error_probability().clamp(0.0, 1.0),
                mean_error_distance: moments.mean_error_distance,
                rms_error_distance: moments.rms_error_distance(),
                worst_case_error: worst,
                power_nw: chain.total_power_nw(),
                area_ge: chain.total_area_ge(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sealpaa_cells::StandardCell;

    fn all_cells() -> Vec<Cell> {
        StandardCell::ALL.iter().map(|c| c.cell()).collect()
    }

    #[test]
    fn accurate_cell_scores_clean() {
        let scores = score_cells(&all_cells(), &InputProfile::constant(8, 0.3));
        let accurate = &scores[0];
        assert_eq!(accurate.cell.name(), "AccuFA");
        assert!(accurate.error_probability.abs() < 1e-12);
        assert_eq!(accurate.worst_case_error, 0);
        assert_eq!(accurate.rms_error_distance, 0.0);
        assert_eq!(accurate.power_nw, None);
    }

    #[test]
    fn costed_cells_report_power() {
        let scores = score_cells(
            &[StandardCell::Lpaa2.cell()],
            &InputProfile::constant(4, 0.5),
        );
        assert_eq!(scores[0].power_nw, Some(4.0 * 294.0));
        assert_eq!(scores[0].area_ge, Some(4.0 * 1.94));
    }

    #[test]
    fn table7_ordering_shows_up_in_scores() {
        let scores = score_cells(
            &[StandardCell::Lpaa2.cell(), StandardCell::Lpaa7.cell()],
            &InputProfile::constant(8, 0.1),
        );
        assert!(scores[1].error_probability < scores[0].error_probability);
    }

    #[test]
    fn worst_case_sign_prefers_larger_magnitude() {
        // LPAA 7 never undershoots, so its worst case is positive.
        let scores = score_cells(
            &[StandardCell::Lpaa7.cell()],
            &InputProfile::constant(8, 0.5),
        );
        assert!(scores[0].worst_case_error > 0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_candidates_panics() {
        let _ = score_cells(&[], &InputProfile::constant(4, 0.5));
    }
}
