//! Design-space exploration over heterogeneous block-based adders.
//!
//! The search enumerates every way to tile the operand width with blocks
//! drawn from a [`BlockSearchSpace`] (allowed widths × prediction depths ×
//! cells), scores each configuration by an exact error-distance statistic
//! (mean |ED|, MSE, or error rate — the `sealpaa-blocks` analytical
//! engine), and keeps the best design under power/area/delay budgets or
//! the full Pareto frontier.
//!
//! # Prefix sharing
//!
//! The analytical ED recursion is a left-fold over bit positions, so two
//! configurations that agree on their leading blocks share the recursion's
//! state exactly. The search walks the tiling tree depth-first carrying a
//! [`BlockDistanceStepper`]: each tree edge pays one incremental `push`
//! (positions no later block can reach), each leaf one tail pass — instead
//! of a full O(N) analysis per configuration. The naive
//! re-analyze-per-config route is kept as
//! [`best_block_design_reference`], the differential oracle and benchmark
//! baseline.
//!
//! # Determinism contract
//!
//! Parallel variants split the *first-block* choices across
//! `std::thread::scope` workers; leaves carry `(first-choice index,
//! within-subtree ordinal)` and merges break score ties lexicographically
//! on that pair. Results — every f64 bit — are identical for every thread
//! count, because stepper and per-leaf statistics run the same
//! deterministically-ordered code path everywhere.

use std::fmt;

use sealpaa_blocks::{error_distance_distribution, BlockConfig, BlockDistanceStepper, BlockSpec};
use sealpaa_cells::{Cell, InputProfile};
use sealpaa_core::ErrorDistanceDistribution;

use crate::search::{split_ranges, ExploreError, MAX_SEARCH};

/// The per-position choices the block search may combine.
#[derive(Debug, Clone)]
pub struct BlockSearchSpace {
    /// Allowed block result widths (deduplicated, ascending).
    widths: Vec<usize>,
    /// Allowed carry-prediction depths (deduplicated, ascending). A depth
    /// is only usable where it does not reach below bit 0, so block 0
    /// always takes depth 0 — the space must therefore include 0 for any
    /// design to exist.
    predictions: Vec<usize>,
    /// Allowed cells, all with power/area characteristics.
    cells: Vec<Cell>,
}

impl BlockSearchSpace {
    /// Builds a search space.
    ///
    /// # Errors
    ///
    /// * [`ExploreError::NoCandidates`] if any axis is empty or no width is
    ///   non-zero.
    /// * [`ExploreError::MissingCharacteristics`] if a cell cannot be
    ///   costed.
    pub fn new(
        widths: &[usize],
        predictions: &[usize],
        cells: &[Cell],
    ) -> Result<Self, ExploreError> {
        let mut widths: Vec<usize> = widths.iter().copied().filter(|&w| w > 0).collect();
        widths.sort_unstable();
        widths.dedup();
        let mut predictions = predictions.to_vec();
        predictions.sort_unstable();
        predictions.dedup();
        if widths.is_empty() || predictions.is_empty() || cells.is_empty() {
            return Err(ExploreError::NoCandidates);
        }
        for cell in cells {
            if cell.characteristics().is_none() {
                return Err(ExploreError::MissingCharacteristics {
                    cell: cell.name().to_owned(),
                });
            }
        }
        Ok(BlockSearchSpace {
            widths,
            predictions,
            cells: cells.to_vec(),
        })
    }

    /// Allowed widths (ascending).
    pub fn widths(&self) -> &[usize] {
        &self.widths
    }

    /// Allowed prediction depths (ascending).
    pub fn predictions(&self) -> &[usize] {
        &self.predictions
    }

    /// Allowed cells.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Number of prediction depths usable when `covered` bits are already
    /// tiled.
    fn predictions_at(&self, covered: usize) -> usize {
        self.predictions.partition_point(|&p| p <= covered)
    }

    /// Exact design count for `width` (no budget pruning), saturating.
    pub fn design_count(&self, width: usize) -> u128 {
        // ways[s] = completions of a prefix covering s bits.
        let mut ways = vec![0u128; width + 1];
        ways[width] = 1;
        for s in (0..width).rev() {
            let depths = self.predictions_at(s) as u128;
            let mut total = 0u128;
            for &w in &self.widths {
                if s + w <= width {
                    total = total.saturating_add(
                        ways[s + w]
                            .saturating_mul(depths)
                            .saturating_mul(self.cells.len() as u128),
                    );
                }
            }
            ways[s] = total;
        }
        ways[0]
    }
}

/// Budget a block design must respect. `None` means unconstrained.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BlockBudget {
    /// Maximum summed power (window bits × cell power, nW).
    pub max_power_nw: Option<f64>,
    /// Maximum summed area (window bits × cell area, GE).
    pub max_area_ge: Option<f64>,
    /// Maximum single-block window length — the ripple depth of the
    /// longest block, the standard delay proxy for block-based adders.
    pub max_window_len: Option<usize>,
}

impl BlockBudget {
    /// `true` if an evaluation fits.
    pub fn admits(&self, eval: &BlockEvaluation) -> bool {
        self.max_power_nw.is_none_or(|cap| eval.power_nw <= cap)
            && self.max_area_ge.is_none_or(|cap| eval.area_ge <= cap)
            && self
                .max_window_len
                .is_none_or(|cap| eval.max_window_len <= cap)
    }
}

/// The statistic a best-design search minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockObjective {
    /// `E[|D|]` — mean error distance.
    MeanAbsolute,
    /// `E[D²]` — mean squared error distance.
    MeanSquared,
    /// `P(D ≠ 0)` — error rate.
    ErrorRate,
}

impl BlockObjective {
    /// Reads the objective off an evaluation.
    pub fn of(self, eval: &BlockEvaluation) -> f64 {
        match self {
            BlockObjective::MeanAbsolute => eval.mean_absolute,
            BlockObjective::MeanSquared => eval.mean_squared,
            BlockObjective::ErrorRate => eval.error_rate,
        }
    }
}

/// The score of one block configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockEvaluation {
    /// `P(D ≠ 0)` under the profile.
    pub error_rate: f64,
    /// `E[|D|]`.
    pub mean_absolute: f64,
    /// `E[D²]`.
    pub mean_squared: f64,
    /// Summed power: window bits × cell power (nW).
    pub power_nw: f64,
    /// Summed area: window bits × cell area (GE).
    pub area_ge: f64,
    /// Longest block window (delay proxy).
    pub max_window_len: usize,
}

impl BlockEvaluation {
    fn from_distribution(
        dist: &ErrorDistanceDistribution<f64>,
        power_nw: f64,
        area_ge: f64,
        max_window_len: usize,
    ) -> Self {
        BlockEvaluation {
            error_rate: dist.error_rate(),
            mean_absolute: dist.mean_absolute(),
            mean_squared: dist.mean_squared(),
            power_nw,
            area_ge,
            max_window_len,
        }
    }

    /// Pareto dominance over (mean |ED|, power, area): at least as good
    /// everywhere, strictly better somewhere.
    pub fn dominates(&self, other: &BlockEvaluation) -> bool {
        let no_worse = self.mean_absolute <= other.mean_absolute
            && self.power_nw <= other.power_nw
            && self.area_ge <= other.area_ge;
        let better = self.mean_absolute < other.mean_absolute
            || self.power_nw < other.power_nw
            || self.area_ge < other.area_ge;
        no_worse && better
    }
}

/// A scored block design.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockDesign {
    /// The configuration.
    pub config: BlockConfig,
    /// Its score under the profile it was searched for.
    pub evaluation: BlockEvaluation,
}

impl fmt::Display for BlockDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} → P(err)={:.6}, E|D|={:.4}, {:.0} nW, {:.2} GE",
            self.config,
            self.evaluation.error_rate,
            self.evaluation.mean_absolute,
            self.evaluation.power_nw,
            self.evaluation.area_ge
        )
    }
}

/// Scores one block configuration with a fresh analytical pass — the same
/// statistics, fold orders, and therefore f64 bits as the prefix-sharing
/// search produce for that configuration.
///
/// # Errors
///
/// * [`ExploreError::MissingCharacteristics`] if a cell cannot be costed.
/// * [`ExploreError::Blocks`] if the analytical engine rejects the
///   configuration (width mismatch, support overflow).
pub fn evaluate_block_config(
    config: &BlockConfig,
    profile: &InputProfile<f64>,
) -> Result<BlockEvaluation, ExploreError> {
    let mut power = 0.0f64;
    let mut area = 0.0f64;
    let mut max_window = 0usize;
    for block in config.blocks() {
        let ch =
            block
                .cell
                .characteristics()
                .ok_or_else(|| ExploreError::MissingCharacteristics {
                    cell: block.cell.name().to_owned(),
                })?;
        let wl = block.window_len();
        power += ch.power_nw * wl as f64;
        area += ch.area_ge * wl as f64;
        max_window = max_window.max(wl);
    }
    let dist = error_distance_distribution(config, profile)
        .map_err(|source| ExploreError::Blocks { source })?;
    Ok(BlockEvaluation::from_distribution(
        &dist, power, area, max_window,
    ))
}

/// One first-block choice: `(width index, cell index)` — block 0 always
/// takes prediction 0.
type FirstChoice = (usize, usize);

/// DFS state shared by the enumerating and best-only searches.
struct BlocksDfs<'s> {
    space: &'s BlockSearchSpace,
    budget: &'s BlockBudget,
    width: usize,
    powers: Vec<f64>,
    areas: Vec<f64>,
}

/// A leaf's deterministic identity: the first-choice index and the
/// visitation ordinal inside that subtree.
type LeafIndex = (usize, u64);

struct BlockIncumbent {
    evaluation: BlockEvaluation,
    index: LeafIndex,
    blocks: Vec<BlockSpec>,
}

/// `true` if `challenger` replaces `incumbent`: strictly better on the
/// (objective, error rate, power, area) tuple, or tied and earlier in
/// deterministic leaf order.
fn replaces(
    objective: BlockObjective,
    challenger: &BlockIncumbent,
    incumbent: &BlockIncumbent,
) -> bool {
    let key = |i: &BlockIncumbent| {
        (
            objective.of(&i.evaluation),
            i.evaluation.error_rate,
            i.evaluation.power_nw,
            i.evaluation.area_ge,
        )
    };
    let c = key(challenger);
    let i = key(incumbent);
    c < i || (c == i && challenger.index < incumbent.index)
}

impl<'s> BlocksDfs<'s> {
    fn new(space: &'s BlockSearchSpace, budget: &'s BlockBudget, width: usize) -> Self {
        let powers = space
            .cells
            .iter()
            .map(|c| {
                c.characteristics()
                    .expect("validated by the space")
                    .power_nw
            })
            .collect();
        let areas = space
            .cells
            .iter()
            .map(|c| c.characteristics().expect("validated by the space").area_ge)
            .collect();
        BlocksDfs {
            space,
            budget,
            width,
            powers,
            areas,
        }
    }

    fn first_choices(&self) -> Vec<FirstChoice> {
        if self.space.predictions[0] != 0 {
            return Vec::new(); // block 0 needs depth 0
        }
        let mut out = Vec::new();
        for (wi, &w) in self.space.widths.iter().enumerate() {
            if w > self.width {
                continue;
            }
            for ci in 0..self.space.cells.len() {
                out.push((wi, ci));
            }
        }
        out
    }

    /// `true` if a block of `window_len` is admissible under the delay cap
    /// and its cost increments keep the budget satisfiable.
    fn admits_block(&self, window_len: usize, power: f64, area: f64) -> bool {
        self.budget
            .max_window_len
            .is_none_or(|cap| window_len <= cap)
            // Sound pruning: costs are non-negative and f64 addition of
            // non-negative values is monotone.
            && self.budget.max_power_nw.is_none_or(|cap| power <= cap)
            && self.budget.max_area_ge.is_none_or(|cap| area <= cap)
    }

    /// Walks every completion of the current stepper prefix, invoking
    /// `leaf` on each complete in-budget design.
    #[allow(clippy::too_many_arguments)] // recursive DFS state, deliberately unpacked
    fn walk<F: FnMut(&[BlockSpec], BlockEvaluation, u64)>(
        &self,
        stepper: &mut BlockDistanceStepper<f64>,
        blocks: &mut Vec<BlockSpec>,
        power: f64,
        area: f64,
        max_window: usize,
        ordinal: &mut u64,
        leaf: &mut F,
    ) -> Result<(), ExploreError> {
        let covered = stepper.covered();
        if covered == self.width {
            let dist = stepper
                .distribution()
                .map_err(|source| ExploreError::Blocks { source })?;
            let evaluation = BlockEvaluation::from_distribution(&dist, power, area, max_window);
            let index = *ordinal;
            *ordinal += 1;
            if self.budget.admits(&evaluation) {
                leaf(blocks, evaluation, index);
            }
            return Ok(());
        }
        let depth = stepper.depth();
        for &w in &self.space.widths {
            if covered + w > self.width {
                break; // widths ascend
            }
            for &p in &self.space.predictions {
                if p > covered {
                    break; // predictions ascend
                }
                let wl = w + p;
                for (ci, cell) in self.space.cells.iter().enumerate() {
                    let power = power + self.powers[ci] * wl as f64;
                    let area = area + self.areas[ci] * wl as f64;
                    if !self.admits_block(wl, power, area) {
                        continue;
                    }
                    stepper
                        .push(w, p, cell)
                        .map_err(|source| ExploreError::Blocks { source })?;
                    blocks.push(BlockSpec::new(w, p, cell.clone()));
                    self.walk(
                        stepper,
                        blocks,
                        power,
                        area,
                        max_window.max(wl),
                        ordinal,
                        leaf,
                    )?;
                    blocks.pop();
                    stepper.truncate(depth);
                }
            }
        }
        Ok(())
    }

    /// Runs `walk` for a contiguous range of first choices on one worker.
    fn run_range<F: FnMut(&[BlockSpec], BlockEvaluation, LeafIndex)>(
        &self,
        profile: &InputProfile<f64>,
        choices: &[FirstChoice],
        offset: usize,
        mut leaf: F,
    ) -> Result<(), ExploreError> {
        let max_depth = *self.space.predictions.last().expect("non-empty");
        let mut stepper = BlockDistanceStepper::new(profile.clone(), max_depth)
            .map_err(|source| ExploreError::Blocks { source })?;
        let mut blocks = Vec::new();
        for (k, &(wi, ci)) in choices.iter().enumerate() {
            let w = self.space.widths[wi];
            let wl = w; // depth 0
            let cell = &self.space.cells[ci];
            let power = self.powers[ci] * wl as f64;
            let area = self.areas[ci] * wl as f64;
            if !self.admits_block(wl, power, area) {
                continue;
            }
            stepper.truncate(0);
            stepper
                .push(w, 0, cell)
                .map_err(|source| ExploreError::Blocks { source })?;
            blocks.push(BlockSpec::new(w, 0, cell.clone()));
            let mut ordinal = 0u64;
            let first = offset + k;
            self.walk(
                &mut stepper,
                &mut blocks,
                power,
                area,
                wl,
                &mut ordinal,
                &mut |specs, evaluation, within| leaf(specs, evaluation, (first, within)),
            )?;
            blocks.pop();
        }
        Ok(())
    }
}

/// Checks the space size against [`MAX_SEARCH`].
fn check_size(space: &BlockSearchSpace, width: usize) -> Result<(), ExploreError> {
    let designs = space.design_count(width);
    if designs > MAX_SEARCH {
        return Err(ExploreError::SpaceTooLarge {
            designs,
            max: MAX_SEARCH,
        });
    }
    Ok(())
}

/// Enumerates and scores every in-budget tiling of `profile.width()` with
/// `threads` workers, prefix-sharing the analytical recursion across
/// configurations. Results are in deterministic leaf order (first-block
/// choice, then DFS order within its subtree) and are byte-identical for
/// every thread count.
///
/// # Errors
///
/// * [`ExploreError::SpaceTooLarge`] beyond [`MAX_SEARCH`] designs.
/// * [`ExploreError::Blocks`] if the analytical engine fails (support
///   overflow).
pub fn enumerate_block_designs(
    space: &BlockSearchSpace,
    profile: &InputProfile<f64>,
    budget: &BlockBudget,
    threads: usize,
) -> Result<Vec<BlockDesign>, ExploreError> {
    let width = profile.width();
    check_size(space, width)?;
    let dfs = BlocksDfs::new(space, budget, width);
    let choices = dfs.first_choices();
    let ranges = split_ranges(choices.len(), threads);
    let partials: Vec<Result<Vec<(LeafIndex, BlockDesign)>, ExploreError>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .into_iter()
                .map(|range| {
                    let dfs = &dfs;
                    let choices = &choices;
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        dfs.run_range(
                            profile,
                            &choices[range.clone()],
                            range.start,
                            |specs, evaluation, index| {
                                let config = BlockConfig::new(specs.to_vec())
                                    .expect("DFS builds valid configs");
                                out.push((index, BlockDesign { config, evaluation }));
                            },
                        )?;
                        Ok(out)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("enumeration worker panicked"))
                .collect()
        });
    let mut merged: Vec<(LeafIndex, BlockDesign)> = Vec::new();
    for partial in partials {
        merged.extend(partial?);
    }
    merged.sort_by_key(|(index, _)| *index);
    Ok(merged.into_iter().map(|(_, design)| design).collect())
}

/// The provably best in-budget design under `objective`, by exhaustive
/// prefix-sharing search over `threads` workers. Returns `None` if no
/// tiling fits the budget (or none exists).
///
/// Ties on the objective are broken by lower error rate, power, area, then
/// earliest deterministic leaf position — identical for every thread count.
///
/// # Errors
///
/// Same conditions as [`enumerate_block_designs`].
pub fn best_block_design(
    space: &BlockSearchSpace,
    profile: &InputProfile<f64>,
    budget: &BlockBudget,
    objective: BlockObjective,
    threads: usize,
) -> Result<Option<BlockDesign>, ExploreError> {
    let width = profile.width();
    check_size(space, width)?;
    let dfs = BlocksDfs::new(space, budget, width);
    let choices = dfs.first_choices();
    let ranges = split_ranges(choices.len(), threads);
    let partials: Vec<Result<Option<BlockIncumbent>, ExploreError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| {
                let dfs = &dfs;
                let choices = &choices;
                scope.spawn(move || {
                    let mut best: Option<BlockIncumbent> = None;
                    dfs.run_range(
                        profile,
                        &choices[range.clone()],
                        range.start,
                        |specs, evaluation, index| {
                            let challenger = BlockIncumbent {
                                evaluation,
                                index,
                                blocks: specs.to_vec(),
                            };
                            let replace = match &best {
                                None => true,
                                Some(incumbent) => replaces(objective, &challenger, incumbent),
                            };
                            if replace {
                                best = Some(challenger);
                            }
                        },
                    )?;
                    Ok(best)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("search worker panicked"))
            .collect()
    });
    let mut best: Option<BlockIncumbent> = None;
    for partial in partials {
        if let Some(challenger) = partial? {
            let replace = match &best {
                None => true,
                Some(incumbent) => replaces(objective, &challenger, incumbent),
            };
            if replace {
                best = Some(challenger);
            }
        }
    }
    Ok(best.map(|incumbent| BlockDesign {
        config: BlockConfig::new(incumbent.blocks).expect("DFS builds valid configs"),
        evaluation: incumbent.evaluation,
    }))
}

/// The naive reference search: enumerates the same tilings in the same
/// deterministic order but re-runs the full analytical pass
/// ([`evaluate_block_config`]) from scratch for every configuration. Kept
/// as the differential-test oracle and the benchmark baseline for the
/// prefix-sharing engine; do not use it for real workloads.
///
/// # Errors
///
/// Same conditions as [`best_block_design`].
pub fn best_block_design_reference(
    space: &BlockSearchSpace,
    profile: &InputProfile<f64>,
    budget: &BlockBudget,
    objective: BlockObjective,
) -> Result<Option<BlockDesign>, ExploreError> {
    let width = profile.width();
    check_size(space, width)?;
    let dfs = BlocksDfs::new(space, budget, width);
    let mut best: Option<BlockIncumbent> = None;
    let mut stack: Vec<BlockSpec> = Vec::new();
    let choices = dfs.first_choices();
    for (first, &(wi, ci)) in choices.iter().enumerate() {
        let mut ordinal = 0u64;
        reference_walk(
            &dfs,
            profile,
            objective,
            &mut stack,
            self_choice(space, wi, ci),
            first,
            &mut ordinal,
            &mut best,
        )?;
    }
    Ok(best.map(|incumbent| BlockDesign {
        config: BlockConfig::new(incumbent.blocks).expect("walk builds valid configs"),
        evaluation: incumbent.evaluation,
    }))
}

fn self_choice(space: &BlockSearchSpace, wi: usize, ci: usize) -> BlockSpec {
    BlockSpec::new(space.widths[wi], 0, space.cells[ci].clone())
}

/// Recursive helper of [`best_block_design_reference`]: same tree, same
/// admissibility checks, but each leaf is scored with a fresh full pass.
#[allow(clippy::too_many_arguments)] // recursive DFS state, deliberately unpacked
fn reference_walk(
    dfs: &BlocksDfs<'_>,
    profile: &InputProfile<f64>,
    objective: BlockObjective,
    stack: &mut Vec<BlockSpec>,
    next: BlockSpec,
    first: usize,
    ordinal: &mut u64,
    best: &mut Option<BlockIncumbent>,
) -> Result<(), ExploreError> {
    let wl = next.window_len();
    let (power, area, max_window) = {
        let ch = next.cell.characteristics().expect("validated by the space");
        let (mut power, mut area, mut max_window) = (0.0f64, 0.0f64, 0usize);
        for spec in stack.iter() {
            let c = spec.cell.characteristics().expect("validated by the space");
            power += c.power_nw * spec.window_len() as f64;
            area += c.area_ge * spec.window_len() as f64;
            max_window = max_window.max(spec.window_len());
        }
        (
            power + ch.power_nw * wl as f64,
            area + ch.area_ge * wl as f64,
            max_window.max(wl),
        )
    };
    if !dfs.admits_block(wl, power, area) {
        return Ok(());
    }
    stack.push(next);
    let covered: usize = stack.iter().map(|s| s.width).sum();
    if covered == dfs.width {
        let config = BlockConfig::new(stack.clone()).expect("walk builds valid configs");
        let evaluation = evaluate_block_config(&config, profile)?;
        debug_assert_eq!(evaluation.max_window_len, max_window);
        let index = *ordinal;
        *ordinal += 1;
        if dfs.budget.admits(&evaluation) {
            let challenger = BlockIncumbent {
                evaluation,
                index: (first, index),
                blocks: stack.clone(),
            };
            let replace = match best {
                None => true,
                Some(incumbent) => replaces(objective, &challenger, incumbent),
            };
            if replace {
                *best = Some(challenger);
            }
        }
    } else {
        for &w in &dfs.space.widths {
            if covered + w > dfs.width {
                break;
            }
            for &p in &dfs.space.predictions {
                if p > covered {
                    break;
                }
                for cell in dfs.space.cells.iter() {
                    reference_walk(
                        dfs,
                        profile,
                        objective,
                        stack,
                        BlockSpec::new(w, p, cell.clone()),
                        first,
                        ordinal,
                        best,
                    )?;
                }
            }
        }
    }
    stack.pop();
    Ok(())
}

/// Filters block designs down to their Pareto frontier over
/// (mean |ED|, power, area), sorted by ascending mean |ED|.
pub fn block_pareto_front(mut designs: Vec<BlockDesign>) -> Vec<BlockDesign> {
    let mut front: Vec<BlockDesign> = Vec::new();
    designs.sort_by(|a, b| {
        a.evaluation
            .mean_absolute
            .total_cmp(&b.evaluation.mean_absolute)
            .then(a.evaluation.power_nw.total_cmp(&b.evaluation.power_nw))
    });
    for design in designs {
        if !front
            .iter()
            .any(|kept| kept.evaluation.dominates(&design.evaluation))
        {
            front.retain(|kept| !design.evaluation.dominates(&kept.evaluation));
            front.push(design);
        }
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::accurate_cell_with_proxy_costs;
    use sealpaa_cells::StandardCell;

    fn small_space() -> BlockSearchSpace {
        BlockSearchSpace::new(
            &[2, 3],
            &[0, 1, 2],
            &[accurate_cell_with_proxy_costs(), StandardCell::Lpaa1.cell()],
        )
        .expect("valid space")
    }

    #[test]
    fn space_validates_inputs() {
        assert!(matches!(
            BlockSearchSpace::new(&[], &[0], &[StandardCell::Lpaa1.cell()]),
            Err(ExploreError::NoCandidates)
        ));
        assert!(matches!(
            BlockSearchSpace::new(&[2], &[0], &[StandardCell::Accurate.cell()]),
            Err(ExploreError::MissingCharacteristics { .. })
        ));
    }

    #[test]
    fn design_count_matches_enumeration() {
        let space = small_space();
        let profile = InputProfile::<f64>::uniform(6);
        let designs =
            enumerate_block_designs(&space, &profile, &BlockBudget::default(), 1).expect("small");
        assert_eq!(space.design_count(6), designs.len() as u128);
    }

    #[test]
    fn enumeration_is_thread_count_invariant() {
        let space = small_space();
        let profile = InputProfile::constant(6, 0.3);
        let one =
            enumerate_block_designs(&space, &profile, &BlockBudget::default(), 1).expect("small");
        for threads in [2, 3, 8] {
            let many = enumerate_block_designs(&space, &profile, &BlockBudget::default(), threads)
                .expect("small");
            assert_eq!(one, many, "threads={threads}");
        }
    }

    #[test]
    fn best_matches_naive_reference_bit_for_bit() {
        let space = small_space();
        let profile = InputProfile::constant(6, 0.25);
        let budget = BlockBudget {
            max_power_nw: Some(9000.0),
            max_area_ge: None,
            max_window_len: Some(5),
        };
        for objective in [
            BlockObjective::MeanAbsolute,
            BlockObjective::MeanSquared,
            BlockObjective::ErrorRate,
        ] {
            let reference =
                best_block_design_reference(&space, &profile, &budget, objective).expect("small");
            for threads in [1, 4] {
                let fast = best_block_design(&space, &profile, &budget, objective, threads)
                    .expect("small");
                assert_eq!(fast, reference, "objective {objective:?} threads {threads}");
            }
        }
    }

    #[test]
    fn best_is_no_worse_than_every_enumerated_design() {
        let space = small_space();
        let profile = InputProfile::<f64>::uniform(6);
        let budget = BlockBudget {
            max_power_nw: None,
            max_area_ge: Some(60.0),
            max_window_len: None,
        };
        let best = best_block_design(&space, &profile, &budget, BlockObjective::MeanAbsolute, 2)
            .expect("small")
            .expect("feasible");
        for d in enumerate_block_designs(&space, &profile, &budget, 2).expect("small") {
            assert!(best.evaluation.mean_absolute <= d.evaluation.mean_absolute + 1e-15);
        }
    }

    #[test]
    fn delay_cap_bounds_every_window() {
        let space = small_space();
        let profile = InputProfile::<f64>::uniform(6);
        let budget = BlockBudget {
            max_power_nw: None,
            max_area_ge: None,
            max_window_len: Some(3),
        };
        let designs = enumerate_block_designs(&space, &profile, &budget, 1).expect("small");
        assert!(!designs.is_empty());
        for d in &designs {
            assert!(d.evaluation.max_window_len <= 3);
            for (j, b) in d.config.blocks().iter().enumerate() {
                assert!(d.config.window(j).len() <= 3, "{} block {j}", d.config);
                assert_eq!(b.window_len(), d.config.window(j).len());
            }
        }
    }

    #[test]
    fn pareto_front_is_mutually_non_dominating() {
        let space = small_space();
        let profile = InputProfile::constant(6, 0.2);
        let designs =
            enumerate_block_designs(&space, &profile, &BlockBudget::default(), 2).expect("small");
        let front = block_pareto_front(designs.clone());
        assert!(!front.is_empty());
        assert!(front.len() < designs.len());
        for a in &front {
            for b in &front {
                assert!(!a.evaluation.dominates(&b.evaluation) || a == b);
            }
        }
        for d in &designs {
            if !front.iter().any(|f| f.config == d.config) {
                assert!(
                    front.iter().any(|f| f.evaluation.dominates(&d.evaluation)),
                    "{d} should be dominated"
                );
            }
        }
    }

    #[test]
    fn infeasible_budget_yields_none() {
        let space = small_space();
        let profile = InputProfile::<f64>::uniform(4);
        let budget = BlockBudget {
            max_power_nw: Some(-1.0),
            max_area_ge: None,
            max_window_len: None,
        };
        assert_eq!(
            best_block_design(&space, &profile, &budget, BlockObjective::ErrorRate, 1)
                .expect("small"),
            None
        );
    }

    #[test]
    fn space_without_depth_zero_has_no_designs() {
        let space = BlockSearchSpace::new(&[2], &[1], &[accurate_cell_with_proxy_costs()])
            .expect("constructible");
        let profile = InputProfile::<f64>::uniform(4);
        assert_eq!(space.design_count(4), 0);
        assert!(
            enumerate_block_designs(&space, &profile, &BlockBudget::default(), 1)
                .expect("small")
                .is_empty()
        );
    }

    #[test]
    fn evaluate_block_config_matches_search_scores() {
        let space = small_space();
        let profile = InputProfile::constant(6, 0.35);
        for d in
            enumerate_block_designs(&space, &profile, &BlockBudget::default(), 1).expect("small")
        {
            let fresh = evaluate_block_config(&d.config, &profile).expect("valid");
            assert_eq!(fresh, d.evaluation, "{}", d.config);
        }
    }
}
