//! The classic "approximate the k LSBs" sweep.
//!
//! The most common way the LPAA cells are deployed (Gupta et al., TCAD'13)
//! is not a fully approximate adder but a split one: approximate cells in
//! the `k` least-significant stages, accurate cells above. This module
//! sweeps `k` and scores every point with the paper's analysis plus the
//! error-magnitude extension, giving the quality/power trade-off curve a
//! designer actually tunes.

use sealpaa_cells::{AdderChain, Cell, InputProfile};
use sealpaa_core::{analyze, error_magnitude, MklMatrices, PrefixStepper};
use sealpaa_sim::{exhaustive_with, ExhaustiveReport};

use crate::search::{Evaluation, ExploreError};

/// One point of an LSB-approximation sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct LsbSweepPoint {
    /// Number of approximate least-significant stages.
    pub approximate_bits: usize,
    /// The chain realising this point.
    pub chain: AdderChain,
    /// Error probability / power / area.
    pub evaluation: Evaluation,
    /// Mean signed error distance (bias).
    pub mean_error_distance: f64,
    /// RMS error distance.
    pub rms_error_distance: f64,
}

/// Sweeps `k = 0..=width` approximate LSB stages and scores each point.
///
/// # Errors
///
/// Returns [`ExploreError::MissingCharacteristics`] if either cell lacks
/// power/area data.
///
/// # Examples
///
/// ```
/// use sealpaa_cells::{InputProfile, StandardCell};
/// use sealpaa_explore::{accurate_cell_with_proxy_costs, lsb_sweep};
///
/// let points = lsb_sweep(
///     StandardCell::Lpaa5.cell(),
///     accurate_cell_with_proxy_costs(),
///     &InputProfile::constant(8, 0.3),
/// )?;
/// assert_eq!(points.len(), 9); // k = 0..=8
/// // More approximation → no more power, no less error.
/// assert!(points[0].evaluation.error_probability.abs() < 1e-12);
/// assert!(points[8].evaluation.power_nw < points[0].evaluation.power_nw);
/// # Ok::<(), sealpaa_explore::ExploreError>(())
/// ```
pub fn lsb_sweep(
    approximate: Cell,
    accurate: Cell,
    profile: &InputProfile<f64>,
) -> Result<Vec<LsbSweepPoint>, ExploreError> {
    let width = profile.width();
    // Checked in the order the per-point evaluation used to hit them: the
    // k = 0 chain is all-accurate, so a missing accurate cell is reported
    // first.
    for cell in [&accurate, &approximate] {
        if cell.characteristics().is_none() {
            return Err(ExploreError::MissingCharacteristics {
                cell: cell.name().to_owned(),
            });
        }
    }
    // Point k and point k+1 share the approximate k-stage prefix, so the
    // whole sweep is one prefix-stepper chain: complete point k by pushing
    // accurate cells to the full width, then rewind to depth k and push one
    // approximate cell to seed point k+1. Θ(N) total stage steps per
    // direction instead of Θ(N²).
    let approximate_mkl = MklMatrices::from_truth_table(approximate.truth_table());
    let accurate_mkl = MklMatrices::from_truth_table(accurate.truth_table());
    let mut stepper = PrefixStepper::new(profile);
    let mut points = Vec::with_capacity(width + 1);
    for k in 0..=width {
        for _ in k..width {
            stepper.push(&accurate_mkl);
        }
        let chain = AdderChain::lsb_approximate(approximate.clone(), accurate.clone(), k, width);
        let evaluation = Evaluation {
            error_probability: stepper.error_probability(),
            power_nw: chain.total_power_nw().expect("validated above"),
            area_ge: chain.total_area_ge().expect("validated above"),
        };
        let magnitude = error_magnitude(&chain, profile).expect("widths are equal by construction");
        debug_assert!(
            (analyze(&chain, profile)
                .expect("widths are equal by construction")
                .error_probability()
                - evaluation.error_probability)
                .abs()
                < 1e-12
        );
        points.push(LsbSweepPoint {
            approximate_bits: k,
            chain,
            evaluation,
            mean_error_distance: magnitude.mean_error_distance,
            rms_error_distance: magnitude.rms_error_distance(),
        });
        stepper.truncate(k);
        if k < width {
            stepper.push(&approximate_mkl);
        }
    }
    Ok(points)
}

/// An [`LsbSweepPoint`] cross-checked against exhaustive bit-true
/// simulation of the same chain.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifiedSweepPoint {
    /// The analytical sweep point.
    pub point: LsbSweepPoint,
    /// The exhaustive simulation report for the same chain and profile.
    pub report: ExhaustiveReport<f64>,
}

impl VerifiedSweepPoint {
    /// Absolute gap between the analytical error probability and the
    /// bit-true stage-error probability (the paper's error semantics).
    /// Bounded by floating-point accumulation error — the analytical
    /// method is exact, so anything beyond ~1e-9 indicates a model bug.
    pub fn deviation(&self) -> f64 {
        (self.point.evaluation.error_probability - self.report.stage_error_probability).abs()
    }
}

/// [`lsb_sweep`] with every point cross-checked by the multithreaded
/// exhaustive simulator: the paper's Table 6 exercise (analytical vs.
/// simulated error probability) run over a whole trade-off curve.
///
/// `threads` workers split each point's operand sweep
/// (`sealpaa_sim::exhaustive_with`); the result is deterministic for any
/// thread count.
///
/// # Errors
///
/// Returns [`ExploreError::MissingCharacteristics`] if either cell lacks
/// power/area data, or [`ExploreError::Simulation`] if the width is beyond
/// `sealpaa_sim::MAX_EXHAUSTIVE_WIDTH`.
///
/// # Examples
///
/// ```
/// use sealpaa_cells::{InputProfile, StandardCell};
/// use sealpaa_explore::{accurate_cell_with_proxy_costs, lsb_sweep_verified};
///
/// let points = lsb_sweep_verified(
///     StandardCell::Lpaa1.cell(),
///     accurate_cell_with_proxy_costs(),
///     &InputProfile::constant(6, 0.3),
///     2,
/// )?;
/// // Analytical and bit-true error probabilities agree at every point.
/// assert!(points.iter().all(|p| p.deviation() < 1e-9));
/// # Ok::<(), sealpaa_explore::ExploreError>(())
/// ```
pub fn lsb_sweep_verified(
    approximate: Cell,
    accurate: Cell,
    profile: &InputProfile<f64>,
    threads: usize,
) -> Result<Vec<VerifiedSweepPoint>, ExploreError> {
    lsb_sweep(approximate, accurate, profile)?
        .into_iter()
        .map(|point| {
            let report = exhaustive_with(&point.chain, profile, threads)
                .map_err(|source| ExploreError::Simulation { source })?;
            Ok(VerifiedSweepPoint { point, report })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::accurate_cell_with_proxy_costs;
    use sealpaa_cells::StandardCell;

    fn sweep(cell: StandardCell, width: usize, p: f64) -> Vec<LsbSweepPoint> {
        lsb_sweep(
            cell.cell(),
            accurate_cell_with_proxy_costs(),
            &InputProfile::constant(width, p),
        )
        .expect("all cells costed")
    }

    #[test]
    fn endpoint_k0_is_exact_and_expensive() {
        let points = sweep(StandardCell::Lpaa2, 6, 0.5);
        let p0 = &points[0];
        assert_eq!(p0.approximate_bits, 0);
        assert_eq!(p0.evaluation.error_probability, 0.0);
        assert_eq!(p0.rms_error_distance, 0.0);
        assert!((p0.evaluation.power_nw - 6.0 * 1080.0).abs() < 1e-9);
    }

    #[test]
    fn error_monotonically_grows_with_k() {
        let points = sweep(StandardCell::Lpaa1, 8, 0.5);
        for pair in points.windows(2) {
            assert!(
                pair[1].evaluation.error_probability
                    >= pair[0].evaluation.error_probability - 1e-12,
                "k={}..{}",
                pair[0].approximate_bits,
                pair[1].approximate_bits
            );
        }
    }

    #[test]
    fn power_monotonically_falls_with_k() {
        let points = sweep(StandardCell::Lpaa3, 8, 0.5);
        for pair in points.windows(2) {
            assert!(pair[1].evaluation.power_nw < pair[0].evaluation.power_nw);
        }
    }

    #[test]
    fn rms_grows_with_k_for_lsb_splits() {
        // Approximating one more LSB can only add error mass at a new
        // position; at uniform inputs the RMS should not shrink.
        let points = sweep(StandardCell::Lpaa5, 8, 0.5);
        for pair in points.windows(2) {
            assert!(
                pair[1].rms_error_distance >= pair[0].rms_error_distance - 1e-12,
                "k={}",
                pair[1].approximate_bits
            );
        }
    }

    #[test]
    fn verified_sweep_agrees_with_analysis_at_every_point() {
        let points = lsb_sweep_verified(
            StandardCell::Lpaa3.cell(),
            accurate_cell_with_proxy_costs(),
            &InputProfile::constant(7, 0.2),
            3,
        )
        .expect("feasible width");
        assert_eq!(points.len(), 8);
        for vp in &points {
            assert!(
                vp.deviation() < 1e-9,
                "k={}: analytical {} vs simulated {}",
                vp.point.approximate_bits,
                vp.point.evaluation.error_probability,
                vp.report.stage_error_probability
            );
            assert_eq!(vp.report.cases, 1 << 15);
        }
    }

    #[test]
    fn verified_sweep_rejects_infeasible_widths() {
        let err = lsb_sweep_verified(
            StandardCell::Lpaa1.cell(),
            accurate_cell_with_proxy_costs(),
            &InputProfile::constant(17, 0.5),
            2,
        )
        .unwrap_err();
        assert!(matches!(err, ExploreError::Simulation { .. }));
        assert!(err.to_string().contains("verification"));
    }

    #[test]
    fn missing_characteristics_rejected() {
        let err = lsb_sweep(
            StandardCell::Lpaa1.cell(),
            StandardCell::Accurate.cell(), // no published characteristics
            &InputProfile::constant(4, 0.5),
        )
        .unwrap_err();
        assert!(matches!(err, ExploreError::MissingCharacteristics { .. }));
    }
}
