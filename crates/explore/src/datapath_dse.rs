//! Per-node adder assignment for whole datapaths.
//!
//! The chain-level searches in this crate pick a cell per *stage* of one
//! adder; this module lifts the workflow to a whole [`Datapath`]: pick a
//! cell per *adder node* under a power/area budget, minimizing the
//! predicted output MSE (`E[D²]` from
//! [`sealpaa_propagate::GraphStepper`]). The exact output value's moments
//! do not depend on the assignment, so minimizing predicted MSE is
//! exactly maximizing predicted SNR.
//!
//! The search reuses the prefix-sharing DFS idiom of
//! [`exhaustive_best_with`](crate::exhaustive_best_with): designs that
//! agree on their first *k* adders share the stepper state up to the
//! *k*-th adder node, workers own contiguous ranges of first-adder
//! candidates, and ties break by lowest odometer index — so the winner is
//! bit-identical for every thread count, pinned against the naive
//! re-propagate-per-design reference.

use sealpaa_cells::{AdderChain, Cell};
use sealpaa_datapath::{Datapath, NodeKind, Signal};
use sealpaa_propagate::{GraphStepper, PropagateError};

use crate::search::{split_ranges, Budget, ExploreError, MAX_SEARCH};

/// The score of one per-adder assignment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatapathEvaluation {
    /// Predicted output `E[D²]` — the analytical MSE.
    pub mse: f64,
    /// Summed adder power (per-stage cell power, every adder).
    pub power_nw: f64,
    /// Summed adder area (gate equivalents).
    pub area_ge: f64,
}

impl DatapathEvaluation {
    fn admitted(&self, budget: &Budget) -> bool {
        budget.max_power_nw.is_none_or(|cap| self.power_nw <= cap)
            && budget.max_area_ge.is_none_or(|cap| self.area_ge <= cap)
    }
}

/// A scored per-adder-node cell assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct DatapathDesign {
    /// One cell per adder node, in node order (the layout
    /// [`Datapath::with_adder_cells`] consumes).
    pub cells: Vec<Cell>,
    /// Its score under the searched input model.
    pub evaluation: DatapathEvaluation,
    /// Predicted exact-output power `E[V²]` — assignment-invariant, kept
    /// so [`snr_db`](DatapathDesign::snr_db) is self-contained.
    pub signal_power: f64,
}

impl DatapathDesign {
    /// Predicted `SNR = 10·log10(E[V²] / E[D²])` in dB; `None` for an
    /// error-free design or a zero-power output.
    pub fn snr_db(&self) -> Option<f64> {
        (self.evaluation.mse > 0.0 && self.signal_power > 0.0)
            .then(|| 10.0 * (self.signal_power / self.evaluation.mse).log10())
    }
}

/// Per-candidate, per-adder-node data the DFS needs, derived once. Costs
/// are folded per chain width in stage order so they match
/// [`AdderChain::total_power_nw`] bit for bit.
struct DatapathDfsContext<'c> {
    candidates: &'c [Cell],
    /// `costs[a][c] = (power, area)` of assigning candidate `c` to the
    /// `a`-th adder node.
    costs: Vec<Vec<(f64, f64)>>,
}

impl<'c> DatapathDfsContext<'c> {
    fn new(candidates: &'c [Cell], widths: &[usize]) -> Result<Self, ExploreError> {
        let mut per_cell = Vec::with_capacity(candidates.len());
        for cell in candidates {
            let ch =
                cell.characteristics()
                    .ok_or_else(|| ExploreError::MissingCharacteristics {
                        cell: cell.name().to_owned(),
                    })?;
            per_cell.push((ch.power_nw, ch.area_ge));
        }
        let costs = widths
            .iter()
            .map(|&w| {
                per_cell
                    .iter()
                    .map(|&(p, a)| {
                        // The same left fold as a uniform chain's
                        // total_power_nw, for bit-identical budgets.
                        let mut power = 0.0;
                        let mut area = 0.0;
                        for _ in 0..w {
                            power += p;
                            area += a;
                        }
                        (power, area)
                    })
                    .collect()
            })
            .collect();
        Ok(DatapathDfsContext { candidates, costs })
    }
}

/// The incumbent: score, odometer index for partition-independent
/// tie-breaks, and the assignment (candidate indices per adder).
struct Incumbent {
    evaluation: DatapathEvaluation,
    index: u128,
    assignment: Vec<usize>,
}

fn replaces(challenger: &Incumbent, incumbent: &Incumbent) -> bool {
    let c = (
        challenger.evaluation.mse,
        challenger.evaluation.power_nw,
        challenger.evaluation.area_ge,
    );
    let i = (
        incumbent.evaluation.mse,
        incumbent.evaluation.power_nw,
        incumbent.evaluation.area_ge,
    );
    c < i || (c == i && challenger.index < incumbent.index)
}

/// Advances the stepper through choice-free (non-adder) nodes.
fn advance_forced(stepper: &mut GraphStepper<'_, f64>) -> Result<(), PropagateError> {
    while !stepper.is_complete() && !stepper.next_is_adder() {
        stepper.push(None)?;
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)] // recursive DFS state, deliberately unpacked
fn best_assignment_subtree(
    ctx: &DatapathDfsContext<'_>,
    budget: &Budget,
    output: Signal,
    stepper: &mut GraphStepper<'_, f64>,
    assignment: &mut Vec<usize>,
    power: f64,
    area: f64,
    index: u128,
    weight: u128,
    best: &mut Option<Incumbent>,
) -> Result<(), ExploreError> {
    advance_forced(stepper).map_err(|source| ExploreError::Propagate { source })?;
    if stepper.is_complete() {
        let evaluation = DatapathEvaluation {
            mse: stepper.state(output).error_second,
            power_nw: power,
            area_ge: area,
        };
        if !evaluation.admitted(budget) {
            return Ok(());
        }
        let challenger = Incumbent {
            evaluation,
            index,
            assignment: assignment.clone(),
        };
        let replace = match best {
            None => true,
            Some(incumbent) => replaces(&challenger, incumbent),
        };
        if replace {
            *best = Some(challenger);
        }
        return Ok(());
    }
    let depth = stepper.depth();
    let adder = assignment.len();
    for c in 0..ctx.candidates.len() {
        let (dp, da) = ctx.costs[adder][c];
        let power = power + dp;
        let area = area + da;
        // Sound pruning: adder costs are non-negative and f64 addition of
        // non-negative values is monotone, so a prefix already over a cap
        // means every completion is over the cap.
        if budget.max_power_nw.is_some_and(|cap| power > cap)
            || budget.max_area_ge.is_some_and(|cap| area > cap)
        {
            continue;
        }
        stepper
            .push(Some(&ctx.candidates[c]))
            .map_err(|source| ExploreError::Propagate { source })?;
        assignment.push(c);
        best_assignment_subtree(
            ctx,
            budget,
            output,
            stepper,
            assignment,
            power,
            area,
            index + c as u128 * weight,
            weight * ctx.candidates.len() as u128,
            best,
        )?;
        assignment.pop();
        stepper.truncate(depth);
    }
    Ok(())
}

/// Adder node indices and chain widths of a datapath, in node order.
fn adder_nodes(dp: &Datapath) -> Vec<(Signal, usize)> {
    dp.signals()
        .filter_map(|s| match dp.kind(s) {
            NodeKind::Add { chain, .. } => Some((s, chain.width())),
            _ => None,
        })
        .collect()
}

/// The provably best per-adder-node cell assignment under a budget, by
/// exhaustive prefix-sharing search over `threads` workers. Returns `None`
/// if no assignment fits the budget.
///
/// The winner minimizes predicted output MSE (ties: lower power, lower
/// area, earliest odometer position) and is bit-identical for every
/// thread count.
///
/// # Errors
///
/// * [`ExploreError::NoCandidates`] for an empty candidate list,
/// * [`ExploreError::MissingCharacteristics`] if a candidate lacks data,
/// * [`ExploreError::SpaceTooLarge`] beyond [`MAX_SEARCH`] assignments,
/// * [`ExploreError::Propagate`] if the engine rejects the graph or
///   inputs (bad names, errorful gate control, …).
pub fn best_datapath_assignment(
    dp: &Datapath,
    output: Signal,
    inputs: &[(&str, Vec<f64>)],
    candidates: &[Cell],
    budget: &Budget,
    threads: usize,
) -> Result<Option<DatapathDesign>, ExploreError> {
    if candidates.is_empty() {
        return Err(ExploreError::NoCandidates);
    }
    let adders = adder_nodes(dp);
    let designs = (candidates.len() as u128).saturating_pow(adders.len() as u32);
    if designs > MAX_SEARCH {
        return Err(ExploreError::SpaceTooLarge {
            designs,
            max: MAX_SEARCH,
        });
    }
    let widths: Vec<usize> = adders.iter().map(|&(_, w)| w).collect();
    let ctx = DatapathDfsContext::new(candidates, &widths)?;

    // The assignment-invariant signal power comes from one throwaway run.
    let signal_power = {
        let mut stepper =
            GraphStepper::new(dp, inputs).map_err(|source| ExploreError::Propagate { source })?;
        stepper
            .run_to_end()
            .map_err(|source| ExploreError::Propagate { source })?;
        if output.index() >= dp.len() {
            return Err(ExploreError::Propagate {
                source: PropagateError::Datapath(sealpaa_datapath::DatapathError::UnknownSignal {
                    index: output.index(),
                }),
            });
        }
        stepper.state(output).value_second
    };

    if adders.is_empty() {
        // No choices: a single, error-free-by-assignment design.
        let mut stepper =
            GraphStepper::new(dp, inputs).map_err(|source| ExploreError::Propagate { source })?;
        stepper
            .run_to_end()
            .map_err(|source| ExploreError::Propagate { source })?;
        let evaluation = DatapathEvaluation {
            mse: stepper.state(output).error_second,
            power_nw: 0.0,
            area_ge: 0.0,
        };
        return Ok(evaluation.admitted(budget).then_some(DatapathDesign {
            cells: Vec::new(),
            evaluation,
            signal_power,
        }));
    }

    let ranges = split_ranges(candidates.len(), threads);
    let partials: Vec<Result<Option<Incumbent>, ExploreError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| {
                let ctx = &ctx;
                scope.spawn(move || {
                    let mut best = None;
                    let mut stepper = GraphStepper::new(dp, inputs)
                        .map_err(|source| ExploreError::Propagate { source })?;
                    let mut assignment = Vec::with_capacity(ctx.costs.len());
                    for c in range {
                        let (power, area) = ctx.costs[0][c];
                        if budget.max_power_nw.is_some_and(|cap| power > cap)
                            || budget.max_area_ge.is_some_and(|cap| area > cap)
                        {
                            continue;
                        }
                        stepper.truncate(0);
                        advance_forced(&mut stepper)
                            .map_err(|source| ExploreError::Propagate { source })?;
                        stepper
                            .push(Some(&ctx.candidates[c]))
                            .map_err(|source| ExploreError::Propagate { source })?;
                        assignment.push(c);
                        best_assignment_subtree(
                            ctx,
                            budget,
                            output,
                            &mut stepper,
                            &mut assignment,
                            power,
                            area,
                            c as u128,
                            ctx.candidates.len() as u128,
                            &mut best,
                        )?;
                        assignment.pop();
                    }
                    Ok(best)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("datapath search worker panicked"))
            .collect()
    });
    let mut best: Option<Incumbent> = None;
    for partial in partials {
        if let Some(challenger) = partial? {
            let replace = match &best {
                None => true,
                Some(incumbent) => replaces(&challenger, incumbent),
            };
            if replace {
                best = Some(challenger);
            }
        }
    }
    Ok(best.map(|incumbent| DatapathDesign {
        cells: incumbent
            .assignment
            .iter()
            .map(|&c| candidates[c].clone())
            .collect(),
        evaluation: incumbent.evaluation,
        signal_power,
    }))
}

/// The naive reference: a fresh odometer enumeration with one full
/// [`Datapath::with_adder_cells`] rebuild and complete re-propagation per
/// assignment. Kept as the differential-test oracle and the benchmark
/// baseline for [`best_datapath_assignment`]; do not use it for real
/// workloads.
///
/// # Errors
///
/// Same conditions as [`best_datapath_assignment`].
pub fn best_datapath_assignment_reference(
    dp: &Datapath,
    output: Signal,
    inputs: &[(&str, Vec<f64>)],
    candidates: &[Cell],
    budget: &Budget,
) -> Result<Option<DatapathDesign>, ExploreError> {
    if candidates.is_empty() {
        return Err(ExploreError::NoCandidates);
    }
    let adders = adder_nodes(dp);
    let designs = (candidates.len() as u128).saturating_pow(adders.len() as u32);
    if designs > MAX_SEARCH {
        return Err(ExploreError::SpaceTooLarge {
            designs,
            max: MAX_SEARCH,
        });
    }
    for cell in candidates {
        if cell.characteristics().is_none() {
            return Err(ExploreError::MissingCharacteristics {
                cell: cell.name().to_owned(),
            });
        }
    }
    let propagate = |graph: &Datapath| -> Result<(f64, f64), ExploreError> {
        let mut stepper = GraphStepper::new(graph, inputs)
            .map_err(|source| ExploreError::Propagate { source })?;
        stepper
            .run_to_end()
            .map_err(|source| ExploreError::Propagate { source })?;
        if output.index() >= graph.len() {
            return Err(ExploreError::Propagate {
                source: PropagateError::Datapath(sealpaa_datapath::DatapathError::UnknownSignal {
                    index: output.index(),
                }),
            });
        }
        let state = stepper.state(output);
        Ok((state.error_second, state.value_second))
    };
    let (_, signal_power) = propagate(dp)?;
    if adders.is_empty() {
        let (mse, _) = propagate(dp)?;
        let evaluation = DatapathEvaluation {
            mse,
            power_nw: 0.0,
            area_ge: 0.0,
        };
        return Ok(evaluation.admitted(budget).then_some(DatapathDesign {
            cells: Vec::new(),
            evaluation,
            signal_power,
        }));
    }
    let mut best: Option<DatapathDesign> = None;
    let mut assignment = vec![0usize; adders.len()];
    loop {
        let cells: Vec<Cell> = assignment.iter().map(|&c| candidates[c].clone()).collect();
        let rebuilt = dp
            .with_adder_cells(&cells)
            .expect("one cell per adder node by construction");
        let (mse, _) = propagate(&rebuilt)?;
        let mut power = 0.0;
        let mut area = 0.0;
        for (&(_, width), cell) in adders.iter().zip(&cells) {
            let chain = AdderChain::uniform(cell.clone(), width);
            power += chain.total_power_nw().expect("validated above");
            area += chain.total_area_ge().expect("validated above");
        }
        let evaluation = DatapathEvaluation {
            mse,
            power_nw: power,
            area_ge: area,
        };
        if evaluation.admitted(budget) {
            let better = match &best {
                None => true,
                Some(b) => {
                    (mse, power, area)
                        < (
                            b.evaluation.mse,
                            b.evaluation.power_nw,
                            b.evaluation.area_ge,
                        )
                }
            };
            if better {
                best = Some(DatapathDesign {
                    cells,
                    evaluation,
                    signal_power,
                });
            }
        }
        // Odometer increment over candidate indices.
        let mut i = 0;
        loop {
            if i == assignment.len() {
                return Ok(best);
            }
            assignment[i] += 1;
            if assignment[i] < candidates.len() {
                break;
            }
            assignment[i] = 0;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sealpaa_cells::StandardCell;
    use sealpaa_propagate::topologies;

    fn candidates() -> Vec<Cell> {
        vec![
            StandardCell::Lpaa1.cell(),
            StandardCell::Lpaa2.cell(),
            StandardCell::Lpaa5.cell(),
        ]
    }

    fn fir_case() -> (Datapath, Signal, Vec<(String, Vec<f64>)>) {
        let topo = topologies::fir(&StandardCell::Lpaa5.cell(), &[1, 2, 1], 6).expect("fits");
        let inputs: Vec<(String, Vec<f64>)> = topo
            .inputs
            .iter()
            .map(|n| (n.clone(), vec![0.5; 6]))
            .collect();
        (topo.datapath, topo.output, inputs)
    }

    fn as_refs(inputs: &[(String, Vec<f64>)]) -> Vec<(&str, Vec<f64>)> {
        inputs
            .iter()
            .map(|(n, b)| (n.as_str(), b.clone()))
            .collect()
    }

    #[test]
    fn prefix_search_matches_naive_reference() {
        let (dp, output, inputs) = fir_case();
        let inputs = as_refs(&inputs);
        for budget in [
            Budget::default(),
            Budget {
                max_power_nw: Some(6_000.0),
                max_area_ge: None,
            },
        ] {
            let fast = best_datapath_assignment(&dp, output, &inputs, &candidates(), &budget, 1)
                .expect("valid");
            let naive =
                best_datapath_assignment_reference(&dp, output, &inputs, &candidates(), &budget)
                    .expect("valid");
            assert_eq!(fast, naive);
        }
    }

    #[test]
    fn winner_is_thread_count_invariant() {
        let (dp, output, inputs) = fir_case();
        let inputs = as_refs(&inputs);
        let budget = Budget {
            max_power_nw: Some(8_000.0),
            max_area_ge: None,
        };
        let t1 = best_datapath_assignment(&dp, output, &inputs, &candidates(), &budget, 1)
            .expect("valid");
        for threads in [2, 3, 4, 7] {
            let tn =
                best_datapath_assignment(&dp, output, &inputs, &candidates(), &budget, threads)
                    .expect("valid");
            assert_eq!(t1, tn, "threads={threads}");
        }
    }

    #[test]
    fn budget_prunes_to_none_when_infeasible() {
        let (dp, output, inputs) = fir_case();
        let inputs = as_refs(&inputs);
        let budget = Budget {
            max_power_nw: Some(1.0),
            max_area_ge: None,
        };
        // LPAA 5 has zero power, so an all-LPAA5 assignment always fits;
        // drop it to force infeasibility.
        let expensive = vec![StandardCell::Lpaa1.cell(), StandardCell::Lpaa2.cell()];
        let best =
            best_datapath_assignment(&dp, output, &inputs, &expensive, &budget, 2).expect("valid");
        assert_eq!(best, None);
    }

    #[test]
    fn unconstrained_winner_beats_every_homogeneous_assignment() {
        let (dp, output, inputs) = fir_case();
        let inputs = as_refs(&inputs);
        let best =
            best_datapath_assignment(&dp, output, &inputs, &candidates(), &Budget::default(), 2)
                .expect("valid")
                .expect("feasible");
        for cell in candidates() {
            let n = adder_nodes(&dp).len();
            let homogeneous: Vec<Cell> = vec![cell; n];
            let rebuilt = dp.with_adder_cells(&homogeneous).expect("count matches");
            let p = sealpaa_propagate::propagate_moments(&rebuilt, output, &inputs).expect("valid");
            assert!(best.evaluation.mse <= p.error_second + 1e-12);
        }
    }

    #[test]
    fn empty_candidates_rejected() {
        let (dp, output, inputs) = fir_case();
        let inputs = as_refs(&inputs);
        assert_eq!(
            best_datapath_assignment(&dp, output, &inputs, &[], &Budget::default(), 1),
            Err(ExploreError::NoCandidates)
        );
    }

    #[test]
    fn adderless_datapath_yields_the_empty_design() {
        let mut dp = Datapath::new();
        let x = dp.input("x", 4);
        let y = dp.shl(x, 2).expect("fits");
        let inputs = vec![("x", vec![0.5; 4])];
        let best = best_datapath_assignment(&dp, y, &inputs, &candidates(), &Budget::default(), 1)
            .expect("valid")
            .expect("always feasible");
        assert!(best.cells.is_empty());
        assert_eq!(best.evaluation.mse, 0.0);
        assert_eq!(best.snr_db(), None);
    }
}
