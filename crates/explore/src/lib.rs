//! Design-space exploration for hybrid multi-stage approximate adders
//! (paper Sec. 5).
//!
//! Because the analytical method is cheap and handles hybrid chains (a
//! different LPAA per stage), it can drive design-space exploration: the
//! paper suggests "optimally design\[ing\] a hybrid multistage low power adder
//! using more than one type of LPAA" for a known input-probability profile.
//! This crate provides that workflow:
//!
//! * [`evaluate`] — score one chain: analytical error probability + summed
//!   power/area (paper Table 2 characteristics),
//! * [`exhaustive_best`] — the true optimum by enumeration (small widths),
//! * [`local_search_best`] — deterministic hill-climbing for larger widths,
//! * [`pareto_front`] — the error/power/area trade-off frontier,
//! * [`accurate_cell_with_proxy_costs`] — an accurate full adder annotated
//!   with *estimated* power/area (the paper's Table 2 covers only LPAA 1–5;
//!   see `DESIGN.md` for the extrapolation rationale),
//! * [`best_block_design`] / [`enumerate_block_designs`] /
//!   [`block_pareto_front`] — the same workflow lifted to heterogeneous
//!   *block-based* adders (`sealpaa-blocks`): tile the width with blocks of
//!   varying width/prediction-depth/cell, score each tiling by an exact
//!   error-distance statistic, prefix-sharing the analytical recursion
//!   across every configuration with the same leading blocks.
//!
//! # Examples
//!
//! ```
//! use sealpaa_cells::{InputProfile, StandardCell};
//! use sealpaa_explore::{exhaustive_best, Budget};
//!
//! let candidates = vec![StandardCell::Lpaa2.cell(), StandardCell::Lpaa5.cell()];
//! let profile = InputProfile::constant(4, 0.1);
//! let budget = Budget { max_power_nw: Some(1000.0), max_area_ge: None };
//! let best = exhaustive_best(&candidates, &profile, &budget)?
//!     .expect("at least one design fits the budget");
//! assert!(best.evaluation.power_nw <= 1000.0);
//! # Ok::<(), sealpaa_explore::ExploreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod blocks_dse;
mod datapath_dse;
mod scorecard;
mod search;
mod sweep;

pub use blocks_dse::{
    best_block_design, best_block_design_reference, block_pareto_front, enumerate_block_designs,
    evaluate_block_config, BlockBudget, BlockDesign, BlockEvaluation, BlockObjective,
    BlockSearchSpace,
};
pub use datapath_dse::{
    best_datapath_assignment, best_datapath_assignment_reference, DatapathDesign,
    DatapathEvaluation,
};
pub use scorecard::{score_cells, CellScore};
pub use search::{
    accurate_cell_with_proxy_costs, enumerate_designs, evaluate, exhaustive_best,
    exhaustive_best_reference, exhaustive_best_with, exhaustive_designs, local_search_best,
    pareto_front, Budget, Evaluation, ExploreError, HybridDesign, MAX_ENUMERATION, MAX_SEARCH,
};
pub use sweep::{lsb_sweep, lsb_sweep_verified, LsbSweepPoint, VerifiedSweepPoint};
