//! The standard cell library: the accurate full adder and LPAA 1–7.

use std::fmt;

use crate::truth_table::{FaOutput, TruthTable};

/// Power/area characteristics of a single-bit adder cell, as reported in
/// paper Table 2 (originally characterised at 65 nm by Gupta et al.,
/// IEEE TCAD 2013).
///
/// `power_nw` is dynamic power in nanowatts; `area_ge` is area in gate
/// equivalents. LPAA 5 genuinely has `0` for both in the paper — it is pure
/// wiring with no transistors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellCharacteristics {
    /// Power consumption in nanowatts.
    pub power_nw: f64,
    /// Area in gate equivalents.
    pub area_ge: f64,
}

impl CellCharacteristics {
    /// Creates a characteristics record.
    pub fn new(power_nw: f64, area_ge: f64) -> Self {
        CellCharacteristics { power_nw, area_ge }
    }
}

/// A named single-bit full-adder cell: a truth table plus optional
/// power/area characteristics.
///
/// Use [`StandardCell::cell`] for the paper's cells, or [`Cell::custom`] for
/// user-defined approximate adders.
///
/// # Examples
///
/// ```
/// use sealpaa_cells::{Cell, FaOutput, StandardCell, TruthTable};
///
/// let lpaa1 = StandardCell::Lpaa1.cell();
/// assert_eq!(lpaa1.truth_table().error_case_count(), 2);
///
/// // A custom cell: always propagates A as both sum and carry.
/// let custom = Cell::custom(
///     "pass-through",
///     TruthTable::from_fn(|i| FaOutput::new(i.a, i.a)),
/// );
/// assert_eq!(custom.name(), "pass-through");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    name: String,
    table: TruthTable,
    characteristics: Option<CellCharacteristics>,
}

impl Cell {
    /// Creates a custom cell without power/area characteristics.
    pub fn custom(name: impl Into<String>, table: TruthTable) -> Self {
        Cell {
            name: name.into(),
            table,
            characteristics: None,
        }
    }

    /// Creates a custom cell with power/area characteristics.
    pub fn custom_with_characteristics(
        name: impl Into<String>,
        table: TruthTable,
        characteristics: CellCharacteristics,
    ) -> Self {
        Cell {
            name: name.into(),
            table,
            characteristics: Some(characteristics),
        }
    }

    /// The cell's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The cell's behaviour.
    pub fn truth_table(&self) -> &TruthTable {
        &self.table
    }

    /// Power/area characteristics, if known (paper Table 2 covers LPAA 1–5
    /// only).
    pub fn characteristics(&self) -> Option<CellCharacteristics> {
        self.characteristics
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// The cells analysed in the paper: the accurate full adder (paper Table 1,
/// "AccuFA"), the five low-power approximate adders of Gupta et al.
/// (IEEE TCAD 2013) and the two of Almurib et al. (DATE 2016).
///
/// Note: the paper's "Approximate Adder 3" of Almurib et al. shares its truth
/// table with LPAA 2 (they differ only at transistor level), so — like the
/// paper — it is not listed separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StandardCell {
    /// The exact full adder.
    Accurate,
    /// LPAA 1 — Gupta et al. approximate mirror adder 1 (2 error cases).
    Lpaa1,
    /// LPAA 2 — Gupta et al. approximate mirror adder 2 (2 error cases).
    Lpaa2,
    /// LPAA 3 — Gupta et al. approximate mirror adder 3 (3 error cases).
    Lpaa3,
    /// LPAA 4 — Gupta et al. approximate mirror adder 4 (3 error cases).
    Lpaa4,
    /// LPAA 5 — Gupta et al. approximate mirror adder 5 (4 error cases; pure
    /// wiring, zero power/area).
    Lpaa5,
    /// LPAA 6 — Almurib et al. inexact adder cell 1 (2 error cases).
    Lpaa6,
    /// LPAA 7 — Almurib et al. inexact adder cell 2 (2 error cases).
    Lpaa7,
}

/// Truth-table rows `(sum, carry_out)` in `FaInput::index` order, transcribed
/// from paper Table 1.
const LPAA_ROWS: [[(u8, u8); 8]; 7] = [
    // LPAA 1
    [
        (0, 0),
        (1, 0),
        (0, 1),
        (0, 1),
        (0, 0),
        (0, 1),
        (0, 1),
        (1, 1),
    ],
    // LPAA 2
    [
        (1, 0),
        (1, 0),
        (1, 0),
        (0, 1),
        (1, 0),
        (0, 1),
        (0, 1),
        (0, 1),
    ],
    // LPAA 3
    [
        (1, 0),
        (1, 0),
        (0, 1),
        (0, 1),
        (1, 0),
        (0, 1),
        (0, 1),
        (0, 1),
    ],
    // LPAA 4
    [
        (0, 0),
        (1, 0),
        (0, 0),
        (1, 0),
        (0, 1),
        (0, 1),
        (0, 1),
        (1, 1),
    ],
    // LPAA 5
    [
        (0, 0),
        (0, 0),
        (1, 0),
        (1, 0),
        (0, 1),
        (0, 1),
        (1, 1),
        (1, 1),
    ],
    // LPAA 6
    [
        (0, 0),
        (1, 1),
        (1, 0),
        (0, 1),
        (1, 0),
        (0, 1),
        (0, 0),
        (1, 1),
    ],
    // LPAA 7
    [
        (0, 0),
        (1, 0),
        (1, 0),
        (1, 1),
        (1, 0),
        (1, 1),
        (0, 1),
        (1, 1),
    ],
];

impl StandardCell {
    /// All cells, in paper order (accurate first).
    pub const ALL: [StandardCell; 8] = [
        StandardCell::Accurate,
        StandardCell::Lpaa1,
        StandardCell::Lpaa2,
        StandardCell::Lpaa3,
        StandardCell::Lpaa4,
        StandardCell::Lpaa5,
        StandardCell::Lpaa6,
        StandardCell::Lpaa7,
    ];

    /// The seven approximate cells, in paper order.
    pub const APPROXIMATE: [StandardCell; 7] = [
        StandardCell::Lpaa1,
        StandardCell::Lpaa2,
        StandardCell::Lpaa3,
        StandardCell::Lpaa4,
        StandardCell::Lpaa5,
        StandardCell::Lpaa6,
        StandardCell::Lpaa7,
    ];

    /// The cell's display name as used in the paper ("AccuFA", "LPAA 1", …).
    pub fn name(self) -> &'static str {
        match self {
            StandardCell::Accurate => "AccuFA",
            StandardCell::Lpaa1 => "LPAA 1",
            StandardCell::Lpaa2 => "LPAA 2",
            StandardCell::Lpaa3 => "LPAA 3",
            StandardCell::Lpaa4 => "LPAA 4",
            StandardCell::Lpaa5 => "LPAA 5",
            StandardCell::Lpaa6 => "LPAA 6",
            StandardCell::Lpaa7 => "LPAA 7",
        }
    }

    /// The cell's truth table (paper Table 1).
    pub fn truth_table(self) -> TruthTable {
        match self {
            StandardCell::Accurate => TruthTable::accurate(),
            other => {
                let idx = match other {
                    StandardCell::Lpaa1 => 0,
                    StandardCell::Lpaa2 => 1,
                    StandardCell::Lpaa3 => 2,
                    StandardCell::Lpaa4 => 3,
                    StandardCell::Lpaa5 => 4,
                    StandardCell::Lpaa6 => 5,
                    StandardCell::Lpaa7 => 6,
                    StandardCell::Accurate => unreachable!("handled above"),
                };
                let rows = LPAA_ROWS[idx].map(|(s, c)| FaOutput::new(s == 1, c == 1));
                TruthTable::new(rows)
            }
        }
    }

    /// Power/area characteristics (paper Table 2; available for LPAA 1–5
    /// only — the paper gives no numbers for the accurate cell or the
    /// Almurib et al. cells).
    pub fn characteristics(self) -> Option<CellCharacteristics> {
        match self {
            StandardCell::Lpaa1 => Some(CellCharacteristics::new(771.0, 4.23)),
            StandardCell::Lpaa2 => Some(CellCharacteristics::new(294.0, 1.94)),
            StandardCell::Lpaa3 => Some(CellCharacteristics::new(198.0, 1.59)),
            StandardCell::Lpaa4 => Some(CellCharacteristics::new(416.0, 1.76)),
            StandardCell::Lpaa5 => Some(CellCharacteristics::new(0.0, 0.0)),
            _ => None,
        }
    }

    /// Instantiates the cell (name + table + characteristics).
    pub fn cell(self) -> Cell {
        Cell {
            name: self.name().to_owned(),
            table: self.truth_table(),
            characteristics: self.characteristics(),
        }
    }
}

/// Error returned when parsing a [`StandardCell`] from an unknown name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseStandardCellError {
    input: String,
}

impl fmt::Display for ParseStandardCellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown cell {:?} (expected accurate/accufa or lpaa1..lpaa7, case/space-insensitive)",
            self.input
        )
    }
}

impl std::error::Error for ParseStandardCellError {}

impl std::str::FromStr for StandardCell {
    type Err = ParseStandardCellError;

    /// Parses a cell name, case- and space-insensitively: `"accurate"`,
    /// `"AccuFA"`, `"lpaa1"`, `"LPAA 7"`, ….
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let normalized: String = s
            .chars()
            .filter(|c| !c.is_whitespace())
            .map(|c| c.to_ascii_lowercase())
            .collect();
        if normalized == "accurate" {
            return Ok(StandardCell::Accurate);
        }
        for cell in StandardCell::ALL {
            let canonical: String = cell
                .name()
                .chars()
                .filter(|c| !c.is_whitespace())
                .map(|c| c.to_ascii_lowercase())
                .collect();
            if normalized == canonical {
                return Ok(cell);
            }
        }
        Err(ParseStandardCellError {
            input: s.to_owned(),
        })
    }
}

impl fmt::Display for StandardCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth_table::FaInput;

    /// Paper Table 2, "Error Cases" column; LPAA 6/7 counts read off paper
    /// Table 1 / Table 5 (two zero entries in each L matrix).
    #[test]
    fn error_case_counts_match_table_2() {
        let expected = [
            (StandardCell::Accurate, 0),
            (StandardCell::Lpaa1, 2),
            (StandardCell::Lpaa2, 2),
            (StandardCell::Lpaa3, 3),
            (StandardCell::Lpaa4, 3),
            (StandardCell::Lpaa5, 4),
            (StandardCell::Lpaa6, 2),
            (StandardCell::Lpaa7, 2),
        ];
        for (cell, count) in expected {
            assert_eq!(
                cell.truth_table().error_case_count(),
                count,
                "error cases of {cell}"
            );
        }
    }

    #[test]
    fn characteristics_match_table_2() {
        let c = StandardCell::Lpaa1.characteristics().expect("in table 2");
        assert_eq!((c.power_nw, c.area_ge), (771.0, 4.23));
        let c = StandardCell::Lpaa5.characteristics().expect("in table 2");
        assert_eq!((c.power_nw, c.area_ge), (0.0, 0.0));
        assert!(StandardCell::Accurate.characteristics().is_none());
        assert!(StandardCell::Lpaa6.characteristics().is_none());
    }

    #[test]
    fn lpaa1_error_rows_are_010_and_100() {
        let errs = StandardCell::Lpaa1.truth_table().error_cases();
        assert_eq!(
            errs,
            vec![FaInput::from_index(0b010), FaInput::from_index(0b100)]
        );
    }

    #[test]
    fn lpaa2_and_lpaa3_differ_only_in_row_010() {
        let t2 = StandardCell::Lpaa2.truth_table();
        let t3 = StandardCell::Lpaa3.truth_table();
        for input in FaInput::all() {
            if input.index() == 0b010 {
                assert_ne!(t2.eval(input), t3.eval(input));
            } else {
                assert_eq!(t2.eval(input), t3.eval(input), "at {input}");
            }
        }
    }

    #[test]
    fn lpaa5_is_pass_through_wiring() {
        // LPAA 5 in Gupta et al. is Sum = B, Cout = A — i.e. no logic, which
        // is why Table 2 lists zero power and zero area for it.
        let t = StandardCell::Lpaa5.truth_table();
        for input in FaInput::all() {
            assert_eq!(t.eval(input).carry_out, input.a, "carry at {input}");
            assert_eq!(t.eval(input).sum, input.b, "sum at {input}");
        }
    }

    #[test]
    fn all_and_approximate_are_consistent() {
        assert_eq!(StandardCell::ALL.len(), 8);
        assert_eq!(StandardCell::APPROXIMATE.len(), 7);
        assert!(!StandardCell::APPROXIMATE.contains(&StandardCell::Accurate));
        for cell in StandardCell::APPROXIMATE {
            assert!(
                !cell.truth_table().is_accurate(),
                "{cell} should be approximate"
            );
        }
    }

    #[test]
    fn names_parse_case_and_space_insensitively() {
        assert_eq!("lpaa1".parse::<StandardCell>(), Ok(StandardCell::Lpaa1));
        assert_eq!("LPAA 7".parse::<StandardCell>(), Ok(StandardCell::Lpaa7));
        assert_eq!("accufa".parse::<StandardCell>(), Ok(StandardCell::Accurate));
        assert_eq!(
            "Accurate".parse::<StandardCell>(),
            Ok(StandardCell::Accurate)
        );
        assert!("lpaa8".parse::<StandardCell>().is_err());
        assert!("".parse::<StandardCell>().is_err());
        // Round trip through Display.
        for cell in StandardCell::ALL {
            assert_eq!(cell.name().parse::<StandardCell>(), Ok(cell));
        }
    }

    #[test]
    fn cell_instantiation_carries_everything() {
        let c = StandardCell::Lpaa4.cell();
        assert_eq!(c.name(), "LPAA 4");
        assert_eq!(c.truth_table(), &StandardCell::Lpaa4.truth_table());
        assert!(c.characteristics().is_some());
    }

    #[test]
    fn custom_cell_builders() {
        let t = TruthTable::accurate();
        let plain = Cell::custom("mine", t);
        assert!(plain.characteristics().is_none());
        let with =
            Cell::custom_with_characteristics("mine+", t, CellCharacteristics::new(100.0, 1.0));
        assert_eq!(with.characteristics().map(|c| c.power_nw), Some(100.0));
    }
}
