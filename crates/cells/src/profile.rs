//! Per-bit input probabilities for a multi-bit adder.

use std::fmt;

use sealpaa_num::Prob;

/// Errors produced when constructing an [`InputProfile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProfileError {
    /// The two operand probability vectors have different lengths.
    MismatchedWidths {
        /// Length of the `P(A_i)` vector.
        a_len: usize,
        /// Length of the `P(B_i)` vector.
        b_len: usize,
    },
    /// The profile has zero width.
    Empty,
    /// A probability lies outside `[0, 1]`.
    OutOfRange {
        /// Which value was out of range, e.g. `"P(A_3)"`.
        which: String,
    },
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::MismatchedWidths { a_len, b_len } => write!(
                f,
                "operand probability vectors differ in length ({a_len} vs {b_len})"
            ),
            ProfileError::Empty => f.write_str("input profile must cover at least one bit"),
            ProfileError::OutOfRange { which } => {
                write!(f, "probability {which} is outside [0, 1]")
            }
        }
    }
}

impl std::error::Error for ProfileError {}

/// Per-bit probabilities of the input operand bits and the carry-in being
/// `1`, generic over the probability number type.
///
/// This is the paper's input model: all operand bits `A_i`, `B_i` and the
/// first-stage carry-in are statistically independent Bernoulli variables
/// with known probabilities (paper Sec. 4, "Similar to other analysis
/// techniques, we also consider that all the operand bits and the input carry
/// bit to the first stage are statistically independent").
///
/// # Examples
///
/// ```
/// use sealpaa_cells::InputProfile;
///
/// // All bits equally likely 0/1 — the paper's Fig. 5(a) scenario.
/// let uniform = InputProfile::<f64>::uniform(8);
/// assert_eq!(uniform.width(), 8);
/// assert_eq!(*uniform.pa(3), 0.5);
///
/// // Per-bit probabilities — the paper's Table 4 example.
/// let profile = InputProfile::new(
///     vec![0.9, 0.5, 0.4, 0.8],
///     vec![0.8, 0.7, 0.6, 0.9],
///     0.5,
/// )?;
/// assert_eq!(*profile.pb(2), 0.6);
/// # Ok::<(), sealpaa_cells::ProfileError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct InputProfile<T> {
    pa: Vec<T>,
    pb: Vec<T>,
    p_cin: T,
}

impl<T: Prob> InputProfile<T> {
    /// Creates a profile from per-bit probabilities (`pa[i]` = `P(A_i = 1)`,
    /// LSB first) and the carry-in probability.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError`] if the vectors are empty or of different
    /// lengths, or if any value lies outside `[0, 1]`.
    pub fn new(pa: Vec<T>, pb: Vec<T>, p_cin: T) -> Result<Self, ProfileError> {
        if pa.len() != pb.len() {
            return Err(ProfileError::MismatchedWidths {
                a_len: pa.len(),
                b_len: pb.len(),
            });
        }
        if pa.is_empty() {
            return Err(ProfileError::Empty);
        }
        let in_range = |p: &T| *p >= T::zero() && *p <= T::one();
        for (i, p) in pa.iter().enumerate() {
            if !in_range(p) {
                return Err(ProfileError::OutOfRange {
                    which: format!("P(A_{i})"),
                });
            }
        }
        for (i, p) in pb.iter().enumerate() {
            if !in_range(p) {
                return Err(ProfileError::OutOfRange {
                    which: format!("P(B_{i})"),
                });
            }
        }
        if !in_range(&p_cin) {
            return Err(ProfileError::OutOfRange {
                which: "P(Cin)".to_owned(),
            });
        }
        Ok(InputProfile { pa, pb, p_cin })
    }

    /// Every operand bit and the carry-in have the same probability `p` of
    /// being `1`.
    ///
    /// This covers the paper's Table 7 scenario (`p = 0.1`) and the Fig. 5
    /// sweeps.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or `p` is outside `[0, 1]`.
    pub fn constant(width: usize, p: T) -> Self {
        InputProfile::new(vec![p.clone(); width], vec![p.clone(); width], p)
            .expect("constant profile construction cannot fail for valid p")
    }

    /// Every bit is equally likely `0` or `1` (`p = 1/2`) — the paper's
    /// "equally probable" scenario (Fig. 5(a), Table 6 row 1).
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn uniform(width: usize) -> Self {
        InputProfile::constant(width, T::from_ratio(1, 2))
    }

    /// Number of bits covered.
    pub fn width(&self) -> usize {
        self.pa.len()
    }

    /// `P(A_i = 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    pub fn pa(&self, i: usize) -> &T {
        &self.pa[i]
    }

    /// `P(B_i = 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    pub fn pb(&self, i: usize) -> &T {
        &self.pb[i]
    }

    /// `P(Cin = 1)` of the first stage.
    pub fn p_cin(&self) -> &T {
        &self.p_cin
    }

    /// `true` if every operand bit shares one probability value (enables the
    /// reduced-multiplication fast path of paper Table 8, left column).
    pub fn is_constant(&self) -> bool {
        let p0 = &self.pa[0];
        self.pa.iter().all(|p| p == p0) && self.pb.iter().all(|p| p == p0)
    }

    /// The probability that a concrete assignment `(a, b, cin)` of all input
    /// bits occurs under this profile (the product of the per-bit Bernoulli
    /// probabilities). Bits are LSB-first; operands are truncated to
    /// [`width`](Self::width) bits.
    pub fn assignment_probability(&self, a: u64, b: u64, cin: bool) -> T {
        let mut p = if cin {
            self.p_cin.clone()
        } else {
            self.p_cin.complement()
        };
        for i in 0..self.width() {
            let fa = if (a >> i) & 1 == 1 {
                self.pa[i].clone()
            } else {
                self.pa[i].complement()
            };
            let fb = if (b >> i) & 1 == 1 {
                self.pb[i].clone()
            } else {
                self.pb[i].complement()
            };
            p = p * fa * fb;
        }
        p
    }

    /// Converts the profile to another probability number type via `f64`
    /// (exact when converting `f64 → Rational`).
    pub fn convert<U: Prob>(&self) -> InputProfile<U> {
        InputProfile {
            pa: self.pa.iter().map(|p| U::from_f64(p.to_f64())).collect(),
            pb: self.pb.iter().map(|p| U::from_f64(p.to_f64())).collect(),
            p_cin: U::from_f64(self.p_cin.to_f64()),
        }
    }

    /// Restricts the profile to the lowest `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or `width > self.width()`.
    pub fn truncate(&self, width: usize) -> InputProfile<T> {
        assert!(
            width > 0 && width <= self.width(),
            "invalid truncation width"
        );
        InputProfile {
            pa: self.pa[..width].to_vec(),
            pb: self.pb[..width].to_vec(),
            p_cin: self.p_cin.clone(),
        }
    }
}

impl InputProfile<f64> {
    /// Per-bit probabilities interpolated linearly from `p_lsb` at bit 0 to
    /// `p_msb` at the top bit (both operands identical, carry-in `p_lsb`).
    ///
    /// This models magnitude-limited data — e.g. sensor values whose MSBs
    /// are rarely set — the scenario where the paper's per-cell rankings
    /// (Fig. 5(b,c)) and hybrid designs (Sec. 5) come into play.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or either probability is outside `[0, 1]`.
    pub fn linear_ramp(width: usize, p_lsb: f64, p_msb: f64) -> Self {
        assert!(width > 0, "profile needs at least one bit");
        let at = |i: usize| {
            if width == 1 {
                p_lsb
            } else {
                p_lsb + (p_msb - p_lsb) * i as f64 / (width - 1) as f64
            }
        };
        let pa: Vec<f64> = (0..width).map(at).collect();
        InputProfile::new(pa.clone(), pa, p_lsb)
            .expect("interpolated probabilities stay within the endpoints")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sealpaa_num::Rational;

    #[test]
    fn rejects_mismatched_lengths() {
        let err = InputProfile::new(vec![0.5], vec![0.5, 0.5], 0.5).unwrap_err();
        assert!(matches!(
            err,
            ProfileError::MismatchedWidths { a_len: 1, b_len: 2 }
        ));
    }

    #[test]
    fn rejects_empty() {
        let err = InputProfile::<f64>::new(vec![], vec![], 0.5).unwrap_err();
        assert_eq!(err, ProfileError::Empty);
    }

    #[test]
    fn rejects_out_of_range() {
        let err = InputProfile::new(vec![1.5], vec![0.5], 0.5).unwrap_err();
        assert!(matches!(err, ProfileError::OutOfRange { .. }));
        let err = InputProfile::new(vec![0.5], vec![0.5], -0.1).unwrap_err();
        assert!(matches!(err, ProfileError::OutOfRange { .. }));
    }

    #[test]
    fn uniform_is_half_everywhere() {
        let p = InputProfile::<f64>::uniform(5);
        assert!(p.is_constant());
        for i in 0..5 {
            assert_eq!(*p.pa(i), 0.5);
            assert_eq!(*p.pb(i), 0.5);
        }
        assert_eq!(*p.p_cin(), 0.5);
    }

    #[test]
    fn constant_detection() {
        let c = InputProfile::constant(3, 0.1);
        assert!(c.is_constant());
        let v = InputProfile::new(vec![0.1, 0.2], vec![0.1, 0.1], 0.1).expect("valid");
        assert!(!v.is_constant());
    }

    #[test]
    fn assignment_probability_uniform_is_2_pow_neg_bits() {
        let p = InputProfile::<f64>::uniform(3);
        // 2*3 operand bits + carry = 7 coin flips.
        let expect = 0.5f64.powi(7);
        for (a, b, cin) in [(0u64, 0u64, false), (5, 2, true), (7, 7, true)] {
            assert!((p.assignment_probability(a, b, cin) - expect).abs() < 1e-15);
        }
    }

    #[test]
    fn assignment_probabilities_sum_to_one_exactly() {
        let p = InputProfile::<Rational>::new(
            vec![Rational::from_ratio(1, 3), Rational::from_ratio(2, 5)],
            vec![Rational::from_ratio(1, 7), Rational::from_ratio(9, 10)],
            Rational::from_ratio(3, 4),
        )
        .expect("valid");
        let mut total = Rational::zero();
        for a in 0..4u64 {
            for b in 0..4u64 {
                for cin in [false, true] {
                    total = total + p.assignment_probability(a, b, cin);
                }
            }
        }
        assert_eq!(total, Rational::one());
    }

    #[test]
    fn linear_ramp_interpolates_endpoints() {
        let p = InputProfile::<f64>::linear_ramp(5, 0.5, 0.1);
        assert_eq!(*p.pa(0), 0.5);
        assert!((p.pa(4) - 0.1).abs() < 1e-12);
        assert!((p.pa(2) - 0.3).abs() < 1e-12);
        assert_eq!(*p.p_cin(), 0.5);
        // Width 1 degenerates to the LSB probability.
        let single = InputProfile::<f64>::linear_ramp(1, 0.7, 0.1);
        assert_eq!(*single.pa(0), 0.7);
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn linear_ramp_zero_width_panics() {
        let _ = InputProfile::<f64>::linear_ramp(0, 0.5, 0.1);
    }

    #[test]
    fn convert_f64_to_rational_is_exact() {
        let p = InputProfile::<f64>::constant(2, 0.25);
        let r: InputProfile<Rational> = p.convert();
        assert_eq!(*r.pa(0), Rational::from_ratio(1, 4));
    }

    #[test]
    fn truncate_keeps_lsbs() {
        let p = InputProfile::new(vec![0.1, 0.2, 0.3], vec![0.4, 0.5, 0.6], 0.7).expect("valid");
        let t = p.truncate(2);
        assert_eq!(t.width(), 2);
        assert_eq!(*t.pa(1), 0.2);
        assert_eq!(*t.p_cin(), 0.7);
    }

    #[test]
    #[should_panic(expected = "invalid truncation width")]
    fn truncate_beyond_width_panics() {
        let p = InputProfile::<f64>::uniform(2);
        let _ = p.truncate(3);
    }
}
