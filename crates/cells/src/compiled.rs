//! Bitsliced (SWAR/SIMD) evaluation of adder chains: 64–512 input vectors
//! per stage per instruction.
//!
//! [`AdderChain::add`] walks the stages one input vector at a time, building
//! a [`FaInput`] and looking up a truth-table row per bit. That is fine for
//! spot checks but hopeless for the `2^(2N+1)`-case exhaustive sweeps of
//! paper Fig. 1 / Table 6. [`CompiledChain`] instead compiles each stage's
//! 8-row truth table *once* into sum/carry boolean expressions over
//! **bit-planes**: bit `l` of plane `i` is bit `i` of the `l`-th input
//! vector, so one pass over the stages evaluates one lane batch of
//! independent additions.
//!
//! The compilation scheme is a broadcast mux tree: each truth-table row bit
//! is expanded once, at compile time, into an all-ones/all-zeros mask, and
//! an output column is evaluated lane-parallel by a three-level binary mux
//! over the `c`, `b`, `a` planes:
//!
//! ```text
//! r_k = (c & m[2k+1]) | (!c & m[2k])      k = 0..4   (mux by Cin)
//! s_j = (b & r_{2j+1}) | (!b & r_{2j})    j = 0..2   (mux by B)
//! out = (a & s_1) | (!a & s_0)                       (mux by A)
//! ```
//!
//! — branch-free, ~17 ALU ops per output (≈35 per stage for sum + carry).
//! Stages that equal the accurate full adder take the classic 5-op fast
//! path `sum = a ^ b ^ c`, `carry = (a & b) | (c & (a ^ b))`, so hybrid
//! chains with accurate MSBs cost almost nothing above the approximate
//! stages.
//!
//! The evaluation core is generic over [`SimdWord`]: the `u64` methods
//! ([`eval64_into`](CompiledChain::eval64_into) and friends) are the 64-lane
//! baseline, and [`CompiledChain::kernel`] instantiates the same mux tree
//! for any wider word (2×u64 / AVX2 / AVX-512), dispatched at runtime via
//! [`crate::simd::dispatch`]. Lane order is fixed by the [`SimdWord`]
//! contract — lane `l` is bit `l % 64` of element `l / 64` — so a wide
//! batch is exactly `WORDS` consecutive 64-lane batches evaluated together.
//!
//! # Examples
//!
//! ```
//! use sealpaa_cells::{AdderChain, CompiledChain, StandardCell};
//!
//! let chain = AdderChain::uniform(StandardCell::Lpaa3.cell(), 8);
//! let compiled = CompiledChain::compile(&chain);
//!
//! // Evaluate the same operands in lane 0 and lane 1.
//! let a_planes = sealpaa_cells::pack_lanes(&[13, 200], 8);
//! let b_planes = sealpaa_cells::pack_lanes(&[77, 31], 8);
//! let (sum, cout) = compiled.eval64(&a_planes, &b_planes, 0);
//! for lane in 0..2 {
//!     let scalar = chain.add([13, 200][lane], [77, 31][lane], false);
//!     assert_eq!(sealpaa_cells::lane_value(&sum, cout, lane), scalar.value());
//! }
//! ```

use crate::chain::AdderChain;
use crate::simd::SimdWord;
use crate::truth_table::{FaInput, TruthTable};

/// One stage's three 8-row truth-table columns as plain bit masks (the
/// backend-independent compilation result; `error_tt` marks the rows on
/// which the cell deviates from the accurate full adder — the paper's
/// per-stage "error cases").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct StageTables {
    sum_tt: u8,
    carry_tt: u8,
    error_tt: u8,
}

/// One stage specialized for word type `W`: per output, the eight
/// truth-table row bits pre-broadcast into all-ones/all-zeros words
/// (`m[r]` describes [`FaInput::from_index`]`(r)`), ready for the mux tree.
#[derive(Debug, Clone, PartialEq, Eq)]
struct KernelStage<W> {
    /// Broadcast row masks of the sum column.
    sum_m: [W; 8],
    /// Broadcast row masks of the carry-out column.
    carry_m: [W; 8],
    /// Broadcast row masks of the error rows.
    error_m: [W; 8],
    /// The error rows as a plain 8-bit mask (`error_m` collapsed), kept for
    /// the accurate-stage fast-path test.
    error_tt: u8,
}

impl<W: SimdWord> KernelStage<W> {
    /// `true` if the stage behaves exactly like the accurate full adder, in
    /// which case evaluation takes the xor/majority fast path.
    #[inline(always)]
    fn is_accurate(&self) -> bool {
        self.error_tt == 0
    }
}

/// Expands an 8-bit truth-table column into broadcast row masks.
fn broadcast_rows<W: SimdWord>(tt: u8) -> [W; 8] {
    let mut m = [W::zero(); 8];
    for (r, mask) in m.iter_mut().enumerate() {
        if (tt >> r) & 1 == 1 {
            *mask = W::ones();
        }
    }
    m
}

/// Selects each lane's truth-table row bit with a three-level mux tree over
/// the input planes and their complements (`(A << 2) | (B << 1) | Cin` row
/// indexing — Cin muxes first, A last).
#[inline(always)]
fn mux8<W: SimdWord>(m: &[W; 8], a: W, na: W, b: W, nb: W, c: W, nc: W) -> W {
    let r0 = (c & m[1]) | (nc & m[0]);
    let r1 = (c & m[3]) | (nc & m[2]);
    let r2 = (c & m[5]) | (nc & m[4]);
    let r3 = (c & m[7]) | (nc & m[6]);
    let s0 = (b & r1) | (nb & r0);
    let s1 = (b & r3) | (nb & r2);
    (a & s1) | (na & s0)
}

/// An [`AdderChain`] compiled for 64-lane bitsliced evaluation.
///
/// See the [module docs](self) for the encoding. A `CompiledChain` is plain
/// data (`Send + Sync`), so one compilation can be shared across simulation
/// worker threads. The `u64` methods are the baseline engine;
/// [`kernel`](Self::kernel) re-broadcasts the same truth tables for a wider
/// [`SimdWord`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledChain {
    tables: Vec<StageTables>,
    kernel64: CompiledKernel<u64>,
}

impl CompiledChain {
    /// Compiles every stage's truth table into row masks.
    ///
    /// # Panics
    ///
    /// Panics if `chain.width() > 64` (same limit as [`AdderChain::add`]).
    pub fn compile(chain: &AdderChain) -> Self {
        assert!(
            chain.width() <= 64,
            "bitsliced evaluation supports up to 64 bits"
        );
        let accurate = TruthTable::accurate();
        let tables: Vec<StageTables> = chain
            .iter()
            .map(|cell| {
                let table = cell.truth_table();
                let mut sum_tt = 0u8;
                let mut carry_tt = 0u8;
                let mut error_tt = 0u8;
                for input in FaInput::all() {
                    let out = table.eval(input);
                    let r = input.index();
                    if out.sum {
                        sum_tt |= 1 << r;
                    }
                    if out.carry_out {
                        carry_tt |= 1 << r;
                    }
                    if out != accurate.eval(input) {
                        error_tt |= 1 << r;
                    }
                }
                StageTables {
                    sum_tt,
                    carry_tt,
                    error_tt,
                }
            })
            .collect();
        let kernel64 = kernel_from_tables(&tables);
        CompiledChain { tables, kernel64 }
    }

    /// Number of stages (operand width in bits).
    pub fn width(&self) -> usize {
        self.tables.len()
    }

    /// `true` if every stage is behaviourally exact.
    pub fn is_accurate(&self) -> bool {
        self.tables.iter().all(|t| t.error_tt == 0)
    }

    /// Specializes the chain for word type `W`: the same mux tree with the
    /// row masks re-broadcast to `W`'s width. Build once per simulation
    /// run, outside the hot loop.
    pub fn kernel<W: SimdWord>(&self) -> CompiledKernel<W> {
        kernel_from_tables(&self.tables)
    }

    /// Evaluates 64 additions at once, writing the sum bit-planes into
    /// `sum_out` and returning the carry-out word (bit `l` = lane `l`'s
    /// carry-out).
    ///
    /// `a_planes[i]`/`b_planes[i]` hold bit `i` of the 64 lanes' operands;
    /// `cin` holds the 64 carry-in bits.
    ///
    /// # Panics
    ///
    /// Panics if any slice length differs from [`width`](Self::width).
    pub fn eval64_into(
        &self,
        a_planes: &[u64],
        b_planes: &[u64],
        cin: u64,
        sum_out: &mut [u64],
    ) -> u64 {
        self.kernel64.eval_into(a_planes, b_planes, cin, sum_out)
    }

    /// Allocating convenience wrapper around [`eval64_into`]: returns
    /// `(sum_planes, cout_word)`.
    ///
    /// [`eval64_into`]: Self::eval64_into
    pub fn eval64(&self, a_planes: &[u64], b_planes: &[u64], cin: u64) -> (Vec<u64>, u64) {
        let mut sum = vec![0u64; self.width()];
        let cout = self.eval64_into(a_planes, b_planes, cin, &mut sum);
        (sum, cout)
    }

    /// Evaluates the *accurate* reference chain on 64 lanes: plain ripple
    /// addition via `sum = a ^ b ^ c`, `carry = majority(a, b, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ.
    pub fn accurate64(a_planes: &[u64], b_planes: &[u64], cin: u64, sum_out: &mut [u64]) -> u64 {
        accurate_eval(a_planes, b_planes, cin, sum_out)
    }

    /// Fused evaluation of the approximate chain *and* the accurate
    /// reference in one pass over the planes: writes the approximate sum
    /// planes into `approx_out`, the accurate sum planes into `exact_out`,
    /// and returns the batch's comparison words. Equivalent to
    /// [`eval64_into`](Self::eval64_into) +
    /// [`accurate_deviation64`](Self::accurate_deviation64) + a plane-wise
    /// XOR reduce, but loads each operand plane once and shares the
    /// `a ^ b` / `a & b` subterms between the two carry chains — the
    /// exhaustive sweep's inner loop.
    ///
    /// # Panics
    ///
    /// Panics if any slice length differs from [`width`](Self::width).
    pub fn eval64_diff(
        &self,
        a_planes: &[u64],
        b_planes: &[u64],
        cin: u64,
        approx_out: &mut [u64],
        exact_out: &mut [u64],
    ) -> Diff64 {
        self.kernel64
            .eval_diff(a_planes, b_planes, cin, approx_out, exact_out)
    }

    /// Walks the accurate carry chain, writing the accurate sum planes into
    /// `sum_out` and returning `(accurate_cout, deviated)`, where bit `l` of
    /// `deviated` is set iff some stage of *this* (approximate) chain sits on
    /// one of its error rows along lane `l`'s accurate carries — the paper's
    /// first-deviation ("stage error") semantics, 64 lanes at a time.
    ///
    /// # Panics
    ///
    /// Panics if any slice length differs from [`width`](Self::width).
    pub fn accurate_deviation64(
        &self,
        a_planes: &[u64],
        b_planes: &[u64],
        cin: u64,
        sum_out: &mut [u64],
    ) -> (u64, u64) {
        self.kernel64
            .accurate_deviation(a_planes, b_planes, cin, sum_out)
    }
}

fn kernel_from_tables<W: SimdWord>(tables: &[StageTables]) -> CompiledKernel<W> {
    CompiledKernel {
        stages: tables
            .iter()
            .map(|t| KernelStage {
                sum_m: broadcast_rows(t.sum_tt),
                carry_m: broadcast_rows(t.carry_tt),
                error_m: broadcast_rows(t.error_tt),
                error_tt: t.error_tt,
            })
            .collect(),
    }
}

/// A [`CompiledChain`] specialized for word type `W` — the generic engine
/// behind every bitsliced simulator, obtained from
/// [`CompiledChain::kernel`] and dispatched via [`crate::simd::dispatch`].
///
/// The methods mirror the chain's `u64` API one-for-one (`eval_into` ↔
/// [`CompiledChain::eval64_into`], …); all are `#[inline(always)]` so the
/// mux tree is monomorphized *inside* the feature-annotated dispatch
/// wrapper and LLVM can vectorize the plain-array word operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledKernel<W> {
    stages: Vec<KernelStage<W>>,
}

impl<W: SimdWord> CompiledKernel<W> {
    /// Number of stages (operand width in bits).
    pub fn width(&self) -> usize {
        self.stages.len()
    }

    /// `W::LANES` additions per call; see [`CompiledChain::eval64_into`].
    ///
    /// # Panics
    ///
    /// Panics if any slice length differs from [`width`](Self::width).
    #[inline(always)]
    pub fn eval_into(&self, a_planes: &[W], b_planes: &[W], cin: W, sum_out: &mut [W]) -> W {
        let width = self.width();
        assert_eq!(a_planes.len(), width, "a_planes width mismatch");
        assert_eq!(b_planes.len(), width, "b_planes width mismatch");
        assert_eq!(sum_out.len(), width, "sum_out width mismatch");
        let mut carry = cin;
        for (i, stage) in self.stages.iter().enumerate() {
            let (a, b, c) = (a_planes[i], b_planes[i], carry);
            if stage.is_accurate() {
                sum_out[i] = a ^ b ^ c;
                carry = (a & b) | (c & (a ^ b));
            } else {
                let (na, nb, nc) = (!a, !b, !c);
                sum_out[i] = mux8(&stage.sum_m, a, na, b, nb, c, nc);
                carry = mux8(&stage.carry_m, a, na, b, nb, c, nc);
            }
        }
        carry
    }

    /// Fused approximate + accurate evaluation; see
    /// [`CompiledChain::eval64_diff`].
    ///
    /// # Panics
    ///
    /// Panics if any slice length differs from [`width`](Self::width).
    #[inline(always)]
    pub fn eval_diff(
        &self,
        a_planes: &[W],
        b_planes: &[W],
        cin: W,
        approx_out: &mut [W],
        exact_out: &mut [W],
    ) -> KernelDiff<W> {
        let width = self.width();
        assert_eq!(a_planes.len(), width, "a_planes width mismatch");
        assert_eq!(b_planes.len(), width, "b_planes width mismatch");
        assert_eq!(approx_out.len(), width, "approx_out width mismatch");
        assert_eq!(exact_out.len(), width, "exact_out width mismatch");
        let mut approx_carry = cin;
        let mut exact_carry = cin;
        let mut deviated = W::zero();
        let mut mismatch = W::zero();
        for (i, stage) in self.stages.iter().enumerate() {
            let (a, b) = (a_planes[i], b_planes[i]);
            let axb = a ^ b;
            let aab = a & b;
            let approx;
            if stage.is_accurate() {
                approx = axb ^ approx_carry;
                approx_carry = aab | (approx_carry & axb);
            } else {
                let (na, nb) = (!a, !b);
                let (c, nc) = (approx_carry, !approx_carry);
                approx = mux8(&stage.sum_m, a, na, b, nb, c, nc);
                approx_carry = mux8(&stage.carry_m, a, na, b, nb, c, nc);
                // First-deviation semantics: error rows are tested along
                // the *accurate* carry chain.
                deviated = deviated | mux8(&stage.error_m, a, na, b, nb, exact_carry, !exact_carry);
            }
            let exact = axb ^ exact_carry;
            exact_carry = aab | (exact_carry & axb);
            mismatch = mismatch | (approx ^ exact);
            approx_out[i] = approx;
            exact_out[i] = exact;
        }
        mismatch = mismatch | (approx_carry ^ exact_carry);
        KernelDiff {
            approx_cout: approx_carry,
            exact_cout: exact_carry,
            deviated,
            mismatch,
        }
    }

    /// Accurate carry chain + first-deviation word; see
    /// [`CompiledChain::accurate_deviation64`].
    ///
    /// # Panics
    ///
    /// Panics if any slice length differs from [`width`](Self::width).
    #[inline(always)]
    pub fn accurate_deviation(
        &self,
        a_planes: &[W],
        b_planes: &[W],
        cin: W,
        sum_out: &mut [W],
    ) -> (W, W) {
        let width = self.width();
        assert_eq!(a_planes.len(), width, "a_planes width mismatch");
        assert_eq!(b_planes.len(), width, "b_planes width mismatch");
        assert_eq!(sum_out.len(), width, "sum_out width mismatch");
        let mut carry = cin;
        let mut deviated = W::zero();
        for (i, stage) in self.stages.iter().enumerate() {
            let (a, b, c) = (a_planes[i], b_planes[i], carry);
            if stage.error_tt != 0 {
                let (na, nb, nc) = (!a, !b, !c);
                deviated = deviated | mux8(&stage.error_m, a, na, b, nb, c, nc);
            }
            sum_out[i] = a ^ b ^ c;
            carry = (a & b) | (c & (a ^ b));
        }
        (carry, deviated)
    }
}

/// The comparison words of one fused [`CompiledKernel::eval_diff`] batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelDiff<W> {
    /// The approximate chain's carry-out word.
    pub approx_cout: W,
    /// The accurate reference's carry-out word.
    pub exact_cout: W,
    /// Lanes on which some stage sat on an error row along the accurate
    /// carries (the paper's first-deviation "stage error" semantics).
    pub deviated: W,
    /// Lanes whose full output value (sum bits + carry-out) is wrong.
    pub mismatch: W,
}

/// The comparison words of one fused 64-lane batch.
pub type Diff64 = KernelDiff<u64>;

/// Evaluates the *accurate* reference chain on `W::LANES` lanes: plain
/// ripple addition via `sum = a ^ b ^ c`, `carry = majority(a, b, c)` (the
/// generic form of [`CompiledChain::accurate64`]).
///
/// # Panics
///
/// Panics if the slice lengths differ.
#[inline(always)]
pub fn accurate_eval<W: SimdWord>(a_planes: &[W], b_planes: &[W], cin: W, sum_out: &mut [W]) -> W {
    assert_eq!(a_planes.len(), b_planes.len(), "operand width mismatch");
    assert_eq!(a_planes.len(), sum_out.len(), "sum_out width mismatch");
    let mut carry = cin;
    for i in 0..a_planes.len() {
        let (a, b, c) = (a_planes[i], b_planes[i], carry);
        sum_out[i] = a ^ b ^ c;
        carry = (a & b) | (c & (a ^ b));
    }
    carry
}

/// Broadcasts one scalar value into bit-planes: plane `i` is all-ones iff
/// bit `i` of `value` is set (every lane carries the same operand).
pub fn splat64(value: u64, width: usize) -> Vec<u64> {
    let mut planes = vec![0u64; width];
    splat64_into(value, &mut planes);
    planes
}

/// In-place variant of [`splat64`] for hot loops.
pub fn splat64_into(value: u64, planes: &mut [u64]) {
    splat_planes(value, planes);
}

/// Generic form of [`splat64_into`]: plane `i` is all-ones iff bit `i` of
/// `value` is set.
#[inline(always)]
pub fn splat_planes<W: SimdWord>(value: u64, planes: &mut [W]) {
    for (i, plane) in planes.iter_mut().enumerate() {
        *plane = W::splat(((value >> i) & 1).wrapping_neg());
    }
}

/// Transposes a 64×64 bit matrix in place (bit `c` of word `r` swaps with
/// bit `r` of word `c`) with the classic block-swap recursion: 6 rounds of
/// masked half-block exchanges, `O(64·log 64)` word operations instead of
/// the `O(64·64)` single-bit moves of a naive transpose.
fn transpose64(m: &mut [u64; 64]) {
    transpose_lanes(m);
}

/// Transposes 64 wide words as `W::WORDS` independent 64×64 bit matrices,
/// in place: within every 64-bit element position `s`, bit `c` of
/// `m[r].word(s)` swaps with bit `r` of `m[c].word(s)`.
///
/// Every swap step of the block recursion shifts and masks *within* a
/// 64-bit element, so the wide transpose performs one subword transpose per
/// element at the op count of a single scalar [`transpose64`] — the wider
/// the backend, the more 64-lane subwords are transposed per operation.
#[inline(always)]
pub fn transpose_lanes<W: SimdWord>(m: &mut [W; 64]) {
    let mut j = 32u32;
    let mut mask = 0x0000_0000_FFFF_FFFFu64;
    while j != 0 {
        let wmask = W::splat(mask);
        let mut k = 0usize;
        while k < 64 {
            for i in k..k + j as usize {
                let t = (m[i].shr64(j) ^ m[i + j as usize]) & wmask;
                m[i] = m[i] ^ t.shl64(j);
                m[i + j as usize] = m[i + j as usize] ^ t;
            }
            k += 2 * j as usize;
        }
        j >>= 1;
        mask ^= mask << j;
    }
}

/// Computes, for every lane, the *biased* signed error distance
/// `(approx − exact) + (2^(width+1) − 1)` — the canonical error-distance
/// histogram index — in transposed form: after the call, `m[l].word(s)` is
/// the biased distance of lane `l` of 64-lane subword `s` (planes at or
/// above `width + 2` come out zero, so the value is the full result).
///
/// The distances are produced entirely in plane space: a lane-parallel
/// two's-complement subtraction over `width + 2` bit-planes followed by one
/// wide [`transpose_lanes`]. The cost is `O(width + 64·log 64)` wide-word
/// operations per call — independent of how many lanes mismatch, and
/// scaling with the backend's lane count — where a per-lane
/// [`error_distances64`] walk is serial in the erroneous lanes. Sweep and
/// replay engines switch to this path when a batch's mismatch mask is
/// dense.
///
/// # Panics
///
/// Panics if the sum slice lengths differ or `width + 2 > 64`.
#[inline(always)]
pub fn biased_distance_lanes<W: SimdWord>(
    approx_sum: &[W],
    approx_cout: W,
    exact_sum: &[W],
    exact_cout: W,
    m: &mut [W; 64],
) {
    assert_eq!(approx_sum.len(), exact_sum.len(), "operand width mismatch");
    let width = approx_sum.len();
    assert!(width + 2 <= 64, "biased distances need width + 2 planes");
    // approx − exact + (2^(width+1) − 1) ≡ approx + !exact + 2^(width+1)
    // (mod 2^(width+2)): one ripple addition of approx and !exact — the
    // two's-complement carry-in and the bias together are exactly
    // 2^(width+1), which only complements the top plane.
    let mut carry = W::zero();
    for i in 0..width {
        let a = approx_sum[i];
        let e = !exact_sum[i];
        m[i] = a ^ e ^ carry;
        carry = (a & e) | (carry & (a ^ e));
    }
    let a = approx_cout;
    let e = !exact_cout;
    m[width] = a ^ e ^ carry;
    carry = (a & e) | (carry & (a ^ e));
    // Plane width+1 of the operands is (0, all-ones), so the plain sum bit
    // is !carry; adding the folded 2^(width+1) complements it to `carry`.
    m[width + 1] = carry;
    for plane in m.iter_mut().skip(width + 2) {
        *plane = W::zero();
    }
    transpose_lanes(m);
}

/// Transposes up to 64 scalar values into bit-planes, in place: bit `l` of
/// `planes[i]` is bit `i` of `values[l]` (missing lanes are zero, and
/// operand bits at or above `planes.len()` are dropped). This is the hot
/// packing path of trace replay; the cost is one 64×64 bit-matrix
/// [`transpose64`], independent of how many of the 64 lanes are occupied.
///
/// # Panics
///
/// Panics if more than 64 values or more than 64 planes are given.
pub fn pack_lanes_into(values: &[u64], planes: &mut [u64]) {
    assert!(values.len() <= 64, "a plane word holds at most 64 lanes");
    assert!(planes.len() <= 64, "at most 64 bit-planes per operand");
    let mut m = [0u64; 64];
    m[..values.len()].copy_from_slice(values);
    transpose64(&mut m);
    planes.copy_from_slice(&m[..planes.len()]);
}

/// Transposes up to 64 scalar values into bit-planes: bit `l` of plane `i`
/// is bit `i` of `values[l]` (missing lanes are zero).
///
/// # Panics
///
/// Panics if more than 64 values are given.
pub fn pack_lanes(values: &[u64], width: usize) -> Vec<u64> {
    assert!(width <= 64, "at most 64 bit-planes per operand");
    let mut planes = vec![0u64; width];
    pack_lanes_into(values, &mut planes);
    planes
}

/// Extracts lane `l`'s full numeric value (sum bits plus the carry-out as
/// bit `width`) from sum planes and a carry-out word — the bitsliced
/// counterpart of [`AdditionResult::value`](crate::AdditionResult::value).
///
/// # Panics
///
/// Panics if `lane >= 64`.
pub fn lane_value(sum_planes: &[u64], cout: u64, lane: usize) -> u64 {
    assert!(lane < 64, "a plane word holds at most 64 lanes");
    let mut value = ((cout >> lane) & 1) << sum_planes.len();
    for (i, plane) in sum_planes.iter().enumerate() {
        value |= ((plane >> lane) & 1) << i;
    }
    value
}

/// Computes the signed error distance `approx − exact` for every lane set in
/// `mismatch`, writing into `ed` (other entries are left untouched).
///
/// One pass over the planes instead of one [`lane_value`] extraction per
/// erroneous lane: plane `i` bits that differ contribute `+2^i` where the
/// approximate sum has the bit and `−2^i` where the exact sum has it (the
/// carry-out words likewise at weight `2^width`), so the cost is
/// `O(width + errors)` per 64-lane batch rather than `O(width · errors)`.
///
/// # Panics
///
/// Panics if the sum slice lengths differ.
pub fn error_distances64(
    approx_sum: &[u64],
    approx_cout: u64,
    exact_sum: &[u64],
    exact_cout: u64,
    mismatch: u64,
    ed: &mut [i64; 64],
) {
    assert_eq!(approx_sum.len(), exact_sum.len(), "operand width mismatch");
    let mut lanes = mismatch;
    while lanes != 0 {
        let lane = lanes.trailing_zeros() as usize;
        lanes &= lanes - 1;
        ed[lane] = 0;
    }
    let mut accumulate = |approx_plane: u64, exact_plane: u64, weight: i64| {
        let diff = (approx_plane ^ exact_plane) & mismatch;
        if diff == 0 {
            return;
        }
        let mut pos = approx_plane & diff;
        while pos != 0 {
            let lane = pos.trailing_zeros() as usize;
            pos &= pos - 1;
            ed[lane] += weight;
        }
        let mut neg = exact_plane & diff;
        while neg != 0 {
            let lane = neg.trailing_zeros() as usize;
            neg &= neg - 1;
            ed[lane] -= weight;
        }
    };
    for (i, (&approx, &exact)) in approx_sum.iter().zip(exact_sum).enumerate() {
        accumulate(approx, exact, 1i64 << i);
    }
    accumulate(approx_cout, exact_cout, 1i64 << approx_sum.len());
}

/// Aggregate error-distance statistics of one lane batch: the lanes set in
/// `mismatch` contribute their signed error distance `approx − exact` to
/// [`sum_ed`](ErrorStats64::sum_ed), its magnitude to
/// [`sum_abs_ed`](ErrorStats64::sum_abs_ed), and the largest magnitude to
/// [`max_abs_ed`](ErrorStats64::max_abs_ed).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ErrorStats64 {
    /// `Σ (approx − exact)` over the mismatch lanes (exact integer terms,
    /// accumulated in `f64`).
    pub sum_ed: f64,
    /// `Σ |approx − exact|` over the mismatch lanes.
    pub sum_abs_ed: f64,
    /// `max |approx − exact|` over the mismatch lanes.
    pub max_abs_ed: u64,
}

/// Computes [`ErrorStats64`] for a 64-lane batch; see [`error_stats`].
pub fn error_stats64(
    approx_sum: &[u64],
    approx_cout: u64,
    exact_sum: &[u64],
    exact_cout: u64,
    mismatch: u64,
) -> ErrorStats64 {
    error_stats(approx_sum, approx_cout, exact_sum, exact_cout, mismatch)
}

/// Computes [`ErrorStats64`] for a batch entirely in plane space — no
/// per-lane extraction, so the cost is `O(width)` regardless of how many
/// lanes erred. Used by the Monte-Carlo kernel, where every lane has unit
/// weight and only the aggregate moments are needed.
///
/// The construction: a most-significant-bit-first scan finds the lanes
/// where the approximate value exceeds the exact one (`gt`); a lane-parallel
/// borrow-ripple subtraction of the smaller value from the larger yields
/// magnitude planes; popcounts of those planes weight each bit position, and
/// an MSB-first candidate-narrowing scan reads off the maximum magnitude.
///
/// # Panics
///
/// Panics if the sum slice lengths differ, or (in debug builds) if the
/// width is 64 (the carry-out would sit at bit 64; every simulation caller
/// is capped below that).
#[inline(always)]
pub fn error_stats<W: SimdWord>(
    approx_sum: &[W],
    approx_cout: W,
    exact_sum: &[W],
    exact_cout: W,
    mismatch: W,
) -> ErrorStats64 {
    assert_eq!(approx_sum.len(), exact_sum.len(), "operand width mismatch");
    let width = approx_sum.len();
    debug_assert!(width < 64, "carry-out weight 2^width must fit in u64");
    if !mismatch.any() {
        return ErrorStats64::default();
    }

    // Lanes where approx > exact: first differing bit, MSB first.
    let mut undecided = mismatch;
    let mut gt = W::zero();
    let d = (approx_cout ^ exact_cout) & undecided;
    gt = gt | (d & approx_cout);
    undecided = undecided & !d;
    for i in (0..width).rev() {
        let d = (approx_sum[i] ^ exact_sum[i]) & undecided;
        gt = gt | (d & approx_sum[i]);
        undecided = undecided & !d;
    }
    let lt = mismatch & !gt;

    // |approx − exact| per lane as magnitude planes: subtract the smaller
    // value from the larger with a lane-parallel borrow ripple.
    let mut mag = [W::zero(); 65];
    let mut borrow = W::zero();
    for i in 0..width {
        let x = (approx_sum[i] & gt) | (exact_sum[i] & lt);
        let y = (exact_sum[i] & gt) | (approx_sum[i] & lt);
        mag[i] = (x ^ y ^ borrow) & mismatch;
        borrow = (!x & (y | borrow)) | (y & borrow);
    }
    let x = (approx_cout & gt) | (exact_cout & lt);
    let y = (exact_cout & gt) | (approx_cout & lt);
    mag[width] = (x ^ y ^ borrow) & mismatch;

    let mut sum_ed = 0.0f64;
    let mut sum_abs_ed = 0.0f64;
    for (i, &m) in mag[..=width].iter().enumerate() {
        let weight = (1u128 << i) as f64;
        sum_abs_ed += m.count_ones() as f64 * weight;
        sum_ed += ((m & gt).count_ones() as i64 - (m & lt).count_ones() as i64) as f64 * weight;
    }

    // Maximum magnitude: narrow the candidate set bit by bit from the top.
    let mut candidates = mismatch;
    let mut max_abs_ed = 0u64;
    for i in (0..=width).rev() {
        let hit = candidates & mag[i];
        if hit.any() {
            candidates = hit;
            max_abs_ed |= 1u64 << i;
        }
    }

    ErrorStats64 {
        sum_ed,
        sum_abs_ed,
        max_abs_ed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::{Cell, StandardCell};
    use crate::simd::{W128, W256, W512};

    /// Tiny deterministic generator for test operands (SplitMix64 step).
    struct TestRng(u64);

    impl TestRng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    fn assert_eval64_matches_scalar(chain: &AdderChain, rng: &mut TestRng) {
        let width = chain.width();
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        let compiled = CompiledChain::compile(chain);
        let a_vals: Vec<u64> = (0..64).map(|_| rng.next() & mask).collect();
        let b_vals: Vec<u64> = (0..64).map(|_| rng.next() & mask).collect();
        let cin_word = rng.next();
        let a_planes = pack_lanes(&a_vals, width);
        let b_planes = pack_lanes(&b_vals, width);
        let (sum, cout) = compiled.eval64(&a_planes, &b_planes, cin_word);
        let mut exact_sum = vec![0u64; width];
        let exact_cout = CompiledChain::accurate64(&a_planes, &b_planes, cin_word, &mut exact_sum);
        let mut dev_sum = vec![0u64; width];
        let (dev_cout, deviated) =
            compiled.accurate_deviation64(&a_planes, &b_planes, cin_word, &mut dev_sum);
        assert_eq!(dev_cout, exact_cout);
        assert_eq!(dev_sum, exact_sum);
        // The fused pass must agree with the separate ones, word for word.
        let mut fused_approx = vec![0u64; width];
        let mut fused_exact = vec![0u64; width];
        let diff = compiled.eval64_diff(
            &a_planes,
            &b_planes,
            cin_word,
            &mut fused_approx,
            &mut fused_exact,
        );
        assert_eq!(fused_approx, sum);
        assert_eq!(fused_exact, exact_sum);
        assert_eq!(diff.approx_cout, cout);
        assert_eq!(diff.exact_cout, exact_cout);
        assert_eq!(diff.deviated, deviated);
        let mut mismatch = cout ^ exact_cout;
        for i in 0..width {
            mismatch |= sum[i] ^ exact_sum[i];
        }
        assert_eq!(diff.mismatch, mismatch);
        for lane in 0..64 {
            let cin = (cin_word >> lane) & 1 == 1;
            let scalar = chain.add(a_vals[lane], b_vals[lane], cin);
            assert_eq!(
                lane_value(&sum, cout, lane),
                scalar.value(),
                "{chain} lane {lane}: a={} b={} cin={cin}",
                a_vals[lane],
                b_vals[lane]
            );
            let reference = chain.accurate_sum(a_vals[lane], b_vals[lane], cin);
            assert_eq!(lane_value(&exact_sum, exact_cout, lane), reference.value());
            // First-deviation semantics against the scalar walk.
            let accurate = TruthTable::accurate();
            let mut carry = cin;
            let mut scalar_deviated = false;
            for (i, cell) in chain.iter().enumerate() {
                let input = FaInput::new(
                    (a_vals[lane] >> i) & 1 == 1,
                    (b_vals[lane] >> i) & 1 == 1,
                    carry,
                );
                if cell.truth_table().eval(input) != accurate.eval(input) {
                    scalar_deviated = true;
                    break;
                }
                carry = accurate.eval(input).carry_out;
            }
            assert_eq!(
                (deviated >> lane) & 1 == 1,
                scalar_deviated,
                "{chain} lane {lane} deviation"
            );
        }
    }

    #[test]
    fn eval64_matches_scalar_for_every_standard_cell() {
        let mut rng = TestRng(0xC0FFEE);
        for cell in StandardCell::ALL {
            for width in [1usize, 3, 8, 13] {
                let chain = AdderChain::uniform(cell.cell(), width);
                assert_eval64_matches_scalar(&chain, &mut rng);
            }
        }
    }

    #[test]
    fn eval64_matches_scalar_for_random_hybrids() {
        let mut rng = TestRng(0xDAC17);
        for trial in 0..40 {
            let width = 1 + (rng.next() % 16) as usize;
            let stages: Vec<Cell> = (0..width)
                .map(|_| {
                    let pick = (rng.next() % StandardCell::ALL.len() as u64) as usize;
                    StandardCell::ALL[pick].cell()
                })
                .collect();
            let chain = AdderChain::from_stages(stages);
            assert_eval64_matches_scalar(&chain, &mut rng);
            let _ = trial;
        }
    }

    #[test]
    fn eval64_matches_scalar_for_arbitrary_truth_tables() {
        // Not just the library cells: any 8-row behaviour must compile.
        let mut rng = TestRng(0xBEEF);
        for _ in 0..20 {
            let word = rng.next();
            let table = TruthTable::from_bits(word as u8, (word >> 8) as u8);
            let chain = AdderChain::uniform(Cell::custom("rand", table), 7);
            assert_eval64_matches_scalar(&chain, &mut rng);
        }
    }

    /// The wide kernel's batch must be, subword for subword, exactly the
    /// u64 engine applied to consecutive 64-lane batches (the lane-order
    /// contract every backend's byte-identity rests on).
    fn assert_kernel_matches_u64_subwords<W: SimdWord>(chain: &AdderChain, rng: &mut TestRng) {
        let width = chain.width();
        let compiled = CompiledChain::compile(chain);
        let kernel = compiled.kernel::<W>();
        assert_eq!(kernel.width(), width);
        let a_planes: Vec<W> = (0..width).map(|_| W::from_fn(|_| rng.next())).collect();
        let b_planes: Vec<W> = (0..width).map(|_| W::from_fn(|_| rng.next())).collect();
        let cin = W::from_fn(|_| rng.next());
        let mut approx = vec![W::zero(); width];
        let mut exact = vec![W::zero(); width];
        let diff = kernel.eval_diff(&a_planes, &b_planes, cin, &mut approx, &mut exact);
        let mut sum = vec![W::zero(); width];
        let cout = kernel.eval_into(&a_planes, &b_planes, cin, &mut sum);
        let mut dev_sum = vec![W::zero(); width];
        let (dev_cout, deviated) =
            kernel.accurate_deviation(&a_planes, &b_planes, cin, &mut dev_sum);
        let mut acc_sum = vec![W::zero(); width];
        let acc_cout = accurate_eval(&a_planes, &b_planes, cin, &mut acc_sum);
        let stats = error_stats(
            &approx,
            diff.approx_cout,
            &exact,
            diff.exact_cout,
            diff.mismatch,
        );

        let mut stats64_sum = ErrorStats64::default();
        for s in 0..W::WORDS {
            let sub = |planes: &[W]| -> Vec<u64> { planes.iter().map(|p| p.word(s)).collect() };
            let (sum64, cout64) = compiled.eval64(&sub(&a_planes), &sub(&b_planes), cin.word(s));
            let mut exact64 = vec![0u64; width];
            let exact_cout64 = CompiledChain::accurate64(
                &sub(&a_planes),
                &sub(&b_planes),
                cin.word(s),
                &mut exact64,
            );
            let mut dev64 = vec![0u64; width];
            let (_, deviated64) = compiled.accurate_deviation64(
                &sub(&a_planes),
                &sub(&b_planes),
                cin.word(s),
                &mut dev64,
            );
            for i in 0..width {
                assert_eq!(approx[i].word(s), sum64[i], "{chain} word {s} plane {i}");
                assert_eq!(sum[i].word(s), sum64[i]);
                assert_eq!(exact[i].word(s), exact64[i]);
                assert_eq!(acc_sum[i].word(s), exact64[i]);
                assert_eq!(dev_sum[i].word(s), exact64[i]);
            }
            assert_eq!(diff.approx_cout.word(s), cout64);
            assert_eq!(cout.word(s), cout64);
            assert_eq!(diff.exact_cout.word(s), exact_cout64);
            assert_eq!(acc_cout.word(s), exact_cout64);
            assert_eq!(dev_cout.word(s), exact_cout64);
            assert_eq!(deviated.word(s), deviated64);
            let mut mismatch64 = cout64 ^ exact_cout64;
            for i in 0..width {
                mismatch64 |= sum64[i] ^ exact64[i];
            }
            assert_eq!(diff.mismatch.word(s), mismatch64);
            let s64 = error_stats64(&sum64, cout64, &exact64, exact_cout64, mismatch64);
            stats64_sum.sum_ed += s64.sum_ed;
            stats64_sum.sum_abs_ed += s64.sum_abs_ed;
            stats64_sum.max_abs_ed = stats64_sum.max_abs_ed.max(s64.max_abs_ed);
        }
        assert_eq!(stats.sum_ed, stats64_sum.sum_ed, "{chain}");
        assert_eq!(stats.sum_abs_ed, stats64_sum.sum_abs_ed, "{chain}");
        assert_eq!(stats.max_abs_ed, stats64_sum.max_abs_ed, "{chain}");
    }

    #[test]
    fn wide_kernels_match_u64_subword_for_subword() {
        let mut rng = TestRng(0x51AD);
        for cell in StandardCell::ALL {
            for width in [1usize, 7, 16] {
                let chain = AdderChain::uniform(cell.cell(), width);
                assert_kernel_matches_u64_subwords::<W128>(&chain, &mut rng);
                assert_kernel_matches_u64_subwords::<W256>(&chain, &mut rng);
                assert_kernel_matches_u64_subwords::<W512>(&chain, &mut rng);
            }
        }
        for trial in 0..12 {
            let width = 1 + (rng.next() % 24) as usize;
            let stages: Vec<Cell> = (0..width)
                .map(|_| {
                    let pick = (rng.next() % StandardCell::ALL.len() as u64) as usize;
                    StandardCell::ALL[pick].cell()
                })
                .collect();
            let chain = AdderChain::from_stages(stages);
            assert_kernel_matches_u64_subwords::<W128>(&chain, &mut rng);
            assert_kernel_matches_u64_subwords::<W256>(&chain, &mut rng);
            assert_kernel_matches_u64_subwords::<W512>(&chain, &mut rng);
            let _ = trial;
        }
    }

    #[test]
    fn accurate_chain_takes_exact_fast_path() {
        let chain = AdderChain::uniform(StandardCell::Accurate.cell(), 16);
        let compiled = CompiledChain::compile(&chain);
        assert!(compiled.is_accurate());
        let mut rng = TestRng(7);
        let a_planes: Vec<u64> = (0..16).map(|_| rng.next()).collect();
        let b_planes: Vec<u64> = (0..16).map(|_| rng.next()).collect();
        let cin = rng.next();
        let (sum, cout) = compiled.eval64(&a_planes, &b_planes, cin);
        let mut exact = vec![0u64; 16];
        let exact_cout = CompiledChain::accurate64(&a_planes, &b_planes, cin, &mut exact);
        assert_eq!(sum, exact);
        assert_eq!(cout, exact_cout);
        let (_, deviated) = compiled.accurate_deviation64(&a_planes, &b_planes, cin, &mut exact);
        assert_eq!(deviated, 0);
    }

    #[test]
    fn splat_and_pack_round_trip() {
        let planes = splat64(0b1011, 4);
        assert_eq!(planes, vec![u64::MAX, u64::MAX, 0, u64::MAX]);
        for lane in [0usize, 17, 63] {
            assert_eq!(lane_value(&planes, 0, lane), 0b1011);
        }
        let packed = pack_lanes(&[5, 9, 2], 4);
        assert_eq!(lane_value(&packed, 0, 0), 5);
        assert_eq!(lane_value(&packed, 0, 1), 9);
        assert_eq!(lane_value(&packed, 0, 2), 2);
        assert_eq!(lane_value(&packed, 0, 3), 0);
    }

    #[test]
    fn transpose_pack_matches_naive_pack() {
        let mut rng = TestRng(0x7A05);
        for &width in &[1usize, 5, 16, 47, 64] {
            for &lanes in &[0usize, 1, 17, 63, 64] {
                let values: Vec<u64> = (0..lanes).map(|_| rng.next()).collect();
                let packed = pack_lanes(&values, width);
                // Naive reference: one bit at a time.
                let mut naive = vec![0u64; width];
                for (lane, &v) in values.iter().enumerate() {
                    for (i, plane) in naive.iter_mut().enumerate() {
                        *plane |= ((v >> i) & 1) << lane;
                    }
                }
                assert_eq!(packed, naive, "w{width} lanes{lanes}");
            }
        }
    }

    #[test]
    fn error_distances_match_per_lane_extraction() {
        let mut rng = TestRng(0x5EED);
        for cell in [
            StandardCell::Lpaa1,
            StandardCell::Lpaa5,
            StandardCell::Lpaa7,
        ] {
            let width = 9;
            let mask = (1u64 << width) - 1;
            let chain = AdderChain::uniform(cell.cell(), width);
            let compiled = CompiledChain::compile(&chain);
            let a_vals: Vec<u64> = (0..64).map(|_| rng.next() & mask).collect();
            let b_vals: Vec<u64> = (0..64).map(|_| rng.next() & mask).collect();
            let cin_word = rng.next();
            let a_planes = pack_lanes(&a_vals, width);
            let b_planes = pack_lanes(&b_vals, width);
            let (approx_sum, approx_cout) = compiled.eval64(&a_planes, &b_planes, cin_word);
            let mut exact_sum = vec![0u64; width];
            let exact_cout =
                CompiledChain::accurate64(&a_planes, &b_planes, cin_word, &mut exact_sum);
            let mut mismatch = approx_cout ^ exact_cout;
            for i in 0..width {
                mismatch |= approx_sum[i] ^ exact_sum[i];
            }
            // Poisoned scratch: the helper must overwrite every mismatch lane.
            let mut ed = [i64::MIN; 64];
            error_distances64(
                &approx_sum,
                approx_cout,
                &exact_sum,
                exact_cout,
                mismatch,
                &mut ed,
            );
            for (lane, &got) in ed.iter().enumerate() {
                if (mismatch >> lane) & 1 == 1 {
                    let approx = lane_value(&approx_sum, approx_cout, lane) as i64;
                    let exact = lane_value(&exact_sum, exact_cout, lane) as i64;
                    assert_eq!(got, approx - exact, "{cell} lane {lane}");
                } else {
                    assert_eq!(got, i64::MIN, "{cell} lane {lane} untouched");
                }
            }
        }
    }

    #[test]
    fn transpose_lanes_matches_scalar_transpose_per_subword() {
        fn check<W: SimdWord>() {
            let mut rng = TestRng(0x7A05 ^ W::WORDS as u64);
            let mut wide = [W::zero(); 64];
            let mut scalar = vec![[0u64; 64]; W::WORDS];
            for r in 0..64 {
                wide[r] = W::from_fn(|s| {
                    let v = rng.next();
                    scalar[s][r] = v;
                    v
                });
            }
            transpose_lanes(&mut wide);
            for block in scalar.iter_mut() {
                transpose64(block);
            }
            for r in 0..64 {
                for (s, block) in scalar.iter().enumerate() {
                    assert_eq!(wide[r].word(s), block[r], "words{} r{r} s{s}", W::WORDS);
                }
            }
        }
        check::<u64>();
        check::<W128>();
        check::<W256>();
        check::<W512>();
    }

    #[test]
    fn biased_distance_lanes_match_error_distances() {
        fn check<W: SimdWord>() {
            let mut rng = TestRng(0xD157 ^ W::WORDS as u64);
            for cell in [StandardCell::Lpaa1, StandardCell::Lpaa5] {
                for width in [6usize, 13] {
                    let chain = AdderChain::uniform(cell.cell(), width);
                    let compiled = CompiledChain::compile(&chain);
                    let kernel = compiled.kernel::<W>();
                    let a_planes: Vec<W> = (0..width).map(|_| W::from_fn(|_| rng.next())).collect();
                    let b_planes: Vec<W> = (0..width)
                        .map(|_| W::from_fn(|_| rng.next() & rng.next()))
                        .collect();
                    let cin_word = W::from_fn(|_| rng.next());
                    let mut approx_sum = vec![W::zero(); width];
                    let mut exact_sum = vec![W::zero(); width];
                    let diff = kernel.eval_diff(
                        &a_planes,
                        &b_planes,
                        cin_word,
                        &mut approx_sum,
                        &mut exact_sum,
                    );
                    let mut m = [W::ones(); 64]; // poisoned: must be fully overwritten
                    biased_distance_lanes(
                        &approx_sum,
                        diff.approx_cout,
                        &exact_sum,
                        diff.exact_cout,
                        &mut m,
                    );
                    let offset = (1i64 << (width + 1)) - 1;
                    let mut sub_approx = vec![0u64; width];
                    let mut sub_exact = vec![0u64; width];
                    let mut ed = [0i64; 64];
                    for s in 0..W::WORDS {
                        let mm = diff.mismatch.word(s);
                        for i in 0..width {
                            sub_approx[i] = approx_sum[i].word(s);
                            sub_exact[i] = exact_sum[i].word(s);
                        }
                        error_distances64(
                            &sub_approx,
                            diff.approx_cout.word(s),
                            &sub_exact,
                            diff.exact_cout.word(s),
                            !0u64,
                            &mut ed,
                        );
                        for lane in 0..64 {
                            assert_eq!(
                                m[lane].word(s) as i64,
                                ed[lane] + offset,
                                "{cell} w{width} words{} s{s} lane{lane} mm{mm:#x}",
                                W::WORDS
                            );
                        }
                    }
                }
            }
        }
        check::<u64>();
        check::<W128>();
        check::<W256>();
        check::<W512>();
    }

    #[test]
    fn error_stats_match_per_lane_extraction() {
        let mut rng = TestRng(0xABCD);
        for cell in [
            StandardCell::Lpaa1,
            StandardCell::Lpaa4,
            StandardCell::Lpaa6,
        ] {
            for width in [5usize, 11, 16] {
                let mask = (1u64 << width) - 1;
                let chain = AdderChain::uniform(cell.cell(), width);
                let compiled = CompiledChain::compile(&chain);
                let a_vals: Vec<u64> = (0..64).map(|_| rng.next() & mask).collect();
                let b_vals: Vec<u64> = (0..64).map(|_| rng.next() & mask).collect();
                let cin_word = rng.next();
                let a_planes = pack_lanes(&a_vals, width);
                let b_planes = pack_lanes(&b_vals, width);
                let (approx_sum, approx_cout) = compiled.eval64(&a_planes, &b_planes, cin_word);
                let mut exact_sum = vec![0u64; width];
                let exact_cout =
                    CompiledChain::accurate64(&a_planes, &b_planes, cin_word, &mut exact_sum);
                let mut mismatch = approx_cout ^ exact_cout;
                for i in 0..width {
                    mismatch |= approx_sum[i] ^ exact_sum[i];
                }
                let stats =
                    error_stats64(&approx_sum, approx_cout, &exact_sum, exact_cout, mismatch);
                let mut sum_ed = 0.0;
                let mut sum_abs_ed = 0.0;
                let mut max_abs_ed = 0u64;
                for lane in 0..64 {
                    if (mismatch >> lane) & 1 == 1 {
                        let approx = lane_value(&approx_sum, approx_cout, lane) as i64;
                        let exact = lane_value(&exact_sum, exact_cout, lane) as i64;
                        let ed = approx - exact;
                        sum_ed += ed as f64;
                        sum_abs_ed += ed.unsigned_abs() as f64;
                        max_abs_ed = max_abs_ed.max(ed.unsigned_abs());
                    }
                }
                assert_eq!(stats.sum_ed, sum_ed, "{cell} w{width}");
                assert_eq!(stats.sum_abs_ed, sum_abs_ed, "{cell} w{width}");
                assert_eq!(stats.max_abs_ed, max_abs_ed, "{cell} w{width}");
            }
        }
        // An all-correct batch contributes nothing.
        assert_eq!(error_stats64(&[0], 0, &[0], 0, 0), ErrorStats64::default());
    }

    #[test]
    fn lane_value_includes_carry_out_bit() {
        let planes = splat64(0, 3);
        assert_eq!(lane_value(&planes, 1 << 5, 5), 8);
        assert_eq!(lane_value(&planes, 1 << 5, 4), 0);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn eval64_rejects_wrong_plane_count() {
        let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), 4);
        let compiled = CompiledChain::compile(&chain);
        let _ = compiled.eval64(&[0; 3], &[0; 4], 0);
    }
}
