//! SIMD word abstraction for the bitsliced engines: one generic evaluation
//! core, several lane widths, a single runtime dispatch point.
//!
//! [`CompiledChain`](crate::CompiledChain)'s mux tree is pure boolean algebra
//! over bit-planes, so nothing about it is specific to `u64`. This module
//! defines [`SimdWord`] — the word type a bitsliced engine is generic over —
//! and implements it for:
//!
//! * `u64` — the portable 64-lane SWAR baseline ([`Backend::U64`]),
//! * [`W128`] — 2×u64, 128 lanes, vectorized by LLVM at the x86-64 baseline
//!   (SSE2) and on any other 128-bit SIMD target ([`Backend::U64x2`]),
//! * [`W256`] — 4×u64, 256 lanes, compiled with AVX2 enabled via
//!   [`dispatch`] ([`Backend::Avx2`]),
//! * [`W512`] — 8×u64, 512 lanes, compiled with AVX-512F enabled via
//!   [`dispatch`] ([`Backend::Avx512`]).
//!
//! The wide types are plain `[u64; N]` newtypes: every operation is an
//! `#[inline(always)]` element-wise loop, and the vector instructions come
//! from LLVM auto-vectorization inside the `#[target_feature]`-annotated
//! dispatch wrappers. That keeps the entire evaluation core free of
//! per-backend code — the *only* `unsafe` in the workspace is the two
//! feature-gated wrapper calls in [`dispatch`], each guarded by a runtime
//! [`is_x86_feature_detected!`] check.
//!
//! # Lane order
//!
//! A `W` word with `W::WORDS` elements carries `W::LANES = 64 * W::WORDS`
//! lanes. Lane `l` lives in bit `l % 64` of element `l / 64`: a wide batch
//! is exactly `WORDS` consecutive 64-lane SWAR batches evaluated together,
//! in order. Every engine assigns work to lanes in ascending lane index, so
//! batch boundaries are the only thing that changes between backends —
//! integer-exact reductions (counts, histograms, rational weights) are
//! byte-identical across backends, and the differential suites pin that.
//!
//! # Forcing a backend
//!
//! [`Backend::active`] honours the `SEALPAA_SIMD` environment variable
//! (`u64`, `u64x2`, `avx2`, `avx512`) before falling back to runtime
//! detection, and engines additionally accept an explicit [`Backend`] so
//! tests can iterate every available backend in-process. Forcing a backend
//! the machine cannot run is a hard error, not a silent fallback — CI
//! differential runs must never quietly test a different kernel than they
//! claim.

use core::ops::{BitAnd, BitOr, BitXor, Not};
use std::str::FromStr;
use std::sync::OnceLock;

/// The word type a bitsliced engine is generic over: `WORDS` u64 elements
/// holding `LANES = 64 * WORDS` independent lanes (see the
/// [module docs](self) for the lane-order contract).
///
/// All bitwise operators act lane-wise; [`wrapping_add64`], [`shl64`],
/// [`shr64`] and [`rotl64`] act *element-wise* on the u64 elements (used by
/// the vectorized PRNG, where each element is an independent 64-bit
/// stream).
///
/// [`wrapping_add64`]: SimdWord::wrapping_add64
/// [`shl64`]: SimdWord::shl64
/// [`shr64`]: SimdWord::shr64
/// [`rotl64`]: SimdWord::rotl64
pub trait SimdWord:
    Copy
    + Clone
    + Send
    + Sync
    + PartialEq
    + Eq
    + core::fmt::Debug
    + BitAnd<Output = Self>
    + BitOr<Output = Self>
    + BitXor<Output = Self>
    + Not<Output = Self>
    + 'static
{
    /// Number of u64 elements.
    const WORDS: usize;
    /// Number of lanes (`64 * WORDS`).
    const LANES: usize;

    /// The all-zeros word.
    fn zero() -> Self;
    /// The all-ones word.
    fn ones() -> Self;
    /// Broadcasts one u64 into every element.
    fn splat(word: u64) -> Self;
    /// Builds a word element by element (`f(i)` is element `i`).
    fn from_fn(f: impl FnMut(usize) -> u64) -> Self;
    /// Extracts element `i` (lanes `64*i .. 64*i + 64`).
    fn word(self, i: usize) -> u64;
    /// Total number of set bits across all elements.
    fn count_ones(self) -> u64;
    /// `true` if any bit is set.
    fn any(self) -> bool;
    /// Element-wise wrapping 64-bit addition.
    fn wrapping_add64(self, other: Self) -> Self;
    /// Element-wise 64-bit left shift (`k < 64`).
    fn shl64(self, k: u32) -> Self;
    /// Element-wise 64-bit logical right shift (`k < 64`).
    fn shr64(self, k: u32) -> Self;

    /// Element-wise 64-bit rotate left (`1 <= k <= 63`).
    #[inline(always)]
    fn rotl64(self, k: u32) -> Self {
        self.shl64(k) | self.shr64(64 - k)
    }

    /// The mask with the low `lanes` lanes set (ones up to the batch tail).
    #[inline(always)]
    fn tail_mask(lanes: usize) -> Self {
        debug_assert!(lanes <= Self::LANES);
        Self::from_fn(|i| {
            let lo = i * 64;
            if lanes >= lo + 64 {
                u64::MAX
            } else if lanes <= lo {
                0
            } else {
                (1u64 << (lanes - lo)) - 1
            }
        })
    }
}

impl SimdWord for u64 {
    const WORDS: usize = 1;
    const LANES: usize = 64;

    #[inline(always)]
    fn zero() -> Self {
        0
    }
    #[inline(always)]
    fn ones() -> Self {
        u64::MAX
    }
    #[inline(always)]
    fn splat(word: u64) -> Self {
        word
    }
    #[inline(always)]
    fn from_fn(mut f: impl FnMut(usize) -> u64) -> Self {
        f(0)
    }
    #[inline(always)]
    fn word(self, i: usize) -> u64 {
        debug_assert_eq!(i, 0);
        self
    }
    #[inline(always)]
    fn count_ones(self) -> u64 {
        u64::from(u64::count_ones(self))
    }
    #[inline(always)]
    fn any(self) -> bool {
        self != 0
    }
    #[inline(always)]
    fn wrapping_add64(self, other: Self) -> Self {
        self.wrapping_add(other)
    }
    #[inline(always)]
    fn shl64(self, k: u32) -> Self {
        self << k
    }
    #[inline(always)]
    fn shr64(self, k: u32) -> Self {
        self >> k
    }
}

macro_rules! wide_word {
    ($name:ident, $words:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        #[repr(transparent)]
        pub struct $name(pub [u64; $words]);

        impl BitAnd for $name {
            type Output = Self;
            #[inline(always)]
            fn bitand(self, o: Self) -> Self {
                let mut r = self.0;
                for i in 0..$words {
                    r[i] &= o.0[i];
                }
                Self(r)
            }
        }

        impl BitOr for $name {
            type Output = Self;
            #[inline(always)]
            fn bitor(self, o: Self) -> Self {
                let mut r = self.0;
                for i in 0..$words {
                    r[i] |= o.0[i];
                }
                Self(r)
            }
        }

        impl BitXor for $name {
            type Output = Self;
            #[inline(always)]
            fn bitxor(self, o: Self) -> Self {
                let mut r = self.0;
                for i in 0..$words {
                    r[i] ^= o.0[i];
                }
                Self(r)
            }
        }

        impl Not for $name {
            type Output = Self;
            #[inline(always)]
            fn not(self) -> Self {
                let mut r = self.0;
                for w in r.iter_mut() {
                    *w = !*w;
                }
                Self(r)
            }
        }

        impl SimdWord for $name {
            const WORDS: usize = $words;
            const LANES: usize = 64 * $words;

            #[inline(always)]
            fn zero() -> Self {
                Self([0; $words])
            }
            #[inline(always)]
            fn ones() -> Self {
                Self([u64::MAX; $words])
            }
            #[inline(always)]
            fn splat(word: u64) -> Self {
                Self([word; $words])
            }
            #[inline(always)]
            fn from_fn(mut f: impl FnMut(usize) -> u64) -> Self {
                let mut r = [0u64; $words];
                for (i, w) in r.iter_mut().enumerate() {
                    *w = f(i);
                }
                Self(r)
            }
            #[inline(always)]
            fn word(self, i: usize) -> u64 {
                self.0[i]
            }
            #[inline(always)]
            fn count_ones(self) -> u64 {
                let mut n = 0u64;
                for w in self.0 {
                    n += u64::from(w.count_ones());
                }
                n
            }
            #[inline(always)]
            fn any(self) -> bool {
                let mut acc = 0u64;
                for w in self.0 {
                    acc |= w;
                }
                acc != 0
            }
            #[inline(always)]
            fn wrapping_add64(self, other: Self) -> Self {
                let mut r = self.0;
                for i in 0..$words {
                    r[i] = r[i].wrapping_add(other.0[i]);
                }
                Self(r)
            }
            #[inline(always)]
            fn shl64(self, k: u32) -> Self {
                let mut r = self.0;
                for w in r.iter_mut() {
                    *w <<= k;
                }
                Self(r)
            }
            #[inline(always)]
            fn shr64(self, k: u32) -> Self {
                let mut r = self.0;
                for w in r.iter_mut() {
                    *w >>= k;
                }
                Self(r)
            }
        }
    };
}

wide_word!(
    W128,
    2,
    "2×u64 (128 lanes): portable, SSE2-vectorized word."
);
wide_word!(W256, 4, "4×u64 (256 lanes): AVX2-vectorized word.");
wide_word!(W512, 8, "8×u64 (512 lanes): AVX-512F-vectorized word.");

/// Environment variable that forces a backend (`u64`, `u64x2`, `avx2`,
/// `avx512`) for every engine that does not receive an explicit one.
pub const BACKEND_ENV_VAR: &str = "SEALPAA_SIMD";

/// A bitsliced kernel backend: which [`SimdWord`] the engines run on.
///
/// Ordering is by lane count, so `a < b` means `a` is narrower.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Backend {
    /// 64-lane u64 SWAR baseline (always available).
    U64,
    /// 128-lane 2×u64 portable word (always available).
    U64x2,
    /// 256-lane word compiled with AVX2 (x86-64 with AVX2 + POPCNT).
    Avx2,
    /// 512-lane word compiled with AVX-512F (x86-64 with AVX-512F + POPCNT).
    Avx512,
}

impl Backend {
    /// Every backend, narrowest first.
    pub const ALL: [Backend; 4] = [Backend::U64, Backend::U64x2, Backend::Avx2, Backend::Avx512];

    /// Canonical lower-case name (also what [`BACKEND_ENV_VAR`] parses).
    pub fn name(self) -> &'static str {
        match self {
            Backend::U64 => "u64",
            Backend::U64x2 => "u64x2",
            Backend::Avx2 => "avx2",
            Backend::Avx512 => "avx512",
        }
    }

    /// Number of u64 elements per word.
    pub fn words(self) -> usize {
        match self {
            Backend::U64 => 1,
            Backend::U64x2 => 2,
            Backend::Avx2 => 4,
            Backend::Avx512 => 8,
        }
    }

    /// Number of lanes per batch (`64 * words`).
    pub fn lanes(self) -> usize {
        64 * self.words()
    }

    /// `true` if this machine can run the backend.
    pub fn is_available(self) -> bool {
        match self {
            Backend::U64 | Backend::U64x2 => true,
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => {
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("popcnt")
            }
            #[cfg(target_arch = "x86_64")]
            Backend::Avx512 => {
                std::arch::is_x86_feature_detected!("avx512f")
                    && std::arch::is_x86_feature_detected!("popcnt")
            }
            #[cfg(not(target_arch = "x86_64"))]
            Backend::Avx2 | Backend::Avx512 => false,
        }
    }

    /// The backends this machine can run, narrowest first.
    pub fn available() -> Vec<Backend> {
        Backend::ALL
            .into_iter()
            .filter(|b| b.is_available())
            .collect()
    }

    /// The widest available backend.
    pub fn detect() -> Backend {
        *detect_cache().get_or_init(|| {
            Backend::ALL
                .into_iter()
                .rev()
                .find(|b| b.is_available())
                .expect("u64 backend is always available")
        })
    }

    /// How [`BACKEND_ENV_VAR`] is set in this process (read once, cached).
    pub fn forced_setting() -> &'static ForcedBackend {
        forced_cache().get_or_init(|| match std::env::var(BACKEND_ENV_VAR) {
            Err(_) => ForcedBackend::Unset,
            Ok(raw) => match raw.parse::<Backend>() {
                Err(_) => ForcedBackend::Invalid(raw),
                Ok(b) if b.is_available() => ForcedBackend::Forced(b),
                Ok(b) => ForcedBackend::Unavailable(b),
            },
        })
    }

    /// The backend engines use when none is requested explicitly: the
    /// [`BACKEND_ENV_VAR`]-forced one if set, otherwise [`detect`].
    ///
    /// [`detect`]: Backend::detect
    ///
    /// # Panics
    ///
    /// Panics if the environment variable names an unknown backend or one
    /// this machine cannot run — a forced differential run must never
    /// silently fall back to a different kernel than it claims to test.
    pub fn active() -> Backend {
        match Backend::forced_setting() {
            ForcedBackend::Unset => Backend::detect(),
            ForcedBackend::Forced(b) => *b,
            ForcedBackend::Unavailable(b) => panic!(
                "{} forces the {} backend, which this machine cannot run \
                 (available: {})",
                BACKEND_ENV_VAR,
                b.name(),
                Backend::available()
                    .iter()
                    .map(|b| b.name())
                    .collect::<Vec<_>>()
                    .join(", "),
            ),
            ForcedBackend::Invalid(raw) => panic!(
                "{BACKEND_ENV_VAR}={raw:?} is not a backend \
                 (expected u64, u64x2, avx2 or avx512)"
            ),
        }
    }

    /// The widest backend not wider than `self` whose batch fits in
    /// `max_lanes` lanes. Engines whose problem geometry needs at least one
    /// full batch (e.g. exhaustive sweeps enumerating `2^width` operands)
    /// use this to narrow the requested backend instead of failing.
    pub fn narrowed_to_lanes(self, max_lanes: usize) -> Backend {
        Backend::ALL
            .into_iter()
            .rev()
            .find(|b| *b <= self && b.lanes() <= max_lanes)
            .unwrap_or(Backend::U64)
    }
}

impl core::fmt::Display for Backend {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown backend name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBackendError(String);

impl core::fmt::Display for ParseBackendError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "unknown SIMD backend {:?} (expected u64, u64x2, avx2 or avx512)",
            self.0
        )
    }
}

impl std::error::Error for ParseBackendError {}

impl FromStr for Backend {
    type Err = ParseBackendError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "u64" | "swar" | "64" => Ok(Backend::U64),
            "u64x2" | "128" => Ok(Backend::U64x2),
            "avx2" | "256" => Ok(Backend::Avx2),
            "avx512" | "avx512f" | "512" => Ok(Backend::Avx512),
            _ => Err(ParseBackendError(s.to_string())),
        }
    }
}

/// How the [`BACKEND_ENV_VAR`] override is set (for diagnostics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ForcedBackend {
    /// The variable is not set.
    Unset,
    /// The variable names an available backend, which [`Backend::active`]
    /// uses.
    Forced(Backend),
    /// The variable names a real backend this machine cannot run
    /// ([`Backend::active`] panics).
    Unavailable(Backend),
    /// The variable does not name a backend ([`Backend::active`] panics).
    Invalid(String),
}

fn detect_cache() -> &'static OnceLock<Backend> {
    static CACHE: OnceLock<Backend> = OnceLock::new();
    &CACHE
}

fn forced_cache() -> &'static OnceLock<ForcedBackend> {
    static CACHE: OnceLock<ForcedBackend> = OnceLock::new();
    &CACHE
}

/// A computation generic over the SIMD word, run through [`dispatch`].
///
/// The implementation of [`run`](SimdKernel::run) — and everything
/// `#[inline(always)]` beneath it — is monomorphized *inside* the
/// feature-annotated wrapper for the chosen backend, which is what lets
/// LLVM emit AVX2/AVX-512 instructions for the plain-array word types.
/// Implementors should mark `run` `#[inline(always)]`.
pub trait SimdKernel {
    /// The result type.
    type Out;
    /// Runs the computation on word type `W`.
    fn run<W: SimdWord>(self) -> Self::Out;
}

/// The single dispatch point: runs `kernel` on `backend`'s word type,
/// inside a `#[target_feature]` wrapper for the AVX backends.
///
/// # Panics
///
/// Panics if `backend` is not available on this machine (callers choose
/// backends via [`Backend::active`] / [`Backend::available`], so this only
/// fires on a hand-constructed unavailable backend).
pub fn dispatch<K: SimdKernel>(backend: Backend, kernel: K) -> K::Out {
    assert!(
        backend.is_available(),
        "SIMD backend {backend} is not available on this machine"
    );
    match backend {
        Backend::U64 => kernel.run::<u64>(),
        Backend::U64x2 => kernel.run::<W128>(),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: availability (AVX2 / AVX-512F + POPCNT) was just checked.
        Backend::Avx2 => unsafe { run_avx2(kernel) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        Backend::Avx512 => unsafe { run_avx512(kernel) },
        #[cfg(not(target_arch = "x86_64"))]
        Backend::Avx2 | Backend::Avx512 => unreachable!("unavailable off x86-64"),
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "popcnt")]
unsafe fn run_avx2<K: SimdKernel>(kernel: K) -> K::Out {
    kernel.run::<W256>()
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f", enable = "popcnt")]
unsafe fn run_avx512<K: SimdKernel>(kernel: K) -> K::Out {
    kernel.run::<W512>()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise_word<W: SimdWord>() {
        assert_eq!(W::LANES, 64 * W::WORDS);
        assert_eq!(W::zero().count_ones(), 0);
        assert_eq!(W::ones().count_ones(), W::LANES as u64);
        assert!(!W::zero().any());
        assert!(W::ones().any());
        assert_eq!(!W::zero(), W::ones());

        let pattern = W::from_fn(|i| 0x0123_4567_89AB_CDEFu64.rotate_left(i as u32));
        for i in 0..W::WORDS {
            assert_eq!(
                pattern.word(i),
                0x0123_4567_89AB_CDEFu64.rotate_left(i as u32)
            );
        }
        assert_eq!(pattern & W::ones(), pattern);
        assert_eq!(pattern | W::zero(), pattern);
        let same = W::from_fn(|i| 0x0123_4567_89AB_CDEFu64.rotate_left(i as u32));
        assert_eq!(pattern ^ same, W::zero());
        assert_eq!(W::splat(7).word(W::WORDS - 1), 7);

        // Element-wise arithmetic matches per-element scalar arithmetic.
        let other = W::from_fn(|i| (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let sum = pattern.wrapping_add64(other);
        for i in 0..W::WORDS {
            assert_eq!(sum.word(i), pattern.word(i).wrapping_add(other.word(i)));
            assert_eq!(pattern.shl64(13).word(i), pattern.word(i) << 13);
            assert_eq!(pattern.shr64(13).word(i), pattern.word(i) >> 13);
            assert_eq!(pattern.rotl64(23).word(i), pattern.word(i).rotate_left(23));
        }

        // Tail masks: all-ones at full batch, low bits only at the tail.
        assert_eq!(W::tail_mask(W::LANES), W::ones());
        assert_eq!(W::tail_mask(0), W::zero());
        let partial = W::tail_mask(65.min(W::LANES));
        assert_eq!(partial.count_ones(), 65.min(W::LANES) as u64);
        assert_eq!(partial.word(0), u64::MAX);
    }

    #[test]
    fn word_ops_match_scalar_semantics() {
        exercise_word::<u64>();
        exercise_word::<W128>();
        exercise_word::<W256>();
        exercise_word::<W512>();
    }

    struct CountKernel {
        planes: Vec<u64>,
    }

    impl SimdKernel for CountKernel {
        type Out = u64;
        #[inline(always)]
        fn run<W: SimdWord>(self) -> u64 {
            // Consume the planes in W-sized batches and popcount them: the
            // total is backend-invariant.
            let mut total = 0u64;
            for chunk in self.planes.chunks(W::WORDS) {
                let w = W::from_fn(|i| chunk.get(i).copied().unwrap_or(0));
                total += w.count_ones();
            }
            total
        }
    }

    #[test]
    fn dispatch_runs_every_available_backend() {
        let planes: Vec<u64> = (0..64u64)
            .map(|i| i.wrapping_mul(0x2545_F491_4F6C_DD1D))
            .collect();
        let expected: u64 = planes.iter().map(|w| u64::from(w.count_ones())).sum();
        for backend in Backend::available() {
            let got = dispatch(
                backend,
                CountKernel {
                    planes: planes.clone(),
                },
            );
            assert_eq!(got, expected, "{backend}");
        }
    }

    #[test]
    fn backend_names_round_trip() {
        for backend in Backend::ALL {
            assert_eq!(backend.name().parse::<Backend>().unwrap(), backend);
            assert_eq!(backend.to_string(), backend.name());
        }
        assert!("pentium".parse::<Backend>().is_err());
        assert_eq!("256".parse::<Backend>().unwrap(), Backend::Avx2);
    }

    #[test]
    fn narrowing_respects_both_bounds() {
        assert_eq!(Backend::Avx512.narrowed_to_lanes(512), Backend::Avx512);
        assert_eq!(Backend::Avx512.narrowed_to_lanes(511), Backend::Avx2);
        assert_eq!(Backend::Avx512.narrowed_to_lanes(128), Backend::U64x2);
        assert_eq!(Backend::U64x2.narrowed_to_lanes(1 << 20), Backend::U64x2);
        assert_eq!(Backend::Avx2.narrowed_to_lanes(64), Backend::U64);
        // Below 64 lanes there is no batch backend; callers fall back to
        // their scalar paths, but the narrowing itself floors at u64.
        assert_eq!(Backend::Avx512.narrowed_to_lanes(1), Backend::U64);
    }

    #[test]
    fn detection_is_consistent() {
        let available = Backend::available();
        assert!(available.contains(&Backend::U64));
        assert!(available.contains(&Backend::U64x2));
        assert_eq!(Backend::detect(), *available.last().unwrap());
        assert!(available.contains(&Backend::active()));
    }
}
