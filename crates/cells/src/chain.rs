//! Multi-bit ripple adders built from single-bit cells (paper Fig. 3).

use std::fmt;

use crate::library::Cell;
use crate::truth_table::FaInput;

/// A multi-bit ripple-carry adder assembled from per-stage single-bit cells.
///
/// Stage `i` adds operand bits `A_i`, `B_i` and the carry produced by stage
/// `i − 1` (paper Fig. 3). Chains may be *homogeneous* (every stage the same
/// cell) or *hybrid* (different cells per stage — the design style explored
/// in paper Sec. 5, e.g. approximate cells in the LSBs and accurate cells in
/// the MSBs).
///
/// # Examples
///
/// ```
/// use sealpaa_cells::{AdderChain, StandardCell};
///
/// // 4 approximate LSB stages below 4 accurate MSB stages.
/// let hybrid = AdderChain::lsb_approximate(
///     StandardCell::Lpaa5.cell(),
///     StandardCell::Accurate.cell(),
///     4,
///     8,
/// );
/// assert_eq!(hybrid.width(), 8);
/// assert_eq!(hybrid.stage(0).name(), "LPAA 5");
/// assert_eq!(hybrid.stage(7).name(), "AccuFA");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AdderChain {
    stages: Vec<Cell>,
}

impl AdderChain {
    /// Builds a homogeneous chain of `width` copies of `cell`.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn uniform(cell: Cell, width: usize) -> Self {
        assert!(width > 0, "an adder needs at least one stage");
        AdderChain {
            stages: vec![cell; width],
        }
    }

    /// Builds a (possibly hybrid) chain from explicit per-stage cells,
    /// least-significant stage first.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty.
    pub fn from_stages(stages: Vec<Cell>) -> Self {
        assert!(!stages.is_empty(), "an adder needs at least one stage");
        AdderChain { stages }
    }

    /// Builds the classic "approximate LSBs, accurate MSBs" split: the
    /// lowest `approximate_bits` stages use `approximate`, the rest use
    /// `accurate`.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or `approximate_bits > width`.
    pub fn lsb_approximate(
        approximate: Cell,
        accurate: Cell,
        approximate_bits: usize,
        width: usize,
    ) -> Self {
        assert!(width > 0, "an adder needs at least one stage");
        assert!(
            approximate_bits <= width,
            "cannot approximate more bits than the adder has"
        );
        let mut stages = Vec::with_capacity(width);
        for i in 0..width {
            stages.push(if i < approximate_bits {
                approximate.clone()
            } else {
                accurate.clone()
            });
        }
        AdderChain { stages }
    }

    /// Number of stages (operand width in bits).
    pub fn width(&self) -> usize {
        self.stages.len()
    }

    /// Borrows the cell of stage `i` (stage 0 is the LSB).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    pub fn stage(&self, i: usize) -> &Cell {
        &self.stages[i]
    }

    /// Iterates over the stages, LSB first.
    pub fn iter(&self) -> std::slice::Iter<'_, Cell> {
        self.stages.iter()
    }

    /// `true` if every stage is behaviourally exact.
    pub fn is_accurate(&self) -> bool {
        self.stages.iter().all(|c| c.truth_table().is_accurate())
    }

    /// Total power in nanowatts, if every stage has characteristics.
    pub fn total_power_nw(&self) -> Option<f64> {
        self.stages
            .iter()
            .map(|c| c.characteristics().map(|ch| ch.power_nw))
            .sum()
    }

    /// Total area in gate equivalents, if every stage has characteristics.
    pub fn total_area_ge(&self) -> Option<f64> {
        self.stages
            .iter()
            .map(|c| c.characteristics().map(|ch| ch.area_ge))
            .sum()
    }

    /// Bit-true evaluation of the chain on concrete operands.
    ///
    /// Operands wider than the chain are truncated to `width` bits, exactly
    /// as the hardware would ignore higher lanes.
    ///
    /// # Panics
    ///
    /// Panics if `self.width() > 64` (use several chains for wider adders).
    pub fn add(&self, a: u64, b: u64, carry_in: bool) -> AdditionResult {
        let width = self.width();
        assert!(width <= 64, "functional evaluation supports up to 64 bits");
        let mut sum = 0u64;
        let mut carry = carry_in;
        for (i, cell) in self.stages.iter().enumerate() {
            let input = FaInput::new((a >> i) & 1 == 1, (b >> i) & 1 == 1, carry);
            let out = cell.truth_table().eval(input);
            if out.sum {
                sum |= 1 << i;
            }
            carry = out.carry_out;
        }
        AdditionResult {
            sum_bits: sum,
            carry_out: carry,
            width,
        }
    }

    /// The exact reference result for the same operands: plain binary
    /// addition truncated to the chain width.
    pub fn accurate_sum(&self, a: u64, b: u64, carry_in: bool) -> AdditionResult {
        let width = self.width();
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        let total = (a & mask) as u128 + (b & mask) as u128 + carry_in as u128;
        AdditionResult {
            sum_bits: (total as u64) & mask,
            carry_out: total >> width != 0,
            width,
        }
    }
}

impl fmt::Display for AdderChain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-bit chain [", self.width())?;
        for (i, cell) in self.stages.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(cell.name())?;
        }
        f.write_str("]")
    }
}

impl<'a> IntoIterator for &'a AdderChain {
    type Item = &'a Cell;
    type IntoIter = std::slice::Iter<'a, Cell>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// The outcome of one multi-bit addition: the sum bits and the final
/// carry-out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AdditionResult {
    sum_bits: u64,
    carry_out: bool,
    width: usize,
}

impl AdditionResult {
    /// The raw sum bits (without the carry-out).
    pub fn sum_bits(self) -> u64 {
        self.sum_bits
    }

    /// The final carry-out bit.
    pub fn carry_out(self) -> bool {
        self.carry_out
    }

    /// The full numeric value including the carry-out as bit `width`.
    pub fn value(self) -> u64 {
        self.sum_bits | (self.carry_out as u64) << self.width
    }

    /// Signed difference `self − other` of the full numeric values — the
    /// *error distance* when comparing an approximate result against the
    /// accurate one.
    pub fn error_distance(self, other: AdditionResult) -> i64 {
        self.value() as i64 - other.value() as i64
    }

    /// `true` if this result equals the exact binary sum `a + b + carry_in`
    /// over the same width.
    pub fn matches_accurate(self, a: u64, b: u64, carry_in: bool) -> bool {
        let mask = if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        };
        let total = (a & mask) as u128 + (b & mask) as u128 + carry_in as u128;
        self.sum_bits == (total as u64) & mask && self.carry_out == (total >> self.width != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::StandardCell;

    #[test]
    fn accurate_chain_adds_correctly() {
        let adder = AdderChain::uniform(StandardCell::Accurate.cell(), 8);
        for (a, b, cin) in [(0u64, 0u64, false), (255, 1, false), (200, 100, true)] {
            let r = adder.add(a, b, cin);
            assert!(r.matches_accurate(a, b, cin), "{a}+{b}+{cin}");
            assert_eq!(
                r.value(),
                (a & 0xFF) + (b & 0xFF) + cin as u64,
                "{a}+{b}+{cin}"
            );
        }
    }

    #[test]
    fn accurate_chain_matches_reference_exhaustively_4bit() {
        let adder = AdderChain::uniform(StandardCell::Accurate.cell(), 4);
        for a in 0..16u64 {
            for b in 0..16u64 {
                for cin in [false, true] {
                    assert_eq!(adder.add(a, b, cin), adder.accurate_sum(a, b, cin));
                }
            }
        }
    }

    #[test]
    fn accurate_sum_native_arithmetic_matches_truth_table_walk() {
        // `accurate_sum` uses native wrapping arithmetic; an accurate-cell
        // chain walks the truth table bit by bit. Both must agree for random
        // widths and operands (including deliberately over-wide operands).
        let mut state = 0x5EA1_9AA5u64;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for _ in 0..200 {
            let width = 1 + (next() % 64) as usize;
            let reference = AdderChain::uniform(StandardCell::Accurate.cell(), width);
            let (a, b) = (next(), next());
            let cin = next() & 1 == 1;
            assert_eq!(
                reference.accurate_sum(a, b, cin),
                reference.add(a, b, cin),
                "width {width}: {a} + {b} + {cin}"
            );
        }
    }

    #[test]
    fn approximate_chain_produces_known_error() {
        // LPAA 1 errs on (A,B,Cin) = (0,1,0): sum 0 instead of 1.
        let adder = AdderChain::uniform(StandardCell::Lpaa1.cell(), 4);
        let r = adder.add(0b0000, 0b0001, false);
        assert_eq!(r.sum_bits() & 1, 0, "LSB sum should be corrupted");
        assert!(!r.matches_accurate(0, 1, false));
    }

    #[test]
    fn carry_ripples_through_stages() {
        let adder = AdderChain::uniform(StandardCell::Accurate.cell(), 4);
        let r = adder.add(0b1111, 0b0001, false);
        assert_eq!(r.sum_bits(), 0);
        assert!(r.carry_out());
        assert_eq!(r.value(), 16);
    }

    #[test]
    fn operands_are_truncated_to_width() {
        let adder = AdderChain::uniform(StandardCell::Accurate.cell(), 4);
        let r = adder.add(0xF3, 0x02, false);
        // Only the low nibbles participate: 3 + 2 = 5.
        assert_eq!(r.value(), 5);
    }

    #[test]
    fn hybrid_split_layout() {
        let h = AdderChain::lsb_approximate(
            StandardCell::Lpaa2.cell(),
            StandardCell::Accurate.cell(),
            3,
            6,
        );
        for i in 0..3 {
            assert_eq!(h.stage(i).name(), "LPAA 2");
        }
        for i in 3..6 {
            assert_eq!(h.stage(i).name(), "AccuFA");
        }
        assert!(!h.is_accurate());
    }

    #[test]
    fn power_and_area_aggregate_or_propagate_unknown() {
        let known = AdderChain::uniform(StandardCell::Lpaa2.cell(), 4);
        assert_eq!(known.total_power_nw(), Some(294.0 * 4.0));
        assert_eq!(known.total_area_ge(), Some(1.94 * 4.0));
        let unknown = AdderChain::uniform(StandardCell::Accurate.cell(), 4);
        assert_eq!(unknown.total_power_nw(), None);
    }

    #[test]
    fn error_distance_is_signed() {
        // LPAA 1 on (A,B,Cin) = (0,1,0) outputs sum 0 / carry 1, so the
        // chain computes 0 + 1 = 2: distance +1 against the exact result.
        let approx = AdderChain::uniform(StandardCell::Lpaa1.cell(), 4);
        let r = approx.add(0, 1, false);
        let acc = approx.accurate_sum(0, 1, false);
        assert_eq!(r.value(), 2);
        assert_eq!(r.error_distance(acc), 1);
        assert_eq!(acc.error_distance(r), -1);
    }

    #[test]
    fn full_width_64_bit_masking() {
        let adder = AdderChain::uniform(StandardCell::Accurate.cell(), 64);
        let r = adder.add(u64::MAX, 1, false);
        assert_eq!(r.sum_bits(), 0);
        assert!(r.carry_out());
        assert!(r.matches_accurate(u64::MAX, 1, false));
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn zero_width_panics() {
        let _ = AdderChain::uniform(StandardCell::Accurate.cell(), 0);
    }

    #[test]
    fn display_lists_stage_names() {
        let h = AdderChain::from_stages(vec![
            StandardCell::Lpaa5.cell(),
            StandardCell::Accurate.cell(),
        ]);
        assert_eq!(h.to_string(), "2-bit chain [LPAA 5, AccuFA]");
    }
}
