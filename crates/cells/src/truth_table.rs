//! Behavioural model of a single-bit full adder: the 8-row truth table.

use std::fmt;

/// One input combination of a single-bit full adder: `(A, B, Cin)`.
///
/// Each combination maps to a *row index* `(A << 2) | (B << 1) | Cin` in
/// `0..8`, matching the row order of paper Table 1 (and therefore the element
/// order of the M, K and L matrices of paper Table 5).
///
/// # Examples
///
/// ```
/// use sealpaa_cells::FaInput;
///
/// let input = FaInput::new(true, false, true);
/// assert_eq!(input.index(), 0b101);
/// assert_eq!(FaInput::from_index(0b101), input);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FaInput {
    /// Operand bit `A`.
    pub a: bool,
    /// Operand bit `B`.
    pub b: bool,
    /// Carry-in bit.
    pub carry_in: bool,
}

impl FaInput {
    /// Creates an input combination.
    pub fn new(a: bool, b: bool, carry_in: bool) -> Self {
        FaInput { a, b, carry_in }
    }

    /// The row index of this combination: `(A << 2) | (B << 1) | Cin`.
    pub fn index(self) -> usize {
        ((self.a as usize) << 2) | ((self.b as usize) << 1) | self.carry_in as usize
    }

    /// Inverse of [`index`](Self::index).
    ///
    /// # Panics
    ///
    /// Panics if `index >= 8`.
    pub fn from_index(index: usize) -> Self {
        assert!(index < 8, "full-adder truth tables have exactly 8 rows");
        FaInput {
            a: index & 0b100 != 0,
            b: index & 0b010 != 0,
            carry_in: index & 0b001 != 0,
        }
    }

    /// Iterates over all 8 input combinations in row order.
    pub fn all() -> impl Iterator<Item = FaInput> {
        (0..8).map(FaInput::from_index)
    }
}

impl fmt::Display for FaInput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "A={} B={} Cin={}",
            self.a as u8, self.b as u8, self.carry_in as u8
        )
    }
}

/// The output of a single-bit full adder: a sum bit and a carry-out bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct FaOutput {
    /// The sum bit.
    pub sum: bool,
    /// The carry-out bit.
    pub carry_out: bool,
}

impl FaOutput {
    /// Creates an output pair.
    pub fn new(sum: bool, carry_out: bool) -> Self {
        FaOutput { sum, carry_out }
    }
}

impl fmt::Display for FaOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S={} Cout={}", self.sum as u8, self.carry_out as u8)
    }
}

/// The full behaviour of a single-bit (possibly approximate) full adder.
///
/// Rows are ordered by [`FaInput::index`], i.e. `000, 001, …, 111` for
/// `(A, B, Cin)` — the same order as paper Table 1.
///
/// # Examples
///
/// ```
/// use sealpaa_cells::{FaInput, TruthTable};
///
/// let accurate = TruthTable::accurate();
/// let out = accurate.eval(FaInput::new(true, true, false));
/// assert!(!out.sum);
/// assert!(out.carry_out);
/// assert_eq!(accurate.error_case_count(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TruthTable {
    rows: [FaOutput; 8],
}

impl TruthTable {
    /// Creates a truth table from its 8 rows in [`FaInput::index`] order.
    pub const fn new(rows: [FaOutput; 8]) -> Self {
        TruthTable { rows }
    }

    /// The exact (accurate) full adder: `sum = A ⊕ B ⊕ Cin`,
    /// `carry_out = majority(A, B, Cin)`.
    pub fn accurate() -> Self {
        TruthTable::from_fn(|input| {
            let FaInput { a, b, carry_in } = input;
            FaOutput {
                sum: a ^ b ^ carry_in,
                carry_out: (a & b) | (a & carry_in) | (b & carry_in),
            }
        })
    }

    /// Builds a truth table by evaluating `f` on every input combination.
    pub fn from_fn(f: impl Fn(FaInput) -> FaOutput) -> Self {
        let mut rows = [FaOutput::default(); 8];
        for input in FaInput::all() {
            rows[input.index()] = f(input);
        }
        TruthTable { rows }
    }

    /// Builds a truth table from two 8-bit vectors giving, for each row
    /// index, the sum bit and carry-out bit (`(sum_bits >> i) & 1` etc.).
    ///
    /// This is a compact way to write custom cells in tests and examples.
    pub fn from_bits(sum_bits: u8, carry_bits: u8) -> Self {
        TruthTable::from_fn(|input| {
            let i = input.index();
            FaOutput {
                sum: (sum_bits >> i) & 1 == 1,
                carry_out: (carry_bits >> i) & 1 == 1,
            }
        })
    }

    /// Evaluates the cell on one input combination.
    pub fn eval(&self, input: FaInput) -> FaOutput {
        self.rows[input.index()]
    }

    /// Borrows the 8 rows in [`FaInput::index`] order.
    pub fn rows(&self) -> &[FaOutput; 8] {
        &self.rows
    }

    /// `true` if this cell deviates from the accurate full adder (in sum or
    /// carry-out) on the given input — an "error case" in the paper's sense
    /// (shown bold red in paper Table 1).
    pub fn is_error_case(&self, input: FaInput) -> bool {
        self.eval(input) != TruthTable::accurate().eval(input)
    }

    /// All input combinations on which this cell deviates from the accurate
    /// full adder.
    pub fn error_cases(&self) -> Vec<FaInput> {
        FaInput::all().filter(|&i| self.is_error_case(i)).collect()
    }

    /// Number of error cases (the "Error Cases" column of paper Table 2).
    pub fn error_case_count(&self) -> usize {
        self.error_cases().len()
    }

    /// `true` if the table equals the accurate full adder on every row.
    pub fn is_accurate(&self) -> bool {
        self.error_case_count() == 0
    }
}

impl TruthTable {
    /// Renders the table as the compact `SSSSSSSS/CCCCCCCC` spec string
    /// (sum bits then carry bits, row 0 leftmost) accepted by
    /// [`FromStr`](std::str::FromStr) and by the `sealpaa` CLI.
    ///
    /// # Examples
    ///
    /// ```
    /// use sealpaa_cells::TruthTable;
    ///
    /// let spec = TruthTable::accurate().to_spec_string();
    /// assert_eq!(spec, "01101001/00010111");
    /// let parsed: TruthTable = spec.parse()?;
    /// assert!(parsed.is_accurate());
    /// # Ok::<(), sealpaa_cells::ParseTruthTableError>(())
    /// ```
    pub fn to_spec_string(&self) -> String {
        let mut out = String::with_capacity(17);
        for input in FaInput::all() {
            out.push(if self.eval(input).sum { '1' } else { '0' });
        }
        out.push('/');
        for input in FaInput::all() {
            out.push(if self.eval(input).carry_out { '1' } else { '0' });
        }
        out
    }
}

/// Error returned when parsing a [`TruthTable`] from a malformed spec
/// string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTruthTableError {
    input: String,
}

impl fmt::Display for ParseTruthTableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid truth table {:?} (expected 8 sum bits, '/', 8 carry bits, e.g. \"01101001/00010111\")",
            self.input
        )
    }
}

impl std::error::Error for ParseTruthTableError {}

impl std::str::FromStr for TruthTable {
    type Err = ParseTruthTableError;

    /// Parses the `SSSSSSSS/CCCCCCCC` spec format produced by
    /// [`TruthTable::to_spec_string`].
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseTruthTableError {
            input: s.to_owned(),
        };
        let (sum, carry) = s.split_once('/').ok_or_else(err)?;
        if sum.len() != 8 || carry.len() != 8 {
            return Err(err());
        }
        let parse_bits = |part: &str| -> Result<u8, ParseTruthTableError> {
            let mut bits = 0u8;
            for (i, ch) in part.chars().enumerate() {
                match ch {
                    '1' => bits |= 1 << i,
                    '0' => {}
                    _ => return Err(err()),
                }
            }
            Ok(bits)
        };
        Ok(TruthTable::from_bits(parse_bits(sum)?, parse_bits(carry)?))
    }
}

impl fmt::Display for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "A B C | S Co")?;
        for input in FaInput::all() {
            let out = self.eval(input);
            let marker = if self.is_error_case(input) { " *" } else { "" };
            writeln!(
                f,
                "{} {} {} | {} {}{}",
                input.a as u8,
                input.b as u8,
                input.carry_in as u8,
                out.sum as u8,
                out.carry_out as u8,
                marker
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        for i in 0..8 {
            assert_eq!(FaInput::from_index(i).index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "exactly 8 rows")]
    fn from_index_out_of_range_panics() {
        let _ = FaInput::from_index(8);
    }

    #[test]
    fn all_yields_eight_distinct_inputs() {
        let v: Vec<_> = FaInput::all().collect();
        assert_eq!(v.len(), 8);
        for (i, input) in v.iter().enumerate() {
            assert_eq!(input.index(), i);
        }
    }

    #[test]
    fn accurate_adder_is_binary_addition() {
        let t = TruthTable::accurate();
        for input in FaInput::all() {
            let expect = input.a as u8 + input.b as u8 + input.carry_in as u8;
            let out = t.eval(input);
            assert_eq!(out.sum as u8 + 2 * out.carry_out as u8, expect, "{input}");
        }
    }

    #[test]
    fn accurate_has_no_error_cases() {
        assert!(TruthTable::accurate().is_accurate());
        assert!(TruthTable::accurate().error_cases().is_empty());
    }

    #[test]
    fn from_bits_matches_from_fn() {
        // sum = A, carry = B (a nonsense cell, but a deterministic one).
        let via_fn = TruthTable::from_fn(|i| FaOutput::new(i.a, i.b));
        let mut sum_bits = 0u8;
        let mut carry_bits = 0u8;
        for i in FaInput::all() {
            if i.a {
                sum_bits |= 1 << i.index();
            }
            if i.b {
                carry_bits |= 1 << i.index();
            }
        }
        assert_eq!(TruthTable::from_bits(sum_bits, carry_bits), via_fn);
    }

    #[test]
    fn error_cases_detect_both_sum_and_carry_corruption() {
        // Flip only the carry of row 0.
        let t = TruthTable::from_fn(|i| {
            let mut out = TruthTable::accurate().eval(i);
            if i.index() == 0 {
                out.carry_out = !out.carry_out;
            }
            out
        });
        assert_eq!(t.error_cases(), vec![FaInput::from_index(0)]);

        // Flip only the sum of row 5.
        let t = TruthTable::from_fn(|i| {
            let mut out = TruthTable::accurate().eval(i);
            if i.index() == 5 {
                out.sum = !out.sum;
            }
            out
        });
        assert_eq!(t.error_cases(), vec![FaInput::from_index(5)]);
    }

    #[test]
    fn spec_string_round_trips_for_all_standard_cells() {
        use crate::library::StandardCell;
        for cell in StandardCell::ALL {
            let table = cell.truth_table();
            let parsed: TruthTable = table.to_spec_string().parse().expect("own output parses");
            assert_eq!(parsed, table, "{cell}");
        }
    }

    #[test]
    fn spec_parse_rejects_malformed() {
        for bad in [
            "",
            "0110100100010111",
            "0110100/00010111",
            "01101001/0001011",
            "01101001/0001011x",
            "01101001/00010111/1",
        ] {
            assert!(bad.parse::<TruthTable>().is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn display_marks_error_rows() {
        let t = TruthTable::from_fn(|i| {
            let mut out = TruthTable::accurate().eval(i);
            if i.index() == 2 {
                out.sum = !out.sum;
            }
            out
        });
        let rendered = t.to_string();
        assert_eq!(rendered.matches('*').count(), 1);
    }
}
