//! Single-bit approximate full-adder cells and multi-bit adder models.
//!
//! This crate is the structural foundation of the SEALPAA reproduction. It
//! provides:
//!
//! * [`TruthTable`] / [`FaInput`] / [`FaOutput`] — the 8-row behavioural model
//!   of a single-bit full adder (paper Table 1),
//! * [`StandardCell`] — the accurate full adder plus the seven low-power
//!   approximate adders (LPAA 1–7) the paper analyzes, with the power/area
//!   characteristics of paper Table 2,
//! * [`Cell`] — a named truth table, also constructible for user-defined
//!   approximate adders,
//! * [`AdderChain`] — a multi-bit ripple adder built from per-stage cells
//!   (homogeneous or hybrid, paper Fig. 3), with bit-true functional
//!   evaluation,
//! * [`CompiledChain`] — the same chain compiled for bitsliced (SWAR)
//!   evaluation of 64 input vectors per pass, the engine behind the fast
//!   simulators in `sealpaa-sim`, and
//! * [`InputProfile`] — per-bit input-operand probabilities, generic over the
//!   probability number type.
//!
//! # Examples
//!
//! ```
//! use sealpaa_cells::{AdderChain, StandardCell};
//!
//! // An 8-bit ripple adder built from LPAA 1 cells…
//! let adder = AdderChain::uniform(StandardCell::Lpaa1.cell(), 8);
//! let result = adder.add(15, 51, false);
//! // …which happens to be correct for these operands (no stage hits one of
//! // LPAA 1's two error rows):
//! assert_eq!(result.value(), 66);
//! assert!(result.matches_accurate(15, 51, false));
//! ```

// `deny`, not `forbid`: the `simd` module needs `unsafe` for exactly two
// runtime-feature-guarded `#[target_feature]` dispatch calls, and scopes an
// `allow` to itself. Everything else in the crate stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod chain;
mod compiled;
mod library;
mod profile;
#[allow(unsafe_code)]
pub mod simd;
mod truth_table;

pub use chain::{AdderChain, AdditionResult};
pub use compiled::{
    accurate_eval, biased_distance_lanes, error_distances64, error_stats, error_stats64,
    lane_value, pack_lanes, pack_lanes_into, splat64, splat64_into, splat_planes, transpose_lanes,
    CompiledChain, CompiledKernel, Diff64, ErrorStats64, KernelDiff,
};
pub use library::{Cell, CellCharacteristics, ParseStandardCellError, StandardCell};
pub use profile::{InputProfile, ProfileError};
pub use simd::{dispatch, Backend, SimdKernel, SimdWord};
pub use truth_table::{FaInput, FaOutput, ParseTruthTableError, TruthTable};
