//! End-to-end tests: a real TCP daemon on an ephemeral port, exercised by
//! real client sockets, with every response checked against a direct call
//! into the analysis libraries.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use sealpaa_cells::{AdderChain, InputProfile, StandardCell};
use sealpaa_server::json::Json;
use sealpaa_server::server::{Server, ServerConfig};

/// Binds a daemon on an ephemeral port, runs it on a background thread, and
/// returns its address plus the join handle.
fn spawn_server(config: ServerConfig) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        ..config
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    fn request(&mut self, line: &str) -> Json {
        writeln!(self.writer, "{line}").expect("send");
        self.writer.flush().expect("flush");
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("receive");
        Json::parse(response.trim_end()).expect("response is valid JSON")
    }
}

fn result_f64(response: &Json, key: &str) -> f64 {
    response
        .get("result")
        .and_then(|r| r.get(key))
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("missing result.{key} in {}", response.render()))
}

#[test]
fn tcp_serves_all_four_analysis_kinds_and_matches_the_libraries() {
    let (addr, handle) = spawn_server(ServerConfig::default());
    let mut client = Client::connect(addr);

    // analyze — against sealpaa_core.
    let response = client.request(r#"{"id":1,"kind":"analyze","width":8,"cell":"lpaa1","p":0.1}"#);
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(response.get("id").and_then(Json::as_u64), Some(1));
    let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), 8);
    let profile = InputProfile::constant(8, 0.1);
    let direct = sealpaa_core::analyze(&chain, &profile)
        .expect("direct analyze")
        .error_probability();
    assert_eq!(result_f64(&response, "error_probability"), direct);

    // simulate (Monte-Carlo, fixed seed) — against sealpaa_sim.
    let response = client.request(
        r#"{"id":2,"kind":"simulate","width":8,"cell":"lpaa6","samples":30000,"seed":42,"threads":2}"#,
    );
    let direct = sealpaa_sim::monte_carlo(
        &AdderChain::uniform(StandardCell::Lpaa6.cell(), 8),
        &InputProfile::<f64>::uniform(8),
        sealpaa_sim::MonteCarloConfig {
            samples: 30000,
            seed: 42,
            threads: 2,
            backend: None,
        },
    )
    .expect("direct simulate");
    assert_eq!(
        result_f64(&response, "error_probability"),
        direct.error_probability()
    );

    // compare — against sealpaa_inclexcl, and internally consistent.
    let response = client.request(r#"{"id":3,"kind":"compare","width":6,"cell":"lpaa3","p":0.3}"#);
    let chain = AdderChain::uniform(StandardCell::Lpaa3.cell(), 6);
    let profile = InputProfile::constant(6, 0.3);
    let (baseline, terms) =
        sealpaa_inclexcl::error_probability(&chain, &profile).expect("direct baseline");
    assert_eq!(result_f64(&response, "inclusion_exclusion"), baseline);
    assert_eq!(
        response
            .get("result")
            .and_then(|r| r.get("terms"))
            .and_then(Json::as_u64),
        Some(terms)
    );

    // gear — against sealpaa_gear.
    let response = client.request(r#"{"id":4,"kind":"gear","n":8,"r":2,"overlap":2,"p":0.5}"#);
    let config = sealpaa_gear::GearConfig::new(8, 2, 2).expect("valid config");
    let direct =
        sealpaa_gear::error_probability(&config, &[0.5; 8], &[0.5; 8], 0.0).expect("direct gear");
    assert_eq!(result_f64(&response, "error_probability"), direct);

    // blocks — against the analytical engine in sealpaa_blocks.
    let response =
        client.request(r#"{"id":5,"kind":"blocks","config":"4:0:accurate,4:2:lpaa1","p":0.5}"#);
    let config: sealpaa_blocks::BlockConfig = "4:0:accurate,4:2:lpaa1".parse().expect("config");
    let direct =
        sealpaa_blocks::error_distance_distribution(&config, &InputProfile::<f64>::uniform(8))
            .expect("direct blocks");
    assert_eq!(result_f64(&response, "error_rate"), direct.error_rate());
    assert_eq!(
        result_f64(&response, "mean_absolute"),
        direct.mean_absolute()
    );

    client.request(r#"{"kind":"shutdown"}"#);
    handle.join().expect("clean shutdown");
}

#[test]
fn repeated_analyze_is_answered_from_cache_and_stats_count_the_hit() {
    let (addr, handle) = spawn_server(ServerConfig::default());
    let mut client = Client::connect(addr);

    let line = r#"{"kind":"analyze","width":12,"cell":"lpaa4","p":0.25}"#;
    let first = client.request(line);
    assert_eq!(first.get("cached").and_then(Json::as_bool), Some(false));
    // A differently-spelled but canonically identical request must also hit:
    // explicit per-bit lists of the same constant probability.
    let listed = format!(
        r#"{{"kind":"analyze","width":12,"cell":"lpaa4","pa":{p},"pb":{p},"cin":0.25}}"#,
        p = "[0.25,0.25,0.25,0.25,0.25,0.25,0.25,0.25,0.25,0.25,0.25,0.25]"
    );
    let second = client.request(&listed);
    assert_eq!(
        second.get("cached").and_then(Json::as_bool),
        Some(true),
        "canonically equivalent request must be a cache hit: {}",
        second.render()
    );
    assert_eq!(first.get("result"), second.get("result"));

    let stats = client.request(r#"{"kind":"stats"}"#);
    let cache = stats
        .get("result")
        .and_then(|r| r.get("cache"))
        .expect("cache stats");
    assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(1));
    assert_eq!(cache.get("misses").and_then(Json::as_u64), Some(1));
    assert_eq!(cache.get("entries").and_then(Json::as_u64), Some(1));
    assert_eq!(
        stats
            .get("result")
            .and_then(|r| r.get("requests"))
            .and_then(Json::as_u64),
        Some(2),
        "the two analyzes (the stats snapshot precedes its own count)"
    );

    client.request(r#"{"kind":"shutdown"}"#);
    handle.join().expect("clean shutdown");
}

#[test]
fn concurrent_mixed_clients_all_get_correct_answers() {
    // 2 workers, small queue: with 8 clients hammering concurrently this
    // exercises queuing, backpressure, and cache sharing across connections.
    let (addr, handle) = spawn_server(ServerConfig {
        threads: 2,
        queue_capacity: 4,
        ..Default::default()
    });

    let expected_analyze: Vec<f64> = (1..=4)
        .map(|w| {
            let chain = AdderChain::uniform(StandardCell::Lpaa2.cell(), 4 * w);
            let profile = InputProfile::constant(4 * w, 0.2);
            sealpaa_core::analyze(&chain, &profile)
                .expect("direct")
                .error_probability()
        })
        .collect();
    let expected_gear = sealpaa_gear::error_probability(
        &sealpaa_gear::GearConfig::new(8, 2, 2).expect("valid"),
        &[0.5; 8],
        &[0.5; 8],
        0.0,
    )
    .expect("direct");

    let clients: Vec<_> = (0..8)
        .map(|c| {
            let expected_analyze = expected_analyze.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                for round in 0..6 {
                    if (c + round) % 2 == 0 {
                        let w = 4 * (1 + (c + round) % 4);
                        let response = client.request(&format!(
                            r#"{{"id":"{c}-{round}","kind":"analyze","width":{w},"cell":"lpaa2","p":0.2}}"#
                        ));
                        assert_eq!(
                            response.get("ok").and_then(Json::as_bool),
                            Some(true),
                            "{}",
                            response.render()
                        );
                        assert_eq!(
                            response.get("id").and_then(Json::as_str),
                            Some(format!("{c}-{round}").as_str()),
                            "responses must pair with their requests"
                        );
                        let got = result_f64(&response, "error_probability");
                        assert_eq!(got, expected_analyze[(w / 4) - 1], "width {w}");
                    } else {
                        let response = client.request(&format!(
                            r#"{{"id":"{c}-{round}","kind":"gear","n":8,"r":2,"overlap":2}}"#
                        ));
                        assert_eq!(result_f64(&response, "error_probability"), expected_gear);
                    }
                }
            })
        })
        .collect();
    for client in clients {
        client.join().expect("client thread");
    }

    // After 48 mixed requests over 5 distinct configurations, the cache must
    // have served most of them.
    let mut client = Client::connect(addr);
    let stats = client.request(r#"{"kind":"stats"}"#);
    let hits = stats
        .get("result")
        .and_then(|r| r.get("cache"))
        .and_then(|c| c.get("hits"))
        .and_then(Json::as_u64)
        .expect("hit counter");
    // 48 requests over 5 distinct configurations: only first-time computes
    // (and concurrent first-round races on the same key) may miss.
    assert!(hits >= 36, "expected ≥36 cache hits, got {hits}");

    client.request(r#"{"kind":"shutdown"}"#);
    handle.join().expect("clean shutdown");
}

#[test]
fn shutdown_drains_requests_already_in_flight() {
    // One worker: occupy it with a slow Monte-Carlo job, queue a second one
    // behind it, then request shutdown from a third connection while both
    // are still outstanding. The drain guarantee: both accepted jobs are
    // finished and their responses written before the daemon exits.
    let (addr, handle) = spawn_server(ServerConfig {
        threads: 1,
        queue_capacity: 16,
        cache_entries: 0, // no caching: every request does real work
        ..Default::default()
    });

    let slow_client = |id: u64, seed: u64| {
        std::thread::spawn(move || {
            let mut client = Client::connect(addr);
            let response = client.request(&format!(
                r#"{{"id":{id},"kind":"simulate","width":16,"cell":"lpaa5","samples":3000000,"seed":{seed},"threads":1}}"#
            ));
            assert_eq!(
                response.get("ok").and_then(Json::as_bool),
                Some(true),
                "in-flight request {id} must be served: {}",
                response.render()
            );
            assert_eq!(response.get("id").and_then(Json::as_u64), Some(id));
            assert!(result_f64(&response, "error_probability") > 0.0);
        })
    };
    let running = slow_client(1, 11);
    // Let the first job reach the worker, then queue a second behind it.
    std::thread::sleep(Duration::from_millis(100));
    let queued = slow_client(2, 22);
    std::thread::sleep(Duration::from_millis(100));

    let mut stopper = Client::connect(addr);
    let response = stopper.request(r#"{"kind":"shutdown"}"#);
    assert_eq!(
        response
            .get("result")
            .and_then(|r| r.get("stopping"))
            .and_then(Json::as_bool),
        Some(true)
    );

    // The daemon exits only after the drain, and both clients must have
    // received their answers rather than a closed socket.
    handle.join().expect("daemon exits cleanly");
    running.join().expect("running job answered");
    queued.join().expect("queued job answered");
}

#[test]
fn malformed_and_oversized_requests_get_error_responses_not_disconnects() {
    let (addr, handle) = spawn_server(ServerConfig::default());
    let mut client = Client::connect(addr);

    let bad = client.request(r#"{"id":"x","kind":"analyze","width":2,"cell":"nope"}"#);
    assert_eq!(bad.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(bad.get("id").and_then(Json::as_str), Some("x"));
    assert!(bad
        .get("error")
        .and_then(Json::as_str)
        .expect("message")
        .contains("unknown cell"));

    // Oversized lines are refused with an error, not a disconnect.
    let huge = format!(
        r#"{{"id":"big","kind":"analyze","width":2,"cell":"lpaa1","pad":"{}"}}"#,
        "x".repeat(1 << 20)
    );
    let too_big = client.request(&huge);
    assert_eq!(too_big.get("ok").and_then(Json::as_bool), Some(false));
    assert!(too_big
        .get("error")
        .and_then(Json::as_str)
        .expect("message")
        .contains("bytes"));

    // The connection survives and keeps serving.
    let good = client.request(r#"{"kind":"analyze","width":2,"cell":"lpaa1"}"#);
    assert_eq!(good.get("ok").and_then(Json::as_bool), Some(true));

    client.request(r#"{"kind":"shutdown"}"#);
    handle.join().expect("clean shutdown");
}
