//! End-to-end tests: a real TCP daemon on an ephemeral port, exercised by
//! real client sockets, with every response checked against a direct call
//! into the analysis libraries.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use sealpaa_cells::{AdderChain, InputProfile, StandardCell};
use sealpaa_server::json::Json;
use sealpaa_server::server::{IoModel, Server, ServerConfig};

/// The I/O models every end-to-end contract must hold under.
/// `SEALPAA_IO_MODEL` pins one; otherwise every model available on this
/// platform is exercised.
fn models() -> Vec<IoModel> {
    if let Ok(forced) = std::env::var("SEALPAA_IO_MODEL") {
        return vec![forced.parse().expect("valid SEALPAA_IO_MODEL")];
    }
    if cfg!(target_os = "linux") {
        vec![IoModel::Event, IoModel::Threads]
    } else {
        vec![IoModel::Threads]
    }
}

fn for_each_model(scenario: impl Fn(IoModel)) {
    for model in models() {
        scenario(model);
    }
}

/// Binds a daemon on an ephemeral port, runs it on a background thread, and
/// returns its address plus the join handle.
fn spawn_server(config: ServerConfig) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        ..config
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    fn request(&mut self, line: &str) -> Json {
        writeln!(self.writer, "{line}").expect("send");
        self.writer.flush().expect("flush");
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("receive");
        Json::parse(response.trim_end()).expect("response is valid JSON")
    }
}

fn result_f64(response: &Json, key: &str) -> f64 {
    response
        .get("result")
        .and_then(|r| r.get(key))
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("missing result.{key} in {}", response.render()))
}

#[test]
fn tcp_serves_all_four_analysis_kinds_and_matches_the_libraries() {
    for_each_model(tcp_serves_all_analysis_kinds);
}

fn tcp_serves_all_analysis_kinds(io_model: IoModel) {
    let (addr, handle) = spawn_server(ServerConfig {
        io_model,
        ..Default::default()
    });
    let mut client = Client::connect(addr);

    // analyze — against sealpaa_core.
    let response = client.request(r#"{"id":1,"kind":"analyze","width":8,"cell":"lpaa1","p":0.1}"#);
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(response.get("id").and_then(Json::as_u64), Some(1));
    let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), 8);
    let profile = InputProfile::constant(8, 0.1);
    let direct = sealpaa_core::analyze(&chain, &profile)
        .expect("direct analyze")
        .error_probability();
    assert_eq!(result_f64(&response, "error_probability"), direct);

    // simulate (Monte-Carlo, fixed seed) — against sealpaa_sim.
    let response = client.request(
        r#"{"id":2,"kind":"simulate","width":8,"cell":"lpaa6","samples":30000,"seed":42,"threads":2}"#,
    );
    let direct = sealpaa_sim::monte_carlo(
        &AdderChain::uniform(StandardCell::Lpaa6.cell(), 8),
        &InputProfile::<f64>::uniform(8),
        sealpaa_sim::MonteCarloConfig {
            samples: 30000,
            seed: 42,
            threads: 2,
            backend: None,
        },
    )
    .expect("direct simulate");
    assert_eq!(
        result_f64(&response, "error_probability"),
        direct.error_probability()
    );

    // compare — against sealpaa_inclexcl, and internally consistent.
    let response = client.request(r#"{"id":3,"kind":"compare","width":6,"cell":"lpaa3","p":0.3}"#);
    let chain = AdderChain::uniform(StandardCell::Lpaa3.cell(), 6);
    let profile = InputProfile::constant(6, 0.3);
    let (baseline, terms) =
        sealpaa_inclexcl::error_probability(&chain, &profile).expect("direct baseline");
    assert_eq!(result_f64(&response, "inclusion_exclusion"), baseline);
    assert_eq!(
        response
            .get("result")
            .and_then(|r| r.get("terms"))
            .and_then(Json::as_u64),
        Some(terms)
    );

    // gear — against sealpaa_gear.
    let response = client.request(r#"{"id":4,"kind":"gear","n":8,"r":2,"overlap":2,"p":0.5}"#);
    let config = sealpaa_gear::GearConfig::new(8, 2, 2).expect("valid config");
    let direct =
        sealpaa_gear::error_probability(&config, &[0.5; 8], &[0.5; 8], 0.0).expect("direct gear");
    assert_eq!(result_f64(&response, "error_probability"), direct);

    // blocks — against the analytical engine in sealpaa_blocks.
    let response =
        client.request(r#"{"id":5,"kind":"blocks","config":"4:0:accurate,4:2:lpaa1","p":0.5}"#);
    let config: sealpaa_blocks::BlockConfig = "4:0:accurate,4:2:lpaa1".parse().expect("config");
    let direct =
        sealpaa_blocks::error_distance_distribution(&config, &InputProfile::<f64>::uniform(8))
            .expect("direct blocks");
    assert_eq!(result_f64(&response, "error_rate"), direct.error_rate());
    assert_eq!(
        result_f64(&response, "mean_absolute"),
        direct.mean_absolute()
    );

    client.request(r#"{"kind":"shutdown"}"#);
    handle.join().expect("clean shutdown");
}

#[test]
fn repeated_analyze_is_answered_from_cache_and_stats_count_the_hit() {
    for_each_model(repeated_analyze_hits_the_cache);
}

fn repeated_analyze_hits_the_cache(io_model: IoModel) {
    let (addr, handle) = spawn_server(ServerConfig {
        io_model,
        ..Default::default()
    });
    let mut client = Client::connect(addr);

    let line = r#"{"kind":"analyze","width":12,"cell":"lpaa4","p":0.25}"#;
    let first = client.request(line);
    assert_eq!(first.get("cached").and_then(Json::as_bool), Some(false));
    // A differently-spelled but canonically identical request must also hit:
    // explicit per-bit lists of the same constant probability.
    let listed = format!(
        r#"{{"kind":"analyze","width":12,"cell":"lpaa4","pa":{p},"pb":{p},"cin":0.25}}"#,
        p = "[0.25,0.25,0.25,0.25,0.25,0.25,0.25,0.25,0.25,0.25,0.25,0.25]"
    );
    let second = client.request(&listed);
    assert_eq!(
        second.get("cached").and_then(Json::as_bool),
        Some(true),
        "canonically equivalent request must be a cache hit: {}",
        second.render()
    );
    assert_eq!(first.get("result"), second.get("result"));

    let stats = client.request(r#"{"kind":"stats"}"#);
    let cache = stats
        .get("result")
        .and_then(|r| r.get("cache"))
        .expect("cache stats");
    assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(1));
    assert_eq!(cache.get("misses").and_then(Json::as_u64), Some(1));
    assert_eq!(cache.get("entries").and_then(Json::as_u64), Some(1));
    assert_eq!(
        stats
            .get("result")
            .and_then(|r| r.get("requests"))
            .and_then(Json::as_u64),
        Some(2),
        "the two analyzes (the stats snapshot precedes its own count)"
    );

    client.request(r#"{"kind":"shutdown"}"#);
    handle.join().expect("clean shutdown");
}

#[test]
fn concurrent_mixed_clients_all_get_correct_answers() {
    for_each_model(concurrent_mixed_clients);
}

fn concurrent_mixed_clients(io_model: IoModel) {
    // 2 workers, small queue: with 8 clients hammering concurrently this
    // exercises queuing, backpressure, and cache sharing across connections.
    let (addr, handle) = spawn_server(ServerConfig {
        threads: 2,
        queue_capacity: 4,
        io_model,
        ..Default::default()
    });

    let expected_analyze: Vec<f64> = (1..=4)
        .map(|w| {
            let chain = AdderChain::uniform(StandardCell::Lpaa2.cell(), 4 * w);
            let profile = InputProfile::constant(4 * w, 0.2);
            sealpaa_core::analyze(&chain, &profile)
                .expect("direct")
                .error_probability()
        })
        .collect();
    let expected_gear = sealpaa_gear::error_probability(
        &sealpaa_gear::GearConfig::new(8, 2, 2).expect("valid"),
        &[0.5; 8],
        &[0.5; 8],
        0.0,
    )
    .expect("direct");

    let clients: Vec<_> = (0..8)
        .map(|c| {
            let expected_analyze = expected_analyze.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                for round in 0..6 {
                    if (c + round) % 2 == 0 {
                        let w = 4 * (1 + (c + round) % 4);
                        let response = client.request(&format!(
                            r#"{{"id":"{c}-{round}","kind":"analyze","width":{w},"cell":"lpaa2","p":0.2}}"#
                        ));
                        assert_eq!(
                            response.get("ok").and_then(Json::as_bool),
                            Some(true),
                            "{}",
                            response.render()
                        );
                        assert_eq!(
                            response.get("id").and_then(Json::as_str),
                            Some(format!("{c}-{round}").as_str()),
                            "responses must pair with their requests"
                        );
                        let got = result_f64(&response, "error_probability");
                        assert_eq!(got, expected_analyze[(w / 4) - 1], "width {w}");
                    } else {
                        let response = client.request(&format!(
                            r#"{{"id":"{c}-{round}","kind":"gear","n":8,"r":2,"overlap":2}}"#
                        ));
                        assert_eq!(result_f64(&response, "error_probability"), expected_gear);
                    }
                }
            })
        })
        .collect();
    for client in clients {
        client.join().expect("client thread");
    }

    // After 48 mixed requests over 5 distinct configurations, the cache must
    // have served most of them.
    let mut client = Client::connect(addr);
    let stats = client.request(r#"{"kind":"stats"}"#);
    let hits = stats
        .get("result")
        .and_then(|r| r.get("cache"))
        .and_then(|c| c.get("hits"))
        .and_then(Json::as_u64)
        .expect("hit counter");
    // 48 requests over 5 distinct configurations: only first-time computes
    // (and concurrent first-round races on the same key) may miss.
    assert!(hits >= 36, "expected ≥36 cache hits, got {hits}");

    client.request(r#"{"kind":"shutdown"}"#);
    handle.join().expect("clean shutdown");
}

#[test]
fn shutdown_drains_requests_already_in_flight() {
    for_each_model(shutdown_drains_in_flight);
}

fn shutdown_drains_in_flight(io_model: IoModel) {
    // One worker: occupy it with a slow Monte-Carlo job, queue a second one
    // behind it, then request shutdown from a third connection while both
    // are still outstanding. The drain guarantee: both accepted jobs are
    // finished and their responses written before the daemon exits.
    let (addr, handle) = spawn_server(ServerConfig {
        threads: 1,
        queue_capacity: 16,
        cache_entries: 0, // no caching: every request does real work
        io_model,
        ..Default::default()
    });

    let slow_client = |id: u64, seed: u64| {
        std::thread::spawn(move || {
            let mut client = Client::connect(addr);
            let response = client.request(&format!(
                r#"{{"id":{id},"kind":"simulate","width":16,"cell":"lpaa5","samples":3000000,"seed":{seed},"threads":1}}"#
            ));
            assert_eq!(
                response.get("ok").and_then(Json::as_bool),
                Some(true),
                "in-flight request {id} must be served: {}",
                response.render()
            );
            assert_eq!(response.get("id").and_then(Json::as_u64), Some(id));
            assert!(result_f64(&response, "error_probability") > 0.0);
        })
    };
    let running = slow_client(1, 11);
    // Let the first job reach the worker, then queue a second behind it.
    std::thread::sleep(Duration::from_millis(100));
    let queued = slow_client(2, 22);
    std::thread::sleep(Duration::from_millis(100));

    let mut stopper = Client::connect(addr);
    let response = stopper.request(r#"{"kind":"shutdown"}"#);
    assert_eq!(
        response
            .get("result")
            .and_then(|r| r.get("stopping"))
            .and_then(Json::as_bool),
        Some(true)
    );

    // The daemon exits only after the drain, and both clients must have
    // received their answers rather than a closed socket.
    handle.join().expect("daemon exits cleanly");
    running.join().expect("running job answered");
    queued.join().expect("queued job answered");
}

#[test]
fn malformed_and_oversized_requests_get_error_responses_not_disconnects() {
    for_each_model(malformed_and_oversized_requests);
}

fn malformed_and_oversized_requests(io_model: IoModel) {
    let (addr, handle) = spawn_server(ServerConfig {
        io_model,
        ..Default::default()
    });
    let mut client = Client::connect(addr);

    let bad = client.request(r#"{"id":"x","kind":"analyze","width":2,"cell":"nope"}"#);
    assert_eq!(bad.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(bad.get("id").and_then(Json::as_str), Some("x"));
    assert!(bad
        .get("error")
        .and_then(Json::as_str)
        .expect("message")
        .contains("unknown cell"));

    // Oversized lines are refused with an error, not a disconnect.
    let huge = format!(
        r#"{{"id":"big","kind":"analyze","width":2,"cell":"lpaa1","pad":"{}"}}"#,
        "x".repeat(1 << 20)
    );
    let too_big = client.request(&huge);
    assert_eq!(too_big.get("ok").and_then(Json::as_bool), Some(false));
    assert!(too_big
        .get("error")
        .and_then(Json::as_str)
        .expect("message")
        .contains("bytes"));

    // The connection survives and keeps serving.
    let good = client.request(r#"{"kind":"analyze","width":2,"cell":"lpaa1"}"#);
    assert_eq!(good.get("ok").and_then(Json::as_bool), Some(true));

    client.request(r#"{"kind":"shutdown"}"#);
    handle.join().expect("clean shutdown");
}

#[test]
fn batch_over_tcp_answers_every_item_with_its_id() {
    for_each_model(batch_over_tcp);
}

fn batch_over_tcp(io_model: IoModel) {
    let (addr, handle) = spawn_server(ServerConfig {
        io_model,
        ..Default::default()
    });
    let mut client = Client::connect(addr);

    let response = client.request(concat!(
        r#"{"id":"B","kind":"batch","requests":["#,
        r#"{"id":0,"kind":"analyze","width":8,"cell":"lpaa1","p":0.1},"#,
        r#"{"id":1,"kind":"gear","n":8,"r":2,"overlap":2},"#,
        r#"{"id":2,"kind":"analyze","width":8,"cell":"lpaa1","p":0.1}"#,
        r#"]}"#
    ));
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(response.get("id").and_then(Json::as_str), Some("B"));
    let result = response.get("result").expect("batch result");
    // The duplicate analyze deduplicates: three items, two computes.
    assert_eq!(result.get("count").and_then(Json::as_u64), Some(3));
    assert_eq!(result.get("computed").and_then(Json::as_u64), Some(2));
    let subs = result
        .get("results")
        .and_then(Json::as_array)
        .expect("subs");
    for (i, sub) in subs.iter().enumerate() {
        assert_eq!(sub.get("id").and_then(Json::as_u64), Some(i as u64));
        assert_eq!(sub.get("ok").and_then(Json::as_bool), Some(true));
    }
    let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), 8);
    let profile = InputProfile::constant(8, 0.1);
    let direct = sealpaa_core::analyze(&chain, &profile)
        .expect("direct analyze")
        .error_probability();
    assert_eq!(
        subs[0]
            .get("result")
            .and_then(|r| r.get("error_probability"))
            .and_then(Json::as_f64),
        Some(direct)
    );
    assert_eq!(subs[2].get("result"), subs[0].get("result"));

    client.request(r#"{"kind":"shutdown"}"#);
    handle.join().expect("clean shutdown");
}

#[test]
fn batch_with_malformed_items_fails_only_those_items() {
    for_each_model(batch_with_malformed_items);
}

fn batch_with_malformed_items(io_model: IoModel) {
    let (addr, handle) = spawn_server(ServerConfig {
        io_model,
        ..Default::default()
    });
    let mut client = Client::connect(addr);

    // A mixed envelope: two valid items bracket two differently-malformed
    // ones (an unknown cell caught at parse, an out-of-range width caught
    // at validation), plus a duplicate of the first valid item. The
    // failures must stay inside their own slots.
    let response = client.request(concat!(
        r#"{"id":"mix","kind":"batch","requests":["#,
        r#"{"id":0,"kind":"analyze","width":8,"cell":"lpaa1","p":0.1},"#,
        r#"{"id":1,"kind":"analyze","width":8,"cell":"nope","p":0.1},"#,
        r#"{"id":2,"kind":"analyze","width":99,"cell":"lpaa1","p":0.1},"#,
        r#"{"id":3,"kind":"gear","n":8,"r":2,"overlap":2},"#,
        r#"{"id":4,"kind":"analyze","width":8,"cell":"lpaa1","p":0.1}"#,
        r#"]}"#
    ));
    assert_eq!(
        response.get("ok").and_then(Json::as_bool),
        Some(true),
        "the envelope itself must succeed: {}",
        response.render()
    );
    assert_eq!(response.get("id").and_then(Json::as_str), Some("mix"));
    assert_eq!(
        response.get("cached").and_then(Json::as_bool),
        Some(false),
        "an envelope with failed items is never all-cached"
    );
    let result = response.get("result").expect("batch result");
    assert_eq!(result.get("count").and_then(Json::as_u64), Some(5));
    assert_eq!(
        result.get("computed").and_then(Json::as_u64),
        Some(2),
        "only the analyze and the gear compute; failures schedule no jobs"
    );
    let subs = result
        .get("results")
        .and_then(Json::as_array)
        .expect("subs");
    assert_eq!(subs.len(), 5);
    for (i, sub) in subs.iter().enumerate() {
        assert_eq!(sub.get("id").and_then(Json::as_u64), Some(i as u64));
    }
    for good in [0usize, 3, 4] {
        assert_eq!(
            subs[good].get("ok").and_then(Json::as_bool),
            Some(true),
            "item {good} must be isolated from its failed neighbors: {}",
            subs[good].render()
        );
    }
    assert_eq!(subs[1].get("ok").and_then(Json::as_bool), Some(false));
    assert!(subs[1]
        .get("error")
        .and_then(Json::as_str)
        .expect("message")
        .contains("unknown cell"));
    assert_eq!(subs[2].get("ok").and_then(Json::as_bool), Some(false));
    assert!(subs[2]
        .get("error")
        .and_then(Json::as_str)
        .expect("message")
        .contains("width"));
    // The duplicate shares the first item's computed result.
    assert_eq!(subs[4].get("result"), subs[0].get("result"));

    // Replaying the valid items alone is answered from cache: the failed
    // neighbors did not poison the cached entries.
    let replay = client.request(concat!(
        r#"{"id":"again","kind":"batch","requests":["#,
        r#"{"id":0,"kind":"analyze","width":8,"cell":"lpaa1","p":0.1},"#,
        r#"{"id":1,"kind":"gear","n":8,"r":2,"overlap":2}"#,
        r#"]}"#
    ));
    assert_eq!(replay.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(
        replay
            .get("result")
            .and_then(|r| r.get("computed"))
            .and_then(Json::as_u64),
        Some(0)
    );

    client.request(r#"{"kind":"shutdown"}"#);
    handle.join().expect("clean shutdown");
}

#[test]
#[cfg(target_os = "linux")]
fn pipelined_requests_are_answered_out_of_order_tagged_by_id() {
    // The pipelining contract (event model): a slow request does not block
    // a fast one behind it on the same connection — responses come back in
    // completion order, reassembled by client-supplied id.
    let (addr, handle) = spawn_server(ServerConfig {
        threads: 2,
        cache_entries: 0, // force both requests to really compute
        io_model: IoModel::Event,
        ..Default::default()
    });
    let mut client = Client::connect(addr);

    // Both lines in one write, no read in between: the slow Monte-Carlo
    // job occupies one worker while the trivial analyze overtakes it.
    let slow = r#"{"id":"slow","kind":"simulate","width":16,"cell":"lpaa5","samples":3000000,"seed":5,"threads":1}"#;
    let fast = r#"{"id":"fast","kind":"analyze","width":2,"cell":"lpaa1","p":0.1}"#;
    client
        .writer
        .write_all(format!("{slow}\n{fast}\n").as_bytes())
        .expect("send pipeline");
    client.writer.flush().expect("flush");

    let read_one = |client: &mut Client| {
        let mut line = String::new();
        client.reader.read_line(&mut line).expect("receive");
        Json::parse(line.trim_end()).expect("valid response JSON")
    };
    let first = read_one(&mut client);
    let second = read_one(&mut client);
    assert_eq!(
        first.get("id").and_then(Json::as_str),
        Some("fast"),
        "the fast request must overtake the slow one: {}",
        first.render()
    );
    assert_eq!(second.get("id").and_then(Json::as_str), Some("slow"));
    assert_eq!(second.get("ok").and_then(Json::as_bool), Some(true));

    // The per-connection depth high-water mark saw both in flight at once.
    let stats = client.request(r#"{"kind":"stats"}"#);
    let depth = stats
        .get("result")
        .and_then(|r| r.get("connections"))
        .and_then(|c| c.get("max_pipeline_depth"))
        .and_then(Json::as_u64)
        .expect("max_pipeline_depth gauge");
    assert!(depth >= 2, "pipeline depth gauge never saw 2: {depth}");
    assert_eq!(
        stats
            .get("result")
            .and_then(|r| r.get("io_model"))
            .and_then(Json::as_str),
        Some("event")
    );

    client.request(r#"{"kind":"shutdown"}"#);
    handle.join().expect("clean shutdown");
}

#[test]
fn access_log_is_byte_reproducible_across_replays() {
    // The access-log contract holds under every io model: a replayed
    // session produces a byte-identical NDJSON trace (no timestamps, no
    // latencies, fields in a fixed order).
    for_each_model(|io_model| {
        use std::sync::{Arc, Mutex};

        #[derive(Clone, Default)]
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().expect("buf").extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let run_once = || {
            let sink = SharedBuf::default();
            let server = Server::bind_with_trace(
                ServerConfig {
                    addr: "127.0.0.1:0".to_owned(),
                    io_model,
                    ..Default::default()
                },
                Box::new(sink.clone()),
            )
            .expect("bind ephemeral port");
            let addr = server.local_addr();
            let handle = std::thread::spawn(move || server.run().expect("server run"));
            let mut client = Client::connect(addr);
            client.request(r#"{"kind":"analyze","width":2,"cell":"lpaa1","p":0.1}"#);
            client.request(r#"{"kind":"analyze","width":2,"cell":"lpaa1","p":0.1}"#);
            client.request("nonsense");
            client.request(
                r#"{"kind":"batch","requests":[{"kind":"gear","n":8,"r":2,"overlap":2}]}"#,
            );
            client.request(r#"{"kind":"shutdown"}"#);
            handle.join().expect("clean shutdown");
            let bytes = sink.0.lock().expect("buf").clone();
            String::from_utf8(bytes).expect("trace is utf8")
        };

        let trace = run_once();
        let lines: Vec<&str> = trace.lines().collect();
        assert_eq!(lines.len(), 5, "{trace}");
        assert!(lines[0].contains("\"kind\":\"analyze\""));
        assert!(lines[1].contains("\"cached\":true"));
        assert!(lines[2].contains("\"ok\":false"));
        assert!(lines[3].contains("\"kind\":\"batch\""));
        assert!(lines[4].contains("\"kind\":\"shutdown\""));
        assert_eq!(trace, run_once(), "replayed session must trace identically");
    });
}
