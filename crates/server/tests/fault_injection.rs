//! Fault-injection tests: misbehaving clients against a real TCP daemon.
//!
//! Each test wires up one hostile peer — a stalled reader, a writer that
//! never drains its responses, a newline-free flood, a connection flood past
//! the cap, or a shutdown racing in-flight work — and checks that the daemon
//! answers with a structured error (or a clean disconnect) within its
//! deadlines, keeps its registries bounded, and stays healthy for the next
//! well-behaved client.

use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use sealpaa_server::json::Json;
use sealpaa_server::server::{IoModel, Server, ServerConfig};

/// The I/O models each fault scenario must survive. `SEALPAA_IO_MODEL`
/// pins one (the CI matrix runs one leg per model); otherwise every model
/// available on this platform is exercised.
fn models() -> Vec<IoModel> {
    if let Ok(forced) = std::env::var("SEALPAA_IO_MODEL") {
        return vec![forced.parse().expect("valid SEALPAA_IO_MODEL")];
    }
    if cfg!(target_os = "linux") {
        vec![IoModel::Event, IoModel::Threads]
    } else {
        vec![IoModel::Threads]
    }
}

fn for_each_model(scenario: impl Fn(IoModel)) {
    for model in models() {
        scenario(model);
    }
}

fn spawn_server(config: ServerConfig) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        ..config
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    fn request(&mut self, line: &str) -> Json {
        writeln!(self.writer, "{line}").expect("send");
        self.writer.flush().expect("flush");
        self.read_response().expect("response before disconnect")
    }

    /// Reads one response line; `None` on a clean EOF.
    fn read_response(&mut self) -> Option<Json> {
        let mut response = String::new();
        let n = self.reader.read_line(&mut response).expect("receive");
        (n > 0).then(|| Json::parse(response.trim_end()).expect("response is valid JSON"))
    }
}

fn stats(client: &mut Client) -> Json {
    let response = client.request(r#"{"kind":"stats"}"#);
    response.get("result").cloned().expect("stats result")
}

fn stat_u64(stats: &Json, path: &[&str]) -> u64 {
    let mut node = stats;
    for key in path {
        node = node
            .get(key)
            .unwrap_or_else(|| panic!("missing stats field {}", path.join(".")));
    }
    node.as_u64()
        .unwrap_or_else(|| panic!("non-numeric stats field {}", path.join(".")))
}

#[test]
fn stalled_client_is_timed_out_with_a_structured_error() {
    for_each_model(stalled_client_is_timed_out);
}

fn stalled_client_is_timed_out(io_model: IoModel) {
    let (addr, handle) = spawn_server(ServerConfig {
        idle_timeout_ms: 200,
        io_model,
        ..Default::default()
    });

    // A client that connects and never sends a complete line.
    let mut stalled = Client::connect(addr);
    stalled
        .writer
        .write_all(b"{\"kind\":")
        .expect("partial line");
    stalled.writer.flush().expect("flush");

    // Within the deadline (plus slack) the daemon must answer with a
    // structured timeout error and then close the connection — not pin a
    // thread on the dead peer.
    let started = Instant::now();
    let response = stalled
        .read_response()
        .expect("a structured error precedes the close");
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "timeout must fire near the configured deadline"
    );
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
    assert!(
        response
            .get("error")
            .and_then(Json::as_str)
            .expect("message")
            .contains("idle timeout"),
        "{}",
        response.render()
    );
    assert!(stalled.read_response().is_none(), "then a clean close");

    // The daemon stays healthy and the timeout is visible in stats.
    let mut observer = Client::connect(addr);
    let snapshot = stats(&mut observer);
    assert!(stat_u64(&snapshot, &["connections", "timeouts"]) >= 1);

    observer.request(r#"{"kind":"shutdown"}"#);
    handle.join().expect("clean shutdown");
}

#[test]
fn slow_writer_is_disconnected_once_the_write_deadline_expires() {
    for_each_model(slow_writer_is_disconnected);
}

fn slow_writer_is_disconnected(io_model: IoModel) {
    let (addr, handle) = spawn_server(ServerConfig {
        write_timeout_ms: 300,
        io_model,
        ..Default::default()
    });

    // Pipeline many large responses without ever reading them: once the
    // kernel buffers fill, the daemon's writes block, the write deadline
    // expires, and the connection is dropped instead of pinning its thread.
    let flooder = TcpStream::connect(addr).expect("connect");
    flooder
        .set_write_timeout(Some(Duration::from_secs(1)))
        .expect("client write timeout");
    let mut writer = flooder.try_clone().expect("clone");
    let request = r#"{"kind":"analyze","width":64,"cell":"lpaa1","p":0.1}"#;
    let mut sent = 0usize;
    for _ in 0..3000 {
        // The daemon may already have hung up mid-flood; that is the point.
        if writeln!(writer, "{request}")
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
        sent += 1;
    }
    assert!(sent > 0, "at least one request must go out");

    // The daemon must register the write timeout and disconnect the flooder
    // well before the 30s observer read deadline.
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut observer = Client::connect(addr);
    loop {
        let snapshot = stats(&mut observer);
        if stat_u64(&snapshot, &["connections", "timeouts"]) >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "write deadline never fired: {}",
            snapshot.render()
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // The flooder's socket is dead: draining it ends in EOF or a reset.
    drop(writer);
    flooder
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut sink = [0u8; 1 << 16];
    let mut reader = flooder;
    loop {
        match reader.read(&mut sink) {
            Ok(0) => break,
            Ok(_) => continue,
            Err(e) if e.kind() == ErrorKind::ConnectionReset => break,
            Err(e) => panic!("unexpected read error draining the flooder: {e}"),
        }
    }

    observer.request(r#"{"kind":"shutdown"}"#);
    handle.join().expect("clean shutdown");
}

#[test]
fn newline_free_flood_is_discarded_and_answered_with_a_structured_error() {
    for_each_model(newline_free_flood_is_discarded);
}

fn newline_free_flood_is_discarded(io_model: IoModel) {
    let (addr, handle) = spawn_server(ServerConfig {
        max_line_bytes: 4096,
        io_model,
        ..Default::default()
    });
    let mut client = Client::connect(addr);

    // 1 MiB without a newline: 256× the limit. The daemon discards it as it
    // streams in (bounded memory — see the unit test on the bounded reader)
    // and answers once the line finally terminates.
    let flood = vec![b'x'; 1 << 20];
    client.writer.write_all(&flood).expect("flood");
    client.writer.write_all(b"\n").expect("terminate");
    client.writer.flush().expect("flush");

    let response = client.read_response().expect("structured error");
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
    let message = response
        .get("error")
        .and_then(Json::as_str)
        .expect("message");
    assert!(message.contains("1048576 bytes"), "{message}");
    assert!(message.contains("4096 byte"), "{message}");

    // The stream resynced at the newline: the same connection keeps serving.
    let good = client.request(r#"{"kind":"analyze","width":2,"cell":"lpaa1"}"#);
    assert_eq!(good.get("ok").and_then(Json::as_bool), Some(true));
    let snapshot = stats(&mut client);
    assert!(stat_u64(&snapshot, &["errors"]) >= 1);

    client.request(r#"{"kind":"shutdown"}"#);
    handle.join().expect("clean shutdown");
}

#[test]
fn connections_past_the_cap_are_shed_with_an_overloaded_error() {
    for_each_model(connections_past_the_cap_are_shed);
}

fn connections_past_the_cap_are_shed(io_model: IoModel) {
    let (addr, handle) = spawn_server(ServerConfig {
        max_connections: 4,
        io_model,
        ..Default::default()
    });

    // Fill the cap. A completed round-trip guarantees the connection is
    // registered, because registration precedes serving.
    let mut holders: Vec<Client> = (0..4).map(|_| Client::connect(addr)).collect();
    for holder in &mut holders {
        let snapshot = stats(holder);
        assert!(stat_u64(&snapshot, &["connections", "registered"]) <= 4);
    }

    // The fifth connection is shed: one structured "overloaded" line, then
    // a close — it must never hang waiting for a slot.
    let mut shed = Client::connect(addr);
    let response = shed.read_response().expect("structured shed response");
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
    assert!(
        response
            .get("error")
            .and_then(Json::as_str)
            .expect("message")
            .contains("overloaded"),
        "{}",
        response.render()
    );
    assert!(shed.read_response().is_none(), "then a clean close");

    // Freeing one slot re-admits new connections (the daemon has to notice
    // the disconnect first, so retry briefly).
    drop(holders.pop());
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut admitted = loop {
        let mut candidate = Client::connect(addr);
        candidate
            .writer
            .write_all(b"{\"kind\":\"stats\"}\n")
            .expect("send");
        match candidate.read_response() {
            Some(response) if response.get("ok").and_then(Json::as_bool) == Some(true) => {
                break candidate;
            }
            _ => {
                assert!(
                    Instant::now() < deadline,
                    "freed slot was never re-admitted"
                );
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    };
    let snapshot = stats(&mut admitted);
    assert!(stat_u64(&snapshot, &["connections", "shed"]) >= 1);
    assert!(stat_u64(&snapshot, &["connections", "registered"]) <= 4);

    admitted.request(r#"{"kind":"shutdown"}"#);
    handle.join().expect("clean shutdown");
}

#[test]
fn shutdown_while_a_connection_is_stalled_drains_work_and_unblocks_the_reader() {
    for_each_model(shutdown_while_a_connection_is_stalled);
}

fn shutdown_while_a_connection_is_stalled(io_model: IoModel) {
    // One worker, no idle deadline: an idle connection would block its
    // reader forever — the shutdown sweep must unblock it, while a job
    // already in flight still gets its answer.
    let (addr, handle) = spawn_server(ServerConfig {
        threads: 1,
        cache_entries: 0,
        idle_timeout_ms: 0,
        io_model,
        ..Default::default()
    });

    let busy = std::thread::spawn(move || {
        let mut client = Client::connect(addr);
        let response = client.request(
            r#"{"id":7,"kind":"simulate","width":16,"cell":"lpaa5","samples":3000000,"seed":3,"threads":1}"#,
        );
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(true),
            "the in-flight job must be answered before the close: {}",
            response.render()
        );
        assert_eq!(response.get("id").and_then(Json::as_u64), Some(7));
    });
    // Let the job reach the worker, and park a second, idle connection.
    std::thread::sleep(Duration::from_millis(100));
    let mut idle = Client::connect(addr);

    let mut stopper = Client::connect(addr);
    let response = stopper.request(r#"{"kind":"shutdown"}"#);
    assert_eq!(
        response
            .get("result")
            .and_then(|r| r.get("stopping"))
            .and_then(Json::as_bool),
        Some(true)
    );

    // The daemon joins: the sweep unblocked the idle reader (which would
    // otherwise never return), and the busy client got its answer.
    handle
        .join()
        .expect("daemon exits despite the stalled reader");
    assert!(idle.read_response().is_none(), "idle connection sees EOF");
    busy.join().expect("busy client answered");
}

#[test]
fn registries_stay_bounded_under_connection_churn() {
    for_each_model(registries_stay_bounded);
}

fn registries_stay_bounded(io_model: IoModel) {
    let (addr, handle) = spawn_server(ServerConfig {
        max_connections: 8,
        io_model,
        ..Default::default()
    });

    // 200 sequential connect/request/disconnect cycles: the registry and
    // the thread list must track live connections, not the running total.
    for i in 0..200 {
        let mut client = Client::connect(addr);
        let response = client.request(r#"{"kind":"analyze","width":4,"cell":"lpaa2"}"#);
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(true),
            "churn iteration {i}: {}",
            response.render()
        );
    }

    let mut observer = Client::connect(addr);
    let snapshot = stats(&mut observer);
    assert!(
        stat_u64(&snapshot, &["connections", "registered"]) <= 8,
        "registry grew past the cap: {}",
        snapshot.render()
    );
    assert!(stat_u64(&snapshot, &["connections", "live"]) <= 8);
    assert!(
        stat_u64(&snapshot, &["connections", "peak"]) <= 8,
        "peak gauge proves the registry never exceeded the cap: {}",
        snapshot.render()
    );
    assert_eq!(
        stat_u64(&snapshot, &["connections", "shed"]),
        0,
        "one-at-a-time churn must never trip the cap: {}",
        snapshot.render()
    );

    observer.request(r#"{"kind":"shutdown"}"#);
    handle.join().expect("clean shutdown");
}

/// Process thread count, for proving connections don't cost threads.
#[cfg(target_os = "linux")]
fn thread_count() -> usize {
    std::fs::read_dir("/proc/self/task")
        .expect("task dir")
        .count()
}

/// Open/idle/close churn against the event loop: `held` connections stay
/// parked while `cycled` more connect, make one request, and disconnect.
/// Connections must cost registry entries, never threads.
#[cfg(target_os = "linux")]
fn event_churn(held: usize, cycled: usize) {
    let (addr, handle) = spawn_server(ServerConfig {
        max_connections: held + 64,
        io_model: IoModel::Event,
        ..Default::default()
    });
    // Baseline after the daemon is fully up (poll thread + worker pool).
    let mut observer = Client::connect(addr);
    stats(&mut observer);
    let baseline = thread_count();

    let mut parked: Vec<TcpStream> = Vec::with_capacity(held);
    for _ in 0..held {
        parked.push(TcpStream::connect(addr).expect("held connect"));
    }
    for i in 0..cycled {
        let mut client = Client::connect(addr);
        let response = client.request(r#"{"kind":"analyze","width":4,"cell":"lpaa2"}"#);
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(true),
            "churn iteration {i}: {}",
            response.render()
        );
    }

    // Thread count is flat: idle connections are registry entries, not
    // threads (small slack for transient test-harness threads).
    let now = thread_count();
    assert!(
        now <= baseline + 2,
        "thread count grew under churn: {baseline} -> {now}"
    );
    let snapshot = stats(&mut observer);
    let registered = stat_u64(&snapshot, &["connections", "registered_fds"]);
    assert!(
        registered >= held as u64,
        "held connections missing from the fd registry: {registered} < {held}"
    );
    assert!(
        registered <= (held + 8) as u64,
        "fd registry grew past the live set: {}",
        snapshot.render()
    );
    assert_eq!(stat_u64(&snapshot, &["connections", "shed"]), 0);

    drop(parked);
    observer.request(r#"{"kind":"shutdown"}"#);
    handle.join().expect("clean shutdown");
}

#[test]
#[cfg(target_os = "linux")]
fn killed_slow_reader_releases_pending_write_bytes() {
    // The pending-output gauge is owned by the event loop; the threads
    // model never publishes it, so a pinned threads leg skips this.
    if !models().iter().any(|m| matches!(m, IoModel::Event)) {
        return;
    }
    let (addr, handle) = spawn_server(ServerConfig {
        write_timeout_ms: 5_000,
        io_model: IoModel::Event,
        ..Default::default()
    });

    // A reader that requests megabytes of responses and never drains them:
    // eight pipelined batches of 1024 sub-requests each produce far more
    // output than the loopback socket buffers hold, so the connection's
    // output queue — and with it the pending_write_bytes gauge — fills.
    let flooder = TcpStream::connect(addr).expect("connect");
    flooder
        .set_write_timeout(Some(Duration::from_secs(5)))
        .expect("client write timeout");
    let mut writer = flooder.try_clone().expect("clone");
    let item = r#"{"kind":"analyze","width":64,"cell":"lpaa1","p":0.1}"#;
    let items = vec![item; 1024].join(",");
    for _ in 0..8 {
        if writeln!(writer, "{{\"kind\":\"batch\",\"requests\":[{items}]}}")
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
    }

    // Wait until the daemon is demonstrably mid-flush (bytes queued on the
    // stalled connection are visible in the gauge)...
    let mut observer = Client::connect(addr);
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let snapshot = stats(&mut observer);
        if stat_u64(&snapshot, &["connections", "pending_write_bytes"]) > 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "responses never queued on the stalled reader: {}",
            snapshot.render()
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // ...then kill the reader abruptly. Unread data in its receive queue
    // makes the close a hard reset, so the daemon aborts the connection
    // with its output queue still full — the gauge must give every
    // unsent byte back instead of leaking the abandoned buffer.
    drop(writer);
    drop(flooder);
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let snapshot = stats(&mut observer);
        if stat_u64(&snapshot, &["connections", "pending_write_bytes"]) == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "gauge still charges the dead connection: {}",
            snapshot.render()
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // The daemon stays healthy for well-behaved clients.
    let good = observer.request(r#"{"kind":"analyze","width":4,"cell":"lpaa2"}"#);
    assert_eq!(good.get("ok").and_then(Json::as_bool), Some(true));

    observer.request(r#"{"kind":"shutdown"}"#);
    handle.join().expect("clean shutdown");
}

#[test]
#[cfg(target_os = "linux")]
fn event_loop_holds_idle_connections_without_threads() {
    // Tier-1 scale; the `--ignored` variant below runs the full 10k churn.
    event_churn(256, 512);
}

#[test]
#[ignore = "10k-connection churn; run explicitly with --ignored"]
#[cfg(target_os = "linux")]
fn event_loop_survives_ten_thousand_connection_churn() {
    // 2k parked + 8k cycled = 10k opens, with at most ~2k simultaneous so
    // the suite stays inside common fd ulimits.
    event_churn(2000, 8000);
}
