//! Warm-restart end-to-end tests: a daemon configured with `cache_snapshot`
//! persists its result cache (periodically and on drain) and a restarted
//! daemon answers previously-cached keys as `"cached":true` without
//! recomputing; a corrupt, truncated, or version-bumped snapshot is
//! reported, ignored, and the daemon starts cold but healthy.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use sealpaa_server::json::Json;
use sealpaa_server::server::{IoModel, Server, ServerConfig};

/// The I/O models the snapshot contract must hold under. `SEALPAA_IO_MODEL`
/// pins one; otherwise every model available on this platform is exercised.
fn models() -> Vec<IoModel> {
    if let Ok(forced) = std::env::var("SEALPAA_IO_MODEL") {
        return vec![forced.parse().expect("valid SEALPAA_IO_MODEL")];
    }
    if cfg!(target_os = "linux") {
        vec![IoModel::Event, IoModel::Threads]
    } else {
        vec![IoModel::Threads]
    }
}

fn for_each_model(scenario: impl Fn(IoModel)) {
    for model in models() {
        scenario(model);
    }
}

/// A per-test, per-model snapshot path that never collides across parallel
/// test binaries.
fn snapshot_path(test: &str, model: IoModel) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!(
        "sealpaa-snapshot-e2e-{test}-{model:?}-{}",
        std::process::id()
    ));
    path
}

fn spawn_server(config: ServerConfig) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        ..config
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    fn request(&mut self, line: &str) -> Json {
        writeln!(self.writer, "{line}").expect("send");
        self.writer.flush().expect("flush");
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("receive");
        Json::parse(response.trim_end()).expect("response is valid JSON")
    }
}

fn analyze_line(i: usize) -> String {
    format!(
        r#"{{"kind":"analyze","width":8,"cell":"lpaa1","p":0.{}}}"#,
        i + 1
    )
}

fn cache_stat(client: &mut Client, field: &str) -> u64 {
    let stats = client.request(r#"{"kind":"stats"}"#);
    stats
        .get("result")
        .and_then(|r| r.get("cache"))
        .and_then(|c| c.get(field))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("missing cache.{field} in {}", stats.render()))
}

#[test]
fn warm_restart_answers_previously_cached_keys_without_recompute() {
    for_each_model(warm_restart_serves_cached);
}

fn warm_restart_serves_cached(io_model: IoModel) {
    let path = snapshot_path("warm-restart", io_model);
    std::fs::remove_file(&path).ok();
    let config = || ServerConfig {
        cache_snapshot: Some(path.display().to_string()),
        // No periodic rewrites: this test pins the on-drain persist.
        snapshot_interval_ms: 0,
        io_model,
        ..Default::default()
    };

    // First life: compute three distinct keys, then drain.
    let (addr, handle) = spawn_server(config());
    let mut client = Client::connect(addr);
    let mut first_results = Vec::new();
    for i in 0..3 {
        let response = client.request(&analyze_line(i));
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            response.get("cached").and_then(Json::as_bool),
            Some(false),
            "a fresh daemon computes: {}",
            response.render()
        );
        first_results.push(response.get("result").expect("result").render());
    }
    client.request(r#"{"kind":"shutdown"}"#);
    handle.join().expect("clean shutdown");
    assert!(path.exists(), "the drain must have persisted the snapshot");

    // Second life, same snapshot path: the same keys are answered from the
    // restored cache — `"cached":true`, zero misses, identical payloads.
    let (addr, handle) = spawn_server(config());
    let mut client = Client::connect(addr);
    for (i, first) in first_results.iter().enumerate() {
        let response = client.request(&analyze_line(i));
        assert_eq!(
            response.get("cached").and_then(Json::as_bool),
            Some(true),
            "a warm restart must not recompute key {i}: {}",
            response.render()
        );
        assert_eq!(
            &response.get("result").expect("result").render(),
            first,
            "the restored payload must be byte-identical"
        );
    }
    assert_eq!(
        cache_stat(&mut client, "misses"),
        0,
        "every request was served from the restored snapshot"
    );
    assert_eq!(cache_stat(&mut client, "hits"), 3);
    client.request(r#"{"kind":"shutdown"}"#);
    handle.join().expect("clean shutdown");
    std::fs::remove_file(&path).ok();
}

#[test]
fn running_daemon_persists_the_snapshot_periodically() {
    for_each_model(periodic_persistence);
}

fn periodic_persistence(io_model: IoModel) {
    let path = snapshot_path("periodic", io_model);
    std::fs::remove_file(&path).ok();
    let (addr, handle) = spawn_server(ServerConfig {
        cache_snapshot: Some(path.display().to_string()),
        snapshot_interval_ms: 50,
        io_model,
        ..Default::default()
    });

    // Dirty the cache, then wait for the interval timer to write the file —
    // no shutdown involved. (Each probe opens a fresh connection so both
    // serving loops keep taking passes.)
    let mut client = Client::connect(addr);
    client.request(&analyze_line(0));
    let deadline = Instant::now() + Duration::from_secs(20);
    while !path.exists() {
        assert!(
            Instant::now() < deadline,
            "periodic persistence never wrote {}",
            path.display()
        );
        std::thread::sleep(Duration::from_millis(20));
        Client::connect(addr).request(r#"{"kind":"stats"}"#);
    }

    client.request(r#"{"kind":"shutdown"}"#);
    handle.join().expect("clean shutdown");
    // The periodically-written file is a complete, loadable snapshot: a
    // restart without a drain in between would still be warm.
    let (addr, handle) = spawn_server(ServerConfig {
        cache_snapshot: Some(path.display().to_string()),
        io_model,
        ..Default::default()
    });
    let mut client = Client::connect(addr);
    let response = client.request(&analyze_line(0));
    assert_eq!(response.get("cached").and_then(Json::as_bool), Some(true));
    client.request(r#"{"kind":"shutdown"}"#);
    handle.join().expect("clean shutdown");
    std::fs::remove_file(&path).ok();
}

#[test]
fn damaged_snapshots_are_ignored_and_the_daemon_starts_cold_but_serves() {
    for_each_model(damaged_snapshots_start_cold);
}

fn damaged_snapshots_start_cold(io_model: IoModel) {
    let path = snapshot_path("damaged", io_model);
    std::fs::remove_file(&path).ok();
    let config = || ServerConfig {
        cache_snapshot: Some(path.display().to_string()),
        snapshot_interval_ms: 0,
        io_model,
        ..Default::default()
    };

    // Produce one valid snapshot to damage.
    let (addr, handle) = spawn_server(config());
    Client::connect(addr).request(&analyze_line(0));
    Client::connect(addr).request(r#"{"kind":"shutdown"}"#);
    handle.join().expect("clean shutdown");
    let valid = std::fs::read(&path).expect("persisted snapshot");
    assert!(
        valid.len() > 40,
        "snapshot too small to damage meaningfully"
    );

    let mut truncated = valid.clone();
    truncated.truncate(valid.len() - 5);
    let mut version_bumped = valid.clone();
    version_bumped[4] = 99;
    let mut bit_flipped = valid.clone();
    let flip_at = valid.len() - 12; // inside the last record's value bytes
    bit_flipped[flip_at] ^= 0x10;
    let garbage = b"this was never a snapshot\n".to_vec();

    for (name, bytes) in [
        ("truncated", truncated),
        ("version-bumped", version_bumped),
        ("bit-flipped", bit_flipped),
        ("garbage", garbage),
    ] {
        std::fs::write(&path, &bytes).expect("plant damaged snapshot");
        let (addr, handle) = spawn_server(config());
        let mut client = Client::connect(addr);
        let response = client.request(&analyze_line(0));
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(true),
            "a {name} snapshot must not stop the daemon: {}",
            response.render()
        );
        assert_eq!(
            response.get("cached").and_then(Json::as_bool),
            Some(false),
            "a {name} snapshot must be ignored, not partially loaded"
        );
        assert_eq!(cache_stat(&mut client, "entries"), 1, "{name}: cold start");
        client.request(r#"{"kind":"shutdown"}"#);
        handle.join().expect("clean shutdown");
        // Each drain rewrites a valid snapshot over the damaged file; plant
        // the next damage from the captured valid bytes regardless.
    }
    std::fs::remove_file(&path).ok();
}
