//! Router end-to-end tests (Linux): a real `sealpaa route` gateway in front
//! of real backend daemons, exercised by real client sockets.
//!
//! The contracts under test: consistent placement (equivalent requests from
//! different clients land on the same backend, so the second client hits
//! that backend's cache), batch fan-out/reassembly (one envelope in, one
//! envelope out, per-item isolation preserved across backends), health
//! (a lost backend means structured errors and re-routing, a recovered one
//! is re-adopted), and structured shed when no backend is healthy.

#![cfg(target_os = "linux")]

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use sealpaa_server::json::Json;
use sealpaa_server::route::{RouteConfig, Router};
use sealpaa_server::server::{IoModel, Server, ServerConfig};

/// The backends' connection layer. `SEALPAA_IO_MODEL` pins one (the CI
/// gate runs both); the default is the event model, whose per-link
/// pipelining is the contract the router leans on hardest. The router
/// itself never depends on which model its backends use.
fn backend_model() -> IoModel {
    match std::env::var("SEALPAA_IO_MODEL") {
        Ok(forced) => forced.parse().expect("valid SEALPAA_IO_MODEL"),
        Err(_) => IoModel::Event,
    }
}

fn spawn_backend(cache_entries: usize) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        cache_entries,
        io_model: backend_model(),
        ..Default::default()
    })
    .expect("bind backend");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run().expect("backend run"));
    (addr, handle)
}

fn spawn_router(
    backends: Vec<String>,
    health_interval_ms: u64,
) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let router = Router::bind(RouteConfig {
        addr: "127.0.0.1:0".to_owned(),
        backends,
        health_interval_ms,
        ..RouteConfig::default()
    })
    .expect("bind router");
    let addr = router.local_addr();
    let handle = std::thread::spawn(move || router.run().expect("router run"));
    (addr, handle)
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    fn request(&mut self, line: &str) -> Json {
        writeln!(self.writer, "{line}").expect("send");
        self.writer.flush().expect("flush");
        self.read_one()
    }

    fn read_one(&mut self) -> Json {
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("receive");
        assert!(!response.is_empty(), "unexpected EOF from the router");
        Json::parse(response.trim_end()).expect("response is valid JSON")
    }
}

fn analyze_line(id: &str, key: usize) -> String {
    // Zero-padded probabilities: `0.1` and `0.10` are the same number, so
    // the same canonical cache key — `0.001` vs `0.010` keeps every `key`
    // in 1..=999 a genuinely distinct computation.
    format!(r#"{{"id":"{id}","kind":"analyze","width":8,"cell":"lpaa1","p":0.{key:03}}}"#)
}

fn router_stats(client: &mut Client) -> Json {
    let response = client.request(r#"{"kind":"stats"}"#);
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
    response.get("result").cloned().expect("stats result")
}

fn healthy_backends(stats: &Json) -> u64 {
    stats
        .get("backends")
        .and_then(Json::as_array)
        .expect("backends array")
        .iter()
        .filter(|b| b.get("healthy").and_then(Json::as_bool) == Some(true))
        .count() as u64
}

#[test]
fn router_places_equivalent_requests_on_one_backend_so_caches_are_shared() {
    let (b0, h0) = spawn_backend(1024);
    let (b1, h1) = spawn_backend(1024);
    let (addr, router) = spawn_router(vec![b0.to_string(), b1.to_string()], 500);

    // Client A computes 12 distinct keys through the router, pipelined:
    // all 12 lines go out in one write, responses come back tagged by id.
    let mut alice = Client::connect(addr);
    let lines: String = (1..=12)
        .map(|k| analyze_line(&format!("a{k}"), k) + "\n")
        .collect();
    alice.writer.write_all(lines.as_bytes()).expect("pipeline");
    alice.writer.flush().expect("flush");
    let mut first: HashMap<String, Json> = HashMap::new();
    for _ in 0..12 {
        let response = alice.read_one();
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(true),
            "{}",
            response.render()
        );
        assert_eq!(response.get("cached").and_then(Json::as_bool), Some(false));
        let id = response
            .get("id")
            .and_then(Json::as_str)
            .expect("client id restored")
            .to_owned();
        first.insert(id, response);
    }
    assert_eq!(first.len(), 12, "every pipelined request got its answer");

    // Client B asks for the same 12 keys: consistent hashing lands each on
    // the backend that already holds it, so every single one is a hit —
    // across clients and across two disjoint backend caches.
    let mut bob = Client::connect(addr);
    for k in 1..=12 {
        let response = bob.request(&analyze_line(&format!("b{k}"), k));
        assert_eq!(
            response.get("cached").and_then(Json::as_bool),
            Some(true),
            "key {k} was not routed to the backend that cached it: {}",
            response.render()
        );
        assert_eq!(
            response.get("result"),
            first[&format!("a{k}")].get("result"),
            "key {k}: payload must match the first computation"
        );
    }

    // The router's own stats: both backends healthy and both actually used
    // (12 keys never all hash to one side of a 2-backend ring in this set).
    let stats = router_stats(&mut bob);
    assert_eq!(stats.get("role").and_then(Json::as_str), Some("router"));
    assert_eq!(healthy_backends(&stats), 2);
    for backend in stats
        .get("backends")
        .and_then(Json::as_array)
        .expect("backends")
    {
        assert!(
            backend.get("forwarded").and_then(Json::as_u64) > Some(0),
            "both backends must take traffic: {}",
            stats.render()
        );
    }

    // Stopping the router leaves the backends running.
    let stop = bob.request(r#"{"kind":"shutdown"}"#);
    assert_eq!(
        stop.get("result")
            .and_then(|r| r.get("stopping"))
            .and_then(Json::as_bool),
        Some(true)
    );
    router.join().expect("router drains and exits");
    for b in [b0, b1] {
        let mut direct = Client::connect(b);
        let response = direct.request(r#"{"kind":"stats"}"#);
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
        direct.request(r#"{"kind":"shutdown"}"#);
    }
    h0.join().expect("backend 0 exits");
    h1.join().expect("backend 1 exits");
}

#[test]
fn router_fans_a_batch_across_backends_and_reassembles_one_envelope() {
    let (b0, h0) = spawn_backend(1024);
    let (b1, h1) = spawn_backend(1024);
    let (addr, router) = spawn_router(vec![b0.to_string(), b1.to_string()], 500);
    let mut client = Client::connect(addr);

    // Ten keyed items (spread over both backends by the ring), one
    // malformed item, and a duplicate: one envelope out, one envelope back.
    let mut items: Vec<String> = (1..=10)
        .map(|k| format!(r#"{{"id":{k},"kind":"analyze","width":8,"cell":"lpaa1","p":0.{k}}}"#))
        .collect();
    items.push(r#"{"id":11,"kind":"analyze","width":8,"cell":"nope"}"#.to_owned());
    items.push(r#"{"id":12,"kind":"analyze","width":8,"cell":"lpaa1","p":0.3}"#.to_owned());
    let envelope = format!(
        r#"{{"id":"fan","kind":"batch","requests":[{}]}}"#,
        items.join(",")
    );

    let response = client.request(&envelope);
    assert_eq!(
        response.get("ok").and_then(Json::as_bool),
        Some(true),
        "{}",
        response.render()
    );
    assert_eq!(response.get("id").and_then(Json::as_str), Some("fan"));
    assert_eq!(response.get("kind").and_then(Json::as_str), Some("batch"));
    assert_eq!(response.get("cached").and_then(Json::as_bool), Some(false));
    let result = response.get("result").expect("batch result");
    assert_eq!(result.get("count").and_then(Json::as_u64), Some(12));
    let subs = result
        .get("results")
        .and_then(Json::as_array)
        .expect("subs");
    assert_eq!(subs.len(), 12, "reassembly must preserve every item");
    for (i, sub) in subs.iter().enumerate() {
        assert_eq!(
            sub.get("id").and_then(Json::as_u64),
            Some(i as u64 + 1),
            "item order must survive the fan-out: {}",
            response.render()
        );
        let expect_ok = i != 10; // item id 11 is the malformed one
        assert_eq!(
            sub.get("ok").and_then(Json::as_bool),
            Some(expect_ok),
            "item {}: {}",
            i + 1,
            sub.render()
        );
    }
    assert!(subs[10]
        .get("error")
        .and_then(Json::as_str)
        .expect("message")
        .contains("unknown cell"));
    // The duplicate of p=0.3 shares its original's result.
    assert_eq!(subs[11].get("result"), subs[2].get("result"));

    // Replaying the same envelope is all-cached: every backend answers its
    // sub-batch from cache... except the malformed item keeps the envelope
    // honest (`cached` stays false, exactly as a single daemon reports it).
    let replay = client.request(&envelope);
    assert_eq!(replay.get("cached").and_then(Json::as_bool), Some(false));
    // A fully valid envelope over the now-warm keys IS all-cached.
    let valid_only = format!(
        r#"{{"id":"warm","kind":"batch","requests":[{}]}}"#,
        (1..=10)
            .map(|k| format!(r#"{{"id":{k},"kind":"analyze","width":8,"cell":"lpaa1","p":0.{k}}}"#))
            .collect::<Vec<_>>()
            .join(",")
    );
    let warm = client.request(&valid_only);
    assert_eq!(
        warm.get("cached").and_then(Json::as_bool),
        Some(true),
        "a warm fan-out must aggregate to cached:true: {}",
        warm.render()
    );
    assert_eq!(
        warm.get("result")
            .and_then(|r| r.get("computed"))
            .and_then(Json::as_u64),
        Some(0)
    );

    client.request(r#"{"kind":"shutdown"}"#);
    router.join().expect("router exits");
    for b in [b0, b1] {
        Client::connect(b).request(r#"{"kind":"shutdown"}"#);
    }
    h0.join().expect("backend 0 exits");
    h1.join().expect("backend 1 exits");
}

#[test]
fn backend_loss_is_shed_structurally_rerouted_and_recovered() {
    let (b0, h0) = spawn_backend(1024);
    // Reserve an address for a backend that is not up yet: bind, record,
    // drop. The router must treat it as down and keep serving on one leg.
    let reserved = TcpListener::bind("127.0.0.1:0").expect("reserve port");
    let b1_addr = reserved.local_addr().expect("reserved addr");
    drop(reserved);

    let (addr, router) = spawn_router(vec![b0.to_string(), b1_addr.to_string()], 100);
    let mut client = Client::connect(addr);

    // One backend down from the start: every key still gets an answer.
    for k in 1..=6 {
        let response = client.request(&analyze_line(&format!("x{k}"), k));
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(true),
            "key {k} must be served by the surviving backend: {}",
            response.render()
        );
    }
    let stats = router_stats(&mut client);
    assert_eq!(healthy_backends(&stats), 1, "{}", stats.render());

    // The missing backend comes up on its reserved address; within a few
    // health ticks the router adopts it and the ring covers both again.
    let late_backend = Server::bind(ServerConfig {
        addr: b1_addr.to_string(),
        cache_entries: 1024,
        io_model: backend_model(),
        ..Default::default()
    })
    .expect("bind late backend on the reserved address");
    let h1 = std::thread::spawn(move || late_backend.run().expect("late backend run"));
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let stats = router_stats(&mut client);
        if healthy_backends(&stats) == 2 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "recovered backend never re-adopted: {}",
            stats.render()
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    for k in 1..=6 {
        let response = client.request(&analyze_line(&format!("y{k}"), k));
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
    }

    // Now lose every backend: each daemon is shut down directly. The
    // router sheds each subsequent request with a structured error — the
    // client connection itself stays up and keeps getting answers.
    Client::connect(b0).request(r#"{"kind":"shutdown"}"#);
    Client::connect(b1_addr).request(r#"{"kind":"shutdown"}"#);
    h0.join().expect("backend 0 exits");
    h1.join().expect("backend 1 exits");
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let response = client.request(&analyze_line("z", 7));
        if response.get("ok").and_then(Json::as_bool) == Some(false) {
            let message = response
                .get("error")
                .and_then(Json::as_str)
                .expect("structured shed message");
            assert!(
                message.contains("backend"),
                "the shed must name its cause: {message}"
            );
            assert_eq!(
                response.get("id").and_then(Json::as_str),
                Some("z"),
                "even a shed response echoes the client id"
            );
            break;
        }
        // The router may not have noticed the loss yet (probe in flight,
        // response served from a still-open link); keep asking.
        assert!(
            Instant::now() < deadline,
            "loss of every backend was never shed: {}",
            response.render()
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    let stats = router_stats(&mut client);
    assert_eq!(healthy_backends(&stats), 0, "{}", stats.render());

    client.request(r#"{"kind":"shutdown"}"#);
    router.join().expect("router exits with no backends left");
}
