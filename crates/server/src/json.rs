//! A minimal JSON value model (no external dependencies): a programmatic
//! writer — shared with the `sealpaa` CLI, which re-exports this module —
//! plus a strict recursive-descent parser for the server's wire protocol.

use std::fmt::Write as _;

/// A JSON value assembled programmatically or produced by [`Json::parse`].
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number (rendered via Rust's shortest-round-trip `f64`
    /// formatting; non-finite values render as `null` per JSON's rules).
    Number(f64),
    /// A string (escaped on render).
    String(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

/// A parse failure, with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonParseError {}

impl Json {
    /// Shorthand for an object builder.
    pub fn object() -> JsonObject {
        JsonObject::default()
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::String(s) => {
                out.push('"');
                for ch in s.chars() {
                    match ch {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::String(key.clone()).write(out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document (rejecting trailing garbage).
    ///
    /// # Errors
    ///
    /// Returns [`JsonParseError`] on malformed input.
    pub fn parse(input: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        // Strict `<`: `u64::MAX as f64` rounds UP to 2^64, so a `<=` guard
        // would accept 2^64 and the `as` cast would silently saturate it to
        // `u64::MAX`. Every f64 below 2^64 casts losslessly.
        match self {
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n < 18446744073709551616.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonParseError {
        JsonParseError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(Vec::new()));
        }
        // Protocol objects typically carry a handful of fields; one
        // up-front reservation replaces a chain of doubling reallocations.
        let mut fields = Vec::with_capacity(8);
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(Vec::new()));
        }
        let mut items = Vec::with_capacity(8);
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            // Bulk-copy the maximal run of plain bytes. The delimiters
            // (quote, backslash, controls) are all ASCII, so run boundaries
            // are always UTF-8 character boundaries; multi-byte scalars
            // pass straight through the run.
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            if self.pos > start {
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .expect("input is valid UTF-8"),
                );
            }
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let first = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: require the paired \uXXXX.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let second = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&second) {
                                        return Err(self.err("unpaired surrogate"));
                                    }
                                    0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid code point"))?,
                            );
                        }
                        other => {
                            return Err(self.err(format!("bad escape {:?}", other as char)));
                        }
                    }
                }
                // The run scan stops at nothing else but controls.
                Some(_) => return Err(self.err("raw control character in string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit in \\u escape"))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let before = p.pos;
            while matches!(p.peek(), Some(c) if c.is_ascii_digit()) {
                p.pos += 1;
            }
            p.pos > before
        };
        if !digits(self) {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(self.err("expected digits after '.'"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII slice");
        let n: f64 = text
            .parse()
            .map_err(|_| self.err(format!("unparseable number {text:?}")))?;
        Ok(Json::Number(n))
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Self {
        Json::Number(n)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::String(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::String(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::Number(n as f64)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::Number(n as f64)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Self {
        Json::Array(items)
    }
}

/// An insertion-ordered JSON object builder.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JsonObject {
    fields: Vec<(String, Json)>,
}

impl JsonObject {
    /// Adds a field; returns `self` for chaining.
    pub fn field(mut self, key: impl Into<String>, value: impl Into<Json>) -> Self {
        self.fields.push((key.into(), value.into()));
        self
    }

    /// Finishes the object.
    pub fn build(self) -> Json {
        Json::Object(self.fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Number(0.25).render(), "0.25");
        assert_eq!(Json::Number(f64::NAN).render(), "null");
        assert_eq!(Json::from("hi").render(), "\"hi\"");
    }

    #[test]
    fn strings_are_escaped() {
        let s = Json::from("a\"b\\c\nd\te\u{1}");
        assert_eq!(s.render(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn objects_and_arrays_compose() {
        let value = Json::object()
            .field("name", "LPAA 1")
            .field("error", 0.125)
            .field(
                "stages",
                Json::Array(vec![Json::from(1usize), Json::from(2usize)]),
            )
            .field("exact", false)
            .build();
        assert_eq!(
            value.render(),
            "{\"name\":\"LPAA 1\",\"error\":0.125,\"stages\":[1,2],\"exact\":false}"
        );
    }

    #[test]
    fn empty_object_and_array() {
        assert_eq!(Json::object().build().render(), "{}");
        assert_eq!(Json::Array(Vec::new()).render(), "[]");
    }

    #[test]
    fn parse_round_trips_renderer_output() {
        let value = Json::object()
            .field("name", "LPAA 1\n\"quoted\"")
            .field("p", 0.125)
            .field("wide", 1e300)
            .field("neg", -2.5)
            .field("flag", true)
            .field("nothing", Json::Null)
            .field(
                "list",
                Json::Array(vec![Json::from(1usize), Json::from("two")]),
            )
            .build();
        let parsed = Json::parse(&value.render()).expect("own output parses");
        assert_eq!(parsed, value);
    }

    #[test]
    fn parse_accepts_whitespace_and_nesting() {
        let doc = " {\n \"a\" : [ 1 , { \"b\" : [ ] } , null ] , \"c\" : \"x\" } ";
        let v = Json::parse(doc).expect("valid");
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        assert_eq!(
            v.get("a").and_then(Json::as_array).map(<[Json]>::len),
            Some(3)
        );
    }

    #[test]
    fn parse_handles_escapes_and_unicode() {
        let v = Json::parse(r#""a\u0041\n\t\"\\ \ud83d\ude00 é""#).expect("valid");
        assert_eq!(v.as_str(), Some("aA\n\t\"\\ 😀 é"));
    }

    #[test]
    fn parse_numbers() {
        for (text, expect) in [
            ("0", 0.0),
            ("-0.5", -0.5),
            ("12.25", 12.25),
            ("1e3", 1000.0),
            ("2.5E-2", 0.025),
        ] {
            assert_eq!(Json::parse(text).expect(text).as_f64(), Some(expect));
        }
        assert_eq!(Json::parse("42").expect("int").as_u64(), Some(42));
        assert_eq!(Json::parse("1.5").expect("frac").as_u64(), None);
        assert_eq!(Json::parse("-1").expect("neg").as_u64(), None);
    }

    #[test]
    fn as_u64_boundaries() {
        // 2^53: the largest power of two where every integer is exact.
        assert_eq!(Json::Number(9007199254740992.0).as_u64(), Some(1 << 53));
        // 2^64 - 2048: the largest f64 strictly below 2^64.
        assert_eq!(
            Json::Number(18446744073709549568.0).as_u64(),
            Some(u64::MAX - 2047)
        );
        // 2^64 itself (what `u64::MAX as f64` rounds up to) must be
        // rejected, not saturated to u64::MAX.
        assert_eq!(Json::Number(18446744073709551616.0).as_u64(), None);
        assert_eq!(Json::Number(u64::MAX as f64).as_u64(), None);
        assert_eq!(Json::Number(f64::INFINITY).as_u64(), None);
        assert_eq!(Json::Number(f64::NAN).as_u64(), None);
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "nul",
            "1.2.3",
            "\"\\q\"",
            "\"unterminated",
            "{} trailing",
            "01e",
            "\"\\ud800\"",
            "{1:2}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn accessors_are_type_checked() {
        let v = Json::parse(r#"{"n":1,"s":"x","b":true,"a":[1]}"#).expect("valid");
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(1.0));
        assert_eq!(v.get("n").and_then(Json::as_str), None);
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert!(v.get("a").and_then(Json::as_array).is_some());
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("n"), None);
    }
}
