//! The readiness-driven connection layer (`--io-model event`, Linux).
//!
//! One poll thread owns every socket: the listener, a wakeup pipe, and each
//! client connection, all registered with an `epoll` [`Poller`] (see the
//! `sys` module) and driven by readiness instead of blocking reads. A
//! connection costs one registry entry — ten thousand idle clients are ten
//! thousand `Conn` structs, not ten thousand threads.
//!
//! # Pipelining
//!
//! The poll thread never computes. Each complete request line is triaged by
//! [`classify_line`]; anything needing analysis becomes a [`WorkerPool`]
//! job that sends a [`Completion`] back over an mpsc channel and rouses the
//! poll thread through the wakeup pipe. Because the reader does not wait
//! for the answer, one connection may have many requests in flight
//! (`MAX_PIPELINE` caps the depth; past it the connection's read interest
//! is dropped until completions drain). Responses are written in
//! *completion* order, tagged with the client-supplied `id` — pipelined
//! clients must reassemble by `id`, not by position.
//!
//! # Backpressure and deadlines
//!
//! Flow control that the threads model gets from blocking calls is
//! re-expressed as state:
//!
//! * a full pool queue defers jobs to a retry queue instead of blocking the
//!   poll thread (the poll timeout is capped while anything is deferred);
//! * a peer that stops reading accumulates output in its `Conn` buffer;
//!   past `MAX_CONN_OUT_BYTES` its *read* interest is dropped — the server
//!   stops consuming requests from a client that won't take answers;
//! * idle and write deadlines become poll-timeout arithmetic: the loop
//!   sleeps until the nearest deadline and sweeps expired connections.
//!
//! [`WorkerPool`]: crate::pool::WorkerPool

use std::collections::{HashMap, VecDeque};
use std::io::{self, ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use crate::json::Json;
use crate::pool::{Job, TrySubmit};
use crate::protocol::{error_response, RequestBody};
use crate::server::{
    classify_line, compute_result, finish_batch, finish_compute, maybe_persist_snapshot,
    persist_snapshot, run_batch_jobs, snapshot_due_in, trace_request, BatchPlan, LineAction,
    LineMemo, Served, Server, ServerState,
};
use crate::sys::{Poller, WakePipe, Waker, EPOLLIN, EPOLLOUT, EPOLLRDHUP};

/// Registration token for the listen socket.
const TOKEN_LISTENER: u64 = u64::MAX;
/// Registration token for the wakeup pipe's read end.
const TOKEN_WAKE: u64 = u64::MAX - 1;

/// In-flight request cap per connection: past it the connection's read
/// interest is paused until completions drain.
const MAX_PIPELINE: usize = 128;
/// Pending-output cap per connection: past it the connection's read
/// interest is paused until the peer drains its responses.
const MAX_CONN_OUT_BYTES: usize = 4 << 20;
/// Poll-timeout cap while jobs wait in the deferred queue, so freed pool
/// slots are noticed even without a completion wakeup.
const DEFERRED_RETRY_MS: u64 = 50;

/// A finished worker job on its way back to the poll thread.
struct Completion {
    conn: u64,
    bytes_in: usize,
    served: Served,
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    /// The current partial request line (kept only while within the limit).
    line: Vec<u8>,
    /// Observed bytes of the current line (excluding the newline), counted
    /// even while overflowing.
    line_len: usize,
    /// The current line ran past `max_line_bytes`; its bytes are being
    /// discarded as they stream in.
    overflowed: bool,
    /// Pending output not yet accepted by the socket.
    out: Vec<u8>,
    out_pos: usize,
    /// Requests handed to the pool whose responses have not been enqueued.
    in_flight: usize,
    last_activity: Instant,
    /// When the peer last left us unable to make write progress.
    stalled_since: Option<Instant>,
    /// Currently registered epoll interest.
    interest: u32,
    /// The peer's write half is done (EOF) or we stopped reading it.
    read_closed: bool,
    /// Close once `in_flight == 0` and the output buffer drains.
    closing: bool,
    /// The connection's last cache-hit resolution, replayed for identical
    /// follow-up lines (see [`LineMemo`]).
    memo: LineMemo,
}

impl Conn {
    fn new(stream: TcpStream, now: Instant) -> Conn {
        Conn {
            stream,
            line: Vec::new(),
            line_len: 0,
            overflowed: false,
            out: Vec::new(),
            out_pos: 0,
            in_flight: 0,
            last_activity: now,
            stalled_since: None,
            interest: EPOLLIN | EPOLLRDHUP,
            read_closed: false,
            closing: false,
            memo: LineMemo::default(),
        }
    }

    fn out_pending(&self) -> usize {
        self.out.len() - self.out_pos
    }

    /// Subject to the idle deadline: readable, nothing in flight, nothing
    /// pending.
    fn idle_eligible(&self) -> bool {
        !self.closing && !self.read_closed && self.in_flight == 0 && self.out_pending() == 0
    }
}

/// One extracted input event from a connection's byte stream — the event
/// loop's equivalent of the blocking `BoundedLine`.
enum LineEvent {
    Line(String),
    TooLong { bytes: usize },
    InvalidUtf8 { bytes: usize },
}

/// Serves `server` with the event loop until a `shutdown` request drains
/// it. Entry point used by [`Server::run`].
pub(crate) fn run(server: Server) -> io::Result<()> {
    let mut event_loop = EventLoop::new(server)?;
    let result = event_loop.serve();
    // Join the workers *before* the wake pipe drops: worker closures hold
    // `Waker` copies of its write fd, which must not dangle onto a reused
    // descriptor.
    event_loop.state.pool.shutdown();
    result
}

struct EventLoop {
    state: Arc<ServerState>,
    poller: Poller,
    wake: WakePipe,
    waker: Waker,
    tx: mpsc::Sender<Completion>,
    rx: mpsc::Receiver<Completion>,
    listener: TcpListener,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    /// Jobs the pool queue had no room for, retried in order.
    deferred: VecDeque<Job>,
    /// Sum of `out_pending()` over all connections (the gauge).
    pending_out_total: usize,
    max_connections: usize,
    max_line_bytes: usize,
    idle_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
    draining: bool,
    scratch: Vec<u8>,
}

impl EventLoop {
    fn new(server: Server) -> io::Result<EventLoop> {
        let Server {
            listener,
            state,
            max_connections,
            idle_timeout,
            write_timeout,
            ..
        } = server;
        listener.set_nonblocking(true)?;
        let poller = Poller::new()?;
        let wake = WakePipe::new()?;
        poller.register(listener.as_raw_fd(), TOKEN_LISTENER, EPOLLIN)?;
        poller.register(wake.read_fd(), TOKEN_WAKE, EPOLLIN)?;
        let waker = wake.waker();
        let (tx, rx) = mpsc::channel();
        let max_line_bytes = state.max_line_bytes;
        Ok(EventLoop {
            state,
            poller,
            wake,
            waker,
            tx,
            rx,
            listener,
            conns: HashMap::new(),
            next_token: 0,
            deferred: VecDeque::new(),
            pending_out_total: 0,
            max_connections,
            max_line_bytes,
            idle_timeout,
            write_timeout,
            draining: false,
            scratch: vec![0u8; 64 * 1024],
        })
    }

    fn serve(&mut self) -> io::Result<()> {
        let mut ready = Vec::new();
        loop {
            let timeout = self.poll_timeout_ms(Instant::now());
            self.poller.wait(&mut ready, timeout)?;
            for r in std::mem::take(&mut ready) {
                match r.token {
                    TOKEN_LISTENER => self.accept_all(),
                    TOKEN_WAKE => self.wake.drain(),
                    token => {
                        if r.readable() {
                            self.handle_readable(token);
                        }
                        if r.writable() && self.conns.contains_key(&token) {
                            self.try_write(token);
                        }
                    }
                }
            }
            self.drain_completions();
            self.retry_deferred();
            self.enforce_deadlines(Instant::now());
            self.publish_gauges();
            maybe_persist_snapshot(&self.state);
            if self.draining && self.conns.is_empty() && self.deferred.is_empty() {
                // Capture everything the drain computed before exiting, so
                // the next start is warm.
                persist_snapshot(&self.state);
                return Ok(());
            }
        }
    }

    /// Milliseconds until the nearest deadline, or `None` to wait forever.
    fn poll_timeout_ms(&self, now: Instant) -> Option<i32> {
        let mut next: Option<Duration> = None;
        let mut consider = |d: Duration| match next {
            Some(n) if n <= d => {}
            _ => next = Some(d),
        };
        if let Some(limit) = self.idle_timeout {
            for conn in self.conns.values() {
                if conn.idle_eligible() {
                    consider(limit.saturating_sub(now.duration_since(conn.last_activity)));
                }
            }
        }
        if let Some(limit) = self.write_timeout {
            for conn in self.conns.values() {
                if let Some(since) = conn.stalled_since {
                    consider(limit.saturating_sub(now.duration_since(since)));
                }
            }
        }
        if !self.deferred.is_empty() {
            consider(Duration::from_millis(DEFERRED_RETRY_MS));
        }
        // A dirty cache snapshot must get written even if every client goes
        // quiet — an infinite epoll wait would defer it forever.
        if let Some(due) = snapshot_due_in(&self.state) {
            consider(due);
        }
        // +1ms so the sweep runs *after* the deadline, not a hair before.
        next.map(|d| d.as_millis().min(i32::MAX as u128 - 1) as i32 + 1)
    }

    fn accept_all(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => self.admit(stream),
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                // Transient per-connection accept failures (e.g. the peer
                // reset before accept) must not kill the loop.
                Err(_) => break,
            }
        }
    }

    fn admit(&mut self, stream: TcpStream) {
        if self.draining {
            return;
        }
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        if self.max_connections > 0 && self.conns.len() >= self.max_connections {
            self.state.metrics.record_shed();
            refuse_nonblocking(stream);
            return;
        }
        // Pipelined clients interleave small request and response lines;
        // Nagle would serialize them round-trip by round-trip.
        stream.set_nodelay(true).ok();
        let token = self.next_token;
        self.next_token += 1;
        let conn = Conn::new(stream, Instant::now());
        if self
            .poller
            .register(conn.stream.as_raw_fd(), token, conn.interest)
            .is_err()
        {
            return; // unregistered connections cannot be served
        }
        self.state.metrics.connection_opened();
        self.conns.insert(token, conn);
    }

    fn handle_readable(&mut self, token: u64) {
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut events: Vec<LineEvent> = Vec::new();
        let mut eof = false;
        let mut dead = false;
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                self.scratch = scratch;
                return;
            };
            // One read per readiness event: level-triggered epoll reports
            // the fd again if more than a scratch buffer is pending, which
            // keeps one flooding client from starving the others.
            loop {
                match conn.stream.read(&mut scratch) {
                    Ok(0) => {
                        eof = true;
                        break;
                    }
                    Ok(n) => {
                        conn.last_activity = Instant::now();
                        feed_lines(conn, &scratch[..n], self.max_line_bytes, &mut events);
                        break;
                    }
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            if eof {
                // A final unterminated line still counts, as in the
                // blocking reader.
                if conn.line_len > 0 || conn.overflowed {
                    let bytes = conn.line_len;
                    let line = std::mem::take(&mut conn.line);
                    let overflowed = std::mem::take(&mut conn.overflowed);
                    conn.line_len = 0;
                    events.push(complete_line(line, bytes, overflowed));
                }
                conn.read_closed = true;
                conn.closing = true;
            }
        }
        self.scratch = scratch;
        if dead {
            self.drop_conn(token);
            return;
        }
        for event in events {
            if !self.conns.contains_key(&token) || !self.handle_line_event(token, event) {
                break;
            }
        }
        // One flush for the whole readable batch: a pipelined burst of
        // cache hits goes out as one write instead of waking the peer once
        // per response. (`try_write` also refreshes interest and settles a
        // closing connection.)
        self.try_write(token);
    }

    /// Reacts to one extracted input event. Returns `false` when the
    /// connection should stop consuming further buffered input.
    fn handle_line_event(&mut self, token: u64, event: LineEvent) -> bool {
        match event {
            LineEvent::TooLong { bytes } => {
                self.state.metrics.record_error(None);
                let message = format!(
                    "request of {bytes} bytes exceeds the {} byte line limit",
                    self.max_line_bytes
                );
                let response = error_response(None, &message).render();
                self.enqueue_response(token, response);
                trace_request(&self.state, None, false, false, bytes, Some(&message));
                // The stream is already resynced at the newline; keep going.
                true
            }
            LineEvent::InvalidUtf8 { bytes } => {
                self.state.metrics.record_error(None);
                let message = "request line is not valid UTF-8";
                let response = error_response(None, message).render();
                self.enqueue_response(token, response);
                trace_request(&self.state, None, false, false, bytes, Some(message));
                // A binary peer won't speak the protocol from here on.
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.read_closed = true;
                    conn.closing = true;
                }
                false
            }
            LineEvent::Line(line) => {
                if line.trim().is_empty() {
                    return true;
                }
                let mut scratch = LineMemo::default();
                let memo = match self.conns.get_mut(&token) {
                    Some(conn) => &mut conn.memo,
                    None => &mut scratch,
                };
                match classify_line(&self.state, &line, memo) {
                    LineAction::Respond(served) => {
                        let shutdown = served.shutdown;
                        self.enqueue_response(token, served.response);
                        trace_request(
                            &self.state,
                            served.kind,
                            served.ok,
                            served.cached,
                            line.len(),
                            served.error.as_deref(),
                        );
                        if shutdown {
                            self.begin_drain();
                            return false;
                        }
                        true
                    }
                    LineAction::Compute {
                        id,
                        kind,
                        body,
                        key,
                        started,
                    } => {
                        self.submit_compute(token, line.len(), id, kind, body, key, started);
                        true
                    }
                    LineAction::Batch { id, plan, started } => {
                        self.submit_batch(token, line.len(), id, plan, started);
                        true
                    }
                }
            }
        }
    }

    fn bump_in_flight(&mut self, token: u64) {
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.in_flight += 1;
            self.state
                .metrics
                .record_pipeline_depth(conn.in_flight as u64);
        }
    }

    #[allow(clippy::too_many_arguments)] // forwards one request's parsed fields into the worker closure
    fn submit_compute(
        &mut self,
        token: u64,
        bytes_in: usize,
        id: Option<Json>,
        kind: &'static str,
        body: RequestBody,
        key: Option<String>,
        started: Instant,
    ) {
        self.bump_in_flight(token);
        let state = Arc::clone(&self.state);
        let tx = self.tx.clone();
        let waker = self.waker;
        self.submit_or_defer(Box::new(move || {
            let outcome = compute_result(&body);
            let served = finish_compute(&state, id.as_ref(), kind, key, started, outcome);
            tx.send(Completion {
                conn: token,
                bytes_in,
                served,
            })
            .ok();
            waker.wake();
        }));
    }

    fn submit_batch(
        &mut self,
        token: u64,
        bytes_in: usize,
        id: Option<Json>,
        plan: BatchPlan,
        started: Instant,
    ) {
        self.bump_in_flight(token);
        let BatchPlan {
            slots,
            jobs,
            payloads,
            all_cached,
        } = plan;
        let state = Arc::clone(&self.state);
        let tx = self.tx.clone();
        let waker = self.waker;
        self.submit_or_defer(Box::new(move || {
            let results = run_batch_jobs(&state.cache, &jobs);
            let served = finish_batch(
                &state,
                id.as_ref(),
                slots,
                &payloads,
                all_cached,
                results,
                started,
            );
            tx.send(Completion {
                conn: token,
                bytes_in,
                served,
            })
            .ok();
            waker.wake();
        }));
    }

    /// Hands a job to the pool without ever blocking the poll thread: a
    /// full queue parks it in the deferred queue (order preserved).
    fn submit_or_defer(&mut self, job: Job) {
        if !self.deferred.is_empty() {
            self.deferred.push_back(job);
            return;
        }
        match self.state.pool.try_submit(job) {
            Ok(()) => {}
            Err(TrySubmit::Full(job)) => self.deferred.push_back(job),
            // Only reachable mid-shutdown; the connection is about to be
            // torn down anyway.
            Err(TrySubmit::Closed(_)) => {}
        }
    }

    fn retry_deferred(&mut self) {
        while let Some(job) = self.deferred.pop_front() {
            match self.state.pool.try_submit(job) {
                Ok(()) => {}
                Err(TrySubmit::Full(job)) => {
                    self.deferred.push_front(job);
                    break;
                }
                Err(TrySubmit::Closed(_)) => break,
            }
        }
    }

    fn drain_completions(&mut self) {
        let mut touched: Vec<u64> = Vec::new();
        while let Ok(completion) = self.rx.try_recv() {
            let Completion {
                conn: token,
                bytes_in,
                served,
            } = completion;
            match self.conns.get_mut(&token) {
                Some(conn) => conn.in_flight -= 1,
                // The connection died while its job ran; the work still
                // happened (and was cached), only the response is dropped.
                None => continue,
            }
            self.enqueue_response(token, served.response);
            trace_request(
                &self.state,
                served.kind,
                served.ok,
                served.cached,
                bytes_in,
                served.error.as_deref(),
            );
            if !touched.contains(&token) {
                touched.push(token);
            }
        }
        // One flush per connection after the whole drain: completions for a
        // pipelined client coalesce into one write instead of one per job.
        // (`try_write` also refreshes interest — un-pausing a read that hit
        // the pipeline cap — and settles a closing connection.)
        for token in touched {
            self.try_write(token);
        }
    }

    /// Appends one response line to the connection's output buffer. The
    /// caller flushes with [`EventLoop::try_write`] once its whole batch is
    /// enqueued, so back-to-back responses share one `write`. Takes the
    /// rendered response by value: a drained buffer adopts the allocation
    /// outright, so a large (e.g. batch) response is never copied again.
    fn enqueue_response(&mut self, token: u64, response: String) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        self.pending_out_total += response.len() + 1;
        if conn.out_pos == conn.out.len() {
            conn.out = response.into_bytes();
            conn.out_pos = 0;
            conn.out.push(b'\n');
        } else {
            conn.out.extend_from_slice(response.as_bytes());
            conn.out.push(b'\n');
        }
    }

    /// Writes as much pending output as the socket will take.
    fn try_write(&mut self, token: u64) {
        let mut dead = false;
        let mut written = 0usize;
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            while conn.out_pos < conn.out.len() {
                match conn.stream.write(&conn.out[conn.out_pos..]) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => {
                        conn.out_pos += n;
                        written += n;
                        conn.stalled_since = None;
                    }
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        if conn.stalled_since.is_none() {
                            conn.stalled_since = Some(Instant::now());
                        }
                        break;
                    }
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            if conn.out_pos >= conn.out.len() {
                conn.out.clear();
                conn.out_pos = 0;
                conn.stalled_since = None;
            } else if conn.out_pos > 4096 {
                // Compact so a long-lived slow reader cannot grow the
                // buffer without bound through already-written prefixes.
                conn.out.drain(..conn.out_pos);
                conn.out_pos = 0;
            }
        }
        self.release_pending(written);
        if dead {
            self.drop_conn(token);
            return;
        }
        self.update_interest(token);
        self.maybe_close(token);
    }

    /// Retires `bytes` from the pending-output gauge total — bytes the
    /// sockets accepted, or bytes discarded with a dropped connection.
    /// Every teardown path must come through here (or [`Self::drop_conn`],
    /// which does): buffered-but-unflushed output abandoned by an abnormal
    /// close would otherwise stay in the gauge forever. Saturating so an
    /// accounting bug shows up as a too-small gauge (and a debug assert),
    /// never as a wrapped ~2^64 reading.
    fn release_pending(&mut self, bytes: usize) {
        debug_assert!(
            bytes <= self.pending_out_total,
            "releasing {bytes} pending output bytes but only {} are accounted",
            self.pending_out_total
        );
        self.pending_out_total = self.pending_out_total.saturating_sub(bytes);
    }

    /// Recomputes and (only when changed) re-registers the connection's
    /// epoll interest from its flow-control state.
    fn update_interest(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let mut want = 0u32;
        let reading = !conn.read_closed
            && !conn.closing
            && conn.in_flight < MAX_PIPELINE
            && conn.out_pending() <= MAX_CONN_OUT_BYTES;
        if reading {
            want |= EPOLLIN | EPOLLRDHUP;
        }
        if conn.out_pending() > 0 {
            want |= EPOLLOUT;
        }
        if want != conn.interest {
            conn.interest = want;
            let fd = conn.stream.as_raw_fd();
            self.poller.modify(fd, token, want).ok();
        }
    }

    /// Tears the connection down once it is closing and fully settled.
    fn maybe_close(&mut self, token: u64) {
        let done = self
            .conns
            .get(&token)
            .is_some_and(|c| c.closing && c.in_flight == 0 && c.out_pending() == 0);
        if done {
            self.drop_conn(token);
        }
    }

    fn drop_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            // Whatever was buffered for this peer will never be written;
            // without this release an abnormal close (reset, write error,
            // deadline kill) would pin its bytes in the gauge forever.
            self.release_pending(conn.out_pending());
            // Dropping the stream closes the fd, which deregisters it from
            // the poller implicitly.
            self.state.metrics.connection_closed();
        }
    }

    fn enforce_deadlines(&mut self, now: Instant) {
        if let Some(limit) = self.write_timeout {
            let stalled: Vec<u64> = self
                .conns
                .iter()
                .filter(|(_, c)| {
                    c.stalled_since
                        .is_some_and(|s| now.duration_since(s) >= limit)
                })
                .map(|(&t, _)| t)
                .collect();
            for token in stalled {
                // The peer stopped reading; nothing useful can be written.
                self.state.metrics.record_timeout();
                self.drop_conn(token);
            }
        }
        if let Some(limit) = self.idle_timeout {
            let idle: Vec<u64> = self
                .conns
                .iter()
                .filter(|(_, c)| c.idle_eligible() && now.duration_since(c.last_activity) >= limit)
                .map(|(&t, _)| t)
                .collect();
            for token in idle {
                self.state.metrics.record_timeout();
                let message = "idle timeout: no complete request within the read deadline";
                let response = error_response(None, message).render();
                self.enqueue_response(token, response);
                trace_request(&self.state, None, false, false, 0, Some(message));
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.read_closed = true;
                    conn.closing = true;
                }
                self.try_write(token);
            }
        }
    }

    /// Stops accepting and reading; the loop exits once every accepted
    /// request has been answered and every response written.
    fn begin_drain(&mut self) {
        if self.draining {
            return;
        }
        self.draining = true;
        self.state.shutdown.store(true, Ordering::SeqCst);
        self.poller.deregister(self.listener.as_raw_fd()).ok();
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.read_closed = true;
                conn.closing = true;
            }
            self.update_interest(token);
            self.maybe_close(token);
        }
    }

    fn publish_gauges(&self) {
        self.state
            .metrics
            .set_registered_fds(self.conns.len() as u64);
        self.state
            .metrics
            .set_pending_write_bytes(self.pending_out_total as u64);
    }
}

/// Splits freshly read bytes into line events, enforcing the line limit
/// *while the bytes stream in* — an overflowing line is discarded as it
/// arrives, exactly like the blocking reader.
fn feed_lines(conn: &mut Conn, data: &[u8], max: usize, events: &mut Vec<LineEvent>) {
    let mut rest = data;
    while let Some(pos) = rest.iter().position(|&b| b == b'\n') {
        let chunk = &rest[..pos];
        rest = &rest[pos + 1..];
        accumulate(conn, chunk, max);
        let bytes = conn.line_len;
        let line = std::mem::take(&mut conn.line);
        let overflowed = std::mem::take(&mut conn.overflowed);
        conn.line_len = 0;
        events.push(complete_line(line, bytes, overflowed));
    }
    accumulate(conn, rest, max);
}

fn accumulate(conn: &mut Conn, chunk: &[u8], max: usize) {
    conn.line_len += chunk.len();
    if conn.overflowed {
        return;
    }
    if conn.line_len <= max {
        conn.line.extend_from_slice(chunk);
    } else {
        conn.overflowed = true;
        conn.line = Vec::new(); // free what was gathered so far
    }
}

fn complete_line(line: Vec<u8>, bytes: usize, overflowed: bool) -> LineEvent {
    if overflowed {
        LineEvent::TooLong { bytes }
    } else {
        match String::from_utf8(line) {
            Ok(line) => LineEvent::Line(line),
            Err(_) => LineEvent::InvalidUtf8 { bytes },
        }
    }
}

/// Writes one structured error line to a connection being turned away —
/// best effort on a nonblocking socket (one small write into a fresh
/// socket buffer; a peer that cannot take even that gets a bare close).
fn refuse_nonblocking(mut stream: TcpStream) {
    let response = error_response(
        None,
        "server overloaded: connection limit reached, retry later",
    )
    .render();
    let _ = stream.write_all(format!("{response}\n").as_bytes());
}
