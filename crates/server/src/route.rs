//! The `sealpaa route` gateway (Linux): one process that fronts N backend
//! daemons and makes them look like a single, larger one.
//!
//! The router owns no analysis engines and no result cache. Its one job is
//! placement: every request is canonicalized exactly like the daemon would
//! ([`cache_key`](crate::canonical::cache_key)), and the canonical key is
//! **consistent-hashed** onto a ring of healthy backends. Equivalent
//! requests from *any* client therefore always land on the same backend —
//! each backend's LRU holds a disjoint shard of the key space, and the
//! fleet's aggregate cache capacity scales with the backend count instead
//! of duplicating the same hot entries N times. Keyless requests (inline
//! profile traces) carry no reusable result and are spread round-robin.
//!
//! The connection layer reuses the event-loop design (`epoll` readiness via
//! the `sys` module, bounded line assembly, per-connection output buffers)
//! and the daemon's pipelining contract: each backend link carries at most
//! 128 in-flight requests, exactly like a direct pipelined client; excess
//! forwards queue at the router. Client `id`s are rewritten to router-
//! internal sequence numbers on the way up and restored on the way down, so
//! many clients multiplex onto one link without id collisions.
//!
//! `batch` envelopes are fanned out: items are grouped by their target
//! backend, each group is forwarded as a sub-batch (items verbatim, so
//! per-item ids and per-item error isolation are preserved), and the
//! replies are reassembled into the single response envelope the client
//! expects — same shape, same per-item ordering, aggregate `computed`
//! count, and `cached` only if every backend answered from cache.
//!
//! Health is active: every `health_interval_ms` the router probes each
//! connected backend with a `stats` request and reconnects lost ones. A
//! backend that dies (connection error, EOF, or an unanswered probe) is
//! removed from the ring; its in-flight requests are answered with
//! structured errors (never silently dropped), and subsequent traffic
//! re-routes to the survivors. With no healthy backend at all the router
//! sheds: a structured error per request, the connection stays up.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::io::{self, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

use crate::canonical::cache_key;
use crate::json::Json;
use crate::protocol::{
    body_from_doc, error_response, ok_response, render_batch_ok_response, BatchBody, RequestBody,
    MAX_LINE_BYTES,
};
use crate::sys::{Poller, EPOLLIN, EPOLLOUT, EPOLLRDHUP};

/// Registration token for the listen socket.
const TOKEN_LISTENER: u64 = u64::MAX;
/// Backend `i` is registered under `BACKEND_TOKEN_BASE - i`; client tokens
/// count up from 0 and can never collide.
const BACKEND_TOKEN_BASE: u64 = u64::MAX - 1;

/// Per-backend-link in-flight cap — the daemon's pipelining contract.
const MAX_PIPELINE: usize = 128;
/// Pending-output cap per client; past it the client's read interest is
/// paused until it drains its responses.
const MAX_CONN_OUT_BYTES: usize = 4 << 20;
/// Virtual ring points per backend: enough that removing one backend moves
/// only ~1/N of the key space and that per-backend shares stay close to
/// uniform (share variance shrinks with the point count).
const RING_POINTS: u64 = 128;
/// Bound on one backend *response* line. Responses (especially batch
/// responses) are legitimately larger than request lines, but a response
/// beyond this is a protocol failure, not data.
const MAX_BACKEND_LINE_BYTES: usize = 64 << 20;
/// Blocking connect budget per reconnect attempt (the health tick pays it,
/// never the per-request path).
const CONNECT_TIMEOUT: Duration = Duration::from_millis(200);

/// Gateway configuration; [`Default`] gives sensible local settings (but no
/// backends — those are always explicit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteConfig {
    /// Listen address, e.g. `127.0.0.1:4527`. Port 0 picks an ephemeral
    /// port (query it via [`Router::local_addr`]).
    pub addr: String,
    /// Backend daemon addresses (`host:port`), the shard set.
    pub backends: Vec<String>,
    /// Maximum concurrently served client connections; beyond it new
    /// connections are shed with a structured error (0 disables the cap).
    pub max_connections: usize,
    /// Maximum client request-line length in bytes, enforced while reading.
    pub max_line_bytes: usize,
    /// Write deadline in milliseconds: a client that stops reading its
    /// responses for this long is disconnected (0 disables).
    pub write_timeout_ms: u64,
    /// Health-check cadence in milliseconds: how often each backend is
    /// probed and lost backends are re-dialed.
    pub health_interval_ms: u64,
}

impl Default for RouteConfig {
    fn default() -> RouteConfig {
        RouteConfig {
            addr: "127.0.0.1:4527".to_owned(),
            backends: Vec::new(),
            max_connections: 256,
            max_line_bytes: MAX_LINE_BYTES,
            write_timeout_ms: 60_000,
            health_interval_ms: 2_000,
        }
    }
}

/// A bound-but-not-yet-running router.
#[derive(Debug)]
pub struct Router {
    listener: TcpListener,
    local_addr: SocketAddr,
    config: RouteConfig,
}

impl Router {
    /// Binds the listen socket. Backends are dialed by [`Router::run`];
    /// binding succeeds even while every backend is down.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the address cannot be bound, or
    /// an [`ErrorKind::InvalidInput`] error when no backends are configured.
    pub fn bind(config: RouteConfig) -> io::Result<Router> {
        if config.backends.is_empty() {
            return Err(io::Error::new(
                ErrorKind::InvalidInput,
                "a router needs at least one backend address",
            ));
        }
        let addr = config
            .addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::other(format!("unresolvable address {}", config.addr)))?;
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        Ok(Router {
            listener,
            local_addr,
            config,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Serves until a `shutdown` request arrives, then drains in-flight
    /// requests and returns. Backend daemons are *not* shut down.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the event loop itself fails
    /// (per-connection and per-backend errors only affect that peer).
    pub fn run(self) -> io::Result<()> {
        RouteLoop::new(self)?.serve()
    }
}

/// Line assembly with an in-stream length bound — the router's copy of the
/// daemon's bounded reader (overflowing lines are discarded as they arrive).
#[derive(Default)]
struct LineBuf {
    line: Vec<u8>,
    len: usize,
    overflowed: bool,
}

enum RawLine {
    Line(String),
    TooLong { bytes: usize },
    InvalidUtf8,
}

impl LineBuf {
    fn feed(&mut self, data: &[u8], max: usize, out: &mut Vec<RawLine>) {
        let mut rest = data;
        while let Some(pos) = rest.iter().position(|&b| b == b'\n') {
            let chunk = &rest[..pos];
            rest = &rest[pos + 1..];
            self.accumulate(chunk, max);
            out.push(self.complete());
        }
        self.accumulate(rest, max);
    }

    fn accumulate(&mut self, chunk: &[u8], max: usize) {
        self.len += chunk.len();
        if self.overflowed {
            return;
        }
        if self.len <= max {
            self.line.extend_from_slice(chunk);
        } else {
            self.overflowed = true;
            self.line = Vec::new();
        }
    }

    fn complete(&mut self) -> RawLine {
        let bytes = std::mem::take(&mut self.len);
        let line = std::mem::take(&mut self.line);
        if std::mem::take(&mut self.overflowed) {
            RawLine::TooLong { bytes }
        } else {
            match String::from_utf8(line) {
                Ok(line) => RawLine::Line(line),
                Err(_) => RawLine::InvalidUtf8,
            }
        }
    }
}

/// Per-client connection state (mirrors the daemon's event-loop `Conn`).
struct Client {
    stream: TcpStream,
    buf: LineBuf,
    out: Vec<u8>,
    out_pos: usize,
    /// Requests forwarded upstream whose responses have not been enqueued.
    in_flight: usize,
    stalled_since: Option<Instant>,
    interest: u32,
    read_closed: bool,
    closing: bool,
}

impl Client {
    fn new(stream: TcpStream) -> Client {
        Client {
            stream,
            buf: LineBuf::default(),
            out: Vec::new(),
            out_pos: 0,
            in_flight: 0,
            stalled_since: None,
            interest: EPOLLIN | EPOLLRDHUP,
            read_closed: false,
            closing: false,
        }
    }

    fn out_pending(&self) -> usize {
        self.out.len() - self.out_pos
    }
}

/// One pipelined connection to a backend daemon.
struct Link {
    stream: TcpStream,
    buf: LineBuf,
    out: Vec<u8>,
    out_pos: usize,
    /// Requests written (or being written) whose responses are outstanding.
    in_flight: usize,
    /// Rendered request lines waiting for an in-flight slot.
    wait: VecDeque<String>,
    interest: u32,
}

impl Link {
    fn new(stream: TcpStream) -> Link {
        Link {
            stream,
            buf: LineBuf::default(),
            out: Vec::new(),
            out_pos: 0,
            in_flight: 0,
            wait: VecDeque::new(),
            interest: EPOLLIN | EPOLLRDHUP,
        }
    }
}

/// One configured backend: its address is permanent, its link comes and
/// goes with its health.
struct Backend {
    addr: String,
    link: Option<Link>,
    /// Requests ever handed to this backend (a placement gauge).
    forwarded: u64,
    /// The last health probe has not been answered yet; a second unanswered
    /// tick declares the backend dead.
    probe_outstanding: bool,
}

/// What a backend response settles, looked up by the router-internal id.
enum Pending {
    /// One forwarded single request.
    Single {
        client: u64,
        original_id: Option<Json>,
        backend: usize,
    },
    /// One sub-batch of a fanned-out client batch.
    BatchPart {
        batch: u64,
        group: usize,
        backend: usize,
    },
    /// A health probe; the response is discarded.
    Probe { backend: usize },
}

impl Pending {
    fn backend(&self) -> usize {
        match self {
            Pending::Single { backend, .. }
            | Pending::BatchPart { backend, .. }
            | Pending::Probe { backend } => *backend,
        }
    }
}

/// The item positions (and original ids, for loss errors) of one sub-batch.
struct GroupSlots {
    positions: Vec<(usize, Option<Json>)>,
}

/// A client batch mid-reassembly.
struct BatchState {
    client: u64,
    original_id: Option<Json>,
    started: Instant,
    count: u64,
    computed: u64,
    all_cached: bool,
    /// Rendered sub-responses by original item position.
    slots: Vec<Option<String>>,
    groups: Vec<GroupSlots>,
    outstanding: usize,
}

struct RouteLoop {
    poller: Poller,
    listener: TcpListener,
    clients: HashMap<u64, Client>,
    next_client: u64,
    backends: Vec<Backend>,
    /// The consistent-hash ring over healthy backends, sorted by point.
    ring: Vec<(u64, usize)>,
    /// Round-robin cursor for keyless requests.
    rr: usize,
    pending: HashMap<u64, Pending>,
    next_request: u64,
    batches: HashMap<u64, BatchState>,
    next_batch: u64,
    max_connections: usize,
    max_line_bytes: usize,
    write_timeout: Option<Duration>,
    health_interval: Duration,
    last_health: Instant,
    draining: bool,
    requests: u64,
    errors: u64,
    shed: u64,
    scratch: Vec<u8>,
}

impl RouteLoop {
    fn new(router: Router) -> io::Result<RouteLoop> {
        let Router {
            listener, config, ..
        } = router;
        listener.set_nonblocking(true)?;
        let poller = Poller::new()?;
        poller.register(listener.as_raw_fd(), TOKEN_LISTENER, EPOLLIN)?;
        let backends = config
            .backends
            .iter()
            .map(|addr| Backend {
                addr: addr.clone(),
                link: None,
                forwarded: 0,
                probe_outstanding: false,
            })
            .collect();
        let mut this = RouteLoop {
            poller,
            listener,
            clients: HashMap::new(),
            next_client: 0,
            backends,
            ring: Vec::new(),
            rr: 0,
            pending: HashMap::new(),
            next_request: 0,
            batches: HashMap::new(),
            next_batch: 0,
            max_connections: config.max_connections,
            max_line_bytes: config.max_line_bytes.max(1),
            write_timeout: (config.write_timeout_ms > 0)
                .then(|| Duration::from_millis(config.write_timeout_ms)),
            health_interval: Duration::from_millis(config.health_interval_ms.max(1)),
            last_health: Instant::now(),
            draining: false,
            requests: 0,
            errors: 0,
            shed: 0,
            scratch: vec![0u8; 64 * 1024],
        };
        // Dial every backend once up front so the first request after bind
        // has a ring to land on.
        for i in 0..this.backends.len() {
            this.try_connect(i);
        }
        Ok(this)
    }

    fn serve(&mut self) -> io::Result<()> {
        let mut ready = Vec::new();
        loop {
            let timeout = self.poll_timeout_ms(Instant::now());
            self.poller.wait(&mut ready, Some(timeout))?;
            for r in std::mem::take(&mut ready) {
                match r.token {
                    TOKEN_LISTENER => self.accept_all(),
                    token if backend_index(token, self.backends.len()).is_some() => {
                        let i = backend_index(token, self.backends.len()).expect("checked");
                        if r.readable() {
                            self.backend_readable(i);
                        }
                        if r.writable() {
                            self.try_write_backend(i);
                        }
                    }
                    token => {
                        if r.readable() {
                            self.client_readable(token);
                        }
                        if r.writable() && self.clients.contains_key(&token) {
                            self.try_write_client(token);
                        }
                    }
                }
            }
            let now = Instant::now();
            if now.duration_since(self.last_health) >= self.health_interval {
                self.last_health = now;
                self.health_tick();
            }
            self.enforce_write_deadlines(now);
            if self.draining && self.settled() {
                return Ok(());
            }
        }
    }

    /// Draining is finished once every client is gone and nothing but
    /// health probes is outstanding.
    fn settled(&self) -> bool {
        self.clients.is_empty()
            && self.batches.is_empty()
            && self
                .pending
                .values()
                .all(|p| matches!(p, Pending::Probe { .. }))
    }

    fn poll_timeout_ms(&self, now: Instant) -> i32 {
        let mut next = self
            .health_interval
            .saturating_sub(now.duration_since(self.last_health));
        if let Some(limit) = self.write_timeout {
            for client in self.clients.values() {
                if let Some(since) = client.stalled_since {
                    let due = limit.saturating_sub(now.duration_since(since));
                    next = next.min(due);
                }
            }
        }
        // +1ms so sweeps run *after* their deadline, not a hair before.
        next.as_millis().min(i32::MAX as u128 - 1) as i32 + 1
    }

    // ---- clients -------------------------------------------------------

    fn accept_all(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => self.admit(stream),
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn admit(&mut self, stream: TcpStream) {
        if self.draining || stream.set_nonblocking(true).is_err() {
            return;
        }
        if self.max_connections > 0 && self.clients.len() >= self.max_connections {
            self.shed += 1;
            refuse(stream);
            return;
        }
        stream.set_nodelay(true).ok();
        let token = self.next_client;
        self.next_client += 1;
        let client = Client::new(stream);
        if self
            .poller
            .register(client.stream.as_raw_fd(), token, client.interest)
            .is_err()
        {
            return;
        }
        self.clients.insert(token, client);
    }

    fn client_readable(&mut self, token: u64) {
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut lines: Vec<RawLine> = Vec::new();
        let mut eof = false;
        let mut dead = false;
        {
            let Some(client) = self.clients.get_mut(&token) else {
                self.scratch = scratch;
                return;
            };
            // One read per readiness event: level-triggered epoll reports
            // the fd again if more is pending, keeping clients fair.
            loop {
                match client.stream.read(&mut scratch) {
                    Ok(0) => {
                        eof = true;
                        break;
                    }
                    Ok(n) => {
                        client
                            .buf
                            .feed(&scratch[..n], self.max_line_bytes, &mut lines);
                        break;
                    }
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            if eof {
                if client.buf.len > 0 || client.buf.overflowed {
                    lines.push(client.buf.complete());
                }
                client.read_closed = true;
                client.closing = true;
            }
        }
        self.scratch = scratch;
        if dead {
            self.drop_client(token);
            return;
        }
        for line in lines {
            if !self.clients.contains_key(&token) || !self.handle_client_line(token, line) {
                break;
            }
        }
        self.try_write_client(token);
    }

    /// Reacts to one client input event; returns `false` once the
    /// connection should stop consuming buffered input.
    fn handle_client_line(&mut self, token: u64, line: RawLine) -> bool {
        match line {
            RawLine::TooLong { bytes } => {
                self.errors += 1;
                let message = format!(
                    "request of {bytes} bytes exceeds the {} byte line limit",
                    self.max_line_bytes
                );
                let response = error_response(None, &message).render();
                self.enqueue_client(token, response);
                true
            }
            RawLine::InvalidUtf8 => {
                self.errors += 1;
                let response = error_response(None, "request line is not valid UTF-8").render();
                self.enqueue_client(token, response);
                if let Some(client) = self.clients.get_mut(&token) {
                    client.read_closed = true;
                    client.closing = true;
                }
                false
            }
            RawLine::Line(line) => {
                if line.trim().is_empty() {
                    return true;
                }
                self.handle_request(token, &line)
            }
        }
    }

    /// Triage of one request line — the router's counterpart of the
    /// daemon's `classify_line`, minus everything that computes.
    fn handle_request(&mut self, token: u64, line: &str) -> bool {
        let started = Instant::now();
        let fail = |this: &mut RouteLoop, id: Option<&Json>, message: &str| {
            this.errors += 1;
            let response = error_response(id, message).render();
            this.enqueue_client(token, response);
        };
        let doc = match Json::parse(line) {
            Ok(doc) => doc,
            Err(e) => {
                fail(self, None, &e.to_string());
                return true;
            }
        };
        if !matches!(doc, Json::Object(_)) {
            let id = doc.get("id").cloned();
            fail(self, id.as_ref(), "a request must be a JSON object");
            return true;
        }
        let id = doc.get("id").cloned();
        let body = match body_from_doc(&doc) {
            Ok(body) => body,
            Err(message) => {
                fail(self, id.as_ref(), &message);
                return true;
            }
        };
        match body {
            RequestBody::Stats => {
                self.requests += 1;
                let result = self.stats_result();
                let micros = started.elapsed().as_micros() as u64;
                let response = ok_response(id.as_ref(), "stats", false, micros, result).render();
                self.enqueue_client(token, response);
                true
            }
            RequestBody::Shutdown => {
                self.requests += 1;
                let micros = started.elapsed().as_micros() as u64;
                let result = Json::object().field("stopping", true).build();
                let response = ok_response(id.as_ref(), "shutdown", false, micros, result).render();
                self.enqueue_client(token, response);
                self.begin_drain();
                false
            }
            RequestBody::Batch(spec) => {
                self.forward_batch(token, &doc, id, &spec, started);
                true
            }
            body => {
                let key = cache_key(&body);
                let Some(backend) = self.place(key.as_deref()) else {
                    self.shed += 1;
                    fail(
                        self,
                        id.as_ref(),
                        "no healthy backend available, retry later",
                    );
                    return true;
                };
                self.forward_single(token, backend, doc, id);
                true
            }
        }
    }

    /// The backend for one request: consistent hash of its canonical key,
    /// or round-robin over healthy backends for uncacheable requests.
    fn place(&mut self, key: Option<&str>) -> Option<usize> {
        match key {
            Some(key) => route_on(&self.ring, key),
            None => {
                let healthy: Vec<usize> = (0..self.backends.len())
                    .filter(|&i| self.backends[i].link.is_some())
                    .collect();
                if healthy.is_empty() {
                    return None;
                }
                self.rr = self.rr.wrapping_add(1);
                Some(healthy[self.rr % healthy.len()])
            }
        }
    }

    fn forward_single(&mut self, token: u64, backend: usize, mut doc: Json, id: Option<Json>) {
        let internal = self.next_request;
        self.next_request += 1;
        set_internal_id(&mut doc, internal);
        self.pending.insert(
            internal,
            Pending::Single {
                client: token,
                original_id: id,
                backend,
            },
        );
        if let Some(client) = self.clients.get_mut(&token) {
            client.in_flight += 1;
        }
        self.requests += 1;
        self.send_to_backend(backend, doc.render());
    }

    /// Fans one client batch out to its target backends as per-backend
    /// sub-batches, preserving the items (and their ids) verbatim so each
    /// daemon's per-item error isolation carries through unchanged.
    fn forward_batch(
        &mut self,
        token: u64,
        doc: &Json,
        id: Option<Json>,
        spec: &crate::protocol::BatchSpec,
        started: Instant,
    ) {
        self.requests += 1;
        let raw_items = doc
            .get("requests")
            .and_then(Json::as_array)
            .map(<[Json]>::to_vec)
            .unwrap_or_default();
        // `body_from_doc` accepted the envelope, so the raw array and the
        // parsed items are index-aligned.
        debug_assert_eq!(raw_items.len(), spec.items.len());
        let count = spec.items.len() as u64;
        if spec.items.is_empty() {
            // Mirror an empty batch on the daemon: nothing computed,
            // trivially all-cached.
            let micros = started.elapsed().as_micros() as u64;
            let response = render_batch_ok_response(id.as_ref(), true, micros, 0, 0, "");
            self.enqueue_client(token, response);
            return;
        }
        // Place every item. Invalid items are forwarded too — the daemon
        // answers them with the per-item structured error, so the router
        // never has to re-implement (or risk diverging from) its messages.
        let mut placements: Vec<usize> = Vec::with_capacity(spec.items.len());
        for (i, item) in spec.items.iter().enumerate() {
            let placed = match &item.body {
                BatchBody::Parsed(Ok(body)) => self.place(cache_key(body).as_deref()),
                BatchBody::Parsed(Err(_)) => self.place(None),
                // A duplicate resolves like its original, keeping the pair
                // on one backend (where the daemon dedups it again).
                BatchBody::DuplicateOf(j) => placements.get(*j).copied(),
            };
            let Some(backend) = placed else {
                self.shed += 1;
                self.errors += 1;
                let response =
                    error_response(id.as_ref(), "no healthy backend available, retry later")
                        .render();
                self.enqueue_client(token, response);
                return;
            };
            placements.push(backend);
            let _ = i;
        }
        // Group item positions by backend, preserving item order per group.
        let mut by_backend: HashMap<usize, Vec<usize>> = HashMap::new();
        let mut order: Vec<usize> = Vec::new();
        for (pos, &backend) in placements.iter().enumerate() {
            let group = by_backend.entry(backend).or_insert_with(|| {
                order.push(backend);
                Vec::new()
            });
            group.push(pos);
        }
        let bid = self.next_batch;
        self.next_batch += 1;
        let mut state = BatchState {
            client: token,
            original_id: id,
            started,
            count,
            computed: 0,
            all_cached: true,
            slots: (0..spec.items.len()).map(|_| None).collect(),
            groups: Vec::with_capacity(order.len()),
            outstanding: order.len(),
        };
        if let Some(client) = self.clients.get_mut(&token) {
            client.in_flight += 1;
        }
        let mut sends: Vec<(usize, String)> = Vec::with_capacity(order.len());
        for backend in order {
            let positions = &by_backend[&backend];
            let internal = self.next_request;
            self.next_request += 1;
            let group_index = state.groups.len();
            state.groups.push(GroupSlots {
                positions: positions
                    .iter()
                    .map(|&p| (p, spec.items[p].id.clone()))
                    .collect(),
            });
            self.pending.insert(
                internal,
                Pending::BatchPart {
                    batch: bid,
                    group: group_index,
                    backend,
                },
            );
            let sub = Json::object()
                .field("kind", "batch")
                .field("id", internal)
                .field(
                    "requests",
                    positions
                        .iter()
                        .map(|&p| raw_items[p].clone())
                        .collect::<Vec<_>>(),
                )
                .build();
            sends.push((backend, sub.render()));
        }
        self.batches.insert(bid, state);
        for (backend, line) in sends {
            self.send_to_backend(backend, line);
        }
    }

    // ---- backends ------------------------------------------------------

    fn try_connect(&mut self, i: usize) {
        if self.backends[i].link.is_some() {
            return;
        }
        let Some(addr) = self.backends[i]
            .addr
            .to_socket_addrs()
            .ok()
            .and_then(|mut a| a.next())
        else {
            return;
        };
        let Ok(stream) = TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT) else {
            return;
        };
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        stream.set_nodelay(true).ok();
        let link = Link::new(stream);
        if self
            .poller
            .register(link.stream.as_raw_fd(), backend_token(i), link.interest)
            .is_err()
        {
            return;
        }
        self.backends[i].link = Some(link);
        self.backends[i].probe_outstanding = false;
        self.rebuild_ring();
    }

    fn rebuild_ring(&mut self) {
        self.ring.clear();
        for (i, backend) in self.backends.iter().enumerate() {
            if backend.link.is_none() {
                continue;
            }
            for point in 0..RING_POINTS {
                self.ring.push((hash64(&(&backend.addr, point)), i));
            }
        }
        self.ring.sort_unstable();
    }

    /// Queues one rendered request line on a backend link, respecting the
    /// 128-in-flight pipelining contract (excess lines wait at the router).
    fn send_to_backend(&mut self, i: usize, line: String) {
        self.backends[i].forwarded += 1;
        let Some(link) = self.backends[i].link.as_mut() else {
            // Raced with a drop; the pending sweep has already answered (or
            // will answer) this request's owner.
            return;
        };
        if link.in_flight < MAX_PIPELINE {
            link.in_flight += 1;
            link.out.extend_from_slice(line.as_bytes());
            link.out.push(b'\n');
        } else {
            link.wait.push_back(line);
        }
        self.try_write_backend(i);
    }

    fn backend_readable(&mut self, i: usize) {
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut lines: Vec<RawLine> = Vec::new();
        let mut dead = false;
        {
            let Some(link) = self.backends[i].link.as_mut() else {
                self.scratch = scratch;
                return;
            };
            // Drain the socket fully: backends are few and every buffered
            // response line maps to a waiting client.
            loop {
                match link.stream.read(&mut scratch) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => link
                        .buf
                        .feed(&scratch[..n], MAX_BACKEND_LINE_BYTES, &mut lines),
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
        }
        self.scratch = scratch;
        for line in lines {
            match line {
                RawLine::Line(line) => {
                    if !self.handle_backend_response(i, &line) {
                        dead = true;
                        break;
                    }
                }
                // A backend speaking garbage is as gone as a dead one.
                RawLine::TooLong { .. } | RawLine::InvalidUtf8 => {
                    dead = true;
                    break;
                }
            }
        }
        if dead {
            self.drop_backend(i);
        } else {
            self.pump_backend(i);
        }
    }

    /// Settles one backend response line. Returns `false` when the line is
    /// a protocol violation and the backend must be dropped.
    fn handle_backend_response(&mut self, i: usize, line: &str) -> bool {
        let Ok(mut doc) = Json::parse(line) else {
            return false;
        };
        let Some(internal) = doc.get("id").and_then(Json::as_u64) else {
            // A response the router never asked for (e.g. the daemon's
            // id-less idle-timeout notice as it closes the link).
            return false;
        };
        let Some(pending) = self.pending.remove(&internal) else {
            // Stale: its owner was already answered by a loss sweep.
            return true;
        };
        if let Some(link) = self.backends[i].link.as_mut() {
            link.in_flight = link.in_flight.saturating_sub(1);
        }
        match pending {
            Pending::Probe { .. } => {
                self.backends[i].probe_outstanding = false;
            }
            Pending::Single {
                client,
                original_id,
                ..
            } => {
                restore_id(&mut doc, original_id);
                let response = doc.render();
                if let Some(c) = self.clients.get_mut(&client) {
                    c.in_flight = c.in_flight.saturating_sub(1);
                }
                self.enqueue_client(client, response);
                self.try_write_client(client);
            }
            Pending::BatchPart { batch, group, .. } => {
                self.settle_batch_part(batch, group, &doc);
            }
        }
        true
    }

    /// Folds one sub-batch response into its batch, completing the batch
    /// when it was the last outstanding group.
    fn settle_batch_part(&mut self, bid: u64, group: usize, doc: &Json) {
        let Some(state) = self.batches.get_mut(&bid) else {
            return;
        };
        let positions = std::mem::take(&mut state.groups[group].positions);
        if doc.get("ok").and_then(Json::as_bool) == Some(true) {
            let results = doc
                .get("result")
                .and_then(|r| r.get("results"))
                .and_then(Json::as_array)
                .unwrap_or(&[]);
            for (slot, (pos, id)) in positions.iter().enumerate() {
                state.slots[*pos] = Some(match results.get(slot) {
                    Some(sub) => sub.render(),
                    // A short results array is a backend bug; the item
                    // still gets a structured answer.
                    None => {
                        state.all_cached = false;
                        error_response(id.as_ref(), "backend returned a short batch").render()
                    }
                });
            }
            state.computed += doc
                .get("result")
                .and_then(|r| r.get("computed"))
                .and_then(Json::as_u64)
                .unwrap_or(0);
            if doc.get("cached").and_then(Json::as_bool) != Some(true) {
                state.all_cached = false;
            }
        } else {
            // The whole sub-batch failed (e.g. the backend was draining):
            // every item of this group fails with its message, the other
            // groups are unaffected.
            let message = doc
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("backend error")
                .to_owned();
            state.all_cached = false;
            for (pos, id) in &positions {
                state.slots[*pos] = Some(error_response(id.as_ref(), &message).render());
            }
        }
        state.outstanding -= 1;
        if state.outstanding == 0 {
            self.complete_batch(bid);
        }
    }

    fn complete_batch(&mut self, bid: u64) {
        let Some(state) = self.batches.remove(&bid) else {
            return;
        };
        let mut subs = String::new();
        for (pos, slot) in state.slots.into_iter().enumerate() {
            if pos > 0 {
                subs.push(',');
            }
            match slot {
                Some(rendered) => subs.push_str(&rendered),
                None => {
                    subs.push_str(&error_response(None, "backend returned a short batch").render())
                }
            }
        }
        let micros = state.started.elapsed().as_micros() as u64;
        let response = render_batch_ok_response(
            state.original_id.as_ref(),
            state.all_cached,
            micros,
            state.count,
            state.computed,
            &subs,
        );
        if let Some(c) = self.clients.get_mut(&state.client) {
            c.in_flight = c.in_flight.saturating_sub(1);
        }
        self.enqueue_client(state.client, response);
        self.try_write_client(state.client);
    }

    /// Moves waiting lines into freed in-flight slots and flushes.
    fn pump_backend(&mut self, i: usize) {
        if let Some(link) = self.backends[i].link.as_mut() {
            while link.in_flight < MAX_PIPELINE {
                let Some(line) = link.wait.pop_front() else {
                    break;
                };
                link.in_flight += 1;
                link.out.extend_from_slice(line.as_bytes());
                link.out.push(b'\n');
            }
        }
        self.try_write_backend(i);
    }

    /// Tears a backend down: every request in flight on (or queued for) the
    /// link is answered with a structured error, the ring is rebuilt, and
    /// the next health tick re-dials.
    fn drop_backend(&mut self, i: usize) {
        if self.backends[i].link.take().is_none() {
            return;
        }
        self.backends[i].probe_outstanding = false;
        self.rebuild_ring();
        let message = format!("backend {} unavailable", self.backends[i].addr);
        let lost: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| p.backend() == i)
            .map(|(&id, _)| id)
            .collect();
        for id in lost {
            match self.pending.remove(&id) {
                Some(Pending::Single {
                    client,
                    original_id,
                    ..
                }) => {
                    self.errors += 1;
                    let response = error_response(original_id.as_ref(), &message).render();
                    if let Some(c) = self.clients.get_mut(&client) {
                        c.in_flight = c.in_flight.saturating_sub(1);
                    }
                    self.enqueue_client(client, response);
                    self.try_write_client(client);
                }
                Some(Pending::BatchPart { batch, group, .. }) => {
                    self.errors += 1;
                    if let Some(state) = self.batches.get_mut(&batch) {
                        let positions = std::mem::take(&mut state.groups[group].positions);
                        state.all_cached = false;
                        for (pos, item_id) in &positions {
                            state.slots[*pos] =
                                Some(error_response(item_id.as_ref(), &message).render());
                        }
                        state.outstanding -= 1;
                        if state.outstanding == 0 {
                            self.complete_batch(batch);
                        }
                    }
                }
                Some(Pending::Probe { .. }) | None => {}
            }
        }
    }

    fn health_tick(&mut self) {
        for i in 0..self.backends.len() {
            if self.backends[i].link.is_none() {
                self.try_connect(i);
                continue;
            }
            if self.backends[i].probe_outstanding {
                // The previous probe went unanswered for a whole interval:
                // the daemon answers `stats` inline, so silence means the
                // process (or the path to it) is gone.
                self.drop_backend(i);
                continue;
            }
            if self.draining {
                continue;
            }
            let internal = self.next_request;
            self.next_request += 1;
            self.pending.insert(internal, Pending::Probe { backend: i });
            self.backends[i].probe_outstanding = true;
            let probe = Json::object()
                .field("kind", "stats")
                .field("id", internal)
                .build();
            // Probes ride the normal pipeline, so they also verify that the
            // link is not wedged behind its in-flight window.
            let line = probe.render();
            self.backends[i].forwarded = self.backends[i].forwarded.saturating_sub(1); // probes are not placements
            self.send_to_backend(i, line);
        }
    }

    fn try_write_backend(&mut self, i: usize) {
        let mut dead = false;
        {
            let Some(link) = self.backends[i].link.as_mut() else {
                return;
            };
            while link.out_pos < link.out.len() {
                match link.stream.write(&link.out[link.out_pos..]) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => link.out_pos += n,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            if link.out_pos >= link.out.len() {
                link.out.clear();
                link.out_pos = 0;
            } else if link.out_pos > 4096 {
                link.out.drain(..link.out_pos);
                link.out_pos = 0;
            }
        }
        if dead {
            self.drop_backend(i);
            return;
        }
        let Some(link) = self.backends[i].link.as_mut() else {
            return;
        };
        let mut want = EPOLLIN | EPOLLRDHUP;
        if link.out.len() > link.out_pos {
            want |= EPOLLOUT;
        }
        if want != link.interest {
            link.interest = want;
            let fd = link.stream.as_raw_fd();
            self.poller.modify(fd, backend_token(i), want).ok();
        }
    }

    // ---- client output -------------------------------------------------

    fn enqueue_client(&mut self, token: u64, response: String) {
        let Some(client) = self.clients.get_mut(&token) else {
            return;
        };
        if client.out_pos == client.out.len() {
            client.out = response.into_bytes();
            client.out_pos = 0;
            client.out.push(b'\n');
        } else {
            client.out.extend_from_slice(response.as_bytes());
            client.out.push(b'\n');
        }
    }

    fn try_write_client(&mut self, token: u64) {
        let mut dead = false;
        {
            let Some(client) = self.clients.get_mut(&token) else {
                return;
            };
            while client.out_pos < client.out.len() {
                match client.stream.write(&client.out[client.out_pos..]) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => {
                        client.out_pos += n;
                        client.stalled_since = None;
                    }
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        if client.stalled_since.is_none() {
                            client.stalled_since = Some(Instant::now());
                        }
                        break;
                    }
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            if client.out_pos >= client.out.len() {
                client.out.clear();
                client.out_pos = 0;
                client.stalled_since = None;
            } else if client.out_pos > 4096 {
                client.out.drain(..client.out_pos);
                client.out_pos = 0;
            }
        }
        if dead {
            self.drop_client(token);
            return;
        }
        self.update_client_interest(token);
        self.maybe_close_client(token);
    }

    fn update_client_interest(&mut self, token: u64) {
        let Some(client) = self.clients.get_mut(&token) else {
            return;
        };
        let mut want = 0u32;
        let reading = !client.read_closed
            && !client.closing
            && client.in_flight < MAX_PIPELINE
            && client.out_pending() <= MAX_CONN_OUT_BYTES;
        if reading {
            want |= EPOLLIN | EPOLLRDHUP;
        }
        if client.out_pending() > 0 {
            want |= EPOLLOUT;
        }
        if want != client.interest {
            client.interest = want;
            let fd = client.stream.as_raw_fd();
            self.poller.modify(fd, token, want).ok();
        }
    }

    fn maybe_close_client(&mut self, token: u64) {
        let done = self
            .clients
            .get(&token)
            .is_some_and(|c| c.closing && c.in_flight == 0 && c.out_pending() == 0);
        if done {
            self.drop_client(token);
        }
    }

    fn drop_client(&mut self, token: u64) {
        // Responses still in flight for this client find no entry and are
        // discarded on arrival; batches complete and discard at enqueue.
        self.clients.remove(&token);
    }

    fn enforce_write_deadlines(&mut self, now: Instant) {
        let Some(limit) = self.write_timeout else {
            return;
        };
        let stalled: Vec<u64> = self
            .clients
            .iter()
            .filter(|(_, c)| {
                c.stalled_since
                    .is_some_and(|s| now.duration_since(s) >= limit)
            })
            .map(|(&t, _)| t)
            .collect();
        for token in stalled {
            self.drop_client(token);
        }
    }

    fn begin_drain(&mut self) {
        if self.draining {
            return;
        }
        self.draining = true;
        self.poller.deregister(self.listener.as_raw_fd()).ok();
        let tokens: Vec<u64> = self.clients.keys().copied().collect();
        for token in tokens {
            if let Some(client) = self.clients.get_mut(&token) {
                client.read_closed = true;
                client.closing = true;
            }
            self.update_client_interest(token);
            self.maybe_close_client(token);
        }
    }

    /// The router's own `stats` payload. The schema is the router's, not
    /// the daemon's: a gateway has placement gauges, not engine histograms.
    fn stats_result(&self) -> Json {
        let backends: Vec<Json> = self
            .backends
            .iter()
            .map(|b| {
                Json::object()
                    .field("addr", b.addr.as_str())
                    .field("healthy", b.link.is_some())
                    .field(
                        "in_flight",
                        b.link
                            .as_ref()
                            .map_or(0, |l| (l.in_flight + l.wait.len()) as u64),
                    )
                    .field("forwarded", b.forwarded)
                    .build()
            })
            .collect();
        Json::object()
            .field("role", "router")
            .field("requests", self.requests)
            .field("errors", self.errors)
            .field("shed", self.shed)
            .field("clients", self.clients.len() as u64)
            .field("backends", backends)
            .build()
    }
}

fn backend_token(i: usize) -> u64 {
    BACKEND_TOKEN_BASE - i as u64
}

fn backend_index(token: u64, count: usize) -> Option<usize> {
    let i = (BACKEND_TOKEN_BASE.checked_sub(token))? as usize;
    (i < count).then_some(i)
}

fn hash64<T: Hash>(value: &T) -> u64 {
    let mut hasher = DefaultHasher::new();
    value.hash(&mut hasher);
    hasher.finish()
}

/// The ring lookup: the first point clockwise from the key's hash, wrapping
/// at the top. `None` on an empty ring (no healthy backends).
fn route_on(ring: &[(u64, usize)], key: &str) -> Option<usize> {
    if ring.is_empty() {
        return None;
    }
    let h = hash64(&key);
    let idx = ring.partition_point(|&(point, _)| point < h);
    Some(ring[idx % ring.len()].1)
}

/// Rewrites (or adds) the request's `id` to the router-internal sequence
/// number, preserving every other field byte-for-byte on re-render.
fn set_internal_id(doc: &mut Json, internal: u64) {
    if let Json::Object(fields) = doc {
        let value = Json::from(internal);
        match fields.iter_mut().find(|(k, _)| k == "id") {
            Some(slot) => slot.1 = value,
            None => fields.push(("id".to_owned(), value)),
        }
    }
}

/// Puts the client's original `id` back into a backend response (or strips
/// the internal one when the client sent none), in place so the response's
/// field order is exactly what a direct daemon connection would produce.
fn restore_id(doc: &mut Json, original: Option<Json>) {
    if let Json::Object(fields) = doc {
        match original {
            Some(id) => {
                if let Some(slot) = fields.iter_mut().find(|(k, _)| k == "id") {
                    slot.1 = id;
                }
            }
            None => fields.retain(|(k, _)| k != "id"),
        }
    }
}

/// Best-effort structured refusal for a connection shed at the cap.
fn refuse(mut stream: TcpStream) {
    let response = error_response(
        None,
        "router overloaded: connection limit reached, retry later",
    )
    .render();
    let _ = stream.write_all(format!("{response}\n").as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_of(addrs: &[&str]) -> Vec<(u64, usize)> {
        let mut ring = Vec::new();
        for (i, addr) in addrs.iter().enumerate() {
            for point in 0..RING_POINTS {
                ring.push((hash64(&(addr, point)), i));
            }
        }
        ring.sort_unstable();
        ring
    }

    #[test]
    fn ring_routing_is_deterministic_and_covers_all_backends() {
        let ring = ring_of(&["a:1", "b:2", "c:3"]);
        let mut seen = [0usize; 3];
        for i in 0..512 {
            let key = format!("analyze|key-{i}");
            let first = route_on(&ring, &key).expect("non-empty ring");
            let second = route_on(&ring, &key).expect("non-empty ring");
            assert_eq!(first, second, "placement must be deterministic");
            seen[first] += 1;
        }
        for (i, &count) in seen.iter().enumerate() {
            assert!(count > 0, "backend {i} never selected");
        }
    }

    #[test]
    fn removing_a_backend_only_remaps_its_own_keys() {
        // The consistent-hashing property: keys that did not hash to the
        // removed backend keep their placement.
        let full = ring_of(&["a:1", "b:2", "c:3"]);
        let without_c: Vec<(u64, usize)> = {
            let mut ring = ring_of(&["a:1", "b:2"]);
            ring.sort_unstable();
            ring
        };
        let mut moved = 0;
        for i in 0..512 {
            let key = format!("analyze|key-{i}");
            let before = route_on(&full, &key).expect("full ring");
            let after = route_on(&without_c, &key).expect("reduced ring");
            if before != 2 {
                assert_eq!(before, after, "surviving placements must not move");
            } else {
                moved += 1;
            }
        }
        assert!(moved > 0, "some keys must have been on the removed backend");
    }

    #[test]
    fn empty_ring_routes_nowhere() {
        assert_eq!(route_on(&[], "anything"), None);
    }

    #[test]
    fn internal_id_rewrite_and_restore_round_trip() {
        let mut doc = Json::parse(r#"{"id":"client-7","kind":"analyze","width":4}"#).expect("doc");
        let original = doc.get("id").cloned();
        set_internal_id(&mut doc, 42);
        assert_eq!(doc.get("id").and_then(Json::as_u64), Some(42));
        restore_id(&mut doc, original);
        assert_eq!(doc.get("id").and_then(Json::as_str), Some("client-7"));
        // Field order survives the round trip.
        assert_eq!(
            doc.render(),
            r#"{"id":"client-7","kind":"analyze","width":4}"#
        );
    }

    #[test]
    fn idless_requests_get_an_internal_id_that_is_stripped_again() {
        let mut doc = Json::parse(r#"{"kind":"stats"}"#).expect("doc");
        set_internal_id(&mut doc, 9);
        assert_eq!(doc.get("id").and_then(Json::as_u64), Some(9));
        restore_id(&mut doc, None);
        assert!(doc.get("id").is_none());
        assert_eq!(doc.render(), r#"{"kind":"stats"}"#);
    }

    #[test]
    fn line_buf_enforces_the_limit_in_stream() {
        let mut buf = LineBuf::default();
        let mut out = Vec::new();
        let long = "y".repeat(64);
        buf.feed(format!("{long}\nok\n").as_bytes(), 16, &mut out);
        assert_eq!(out.len(), 2);
        assert!(matches!(out[0], RawLine::TooLong { bytes: 64 }));
        assert!(matches!(&out[1], RawLine::Line(l) if l == "ok"));
        assert!(buf.line.is_empty(), "overflow must not retain bytes");
    }

    #[test]
    fn bind_requires_backends() {
        let err = Router::bind(RouteConfig {
            addr: "127.0.0.1:0".to_owned(),
            ..RouteConfig::default()
        })
        .expect_err("no backends must not bind");
        assert_eq!(err.kind(), ErrorKind::InvalidInput);
    }
}
