//! Durable cache snapshots: the warm-restart format behind `--cache-snapshot`.
//!
//! A snapshot is the [`ResultCache`](crate::cache::ResultCache) export —
//! `(canonical key, rendered result)` pairs in least-recently-used-first
//! order — framed the same way as the `sealpaa-trace` binary format: a
//! magic/version header, length-prefixed records, and a trailing checksum.
//! Re-inserting the pairs in file order into an empty cache of the same
//! capacity reproduces both the cached answers and the per-shard eviction
//! order, so a restarted daemon picks up exactly where the old one left off.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic    4 bytes  b"SPCS"
//! version  1 byte   0x01
//! reserved 1 byte   0x00
//! count    u64      number of records
//! record   repeated count times:
//!   key_len   u32
//!   value_len u32
//!   key       key_len bytes of UTF-8
//!   value     value_len bytes of UTF-8
//! checksum u64      FNV-1a 64 over every record byte (not the header)
//! ```
//!
//! The reader is bounded and streaming: it enforces caller-supplied
//! [`SnapshotLimits`] before allocating, so a truncated, version-bumped, or
//! bit-flipped file — or a hostile one claiming billions of entries — is
//! rejected with a structured [`SnapshotError`] using O(record) memory, and
//! the daemon simply starts cold. Writes go to a sibling temp file which is
//! fsynced and atomically renamed into place, so a crash mid-write never
//! clobbers the previous good snapshot.

use std::fmt;
use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// File magic: **S**eal**P**aa **C**ache **S**napshot.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"SPCS";

/// Current format version.
pub const SNAPSHOT_VERSION: u8 = 1;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incrementally folds bytes into an FNV-1a 64 checksum.
#[derive(Clone, Copy)]
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Fnv1a {
        Fnv1a(FNV_OFFSET)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// Bounds enforced while reading a snapshot, before any allocation sized by
/// file contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotLimits {
    /// Maximum number of records accepted. The server passes its configured
    /// cache capacity: a snapshot larger than the cache could hold is either
    /// corrupt or from an incompatible configuration.
    pub max_entries: u64,
    /// Maximum size of a single key or value, in bytes.
    pub max_entry_bytes: u32,
}

impl Default for SnapshotLimits {
    fn default() -> SnapshotLimits {
        SnapshotLimits {
            max_entries: 1 << 20,
            max_entry_bytes: 4 << 20,
        }
    }
}

/// Why a snapshot file was rejected. Every variant leaves the caller free to
/// start cold; none of them is a panic.
#[derive(Debug)]
pub enum SnapshotError {
    /// An underlying I/O error (file missing, permission, short device...).
    Io(io::Error),
    /// The file does not start with [`SNAPSHOT_MAGIC`].
    BadMagic([u8; 4]),
    /// The version byte is not one this build understands.
    UnsupportedVersion(u8),
    /// The reserved header byte is nonzero.
    BadReserved(u8),
    /// The file ended before the declared records (and checksum) did.
    Truncated,
    /// The header declares more records than [`SnapshotLimits::max_entries`].
    TooManyEntries {
        /// Declared record count.
        declared: u64,
        /// The enforced bound.
        limit: u64,
    },
    /// A record declares a key or value larger than
    /// [`SnapshotLimits::max_entry_bytes`].
    EntryTooLarge {
        /// Declared length in bytes.
        declared: u32,
        /// The enforced bound.
        limit: u32,
    },
    /// The stored checksum does not match the record bytes.
    ChecksumMismatch {
        /// Checksum read from the file.
        stored: u64,
        /// Checksum computed over the records actually read.
        computed: u64,
    },
    /// Extra bytes follow the checksum.
    TrailingData,
    /// A key or value is not valid UTF-8.
    InvalidUtf8,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(err) => write!(f, "snapshot i/o error: {err}"),
            SnapshotError::BadMagic(magic) => {
                write!(f, "bad snapshot magic {magic:?} (expected \"SPCS\")")
            }
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (this build reads version {SNAPSHOT_VERSION})"
                )
            }
            SnapshotError::BadReserved(b) => {
                write!(f, "nonzero reserved header byte {b:#04x}")
            }
            SnapshotError::Truncated => write!(f, "snapshot file is truncated"),
            SnapshotError::TooManyEntries { declared, limit } => {
                write!(
                    f,
                    "snapshot declares {declared} entries, more than the limit of {limit}"
                )
            }
            SnapshotError::EntryTooLarge { declared, limit } => {
                write!(
                    f,
                    "snapshot entry of {declared} bytes exceeds the limit of {limit}"
                )
            }
            SnapshotError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "snapshot checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
                )
            }
            SnapshotError::TrailingData => {
                write!(f, "snapshot has trailing bytes after the checksum")
            }
            SnapshotError::InvalidUtf8 => write!(f, "snapshot entry is not valid UTF-8"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(err: io::Error) -> SnapshotError {
        if err.kind() == io::ErrorKind::UnexpectedEof {
            SnapshotError::Truncated
        } else {
            SnapshotError::Io(err)
        }
    }
}

/// Writes `entries` to `path` atomically: the bytes go to a sibling
/// `.tmp` file which is flushed, fsynced, and renamed over `path`, so
/// readers only ever observe the previous complete snapshot or the new one.
///
/// # Errors
///
/// Returns the underlying I/O error; the previous snapshot (if any) is left
/// untouched.
pub fn write_snapshot(path: &Path, entries: &[(String, String)]) -> io::Result<()> {
    let tmp = sibling_tmp_path(path);
    let result = (|| -> io::Result<()> {
        let file = File::create(&tmp)?;
        let mut writer = BufWriter::new(file);
        let mut checksum = Fnv1a::new();
        writer.write_all(&SNAPSHOT_MAGIC)?;
        writer.write_all(&[SNAPSHOT_VERSION, 0])?;
        writer.write_all(&(entries.len() as u64).to_le_bytes())?;
        for (key, value) in entries {
            let mut record = Vec::with_capacity(8 + key.len() + value.len());
            record.extend_from_slice(&(key.len() as u32).to_le_bytes());
            record.extend_from_slice(&(value.len() as u32).to_le_bytes());
            record.extend_from_slice(key.as_bytes());
            record.extend_from_slice(value.as_bytes());
            checksum.update(&record);
            writer.write_all(&record)?;
        }
        writer.write_all(&checksum.finish().to_le_bytes())?;
        let file = writer
            .into_inner()
            .map_err(std::io::IntoInnerError::into_error)?;
        file.sync_all()?;
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        // Best-effort cleanup; the error we report is the write failure.
        let _ = fs::remove_file(&tmp);
    }
    result
}

fn sibling_tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Reads a snapshot from `path`, enforcing `limits` before any
/// contents-sized allocation.
///
/// # Errors
///
/// Returns a [`SnapshotError`] describing the first problem found; partial
/// results are never returned.
pub fn read_snapshot(
    path: &Path,
    limits: SnapshotLimits,
) -> Result<Vec<(String, String)>, SnapshotError> {
    let file = File::open(path).map_err(SnapshotError::Io)?;
    let mut reader = BufReader::new(file);

    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if magic != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic(magic));
    }
    let mut head = [0u8; 2];
    reader.read_exact(&mut head)?;
    if head[0] != SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion(head[0]));
    }
    if head[1] != 0 {
        return Err(SnapshotError::BadReserved(head[1]));
    }
    let count = read_u64(&mut reader)?;
    if count > limits.max_entries {
        return Err(SnapshotError::TooManyEntries {
            declared: count,
            limit: limits.max_entries,
        });
    }

    let mut checksum = Fnv1a::new();
    let mut entries = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let mut lens = [0u8; 8];
        reader.read_exact(&mut lens)?;
        checksum.update(&lens);
        let key_len = u32::from_le_bytes(lens[0..4].try_into().expect("4 bytes"));
        let value_len = u32::from_le_bytes(lens[4..8].try_into().expect("4 bytes"));
        for len in [key_len, value_len] {
            if len > limits.max_entry_bytes {
                return Err(SnapshotError::EntryTooLarge {
                    declared: len,
                    limit: limits.max_entry_bytes,
                });
            }
        }
        let key = read_string(&mut reader, key_len as usize, &mut checksum)?;
        let value = read_string(&mut reader, value_len as usize, &mut checksum)?;
        entries.push((key, value));
    }

    let stored = read_u64(&mut reader)?;
    let computed = checksum.finish();
    if stored != computed {
        return Err(SnapshotError::ChecksumMismatch { stored, computed });
    }
    let mut probe = [0u8; 1];
    match reader.read(&mut probe).map_err(SnapshotError::Io)? {
        0 => Ok(entries),
        _ => Err(SnapshotError::TrailingData),
    }
}

fn read_u64(reader: &mut impl Read) -> Result<u64, SnapshotError> {
    let mut buf = [0u8; 8];
    reader.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Reads `len` UTF-8 bytes in bounded chunks, folding them into `checksum`.
fn read_string(
    reader: &mut impl Read,
    len: usize,
    checksum: &mut Fnv1a,
) -> Result<String, SnapshotError> {
    // Chunked so a corrupt length within the per-entry limit still cannot
    // trigger one huge upfront allocation for a file that is mostly absent.
    const CHUNK: usize = 64 * 1024;
    let mut bytes = Vec::new();
    let mut remaining = len;
    let mut chunk = [0u8; CHUNK];
    while remaining > 0 {
        let take = remaining.min(CHUNK);
        reader.read_exact(&mut chunk[..take])?;
        checksum.update(&chunk[..take]);
        bytes.extend_from_slice(&chunk[..take]);
        remaining -= take;
    }
    String::from_utf8(bytes).map_err(|_| SnapshotError::InvalidUtf8)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entries() -> Vec<(String, String)> {
        (0..20)
            .map(|i| {
                (
                    format!("analyze|kind=eta1|n=32|k={i}|p=0.5"),
                    format!("{{\"result\":{{\"value\":{i}.25}}}}"),
                )
            })
            .collect()
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "sealpaa-snapshot-test-{name}-{}",
            std::process::id()
        ));
        path
    }

    #[test]
    fn round_trips_entries_in_order() {
        let path = temp_path("roundtrip");
        let entries = sample_entries();
        write_snapshot(&path, &entries).expect("write");
        let loaded = read_snapshot(&path, SnapshotLimits::default()).expect("read");
        assert_eq!(loaded, entries, "order and contents must survive");
        fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let path = temp_path("empty");
        write_snapshot(&path, &[]).expect("write");
        let loaded = read_snapshot(&path, SnapshotLimits::default()).expect("read");
        assert!(loaded.is_empty());
        fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn write_replaces_previous_snapshot_atomically() {
        let path = temp_path("replace");
        write_snapshot(&path, &sample_entries()).expect("first write");
        let second = vec![("k".to_string(), "v".to_string())];
        write_snapshot(&path, &second).expect("second write");
        assert_eq!(
            read_snapshot(&path, SnapshotLimits::default()).expect("read"),
            second
        );
        assert!(
            !sibling_tmp_path(&path).exists(),
            "temp file must not linger"
        );
        fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn rejects_bad_magic() {
        let path = temp_path("magic");
        write_snapshot(&path, &sample_entries()).expect("write");
        let mut bytes = fs::read(&path).expect("read bytes");
        bytes[0] = b'X';
        fs::write(&path, &bytes).expect("rewrite");
        match read_snapshot(&path, SnapshotLimits::default()) {
            Err(SnapshotError::BadMagic(_)) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
        fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn rejects_version_bump() {
        let path = temp_path("version");
        write_snapshot(&path, &sample_entries()).expect("write");
        let mut bytes = fs::read(&path).expect("read bytes");
        bytes[4] = SNAPSHOT_VERSION + 1;
        fs::write(&path, &bytes).expect("rewrite");
        match read_snapshot(&path, SnapshotLimits::default()) {
            Err(SnapshotError::UnsupportedVersion(v)) => assert_eq!(v, SNAPSHOT_VERSION + 1),
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
        fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn rejects_truncation_at_every_boundary() {
        let path = temp_path("truncate");
        write_snapshot(&path, &sample_entries()).expect("write");
        let bytes = fs::read(&path).expect("read bytes");
        // Chop at a spread of prefixes: inside the header, inside a record
        // length, inside record bytes, and inside the checksum.
        for cut in [3, 5, 10, 15, 20, bytes.len() / 2, bytes.len() - 3] {
            fs::write(&path, &bytes[..cut]).expect("rewrite");
            match read_snapshot(&path, SnapshotLimits::default()) {
                Err(SnapshotError::Truncated) => {}
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
        fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn rejects_bit_flips_in_record_bytes() {
        let path = temp_path("bitflip");
        write_snapshot(&path, &sample_entries()).expect("write");
        let bytes = fs::read(&path).expect("read bytes");
        // Flip a bit inside a record payload (past header, before checksum);
        // byte 40 sits inside the first record's key.
        let mut flipped = bytes.clone();
        flipped[40] ^= 0x10;
        fs::write(&path, &flipped).expect("rewrite");
        match read_snapshot(&path, SnapshotLimits::default()) {
            Err(SnapshotError::ChecksumMismatch { stored, computed }) => {
                assert_ne!(stored, computed);
            }
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
        fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn rejects_entry_counts_beyond_the_limit_without_allocating() {
        let path = temp_path("count");
        // A hand-built header claiming u64::MAX entries: the reader must
        // refuse before reserving anything.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&SNAPSHOT_MAGIC);
        bytes.extend_from_slice(&[SNAPSHOT_VERSION, 0]);
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        fs::write(&path, &bytes).expect("write");
        match read_snapshot(&path, SnapshotLimits::default()) {
            Err(SnapshotError::TooManyEntries { declared, .. }) => {
                assert_eq!(declared, u64::MAX);
            }
            other => panic!("expected TooManyEntries, got {other:?}"),
        }
        fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn rejects_oversized_entries() {
        let path = temp_path("oversize");
        write_snapshot(&path, &[("key".to_string(), "value".to_string())]).expect("write");
        let limits = SnapshotLimits {
            max_entries: 16,
            max_entry_bytes: 4,
        };
        match read_snapshot(&path, limits) {
            Err(SnapshotError::EntryTooLarge { declared, limit }) => {
                assert_eq!(declared, 5);
                assert_eq!(limit, 4);
            }
            other => panic!("expected EntryTooLarge, got {other:?}"),
        }
        fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn rejects_trailing_data() {
        let path = temp_path("trailing");
        write_snapshot(&path, &sample_entries()).expect("write");
        let mut bytes = fs::read(&path).expect("read bytes");
        bytes.push(0);
        fs::write(&path, &bytes).expect("rewrite");
        match read_snapshot(&path, SnapshotLimits::default()) {
            Err(SnapshotError::TrailingData) => {}
            other => panic!("expected TrailingData, got {other:?}"),
        }
        fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn rejects_invalid_utf8() {
        let path = temp_path("utf8");
        write_snapshot(&path, &[("key".to_string(), "value".to_string())]).expect("write");
        let mut bytes = fs::read(&path).expect("read bytes");
        // Corrupt a key byte to an invalid UTF-8 continuation, then fix up
        // the checksum so only the UTF-8 check can object.
        let record_start = 14;
        bytes[record_start + 8] = 0xFF;
        let record_end = bytes.len() - 8;
        let mut checksum = Fnv1a::new();
        checksum.update(&bytes[record_start..record_end]);
        let finish = checksum.finish().to_le_bytes();
        bytes[record_end..].copy_from_slice(&finish);
        fs::write(&path, &bytes).expect("rewrite");
        match read_snapshot(&path, SnapshotLimits::default()) {
            Err(SnapshotError::InvalidUtf8) => {}
            other => panic!("expected InvalidUtf8, got {other:?}"),
        }
        fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn missing_file_reports_io_error() {
        let path = temp_path("missing-never-created");
        match read_snapshot(&path, SnapshotLimits::default()) {
            Err(SnapshotError::Io(err)) => {
                assert_eq!(err.kind(), io::ErrorKind::NotFound);
            }
            other => panic!("expected Io, got {other:?}"),
        }
    }
}
