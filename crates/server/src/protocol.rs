//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! Every request is one JSON object on one line with a `"kind"` field and an
//! optional client-chosen `"id"` that is echoed back verbatim. Adder-shaped
//! requests (`analyze`, `simulate`, `compare`) accept the same configuration
//! vocabulary as the CLI: `width` + `cell`/`cells`, and `p`/`pa`/`pb`/`cin`
//! input probabilities. See `docs/SERVER.md` for a worked example per kind.

use std::fmt::Write as _;
use std::str::FromStr;

use sealpaa_cells::{AdderChain, Cell, InputProfile, StandardCell, TruthTable};
use sealpaa_trace::{SynthKind, TraceRecord};

use crate::json::{Json, JsonObject};

/// The maximum accepted line length (1 MiB) — a guard against unbounded
/// memory growth from a misbehaving client.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// The most records a `profile` request may ask a synthetic generator for —
/// a bound on worker time, mirroring [`MAX_LINE_BYTES`]'s bound on memory.
pub const MAX_PROFILE_RECORDS: u64 = 1 << 24;

/// The most sub-requests one `batch` request may carry — a bound on worker
/// time per request line (the line limit already bounds its bytes).
pub const MAX_BATCH_ITEMS: usize = 1024;

/// One parsed request: the echoed `id` plus the typed body.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed back verbatim (any JSON value).
    pub id: Option<Json>,
    /// The request proper.
    pub body: RequestBody,
}

/// The typed request kinds the daemon serves.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestBody {
    /// The paper's O(N) analytical method.
    Analyze(AdderSpec),
    /// Bit-true simulation (exhaustive or Monte-Carlo).
    Simulate(SimulateSpec),
    /// Proposed method vs. the 2^k-term inclusion–exclusion baseline.
    Compare(AdderSpec),
    /// GeAr low-latency adder analysis.
    Gear(GearSpec),
    /// Block-based adder analysis: the exact error-distance PMF/CDF and
    /// derived statistics of a heterogeneous block configuration.
    Blocks(BlocksSpec),
    /// Budgeted hybrid-adder design-space exploration.
    Dse(DseSpec),
    /// Workload-trace bit statistics: empirical per-bit probabilities and
    /// the independence-violation score.
    Profile(ProfileSpec),
    /// Analytical datapath error propagation: predicted output error
    /// moments and SNR for a whole adder graph (FIR, conv2d, multiplier) —
    /// no simulation in the loop.
    Datapath(DatapathSpec),
    /// Several compute sub-requests answered in one response, routed through
    /// the canonical cache as a group (duplicate configurations compute
    /// once).
    Batch(BatchSpec),
    /// Server counters (served inline, never queued).
    Stats,
    /// Graceful shutdown: drain in-flight jobs, answer, stop.
    Shutdown,
}

impl RequestBody {
    /// The wire name of this request kind.
    pub fn kind(&self) -> &'static str {
        match self {
            RequestBody::Analyze(_) => "analyze",
            RequestBody::Simulate(_) => "simulate",
            RequestBody::Compare(_) => "compare",
            RequestBody::Gear(_) => "gear",
            RequestBody::Blocks(_) => "blocks",
            RequestBody::Dse(_) => "dse",
            RequestBody::Profile(_) => "profile",
            RequestBody::Datapath(_) => "datapath",
            RequestBody::Batch(_) => "batch",
            RequestBody::Stats => "stats",
            RequestBody::Shutdown => "shutdown",
        }
    }
}

/// A `batch` request: an ordered list of compute sub-requests. The response
/// carries one sub-response per item, in item order, each echoing the item's
/// own `id` — so a client can fan a sweep into one line and reassemble it
/// without counting on ordering.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSpec {
    /// The sub-requests, in wire order.
    pub items: Vec<BatchItem>,
}

/// One entry of a `batch` request. A malformed entry does not fail the
/// batch: it is carried as its parse error and answered with a per-item
/// error sub-response.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchItem {
    /// The item's own correlation id, echoed in its sub-response.
    pub id: Option<Json>,
    /// What the item asks for: its own parse, or a back-reference to an
    /// earlier identical item.
    pub body: BatchBody,
}

/// The payload of one batch item.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchBody {
    /// A freshly parsed sub-request, or the message explaining why it did
    /// not parse.
    Parsed(Result<RequestBody, String>),
    /// Byte-identical (apart from `id`) to the item at this index. The
    /// common batch shape — one configuration fanned out under many ids —
    /// parses once, canonicalizes once, and computes at most once; every
    /// duplicate rides the original's resolution.
    DuplicateOf(usize),
}

/// How many recent *distinct* rows a batch parse compares each new row
/// against. Homogeneous batches dedup against a single entry; the bound
/// keeps an adversarial all-distinct batch linear.
const BATCH_DEDUP_WINDOW: usize = 8;

impl BatchSpec {
    fn from_json(doc: &Json) -> Result<BatchSpec, String> {
        let rows = doc
            .get("requests")
            .and_then(Json::as_array)
            .ok_or("\"requests\" (an array of request objects) is required")?;
        if rows.is_empty() {
            return Err("\"requests\" must list at least one sub-request".to_owned());
        }
        if rows.len() > MAX_BATCH_ITEMS {
            return Err(format!(
                "\"requests\" lists {} sub-requests but the limit is {MAX_BATCH_ITEMS}",
                rows.len()
            ));
        }
        let mut items: Vec<BatchItem> = Vec::with_capacity(rows.len());
        // Indices (into `rows`/`items`) of the most recent distinct rows;
        // back-references therefore always point at an original, never at
        // another duplicate.
        let mut recent: Vec<usize> = Vec::new();
        for (index, row) in rows.iter().enumerate() {
            let body = match recent
                .iter()
                .copied()
                .find(|&j| json_equal_ignoring_id(row, &rows[j]))
            {
                Some(j) => BatchBody::DuplicateOf(j),
                None => {
                    if recent.len() == BATCH_DEDUP_WINDOW {
                        recent.remove(0);
                    }
                    recent.push(index);
                    BatchBody::Parsed(batch_item_body(row))
                }
            };
            items.push(BatchItem {
                id: row.get("id").cloned(),
                body,
            });
        }
        Ok(BatchSpec { items })
    }
}

/// Structural equality of two raw request documents with the `id` field
/// masked out — the cheap filter behind [`BatchBody::DuplicateOf`] and the
/// per-connection request memo. Field order matters, so
/// differently-spelled equivalent documents simply miss the filter: a miss
/// only costs a fresh parse, never correctness. (NaN-valued numbers
/// compare unequal and therefore never dedup, which is the safe direction.)
pub(crate) fn json_equal_ignoring_id(a: &Json, b: &Json) -> bool {
    let (Json::Object(a), Json::Object(b)) = (a, b) else {
        return false;
    };
    let mut a = a.iter().filter(|(k, _)| k.as_str() != "id");
    let mut b = b.iter().filter(|(k, _)| k.as_str() != "id");
    loop {
        match (a.next(), b.next()) {
            (None, None) => return true,
            (Some(x), Some(y)) if x == y => {}
            _ => return false,
        }
    }
}

/// Parses one batch entry. Control kinds and nested batches are rejected by
/// name *before* parsing, so a nested-batch bomb cannot recurse.
fn batch_item_body(row: &Json) -> Result<RequestBody, String> {
    if !matches!(row, Json::Object(_)) {
        return Err("a sub-request must be a JSON object".to_owned());
    }
    match row.get("kind").and_then(Json::as_str) {
        None => return Err("missing string field \"kind\"".to_owned()),
        Some(kind @ ("batch" | "stats" | "shutdown")) => {
            return Err(format!("kind {kind:?} is not allowed inside a batch"));
        }
        Some(_) => {}
    }
    body_from_doc(row)
}

/// A multi-bit adder configuration: the per-stage cells plus the input
/// profile, exactly the inputs of the paper's analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct AdderSpec {
    /// The (possibly hybrid) chain, LSB first.
    pub chain: AdderChain,
    /// Per-bit input probabilities.
    pub profile: InputProfile<f64>,
}

/// How to simulate.
#[derive(Debug, Clone, PartialEq)]
pub enum SimMode {
    /// Enumerate all `2^(2N+1)` input combinations.
    Exhaustive,
    /// Draw random samples (deterministic for a fixed `(seed, threads)`).
    MonteCarlo {
        /// Number of samples.
        samples: u64,
        /// RNG seed.
        seed: u64,
        /// Internal worker threads of the simulator itself (defaults to
        /// the machine's available parallelism when the request omits it;
        /// pin it explicitly for machine-independent sample streams).
        threads: usize,
    },
}

/// A `simulate` request.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulateSpec {
    /// The adder under test.
    pub adder: AdderSpec,
    /// Simulation regime.
    pub mode: SimMode,
}

/// A `gear` request: GeAr(N, R, P) plus input probabilities.
#[derive(Debug, Clone, PartialEq)]
pub struct GearSpec {
    /// Operand width.
    pub n: usize,
    /// Result bits per sub-adder.
    pub r: usize,
    /// Prediction/overlap bits per sub-adder.
    pub overlap: usize,
    /// Constant `P(bit = 1)` for all operand bits.
    pub p: f64,
    /// External carry-in probability.
    pub cin: f64,
    /// Also report each fallible sub-adder's `P(E_j)`.
    pub blocks: bool,
}

/// A `blocks` request: a heterogeneous block configuration plus input
/// probabilities. The result is purely behavioral (error-distance
/// statistics, no power/area), which is what lets the cache key fold
/// behaviorally equivalent configurations together.
#[derive(Debug, Clone, PartialEq)]
pub struct BlocksSpec {
    /// The block configuration (operand width is `config.width()`).
    pub config: sealpaa_blocks::BlockConfig,
    /// Per-bit input probabilities.
    pub profile: InputProfile<f64>,
    /// Also report the cumulative distribution alongside the PMF.
    pub cdf: bool,
}

impl BlocksSpec {
    fn from_json(doc: &Json) -> Result<BlocksSpec, String> {
        let spec = doc
            .get("config")
            .and_then(Json::as_str)
            .ok_or("\"config\" (a string like \"4:0:accurate,2:2:lpaa1\") is required")?;
        let config: sealpaa_blocks::BlockConfig = spec
            .parse()
            .map_err(|e: sealpaa_blocks::ParseBlockConfigError| format!("\"config\": {e}"))?;
        let width = config.width();
        let p = prob_field(doc, "p")?.unwrap_or(0.5);
        let pa = prob_list(doc, "pa", width)?.unwrap_or_else(|| vec![p; width]);
        let pb = prob_list(doc, "pb", width)?.unwrap_or_else(|| vec![p; width]);
        let cin = prob_field(doc, "cin")?.unwrap_or(p);
        let profile = InputProfile::new(pa, pb, cin).map_err(|e| e.to_string())?;
        Ok(BlocksSpec {
            config,
            profile,
            cdf: doc.get("cdf").and_then(Json::as_bool).unwrap_or(false),
        })
    }
}

/// A `dse` request: search per-stage cell assignments for the minimum error
/// probability under an optional power/area budget (the CLI's `sealpaa dse`
/// as a service).
#[derive(Debug, Clone, PartialEq)]
pub struct DseSpec {
    /// Candidate cells selectable at each stage.
    pub candidates: Vec<Cell>,
    /// Per-bit input probabilities (the search width is the profile width).
    pub profile: InputProfile<f64>,
    /// Maximum total power in nW (`None` = unconstrained).
    pub budget_power: Option<f64>,
    /// Maximum total area in GE (`None` = unconstrained).
    pub budget_area: Option<f64>,
    /// Worker threads for the search. Results are identical for any thread
    /// count (the exploration merges in lexicographic design order), so this
    /// is deliberately NOT part of the canonical cache key.
    pub threads: usize,
    /// Also report the error/power/area Pareto frontier.
    pub pareto: bool,
}

/// Where a `profile` request's trace records come from.
#[derive(Debug, Clone, PartialEq)]
pub enum ProfileSource {
    /// Generate the trace server-side with a synthetic workload family.
    /// Fully determined by `(kind, records, seed)`, so these requests are
    /// cacheable.
    Synth {
        /// The workload family.
        kind: SynthKind,
        /// Number of records to generate (capped at
        /// [`MAX_PROFILE_RECORDS`]).
        records: u64,
        /// Generator seed.
        seed: u64,
    },
    /// Records shipped inline as `[a, b]` or `[a, b, cin]` rows. Inline
    /// traces are deliberately NOT cached: a canonical key would have to
    /// hash the full payload, and the line limit already bounds their size.
    Inline(Vec<TraceRecord>),
}

/// A `profile` request: stream a workload trace into per-bit statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileSpec {
    /// Operand width of the trace.
    pub width: usize,
    /// The trace itself.
    pub source: ProfileSource,
}

/// The adder-graph topologies a `datapath` request may ask about. Each
/// expands to a [`sealpaa_propagate::topologies`] graph server-side, so the
/// wire carries only the shape parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum DatapathTopology {
    /// A transposed-form FIR filter with the given taps.
    Fir {
        /// The filter coefficients, oldest sample first.
        coefficients: Vec<u64>,
    },
    /// A 2-D convolution with the given (rectangular) kernel.
    Conv2d {
        /// Kernel rows, each the same length.
        kernel: Vec<Vec<u64>>,
    },
    /// A shift-add multiplier of the request's `width`.
    Multiplier,
}

/// A `datapath` request: compose per-adder error models through a whole
/// datapath graph and report the predicted output error moments and SNR.
#[derive(Debug, Clone, PartialEq)]
pub struct DatapathSpec {
    /// What graph to build.
    pub topology: DatapathTopology,
    /// The adder cell every add node uses.
    pub cell: Cell,
    /// Input/sample/pixel bits.
    pub width: usize,
    /// Constant `P(bit = 1)` for every input bit.
    pub p: f64,
    /// Also compose the full output error PMF (narrow adders only).
    pub pmf: bool,
}

impl DatapathSpec {
    fn from_json(doc: &Json) -> Result<DatapathSpec, String> {
        let width = doc
            .get("width")
            .and_then(Json::as_u64)
            .ok_or("\"width\" (a positive integer) is required")? as usize;
        if width == 0 || width > 32 {
            return Err("\"width\" must be 1..=32".to_owned());
        }
        let cell_name = doc
            .get("cell")
            .and_then(Json::as_str)
            .ok_or("\"cell\" (a cell name) is required")?;
        let cell = resolve_cell(cell_name)?;
        let coeff = |v: &Json, what: &str| -> Result<u64, String> {
            v.as_u64()
                .ok_or_else(|| format!("{what} must be a non-negative integer"))
        };
        let topology = match doc.get("topology").and_then(Json::as_str).unwrap_or("fir") {
            "fir" => {
                let rows = doc
                    .get("coefficients")
                    .and_then(Json::as_array)
                    .ok_or("\"coefficients\" (an array of taps) is required for \"fir\"")?;
                let coefficients: Vec<u64> = rows
                    .iter()
                    .map(|v| coeff(v, "every \"coefficients\" entry"))
                    .collect::<Result<_, _>>()?;
                if coefficients.is_empty() || coefficients.iter().all(|&c| c == 0) {
                    return Err("\"coefficients\" needs a non-zero tap".to_owned());
                }
                DatapathTopology::Fir { coefficients }
            }
            "conv2d" => {
                let rows = doc.get("kernel").and_then(Json::as_array).ok_or(
                    "\"kernel\" (an array of coefficient rows) is required for \"conv2d\"",
                )?;
                let kernel: Vec<Vec<u64>> = rows
                    .iter()
                    .map(|row| {
                        row.as_array()
                            .ok_or_else(|| "every \"kernel\" row must be an array".to_owned())?
                            .iter()
                            .map(|v| coeff(v, "every \"kernel\" coefficient"))
                            .collect()
                    })
                    .collect::<Result<_, _>>()?;
                let cols = kernel.first().map_or(0, Vec::len);
                if cols == 0 || kernel.iter().any(|r| r.len() != cols) {
                    return Err("\"kernel\" rows must be non-empty and equal length".to_owned());
                }
                if kernel.iter().flatten().all(|&c| c == 0) {
                    return Err("\"kernel\" needs a non-zero coefficient".to_owned());
                }
                DatapathTopology::Conv2d { kernel }
            }
            "multiplier" => DatapathTopology::Multiplier,
            other => {
                return Err(format!(
                    "unknown topology {other:?} (expected fir, conv2d or multiplier)"
                ))
            }
        };
        Ok(DatapathSpec {
            topology,
            cell,
            width,
            p: prob_field(doc, "p")?.unwrap_or(0.5),
            pmf: doc.get("pmf").and_then(Json::as_bool).unwrap_or(false),
        })
    }
}

impl Request {
    /// Parses one request line, enforcing the default [`MAX_LINE_BYTES`]
    /// length limit.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed JSON, unknown kinds,
    /// or invalid configuration values.
    pub fn parse(line: &str) -> Result<Request, String> {
        Request::parse_with_limit(line, MAX_LINE_BYTES)
    }

    /// Parses one request line against a caller-chosen length limit. This
    /// check is a backstop for callers that hand over pre-assembled lines —
    /// the daemon additionally enforces the same limit *while reading*, so
    /// an oversized line is never buffered in the first place.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for oversized lines, malformed
    /// JSON, unknown kinds, or invalid configuration values.
    pub fn parse_with_limit(line: &str, max_line_bytes: usize) -> Result<Request, String> {
        if line.len() > max_line_bytes {
            return Err(format!(
                "request exceeds {max_line_bytes} bytes; split it or shrink the profile"
            ));
        }
        let doc = Json::parse(line).map_err(|e| e.to_string())?;
        if !matches!(doc, Json::Object(_)) {
            return Err("a request must be a JSON object".to_owned());
        }
        let id = doc.get("id").cloned();
        let body = body_from_doc(&doc)?;
        Ok(Request { id, body })
    }
}

/// Parses a request object's body by its `"kind"` — shared by the top-level
/// parser, the per-item parser inside `batch`, and the transport loops
/// (which parse the document themselves to feed the request memo).
pub(crate) fn body_from_doc(doc: &Json) -> Result<RequestBody, String> {
    let kind = doc
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("missing string field \"kind\"")?;
    Ok(match kind {
        "analyze" => RequestBody::Analyze(AdderSpec::from_json(doc)?),
        "simulate" => RequestBody::Simulate(SimulateSpec::from_json(doc)?),
        "compare" => RequestBody::Compare(AdderSpec::from_json(doc)?),
        "gear" => RequestBody::Gear(GearSpec::from_json(doc)?),
        "blocks" => RequestBody::Blocks(BlocksSpec::from_json(doc)?),
        "dse" => RequestBody::Dse(DseSpec::from_json(doc)?),
        "profile" => RequestBody::Profile(ProfileSpec::from_json(doc)?),
        "datapath" => RequestBody::Datapath(DatapathSpec::from_json(doc)?),
        "batch" => RequestBody::Batch(BatchSpec::from_json(doc)?),
        "stats" => RequestBody::Stats,
        "shutdown" => RequestBody::Shutdown,
        other => {
            return Err(format!(
                "unknown kind {other:?} (expected analyze, simulate, compare, gear, blocks, \
                 dse, profile, datapath, batch, stats or shutdown)"
            ))
        }
    })
}

/// Resolves a cell name: `accurate`/`accufa`, `lpaa1`…`lpaa7`, or a custom
/// truth table `SSSSSSSS/CCCCCCCC` (row 0 first; same syntax as the CLI).
///
/// # Errors
///
/// Returns a message for unknown names or malformed tables.
pub fn resolve_cell(spec: &str) -> Result<Cell, String> {
    if let Ok(std_cell) = StandardCell::from_str(spec) {
        return Ok(std_cell.cell());
    }
    if spec.contains('/') {
        let table = TruthTable::from_str(spec).map_err(|e| e.to_string())?;
        return Ok(Cell::custom(format!("custom({spec})"), table));
    }
    Err(format!(
        "unknown cell {spec:?} (use accurate, lpaa1..lpaa7, or SSSSSSSS/CCCCCCCC)"
    ))
}

fn prob_field(doc: &Json, key: &str) -> Result<Option<f64>, String> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => {
            let p = v
                .as_f64()
                .ok_or_else(|| format!("\"{key}\" must be a number"))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("\"{key}\" must lie in [0, 1], got {p}"));
            }
            Ok(Some(p))
        }
    }
}

fn prob_list(doc: &Json, key: &str, width: usize) -> Result<Option<Vec<f64>>, String> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => {
            let items = v
                .as_array()
                .ok_or_else(|| format!("\"{key}\" must be an array of numbers"))?;
            if items.len() != width {
                return Err(format!(
                    "\"{key}\" lists {} values but the adder has {width} stages",
                    items.len()
                ));
            }
            let mut out = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                let p = item
                    .as_f64()
                    .ok_or_else(|| format!("\"{key}\"[{i}] must be a number"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("\"{key}\"[{i}] must lie in [0, 1], got {p}"));
                }
                out.push(p);
            }
            Ok(Some(out))
        }
    }
}

impl AdderSpec {
    /// Builds the chain + profile from the request object's `width`,
    /// `cell`/`cells`, and `p`/`pa`/`pb`/`cin` fields.
    ///
    /// # Errors
    ///
    /// Returns a message for missing or inconsistent fields.
    pub fn from_json(doc: &Json) -> Result<AdderSpec, String> {
        let cells: Vec<Cell> = match (doc.get("cell"), doc.get("cells")) {
            (Some(_), Some(_)) => {
                return Err("\"cell\" and \"cells\" are mutually exclusive".to_owned())
            }
            (Some(one), None) => {
                let name = one.as_str().ok_or("\"cell\" must be a string")?;
                let width = doc
                    .get("width")
                    .and_then(Json::as_u64)
                    .ok_or("\"width\" (a positive integer) is required with \"cell\"")?
                    as usize;
                if width == 0 || width > 64 {
                    return Err("\"width\" must be 1..=64".to_owned());
                }
                vec![resolve_cell(name)?; width]
            }
            (None, Some(many)) => {
                let names = many
                    .as_array()
                    .ok_or("\"cells\" must be an array of cell names")?;
                if names.is_empty() || names.len() > 64 {
                    return Err("\"cells\" must list 1..=64 stages".to_owned());
                }
                if let Some(w) = doc.get("width").and_then(Json::as_u64) {
                    if w as usize != names.len() {
                        return Err(format!(
                            "\"width\" is {w} but \"cells\" lists {} stages",
                            names.len()
                        ));
                    }
                }
                names
                    .iter()
                    .map(|n| {
                        n.as_str()
                            .ok_or_else(|| "\"cells\" entries must be strings".to_owned())
                            .and_then(resolve_cell)
                    })
                    .collect::<Result<_, _>>()?
            }
            (None, None) => return Err("one of \"cell\" or \"cells\" is required".to_owned()),
        };
        let width = cells.len();
        let p = prob_field(doc, "p")?.unwrap_or(0.5);
        let pa = prob_list(doc, "pa", width)?.unwrap_or_else(|| vec![p; width]);
        let pb = prob_list(doc, "pb", width)?.unwrap_or_else(|| vec![p; width]);
        let cin = prob_field(doc, "cin")?.unwrap_or(p);
        let profile = InputProfile::new(pa, pb, cin).map_err(|e| e.to_string())?;
        Ok(AdderSpec {
            chain: AdderChain::from_stages(cells),
            profile,
        })
    }
}

impl SimulateSpec {
    fn from_json(doc: &Json) -> Result<SimulateSpec, String> {
        let adder = AdderSpec::from_json(doc)?;
        let mode_name = doc.get("mode").and_then(Json::as_str);
        let has_samples = doc.get("samples").is_some();
        let mode = match (mode_name, has_samples) {
            (Some("exhaustive"), false) => SimMode::Exhaustive,
            (Some("exhaustive"), true) => {
                return Err("\"samples\" is meaningless with mode \"exhaustive\"".to_owned())
            }
            (Some("monte_carlo"), _) | (None, true) => SimMode::MonteCarlo {
                samples: doc
                    .get("samples")
                    .map(|v| {
                        v.as_u64()
                            .ok_or("\"samples\" must be a non-negative integer")
                    })
                    .transpose()?
                    .unwrap_or(1_000_000),
                seed: doc
                    .get("seed")
                    .map(|v| v.as_u64().ok_or("\"seed\" must be a non-negative integer"))
                    .transpose()?
                    .unwrap_or(0xDAC1_7ADD),
                threads: doc
                    .get("threads")
                    .map(|v| v.as_u64().ok_or("\"threads\" must be a positive integer"))
                    .transpose()?
                    .map_or_else(sealpaa_sim::default_threads, |t| t as usize),
            },
            (None, false) => SimMode::Exhaustive,
            (Some(other), _) => {
                return Err(format!(
                    "unknown mode {other:?} (expected exhaustive or monte_carlo)"
                ))
            }
        };
        Ok(SimulateSpec { adder, mode })
    }
}

impl GearSpec {
    fn from_json(doc: &Json) -> Result<GearSpec, String> {
        let int = |key: &str| -> Result<usize, String> {
            doc.get(key)
                .and_then(Json::as_u64)
                .map(|v| v as usize)
                .ok_or_else(|| format!("\"{key}\" (a non-negative integer) is required"))
        };
        Ok(GearSpec {
            n: int("n")?,
            r: int("r")?,
            overlap: int("overlap")?,
            p: prob_field(doc, "p")?.unwrap_or(0.5),
            cin: prob_field(doc, "cin")?.unwrap_or(0.0),
            blocks: doc.get("blocks").and_then(Json::as_bool).unwrap_or(false),
        })
    }
}

impl DseSpec {
    fn from_json(doc: &Json) -> Result<DseSpec, String> {
        let width = doc
            .get("width")
            .and_then(Json::as_u64)
            .ok_or("\"width\" (a positive integer) is required")? as usize;
        if width == 0 || width > 64 {
            return Err("\"width\" must be 1..=64".to_owned());
        }
        let candidates: Vec<Cell> = match doc.get("candidates") {
            None | Some(Json::Null) => vec![
                resolve_cell("lpaa1")?,
                resolve_cell("lpaa2")?,
                resolve_cell("lpaa5")?,
                sealpaa_explore::accurate_cell_with_proxy_costs(),
            ],
            Some(v) => {
                let names = v
                    .as_array()
                    .ok_or("\"candidates\" must be an array of cell names")?;
                if names.is_empty() {
                    return Err("\"candidates\" must list at least one cell".to_owned());
                }
                names
                    .iter()
                    .map(|n| {
                        let name = n
                            .as_str()
                            .ok_or_else(|| "\"candidates\" entries must be strings".to_owned())?;
                        // As in the CLI: the accurate cell joins a budgeted
                        // search with the estimated costs from DESIGN.md.
                        if name.eq_ignore_ascii_case("accurate")
                            || name.eq_ignore_ascii_case("accufa")
                        {
                            Ok(sealpaa_explore::accurate_cell_with_proxy_costs())
                        } else {
                            resolve_cell(name)
                        }
                    })
                    .collect::<Result<_, _>>()?
            }
        };
        let p = prob_field(doc, "p")?.unwrap_or(0.5);
        let pa = prob_list(doc, "pa", width)?.unwrap_or_else(|| vec![p; width]);
        let pb = prob_list(doc, "pb", width)?.unwrap_or_else(|| vec![p; width]);
        let cin = prob_field(doc, "cin")?.unwrap_or(p);
        let profile = InputProfile::new(pa, pb, cin).map_err(|e| e.to_string())?;
        let budget = |key: &str| -> Result<Option<f64>, String> {
            match doc.get(key) {
                None | Some(Json::Null) => Ok(None),
                Some(v) => {
                    let cap = v
                        .as_f64()
                        .ok_or_else(|| format!("\"{key}\" must be a number"))?;
                    if !cap.is_finite() || cap < 0.0 {
                        return Err(format!(
                            "\"{key}\" must be a non-negative number, got {cap}"
                        ));
                    }
                    Ok(Some(cap))
                }
            }
        };
        Ok(DseSpec {
            candidates,
            profile,
            budget_power: budget("budget_power")?,
            budget_area: budget("budget_area")?,
            threads: doc
                .get("threads")
                .map(|v| {
                    v.as_u64()
                        .filter(|&t| t > 0)
                        .ok_or("\"threads\" must be a positive integer")
                })
                .transpose()?
                .map_or_else(sealpaa_sim::default_threads, |t| t as usize),
            pareto: doc.get("pareto").and_then(Json::as_bool).unwrap_or(false),
        })
    }
}

impl ProfileSpec {
    fn from_json(doc: &Json) -> Result<ProfileSpec, String> {
        let width = doc
            .get("width")
            .and_then(Json::as_u64)
            .ok_or("\"width\" (a positive integer) is required")? as usize;
        if width == 0 || width > 64 {
            return Err("\"width\" must be 1..=64".to_owned());
        }
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        let source = match (doc.get("synth"), doc.get("trace")) {
            (Some(_), Some(_)) => {
                return Err("\"synth\" and \"trace\" are mutually exclusive".to_owned())
            }
            (Some(v), None) => {
                let name = v.as_str().ok_or("\"synth\" must be a workload name")?;
                let kind: SynthKind = name.parse().map_err(|_| {
                    format!(
                        "unknown workload {name:?} (expected uniform, gaussian-sum, \
                         random-walk or image-gradient)"
                    )
                })?;
                let records = doc
                    .get("records")
                    .map(|v| {
                        v.as_u64()
                            .filter(|&r| r > 0)
                            .ok_or("\"records\" must be a positive integer")
                    })
                    .transpose()?
                    .unwrap_or(1 << 16);
                if records > MAX_PROFILE_RECORDS {
                    return Err(format!("\"records\" must be at most {MAX_PROFILE_RECORDS}"));
                }
                let seed = doc
                    .get("seed")
                    .map(|v| v.as_u64().ok_or("\"seed\" must be a non-negative integer"))
                    .transpose()?
                    .unwrap_or(0);
                ProfileSource::Synth {
                    kind,
                    records,
                    seed,
                }
            }
            (None, Some(v)) => {
                let rows = v
                    .as_array()
                    .ok_or("\"trace\" must be an array of [a, b] or [a, b, cin] rows")?;
                if rows.is_empty() {
                    return Err("\"trace\" must list at least one record".to_owned());
                }
                let mut records = Vec::with_capacity(rows.len());
                for (i, row) in rows.iter().enumerate() {
                    let parts = row
                        .as_array()
                        .ok_or_else(|| format!("\"trace\"[{i}] must be an array"))?;
                    if parts.len() != 2 && parts.len() != 3 {
                        return Err(format!(
                            "\"trace\"[{i}] must be [a, b] or [a, b, cin], got {} items",
                            parts.len()
                        ));
                    }
                    let operand = |j: usize, name: &str| -> Result<u64, String> {
                        let value = parts[j].as_u64().ok_or_else(|| {
                            format!("\"trace\"[{i}][{j}] ({name}) must be a non-negative integer")
                        })?;
                        if value & !mask != 0 {
                            return Err(format!(
                                "\"trace\"[{i}][{j}] ({name}) does not fit width {width}"
                            ));
                        }
                        Ok(value)
                    };
                    let a = operand(0, "a")?;
                    let b = operand(1, "b")?;
                    let cin = match parts.get(2) {
                        None => false,
                        Some(Json::Bool(flag)) => *flag,
                        Some(v) => match v.as_u64() {
                            Some(0) => false,
                            Some(1) => true,
                            _ => {
                                return Err(format!(
                                    "\"trace\"[{i}][2] (cin) must be 0, 1, true or false"
                                ))
                            }
                        },
                    };
                    records.push(TraceRecord::new(a, b, cin));
                }
                ProfileSource::Inline(records)
            }
            (None, None) => return Err("one of \"synth\" or \"trace\" is required".to_owned()),
        };
        Ok(ProfileSpec { width, source })
    }
}

/// Renders a success response line directly around an already-rendered
/// `result` payload — the cache-hit fast path. Byte-identical to
/// `ok_response(id, kind, cached, micros, result).render()` when
/// `result.render() == rendered_result`, without parsing the payload back
/// into a tree only to re-render it. `kind` must be one of the static
/// request-kind identifiers (never needs JSON escaping).
#[must_use]
pub fn render_ok_response(
    id: Option<&Json>,
    kind: &str,
    cached: bool,
    micros: u64,
    rendered_result: &str,
) -> String {
    let mut out = String::with_capacity(rendered_result.len() + 80);
    out.push('{');
    if let Some(id) = id {
        out.push_str("\"id\":");
        out.push_str(&id.render());
        out.push(',');
    }
    let _ = write!(
        out,
        "\"ok\":true,\"kind\":\"{kind}\",\"cached\":{cached},\"micros\":{micros},\"result\":"
    );
    out.push_str(rendered_result);
    out.push('}');
    out
}

/// Renders one successful `batch` sub-response around an already-rendered
/// `result` payload — the same fast path as [`render_ok_response`], minus
/// `micros` (the batch reports one aggregate latency).
#[must_use]
pub fn render_sub_ok_response(
    id: Option<&Json>,
    kind: &str,
    cached: bool,
    rendered_result: &str,
) -> String {
    let mut out = String::with_capacity(rendered_result.len() + 64);
    write_sub_ok_response(&mut out, id, kind, cached, rendered_result);
    out
}

/// Appends one successful `batch` sub-response directly onto `out` —
/// exactly the bytes of [`render_sub_ok_response`], without the
/// intermediate allocation. Used when assembling a large batch response in
/// place.
pub fn write_sub_ok_response(
    out: &mut String,
    id: Option<&Json>,
    kind: &str,
    cached: bool,
    rendered_result: &str,
) {
    out.push('{');
    if let Some(id) = id {
        out.push_str("\"id\":");
        out.push_str(&id.render());
        out.push(',');
    }
    let _ = write!(
        out,
        "\"ok\":true,\"kind\":\"{kind}\",\"cached\":{cached},\"result\":"
    );
    out.push_str(rendered_result);
    out.push('}');
}

/// Renders a whole successful `batch` response around already-rendered,
/// comma-joined sub-responses: the envelope and the aggregate result object
/// are spliced in one pass, byte-identical to building
/// `{"count":…,"computed":…,"results":[…]}` as a tree and wrapping it with
/// [`ok_response`], without ever copying the (potentially large) joined
/// sub-responses twice.
#[must_use]
pub fn render_batch_ok_response(
    id: Option<&Json>,
    cached: bool,
    micros: u64,
    count: u64,
    computed: u64,
    joined_subs: &str,
) -> String {
    let mut out = String::with_capacity(joined_subs.len() + 160);
    out.push('{');
    if let Some(id) = id {
        out.push_str("\"id\":");
        out.push_str(&id.render());
        out.push(',');
    }
    let _ = write!(
        out,
        "\"ok\":true,\"kind\":\"batch\",\"cached\":{cached},\"micros\":{micros},\"result\":\
         {{\"count\":{count},\"computed\":{computed},\"results\":["
    );
    out.push_str(joined_subs);
    out.push_str("]}}");
    out
}

/// Builds a success response line (without the trailing newline).
pub fn ok_response(id: Option<&Json>, kind: &str, cached: bool, micros: u64, result: Json) -> Json {
    let mut obj = JsonObject::default();
    if let Some(id) = id {
        obj = obj.field("id", id.clone());
    }
    obj.field("ok", true)
        .field("kind", kind)
        .field("cached", cached)
        .field("micros", micros)
        .field("result", result)
        .build()
}

/// Builds one successful sub-response object of a `batch` response — the
/// same shape as a top-level success minus `micros` (the batch reports one
/// aggregate latency).
pub fn sub_ok_response(id: Option<&Json>, kind: &str, cached: bool, result: Json) -> Json {
    let mut obj = JsonObject::default();
    if let Some(id) = id {
        obj = obj.field("id", id.clone());
    }
    obj.field("ok", true)
        .field("kind", kind)
        .field("cached", cached)
        .field("result", result)
        .build()
}

/// Builds an error response line (without the trailing newline).
pub fn error_response(id: Option<&Json>, message: &str) -> Json {
    let mut obj = JsonObject::default();
    if let Some(id) = id {
        obj = obj.field("id", id.clone());
    }
    obj.field("ok", false).field("error", message).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_request_kind() {
        let cases = [
            (
                r#"{"kind":"analyze","width":4,"cell":"lpaa1","p":0.1}"#,
                "analyze",
            ),
            (
                r#"{"kind":"simulate","cells":["lpaa1","accurate"],"samples":1000,"seed":7}"#,
                "simulate",
            ),
            (r#"{"kind":"compare","width":3,"cell":"lpaa5"}"#, "compare"),
            (r#"{"kind":"gear","n":8,"r":2,"overlap":2}"#, "gear"),
            (
                r#"{"kind":"blocks","config":"4:0:accurate,2:2:lpaa1","p":0.3,"cdf":true}"#,
                "blocks",
            ),
            (
                r#"{"kind":"dse","width":4,"p":0.3,"budget_power":3000,"threads":2}"#,
                "dse",
            ),
            (
                r#"{"kind":"profile","width":8,"synth":"random-walk","records":4096,"seed":7}"#,
                "profile",
            ),
            (
                r#"{"kind":"profile","width":4,"trace":[[3,5],[15,0,1],[7,7,true]]}"#,
                "profile",
            ),
            (
                r#"{"kind":"datapath","width":8,"cell":"lpaa5","coefficients":[1,2,1]}"#,
                "datapath",
            ),
            (
                r#"{"kind":"datapath","topology":"conv2d","width":8,"cell":"lpaa2","kernel":[[1,2],[2,4]],"pmf":true}"#,
                "datapath",
            ),
            (
                r#"{"kind":"datapath","topology":"multiplier","width":6,"cell":"lpaa1","p":0.3}"#,
                "datapath",
            ),
            (
                r#"{"kind":"batch","requests":[{"kind":"analyze","width":2,"cell":"lpaa1"}]}"#,
                "batch",
            ),
            (r#"{"kind":"stats"}"#, "stats"),
            (r#"{"kind":"shutdown"}"#, "shutdown"),
        ];
        for (line, kind) in cases {
            let req = Request::parse(line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(req.body.kind(), kind);
        }
    }

    #[test]
    fn id_is_preserved_any_json_type() {
        let req = Request::parse(r#"{"id":17,"kind":"stats"}"#).expect("valid");
        assert_eq!(req.id, Some(Json::Number(17.0)));
        let req = Request::parse(r#"{"id":"abc","kind":"stats"}"#).expect("valid");
        assert_eq!(req.id, Some(Json::from("abc")));
        let req = Request::parse(r#"{"kind":"stats"}"#).expect("valid");
        assert_eq!(req.id, None);
    }

    #[test]
    fn analyze_profile_fields() {
        let req = Request::parse(
            r#"{"kind":"analyze","width":2,"cell":"lpaa1","pa":[0.1,0.2],"pb":[0.3,0.4],"cin":0.9}"#,
        )
        .expect("valid");
        let RequestBody::Analyze(spec) = req.body else {
            panic!("wrong kind")
        };
        assert_eq!(*spec.profile.pa(1), 0.2);
        assert_eq!(*spec.profile.pb(0), 0.3);
        assert_eq!(*spec.profile.p_cin(), 0.9);
        assert_eq!(spec.chain.width(), 2);
    }

    #[test]
    fn custom_truth_table_cells_resolve() {
        let accurate = TruthTable::accurate().to_spec_string();
        let req = Request::parse(&format!(
            r#"{{"kind":"analyze","width":2,"cell":"{accurate}"}}"#
        ))
        .expect("valid");
        let RequestBody::Analyze(spec) = req.body else {
            panic!("wrong kind")
        };
        assert!(spec.chain.is_accurate());
    }

    #[test]
    fn simulate_mode_selection() {
        let exhaustive =
            Request::parse(r#"{"kind":"simulate","width":3,"cell":"lpaa1"}"#).expect("valid");
        let RequestBody::Simulate(s) = exhaustive.body else {
            panic!()
        };
        assert_eq!(s.mode, SimMode::Exhaustive);

        let mc = Request::parse(
            r#"{"kind":"simulate","width":3,"cell":"lpaa1","samples":10,"threads":2}"#,
        )
        .expect("valid");
        let RequestBody::Simulate(s) = mc.body else {
            panic!()
        };
        assert_eq!(
            s.mode,
            SimMode::MonteCarlo {
                samples: 10,
                seed: 0xDAC1_7ADD,
                threads: 2
            }
        );
    }

    #[test]
    fn dse_defaults_match_the_cli() {
        let req = Request::parse(r#"{"kind":"dse","width":3}"#).expect("valid");
        let RequestBody::Dse(spec) = req.body else {
            panic!("wrong kind")
        };
        let names: Vec<&str> = spec.candidates.iter().map(Cell::name).collect();
        assert_eq!(names, ["LPAA 1", "LPAA 2", "LPAA 5", "AccuFA (est.)"]);
        assert_eq!(spec.profile.width(), 3);
        assert_eq!(spec.budget_power, None);
        assert_eq!(spec.budget_area, None);
        assert_eq!(spec.threads, sealpaa_sim::default_threads());
        assert!(!spec.pareto);
        // The estimated-cost accurate cell is searchable under a budget.
        assert!(spec.candidates[3].characteristics().is_some());
    }

    #[test]
    fn batch_carries_per_item_errors_without_failing_the_batch() {
        let req = Request::parse(
            r#"{"id":"sweep","kind":"batch","requests":[
                {"id":1,"kind":"analyze","width":2,"cell":"lpaa1"},
                {"id":2,"kind":"analyze","width":0,"cell":"lpaa1"},
                {"id":3,"kind":"gear","n":8,"r":2,"overlap":2}
            ]}"#,
        )
        .expect("batch parses despite the bad item");
        assert_eq!(req.id, Some(Json::from("sweep")));
        let RequestBody::Batch(spec) = req.body else {
            panic!("wrong kind")
        };
        assert_eq!(spec.items.len(), 3);
        assert_eq!(spec.items[0].id, Some(Json::Number(1.0)));
        assert!(parsed(&spec.items[0]).is_ok());
        let err = parsed(&spec.items[1])
            .as_ref()
            .expect_err("width 0 is invalid");
        assert!(err.contains("1..=64"), "{err}");
        assert_eq!(
            parsed(&spec.items[2]).as_ref().map(RequestBody::kind),
            Ok("gear")
        );
    }

    /// Unwraps a batch item expected to carry its own parse (not a
    /// back-reference).
    fn parsed(item: &BatchItem) -> &Result<RequestBody, String> {
        match &item.body {
            BatchBody::Parsed(result) => result,
            BatchBody::DuplicateOf(j) => panic!("unexpected duplicate of item {j}"),
        }
    }

    #[test]
    fn batch_duplicates_back_reference_their_original() {
        let req = Request::parse(
            r#"{"kind":"batch","requests":[
                {"id":1,"kind":"analyze","width":2,"cell":"lpaa1"},
                {"id":2,"kind":"analyze","width":2,"cell":"lpaa1"},
                {"id":3,"kind":"analyze","width":3,"cell":"lpaa1"},
                {"id":4,"kind":"analyze","width":2,"cell":"lpaa1"}
            ]}"#,
        )
        .expect("valid batch");
        let RequestBody::Batch(spec) = req.body else {
            panic!("wrong kind")
        };
        assert!(parsed(&spec.items[0]).is_ok());
        assert_eq!(spec.items[1].body, BatchBody::DuplicateOf(0));
        assert!(parsed(&spec.items[2]).is_ok(), "width differs: no dedup");
        assert_eq!(spec.items[3].body, BatchBody::DuplicateOf(0));
        // Ids stay per-item even when the request body is shared.
        assert_eq!(spec.items[3].id, Some(Json::Number(4.0)));
    }

    #[test]
    fn batch_dedup_is_field_order_sensitive() {
        // Reordered keys are *not* treated as duplicates: the comparison is
        // structural on the raw rows, so only byte-identical shapes share a
        // parse. Both items still resolve to the same request.
        let req = Request::parse(
            r#"{"kind":"batch","requests":[
                {"kind":"analyze","width":2,"cell":"lpaa1"},
                {"kind":"analyze","cell":"lpaa1","width":2}
            ]}"#,
        )
        .expect("valid batch");
        let RequestBody::Batch(spec) = req.body else {
            panic!("wrong kind")
        };
        assert_eq!(parsed(&spec.items[0]), parsed(&spec.items[1]));
    }

    #[test]
    fn batch_rejects_control_and_nested_kinds_per_item() {
        let req = Request::parse(
            r#"{"kind":"batch","requests":[
                {"kind":"shutdown"},
                {"kind":"stats"},
                {"kind":"batch","requests":[{"kind":"stats"}]},
                17
            ]}"#,
        )
        .expect("the batch itself is well-formed");
        let RequestBody::Batch(spec) = req.body else {
            panic!("wrong kind")
        };
        for (item, needle) in spec.items.iter().zip([
            "not allowed inside a batch",
            "not allowed inside a batch",
            "not allowed inside a batch",
            "must be a JSON object",
        ]) {
            let err = parsed(item).as_ref().expect_err("rejected item");
            assert!(err.contains(needle), "{err} (wanted {needle})");
        }
    }

    #[test]
    fn batch_structural_errors_fail_the_whole_request() {
        for (line, needle) in [
            (r#"{"kind":"batch"}"#, "\"requests\""),
            (r#"{"kind":"batch","requests":{}}"#, "\"requests\""),
            (r#"{"kind":"batch","requests":[]}"#, "at least one"),
        ] {
            let err = Request::parse(line).expect_err(line);
            assert!(err.contains(needle), "{line}: {err}");
        }
        let too_many: Vec<String> = (0..=MAX_BATCH_ITEMS)
            .map(|_| r#"{"kind":"stats"}"#.to_owned())
            .collect();
        let line = format!(r#"{{"kind":"batch","requests":[{}]}}"#, too_many.join(","));
        let err = Request::parse(&line).expect_err("over the item limit");
        assert!(err.contains("limit is"), "{err}");
    }

    #[test]
    fn sub_ok_response_has_the_pinned_shape() {
        let sub = sub_ok_response(
            Some(&Json::Number(4.0)),
            "analyze",
            true,
            Json::object().field("x", 1u64).build(),
        );
        let parsed = Json::parse(&sub.render()).expect("own output parses");
        assert_eq!(parsed.get("id").and_then(Json::as_u64), Some(4));
        assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(parsed.get("kind").and_then(Json::as_str), Some("analyze"));
        assert_eq!(parsed.get("cached").and_then(Json::as_bool), Some(true));
        assert!(
            parsed.get("micros").is_none(),
            "sub-responses carry no micros"
        );
    }

    #[test]
    fn malformed_requests_are_rejected_with_messages() {
        for (line, needle) in [
            ("not json", "invalid JSON"),
            ("[1,2]", "must be a JSON object"),
            (r#"{"id":1}"#, "kind"),
            (r#"{"kind":"frobnicate"}"#, "unknown kind"),
            // The advertised vocabulary includes every served kind.
            (r#"{"kind":"frobnicate"}"#, "profile"),
            (r#"{"kind":"frobnicate"}"#, "batch"),
            (r#"{"kind":"analyze"}"#, "\"cell\""),
            (r#"{"kind":"analyze","cell":"lpaa1"}"#, "\"width\""),
            (r#"{"kind":"analyze","width":0,"cell":"lpaa1"}"#, "1..=64"),
            (
                r#"{"kind":"analyze","width":2,"cell":"nope"}"#,
                "unknown cell",
            ),
            (
                r#"{"kind":"analyze","width":2,"cell":"lpaa1","p":1.5}"#,
                "[0, 1]",
            ),
            (
                r#"{"kind":"analyze","width":3,"cell":"lpaa1","pa":[0.5]}"#,
                "3 stages",
            ),
            (
                r#"{"kind":"analyze","width":2,"cell":"lpaa1","cells":["lpaa1","lpaa1"]}"#,
                "mutually exclusive",
            ),
            (
                r#"{"kind":"simulate","width":2,"cell":"lpaa1","mode":"quantum"}"#,
                "unknown mode",
            ),
            (r#"{"kind":"gear","n":8}"#, "\"r\""),
            (r#"{"kind":"blocks"}"#, "\"config\""),
            (r#"{"kind":"blocks","config":"4:9:accurate"}"#, "\"config\""),
            (
                r#"{"kind":"blocks","config":"2:0:accurate,2:1:accurate","pa":[0.5]}"#,
                "4 stages",
            ),
            (r#"{"kind":"dse"}"#, "\"width\""),
            (r#"{"kind":"dse","width":0}"#, "1..=64"),
            (
                r#"{"kind":"dse","width":4,"candidates":[]}"#,
                "at least one",
            ),
            (
                r#"{"kind":"dse","width":4,"threads":0}"#,
                "positive integer",
            ),
            (
                r#"{"kind":"dse","width":4,"budget_power":-1}"#,
                "non-negative",
            ),
            (r#"{"kind":"profile"}"#, "\"width\""),
            (
                r#"{"kind":"profile","width":65,"synth":"uniform"}"#,
                "1..=64",
            ),
            (r#"{"kind":"profile","width":4}"#, "\"synth\" or \"trace\""),
            (
                r#"{"kind":"profile","width":4,"synth":"uniform","trace":[[1,2]]}"#,
                "mutually exclusive",
            ),
            (
                r#"{"kind":"profile","width":4,"synth":"polka"}"#,
                "unknown workload",
            ),
            (
                r#"{"kind":"profile","width":4,"synth":"uniform","records":0}"#,
                "positive integer",
            ),
            (
                r#"{"kind":"profile","width":4,"synth":"uniform","records":999999999999}"#,
                "at most",
            ),
            (r#"{"kind":"profile","width":4,"trace":[]}"#, "at least one"),
            (
                r#"{"kind":"profile","width":4,"trace":[[1,2,3,4]]}"#,
                "[a, b] or [a, b, cin]",
            ),
            (
                r#"{"kind":"profile","width":4,"trace":[[16,2]]}"#,
                "does not fit width",
            ),
            (r#"{"kind":"profile","width":4,"trace":[[1,2,7]]}"#, "cin"),
            (r#"{"kind":"datapath","cell":"lpaa1"}"#, "\"width\""),
            (r#"{"kind":"datapath","width":8}"#, "\"cell\""),
            (
                r#"{"kind":"datapath","width":33,"cell":"lpaa1","coefficients":[1]}"#,
                "1..=32",
            ),
            (
                r#"{"kind":"datapath","width":8,"cell":"lpaa1"}"#,
                "\"coefficients\"",
            ),
            (
                r#"{"kind":"datapath","width":8,"cell":"lpaa1","coefficients":[0,0]}"#,
                "non-zero tap",
            ),
            (
                r#"{"kind":"datapath","topology":"conv2d","width":8,"cell":"lpaa1","kernel":[[1,2],[3]]}"#,
                "equal length",
            ),
            (
                r#"{"kind":"datapath","topology":"torus","width":8,"cell":"lpaa1"}"#,
                "unknown topology",
            ),
        ] {
            let err = Request::parse(line).expect_err(line);
            assert!(err.contains(needle), "{line}: {err} (wanted {needle})");
        }
    }

    #[test]
    fn responses_round_trip_through_the_parser() {
        let ok = ok_response(
            Some(&Json::Number(3.0)),
            "analyze",
            true,
            125,
            Json::object().field("error_probability", 0.25).build(),
        );
        let parsed = Json::parse(&ok.render()).expect("own output parses");
        assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(parsed.get("cached").and_then(Json::as_bool), Some(true));
        assert_eq!(parsed.get("micros").and_then(Json::as_u64), Some(125));
        assert_eq!(
            parsed
                .get("result")
                .and_then(|r| r.get("error_probability"))
                .and_then(Json::as_f64),
            Some(0.25)
        );

        let err = error_response(None, "boom \"quoted\"");
        let parsed = Json::parse(&err.render()).expect("own output parses");
        assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            parsed.get("error").and_then(Json::as_str),
            Some("boom \"quoted\"")
        );
    }

    #[test]
    fn oversized_lines_are_rejected() {
        let huge = format!(
            r#"{{"kind":"stats","pad":"{}"}}"#,
            "x".repeat(MAX_LINE_BYTES)
        );
        assert!(Request::parse(&huge)
            .expect_err("too big")
            .contains("bytes"));
    }
}
