//! The daemon: TCP listener, connection threads, and the `--stdio` mode.
//!
//! One thread accepts connections; each connection gets a reader thread that
//! parses newline-delimited requests and writes newline-delimited responses.
//! Analysis work never runs on connection threads — it is submitted to the
//! shared [`WorkerPool`], whose bounded queue pushes back on flooding
//! clients. Results are cached under their [canonical key](crate::canonical)
//! so a repeated request is answered without recomputation (`"cached": true`
//! in the response).
//!
//! # Shutdown
//!
//! A `{"kind":"shutdown"}` request (or end-of-input in `--stdio` mode) stops
//! the daemon gracefully: the listener stops accepting, the worker pool
//! drains every job it has already accepted, in-flight responses are
//! written, and only then are the remaining connections closed.

use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use sealpaa_cells::StandardCell;

use crate::cache::ResultCache;
use crate::canonical::cache_key;
use crate::json::Json;
use crate::metrics::Metrics;
use crate::pool::WorkerPool;
use crate::protocol::{
    error_response, ok_response, AdderSpec, DseSpec, GearSpec, Request, RequestBody, SimMode,
    SimulateSpec,
};

/// Daemon configuration; [`Default`] gives sensible local settings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:4517`. Port 0 picks an ephemeral
    /// port (query it via [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads executing analyses.
    pub threads: usize,
    /// Total result-cache capacity in entries (0 disables caching).
    pub cache_entries: usize,
    /// Bounded job-queue capacity; submissions beyond it block.
    pub queue_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:4517".to_owned(),
            threads: 4,
            cache_entries: 1024,
            queue_capacity: 64,
        }
    }
}

/// Everything shared between connection threads.
struct ServerState {
    cache: ResultCache,
    metrics: Metrics,
    pool: WorkerPool,
    threads: usize,
    shutdown: AtomicBool,
}

impl ServerState {
    fn new(config: &ServerConfig) -> ServerState {
        ServerState {
            cache: ResultCache::new(config.cache_entries),
            metrics: Metrics::new(),
            pool: WorkerPool::new(config.threads, config.queue_capacity),
            threads: config.threads.max(1),
            shutdown: AtomicBool::new(false),
        }
    }
}

/// A bound-but-not-yet-running daemon.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds the listen socket and spawns the worker pool.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the address cannot be bound.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let addr = config.addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::other(format!("unresolvable address {}", config.addr))
        })?;
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        Ok(Server {
            listener,
            local_addr,
            state: Arc::new(ServerState::new(&config)),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Serves until a `shutdown` request arrives, then drains and returns.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the accept loop fails (per-client
    /// errors only terminate that client).
    pub fn run(self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let connections: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        while !self.state.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    stream.set_nonblocking(false)?;
                    if let Ok(clone) = stream.try_clone() {
                        connections.lock().expect("connection registry").push(clone);
                    }
                    let state = Arc::clone(&self.state);
                    handles.push(std::thread::spawn(move || {
                        let reader = BufReader::new(match stream.try_clone() {
                            Ok(s) => s,
                            Err(_) => return,
                        });
                        let mut writer = stream;
                        serve_lines(&state, reader, &mut writer).ok();
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => return Err(e),
            }
        }
        // Drain: stop taking new work, finish everything already accepted …
        self.state.pool.shutdown();
        // … then unblock readers stuck on idle connections. Only the read
        // half is shut — a connection thread may still be writing the
        // response for a job the drain just finished, and that write must
        // land before the socket closes (when the joined thread drops it).
        for stream in connections.lock().expect("connection registry").iter() {
            stream.shutdown(Shutdown::Read).ok();
        }
        for handle in handles {
            handle.join().ok();
        }
        Ok(())
    }
}

/// Runs the protocol over an arbitrary line stream — the `--stdio` mode.
/// Returns at end-of-input or after a `shutdown` request, draining the
/// worker pool before returning.
///
/// # Errors
///
/// Returns the underlying I/O error if reading or writing fails.
pub fn run_stdio<R: BufRead, W: Write>(
    config: &ServerConfig,
    input: R,
    output: &mut W,
) -> std::io::Result<()> {
    let state = Arc::new(ServerState::new(config));
    serve_lines(&state, input, output)?;
    state.pool.shutdown();
    Ok(())
}

/// The per-connection loop shared by TCP and stdio transports.
fn serve_lines<R: BufRead, W: Write>(
    state: &Arc<ServerState>,
    input: R,
    output: &mut W,
) -> std::io::Result<()> {
    for line in input.lines() {
        let line = match line {
            Ok(line) => line,
            // A reset/closed socket just ends this connection.
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        let (response, shutdown) = process_line(state, &line);
        writeln!(output, "{response}")?;
        output.flush()?;
        if shutdown {
            state.shutdown.store(true, Ordering::SeqCst);
            break;
        }
    }
    Ok(())
}

/// Serves one request line. Returns the rendered response and whether the
/// request asked the daemon to stop.
fn process_line(state: &Arc<ServerState>, line: &str) -> (String, bool) {
    let started = Instant::now();
    let request = match Request::parse(line) {
        Ok(request) => request,
        Err(message) => {
            state.metrics.record_error();
            // The id is worth salvaging even from an invalid request.
            let id = Json::parse(line).ok().and_then(|d| d.get("id").cloned());
            return (error_response(id.as_ref(), &message).render(), false);
        }
    };
    let id = request.id;
    let kind = request.body.kind();

    // Control requests are served inline: they must work even when every
    // worker is busy (that is exactly when you want `stats`).
    match request.body {
        RequestBody::Stats => {
            let result = stats_result(state);
            let micros = started.elapsed().as_micros() as u64;
            state.metrics.record_ok(micros);
            return (
                ok_response(id.as_ref(), kind, false, micros, result).render(),
                false,
            );
        }
        RequestBody::Shutdown => {
            let micros = started.elapsed().as_micros() as u64;
            state.metrics.record_ok(micros);
            let result = Json::object().field("stopping", true).build();
            return (
                ok_response(id.as_ref(), kind, false, micros, result).render(),
                true,
            );
        }
        _ => {}
    }

    let key = cache_key(&request.body);
    if let Some(key) = &key {
        if let Some(rendered) = state.cache.get(key) {
            let result = Json::parse(&rendered).expect("cache holds rendered JSON");
            let micros = started.elapsed().as_micros() as u64;
            state.metrics.record_ok(micros);
            return (
                ok_response(id.as_ref(), kind, true, micros, result).render(),
                false,
            );
        }
    }

    // Miss: run the analysis on a pool worker and wait for its answer. The
    // blocking `submit` (bounded queue) and the blocking `recv` are the
    // backpressure path that keeps a flooding client on its own socket.
    let (tx, rx) = mpsc::channel::<Result<Json, String>>();
    let body = request.body;
    let submitted = state.pool.submit(Box::new(move || {
        tx.send(compute_result(&body)).ok();
    }));
    if submitted.is_err() {
        state.metrics.record_error();
        return (
            error_response(id.as_ref(), "server is shutting down").render(),
            false,
        );
    }
    match rx.recv() {
        Ok(Ok(result)) => {
            if let Some(key) = key {
                state.cache.insert(key, result.render());
            }
            let micros = started.elapsed().as_micros() as u64;
            state.metrics.record_ok(micros);
            (
                ok_response(id.as_ref(), kind, false, micros, result).render(),
                false,
            )
        }
        Ok(Err(message)) => {
            state.metrics.record_error();
            (error_response(id.as_ref(), &message).render(), false)
        }
        Err(_) => {
            state.metrics.record_error();
            (
                error_response(id.as_ref(), "worker dropped the job").render(),
                false,
            )
        }
    }
}

fn stats_result(state: &ServerState) -> Json {
    let cache = state.cache.stats();
    let metrics = state.metrics.snapshot();
    Json::object()
        .field("requests", metrics.requests)
        .field("errors", metrics.errors)
        .field("queue_depth", state.pool.depth() as u64)
        .field("workers", state.threads as u64)
        .field("p50_micros", metrics.p50_micros)
        .field("p99_micros", metrics.p99_micros)
        .field(
            "cache",
            Json::object()
                .field("hits", cache.hits)
                .field("misses", cache.misses)
                .field("evictions", cache.evictions)
                .field("entries", cache.entries as u64)
                .build(),
        )
        .build()
}

/// Runs the engine for one queued request kind and renders its result.
fn compute_result(body: &RequestBody) -> Result<Json, String> {
    match body {
        RequestBody::Analyze(spec) => analyze_result(spec),
        RequestBody::Simulate(spec) => simulate_result(spec),
        RequestBody::Compare(spec) => compare_result(spec),
        RequestBody::Gear(spec) => gear_result(spec),
        RequestBody::Dse(spec) => dse_result(spec),
        RequestBody::Stats | RequestBody::Shutdown => {
            unreachable!("control requests are served inline")
        }
    }
}

fn analyze_result(spec: &AdderSpec) -> Result<Json, String> {
    let analysis = sealpaa_core::analyze(&spec.chain, &spec.profile).map_err(|e| e.to_string())?;
    let stages: Vec<Json> = analysis
        .stages()
        .iter()
        .map(|s| {
            Json::object()
                .field("stage", s.stage)
                .field("cell", spec.chain.stage(s.stage).name())
                .field("p_carry_and_success", *s.carry_out.p_carry_and_success())
                .field(
                    "p_not_carry_and_success",
                    *s.carry_out.p_not_carry_and_success(),
                )
                .field("success_through", s.success_through)
                .build()
        })
        .collect();
    Ok(Json::object()
        .field("adder", spec.chain.to_string())
        .field("width", spec.chain.width())
        .field("error_probability", analysis.error_probability())
        .field("success_probability", analysis.success_probability())
        .field("stages", stages)
        .build())
}

fn simulate_result(spec: &SimulateSpec) -> Result<Json, String> {
    let adder = &spec.adder;
    match spec.mode {
        SimMode::Exhaustive => {
            // Bitsliced + threaded: all integer outputs (cases, error
            // counts) are identical for any thread count; only f64-weighted
            // fields can move in the last ulp.
            let report = sealpaa_sim::exhaustive_with(
                &adder.chain,
                &adder.profile,
                sealpaa_sim::default_threads(),
            )
            .map_err(|e| e.to_string())?;
            Ok(Json::object()
                .field("mode", "exhaustive")
                .field("adder", adder.chain.to_string())
                .field("cases", report.cases)
                .field("error_cases", report.error_cases)
                .field("error_probability", report.output_error_probability)
                .field("stage_error_probability", report.stage_error_probability)
                .field("mean_error_distance", report.metrics.mean_error_distance)
                .field(
                    "mean_absolute_error_distance",
                    report.metrics.mean_absolute_error_distance,
                )
                .field(
                    "max_absolute_error_distance",
                    report.metrics.max_absolute_error_distance,
                )
                .build())
        }
        SimMode::MonteCarlo {
            samples,
            seed,
            threads,
        } => {
            let config = sealpaa_sim::MonteCarloConfig {
                samples,
                seed,
                threads,
            };
            let report = sealpaa_sim::monte_carlo(&adder.chain, &adder.profile, config)
                .map_err(|e| e.to_string())?;
            Ok(Json::object()
                .field("mode", "monte_carlo")
                .field("adder", adder.chain.to_string())
                .field("samples", report.samples)
                .field("seed", seed)
                .field("threads", threads as u64)
                .field("error_samples", report.error_samples)
                .field("error_probability", report.error_probability())
                .field("standard_error", report.standard_error)
                .field("mean_error_distance", report.metrics.mean_error_distance)
                .build())
        }
    }
}

fn compare_result(spec: &AdderSpec) -> Result<Json, String> {
    let analysis = sealpaa_core::analyze(&spec.chain, &spec.profile).map_err(|e| e.to_string())?;
    let (baseline, terms) = sealpaa_inclexcl::error_probability(&spec.chain, &spec.profile)
        .map_err(|e| e.to_string())?;
    let proposed = analysis.error_probability();
    Ok(Json::object()
        .field("adder", spec.chain.to_string())
        .field("width", spec.chain.width())
        .field("proposed", proposed)
        .field("inclusion_exclusion", baseline)
        .field("terms", terms)
        .field("abs_difference", (proposed - baseline).abs())
        .build())
}

fn gear_result(spec: &GearSpec) -> Result<Json, String> {
    let config =
        sealpaa_gear::GearConfig::new(spec.n, spec.r, spec.overlap).map_err(|e| e.to_string())?;
    let pa = vec![spec.p; spec.n];
    let p_error =
        sealpaa_gear::error_probability(&config, &pa, &pa, spec.cin).map_err(|e| e.to_string())?;
    let mut obj = Json::object()
        .field("n", spec.n)
        .field("r", spec.r)
        .field("overlap", spec.overlap)
        .field("blocks_total", config.block_count())
        .field("error_probability", p_error);
    if spec.blocks {
        let blocks = sealpaa_gear::block_error_probabilities(&config, &pa, &pa, spec.cin)
            .map_err(|e| e.to_string())?;
        obj = obj.field(
            "block_error_probabilities",
            blocks.into_iter().map(Json::from).collect::<Vec<_>>(),
        );
    }
    Ok(obj.build())
}

fn dse_result(spec: &DseSpec) -> Result<Json, String> {
    let budget = sealpaa_explore::Budget {
        max_power_nw: spec.budget_power,
        max_area_ge: spec.budget_area,
    };
    let design_json = |design: &sealpaa_explore::HybridDesign| {
        Json::object()
            .field("chain", design.chain.to_string())
            .field(
                "cells",
                design
                    .chain
                    .iter()
                    .map(|c| Json::from(c.name()))
                    .collect::<Vec<_>>(),
            )
            .field("error_probability", design.evaluation.error_probability)
            .field("power_nw", design.evaluation.power_nw)
            .field("area_ge", design.evaluation.area_ge)
            .build()
    };
    // The result is a pure function of (candidates, profile, budget, pareto):
    // the search merges worker results in lexicographic design order, so
    // `threads` affects wall-clock only — which is why it is reported here
    // but excluded from the cache key.
    let best = sealpaa_explore::exhaustive_best_with(
        &spec.candidates,
        &spec.profile,
        &budget,
        spec.threads,
    )
    .map_err(|e| e.to_string())?;
    let mut obj = Json::object()
        .field("width", spec.profile.width() as u64)
        .field(
            "candidates",
            spec.candidates
                .iter()
                .map(|c| Json::from(c.name()))
                .collect::<Vec<_>>(),
        )
        .field(
            "best",
            match &best {
                None => Json::Null,
                Some(design) => design_json(design),
            },
        );
    if spec.pareto {
        let designs =
            sealpaa_explore::exhaustive_designs(&spec.candidates, &spec.profile, spec.threads)
                .map_err(|e| e.to_string())?;
        let front = sealpaa_explore::pareto_front(designs);
        obj = obj.field("pareto", front.iter().map(design_json).collect::<Vec<_>>());
    }
    Ok(obj.build())
}

/// Resolves a human-readable list of the standard cells — used by the CLI's
/// `serve --help` so the daemon and CLI agree on the vocabulary.
pub fn standard_cell_names() -> Vec<&'static str> {
    StandardCell::ALL.iter().map(|c| c.name()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn run_lines(config: &ServerConfig, lines: &str) -> Vec<Json> {
        let mut out = Vec::new();
        run_stdio(config, Cursor::new(lines.to_owned()), &mut out).expect("stdio run");
        String::from_utf8(out)
            .expect("utf8")
            .lines()
            .map(|l| Json::parse(l).expect("valid response JSON"))
            .collect()
    }

    #[test]
    fn stdio_serves_analyze_and_matches_the_library() {
        let responses = run_lines(
            &ServerConfig::default(),
            "{\"id\":1,\"kind\":\"analyze\",\"width\":2,\"cell\":\"lpaa1\",\"p\":0.1}\n",
        );
        assert_eq!(responses.len(), 1);
        let r = &responses[0];
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(r.get("cached").and_then(Json::as_bool), Some(false));
        let served = r
            .get("result")
            .and_then(|x| x.get("error_probability"))
            .and_then(Json::as_f64)
            .expect("error probability");
        // Paper Table 7: 2-bit LPAA1 at p = 0.1.
        assert!((served - 0.3078).abs() < 1e-4, "served {served}");
    }

    #[test]
    fn repeated_request_is_served_from_cache() {
        let line = "{\"kind\":\"analyze\",\"width\":4,\"cell\":\"lpaa2\"}\n";
        let responses = run_lines(
            &ServerConfig::default(),
            &format!("{line}{line}{{\"kind\":\"stats\"}}\n"),
        );
        assert_eq!(responses.len(), 3);
        assert_eq!(
            responses[0].get("cached").and_then(Json::as_bool),
            Some(false)
        );
        assert_eq!(
            responses[1].get("cached").and_then(Json::as_bool),
            Some(true)
        );
        assert_eq!(
            responses[0].get("result"),
            responses[1].get("result"),
            "cache must return the identical result"
        );
        let stats = responses[2].get("result").expect("stats result");
        assert_eq!(
            stats
                .get("cache")
                .and_then(|c| c.get("hits"))
                .and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn shutdown_request_stops_the_stream_and_later_lines_are_ignored() {
        let responses = run_lines(
            &ServerConfig::default(),
            "{\"kind\":\"shutdown\"}\n{\"kind\":\"stats\"}\n",
        );
        assert_eq!(responses.len(), 1, "no responses after shutdown");
        assert_eq!(
            responses[0]
                .get("result")
                .and_then(|r| r.get("stopping"))
                .and_then(Json::as_bool),
            Some(true)
        );
    }

    #[test]
    fn errors_are_reported_per_request_and_do_not_kill_the_stream() {
        let responses = run_lines(
            &ServerConfig::default(),
            "{\"kind\":\"analyze\"}\nnot json at all\n{\"id\":9,\"kind\":\"stats\"}\n",
        );
        assert_eq!(responses.len(), 3);
        assert_eq!(responses[0].get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(responses[1].get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(responses[2].get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(responses[2].get("id").and_then(Json::as_u64), Some(9));
        assert_eq!(
            responses[2]
                .get("result")
                .and_then(|r| r.get("errors"))
                .and_then(Json::as_u64),
            Some(2)
        );
    }

    #[test]
    fn compare_agrees_with_the_inclusion_exclusion_baseline() {
        let responses = run_lines(
            &ServerConfig::default(),
            "{\"kind\":\"compare\",\"width\":5,\"cell\":\"lpaa3\",\"p\":0.3}\n",
        );
        let result = responses[0].get("result").expect("result");
        let diff = result
            .get("abs_difference")
            .and_then(Json::as_f64)
            .expect("difference");
        assert!(diff < 1e-12, "methods disagree by {diff}");
        assert_eq!(result.get("terms").and_then(Json::as_u64), Some(31));
    }

    #[test]
    fn monte_carlo_is_deterministic_per_seed_and_distinct_across_seeds() {
        let mk = |seed: u64| {
            format!("{{\"kind\":\"simulate\",\"width\":8,\"cell\":\"lpaa6\",\"samples\":20000,\"seed\":{seed}}}\n")
        };
        let p_of = |responses: &[Json]| {
            responses[0]
                .get("result")
                .and_then(|r| r.get("error_probability"))
                .and_then(Json::as_f64)
                .expect("estimate")
        };
        let config = ServerConfig {
            cache_entries: 0, // force recomputation: determinism, not caching
            ..Default::default()
        };
        let a1 = p_of(&run_lines(&config, &mk(7)));
        let a2 = p_of(&run_lines(&config, &mk(7)));
        let b = p_of(&run_lines(&config, &mk(8)));
        assert_eq!(a1, a2, "same seed must reproduce exactly");
        assert_ne!(a1, b, "different seeds should differ");
    }

    #[test]
    fn dse_finds_the_budgeted_best_design() {
        let responses = run_lines(
            &ServerConfig::default(),
            "{\"kind\":\"dse\",\"width\":3,\"p\":0.3,\"budget_power\":0,\"threads\":2}\n",
        );
        let best = responses[0]
            .get("result")
            .and_then(|r| r.get("best"))
            .expect("best design");
        // Only LPAA 5 (0 nW) chains fit a zero power budget.
        let cells = best.get("cells").and_then(Json::as_array).expect("cells");
        assert_eq!(cells.len(), 3);
        assert!(cells.iter().all(|c| c.as_str() == Some("LPAA 5")));
        assert_eq!(best.get("power_nw").and_then(Json::as_f64), Some(0.0));
    }

    #[test]
    fn dse_requests_differing_only_in_threads_share_one_cache_entry() {
        // The satellite contract: `threads` cannot change the result, so it
        // is not in the canonical key — the t=3 request must be a cache hit
        // on the t=1 entry, returning the identical rendered result.
        let mk = |threads: usize| {
            format!("{{\"kind\":\"dse\",\"width\":4,\"p\":0.3,\"pareto\":true,\"threads\":{threads}}}\n")
        };
        let responses = run_lines(&ServerConfig::default(), &format!("{}{}", mk(1), mk(3)));
        assert_eq!(responses.len(), 2);
        assert_eq!(
            responses[0].get("cached").and_then(Json::as_bool),
            Some(false)
        );
        assert_eq!(
            responses[1].get("cached").and_then(Json::as_bool),
            Some(true),
            "a different thread count must hit the same cache entry"
        );
        assert_eq!(responses[0].get("result"), responses[1].get("result"));
    }

    #[test]
    fn dse_result_is_thread_count_invariant_even_uncached() {
        // With caching disabled, both thread counts really run — and the
        // lexicographic merge makes the answers identical anyway.
        let config = ServerConfig {
            cache_entries: 0,
            ..Default::default()
        };
        let mk = |threads: usize| {
            format!("{{\"kind\":\"dse\",\"width\":4,\"p\":0.3,\"pareto\":true,\"threads\":{threads}}}\n")
        };
        let a = run_lines(&config, &mk(1));
        let b = run_lines(&config, &mk(3));
        assert_eq!(a[0].get("result"), b[0].get("result"));
    }

    #[test]
    fn gear_result_includes_blocks_on_request() {
        let responses = run_lines(
            &ServerConfig::default(),
            "{\"kind\":\"gear\",\"n\":8,\"r\":2,\"overlap\":2,\"blocks\":true}\n",
        );
        let result = responses[0].get("result").expect("result");
        let blocks = result
            .get("block_error_probabilities")
            .and_then(Json::as_array)
            .expect("blocks");
        let config = sealpaa_gear::GearConfig::new(8, 2, 2).expect("valid");
        assert_eq!(blocks.len(), config.block_count() - 1);
        let direct =
            sealpaa_gear::error_probability(&config, &[0.5; 8], &[0.5; 8], 0.0).expect("direct");
        assert_eq!(
            result.get("error_probability").and_then(Json::as_f64),
            Some(direct)
        );
    }
}
