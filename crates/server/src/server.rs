//! The daemon: TCP listener, connection serving, and the `--stdio` mode.
//!
//! TCP connections are served under one of two I/O models ([`IoModel`]).
//! Under the default **event model** (Linux), one poll thread multiplexes
//! every socket through `epoll` (see the `event` module): connections cost a
//! registry entry instead of a thread, requests on one connection may be
//! pipelined (responses come back out of order, tagged by the
//! client-supplied `id`), and a `batch` request answers many sub-requests in
//! one line. Under the legacy **threads model** each connection gets a
//! blocking reader thread that serves strictly one request at a time.
//!
//! In both models analysis work never runs on the connection layer — it is
//! submitted to the shared [`WorkerPool`], whose bounded queue pushes back
//! on flooding clients. Results are cached under their
//! [canonical key](crate::canonical) so a repeated request is answered
//! without recomputation (`"cached": true` in the response).
//!
//! # Robustness
//!
//! Every per-connection resource is bounded:
//!
//! * request lines are length-limited **while being read** — a newline-free
//!   flood is discarded as it streams in (memory stays bounded by the
//!   `BufReader` block size) and answered with a structured error;
//! * idle connections are subject to a read deadline and stalled writers to
//!   a write deadline, so a dead peer can never pin a thread;
//! * concurrent connections are capped — connections beyond the cap get a
//!   structured "overloaded" response and an immediate close (shedding);
//! * finished connection threads are reaped and closed sockets dropped from
//!   the registry as the accept loop runs, so neither grows with connection
//!   churn.
//!
//! # Shutdown
//!
//! A `{"kind":"shutdown"}` request (or end-of-input in `--stdio` mode) stops
//! the daemon gracefully: the listener stops accepting, the worker pool
//! drains every job it has already accepted, in-flight responses are
//! written, and only then are the remaining connections closed.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use sealpaa_cells::StandardCell;

use crate::cache::ResultCache;
use crate::canonical::cache_key;
use crate::json::Json;
use crate::metrics::{kind_index, Metrics, KIND_NAMES};
use crate::pool::WorkerPool;
use crate::protocol::{
    body_from_doc, error_response, json_equal_ignoring_id, ok_response, render_batch_ok_response,
    render_ok_response, write_sub_ok_response, AdderSpec, BatchBody, BatchSpec, BlocksSpec,
    DatapathSpec, DatapathTopology, DseSpec, GearSpec, ProfileSource, ProfileSpec, RequestBody,
    SimMode, SimulateSpec, MAX_LINE_BYTES,
};
use crate::snapshot::{read_snapshot, write_snapshot, SnapshotError, SnapshotLimits};

/// How the daemon serves TCP connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoModel {
    /// One poll thread multiplexes every socket through a readiness API
    /// (`epoll`; Linux only). Idle connections cost a registry entry, not a
    /// thread; requests may be pipelined per connection.
    Event,
    /// One blocking reader thread per connection — the legacy model, kept
    /// for comparison and for platforms without `epoll`.
    Threads,
}

impl IoModel {
    /// The wire/CLI name of the model.
    pub fn name(self) -> &'static str {
        match self {
            IoModel::Event => "event",
            IoModel::Threads => "threads",
        }
    }
}

impl Default for IoModel {
    /// The event model where the platform supports it, threads elsewhere.
    fn default() -> IoModel {
        if cfg!(target_os = "linux") {
            IoModel::Event
        } else {
            IoModel::Threads
        }
    }
}

impl std::str::FromStr for IoModel {
    type Err = String;

    fn from_str(s: &str) -> Result<IoModel, String> {
        match s {
            "event" => Ok(IoModel::Event),
            "threads" => Ok(IoModel::Threads),
            other => Err(format!(
                "unknown io model {other:?} (expected event or threads)"
            )),
        }
    }
}

/// Daemon configuration; [`Default`] gives sensible local settings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:4517`. Port 0 picks an ephemeral
    /// port (query it via [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads executing analyses.
    pub threads: usize,
    /// Total result-cache capacity in entries (0 disables caching).
    pub cache_entries: usize,
    /// Bounded job-queue capacity; submissions beyond it block.
    pub queue_capacity: usize,
    /// Maximum concurrently served TCP connections; connections beyond it
    /// are shed with a structured "overloaded" error (0 disables the cap).
    pub max_connections: usize,
    /// Maximum request-line length in bytes, enforced while reading: longer
    /// lines are discarded as they stream in and answered with a structured
    /// error instead of being buffered.
    pub max_line_bytes: usize,
    /// Idle deadline in milliseconds: a connection that sends no complete
    /// request line for this long is answered with a structured timeout
    /// error and closed (0 disables the deadline; TCP only).
    pub idle_timeout_ms: u64,
    /// Write deadline in milliseconds: a peer that stops reading its
    /// responses for this long is disconnected (0 disables; TCP only).
    pub write_timeout_ms: u64,
    /// Emit one NDJSON access-log line per request (timestamp-free fields
    /// only, so traces are byte-reproducible). [`Server::bind`] and
    /// [`run_stdio`] send the trace to stderr; see
    /// [`Server::bind_with_trace`] / [`run_stdio_with_trace`] to capture it.
    pub trace: bool,
    /// The TCP connection-serving model (ignored by `--stdio`, which always
    /// runs the blocking line loop).
    pub io_model: IoModel,
    /// Persist the result cache to this file (the warm-restart snapshot):
    /// loaded at startup if present and valid, rewritten periodically and on
    /// drain. `None` disables persistence.
    pub cache_snapshot: Option<String>,
    /// How often (in milliseconds) the running daemon rewrites the snapshot
    /// when the cache has changed; 0 keeps only the on-drain write.
    pub snapshot_interval_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:4517".to_owned(),
            threads: 4,
            cache_entries: 1024,
            queue_capacity: 64,
            max_connections: 256,
            max_line_bytes: MAX_LINE_BYTES,
            idle_timeout_ms: 60_000,
            write_timeout_ms: 60_000,
            trace: false,
            io_model: IoModel::default(),
            cache_snapshot: None,
            snapshot_interval_ms: 30_000,
        }
    }
}

/// A writer receiving the NDJSON access log.
pub type TraceSink = Box<dyn Write + Send>;

/// Everything shared between connection threads (or, under the event model,
/// between the poll thread and the workers).
pub(crate) struct ServerState {
    pub(crate) cache: ResultCache,
    pub(crate) metrics: Metrics,
    pub(crate) pool: WorkerPool,
    pub(crate) threads: usize,
    pub(crate) max_line_bytes: usize,
    pub(crate) shutdown: AtomicBool,
    /// The wire name of the serving model, reported by `stats`.
    pub(crate) io_model: &'static str,
    /// Live TCP connections by id — the shutdown sweep unblocks exactly
    /// these readers, and each serving thread prunes its own entry on exit
    /// (via [`ConnectionGuard`]) so the registry never outgrows the
    /// connection cap. Unused under the event model, whose connections live
    /// in the poll thread's own registry (reported via the
    /// `registered_fds` gauge).
    pub(crate) connections: Mutex<HashMap<u64, TcpStream>>,
    pub(crate) trace: Option<Mutex<TraceSink>>,
    /// Warm-restart persistence, when `--cache-snapshot` is set.
    pub(crate) snapshot: Option<SnapshotState>,
}

/// The daemon's snapshot persistence state: where to write, how often, and
/// what was last written (tracked by the cache's insert counter so an
/// unchanged cache is never rewritten).
pub(crate) struct SnapshotState {
    path: PathBuf,
    interval: Option<Duration>,
    clock: Mutex<SnapshotClock>,
}

struct SnapshotClock {
    last_attempt: Instant,
    last_inserts: u64,
}

impl ServerState {
    fn new(config: &ServerConfig, trace: Option<TraceSink>) -> ServerState {
        let cache = ResultCache::new(config.cache_entries);
        // A snapshot only makes sense with a cache to warm; capacity 0
        // disables persistence along with caching.
        let snapshot = config
            .cache_snapshot
            .as_ref()
            .filter(|_| config.cache_entries > 0)
            .map(|path| {
                let path = PathBuf::from(path);
                let limits = SnapshotLimits {
                    max_entries: config.cache_entries as u64,
                    ..SnapshotLimits::default()
                };
                match read_snapshot(&path, limits) {
                    Ok(entries) => {
                        for (key, value) in entries {
                            cache.insert(key, value);
                        }
                    }
                    // First run: no snapshot yet, nothing to report.
                    Err(SnapshotError::Io(e)) if e.kind() == ErrorKind::NotFound => {}
                    // Anything else (truncated, version-bumped, bit-flipped,
                    // unreadable) is reported and ignored: the daemon starts
                    // cold and will overwrite the bad file at the next
                    // persist.
                    Err(e) => eprintln!("sealpaa: ignoring cache snapshot {}: {e}", path.display()),
                }
                SnapshotState {
                    path,
                    interval: (config.snapshot_interval_ms > 0)
                        .then(|| Duration::from_millis(config.snapshot_interval_ms)),
                    clock: Mutex::new(SnapshotClock {
                        last_attempt: Instant::now(),
                        // A freshly loaded snapshot is not dirty: nothing
                        // needs rewriting until the first new insert.
                        last_inserts: cache.inserts(),
                    }),
                }
            });
        ServerState {
            cache,
            metrics: Metrics::new(),
            pool: WorkerPool::new(config.threads, config.queue_capacity),
            threads: config.threads.max(1),
            max_line_bytes: config.max_line_bytes.max(1),
            shutdown: AtomicBool::new(false),
            io_model: config.io_model.name(),
            connections: Mutex::new(HashMap::new()),
            trace: trace.map(Mutex::new),
            snapshot,
        }
    }
}

/// Writes the cache snapshot now if the cache has changed since the last
/// write. Failures are reported to stderr and retried at the next tick —
/// persistence is best-effort, serving never depends on it.
pub(crate) fn persist_snapshot(state: &ServerState) {
    let Some(snap) = &state.snapshot else {
        return;
    };
    let inserts = state.cache.inserts();
    {
        let mut clock = snap.clock.lock().expect("snapshot clock poisoned");
        clock.last_attempt = Instant::now();
        if clock.last_inserts == inserts {
            return;
        }
    }
    let entries = state.cache.export();
    match write_snapshot(&snap.path, &entries) {
        Ok(()) => {
            let mut clock = snap.clock.lock().expect("snapshot clock poisoned");
            clock.last_inserts = inserts;
        }
        Err(e) => eprintln!(
            "sealpaa: cache snapshot write to {} failed: {e}",
            snap.path.display()
        ),
    }
}

/// Time until the next periodic snapshot write is both due and needed (the
/// cache changed since the last write), or `None`. The event loop folds
/// this into its poll timeout so an idle-but-warm daemon still persists.
#[cfg(target_os = "linux")]
pub(crate) fn snapshot_due_in(state: &ServerState) -> Option<Duration> {
    let snap = state.snapshot.as_ref()?;
    let interval = snap.interval?;
    let clock = snap.clock.lock().expect("snapshot clock poisoned");
    if clock.last_inserts == state.cache.inserts() {
        return None;
    }
    Some(interval.saturating_sub(clock.last_attempt.elapsed()))
}

/// Calls [`persist_snapshot`] when the periodic interval has elapsed.
/// Serving loops call this once per pass; the interval (not the call rate)
/// bounds the write frequency.
pub(crate) fn maybe_persist_snapshot(state: &ServerState) {
    let Some(snap) = &state.snapshot else {
        return;
    };
    let Some(interval) = snap.interval else {
        return;
    };
    let due = {
        let clock = snap.clock.lock().expect("snapshot clock poisoned");
        clock.last_attempt.elapsed() >= interval
    };
    if due {
        persist_snapshot(state);
    }
}

/// Removes the connection's registry entry and decrements the live gauge
/// however the serving thread exits (clean EOF, timeout, error, panic).
struct ConnectionGuard {
    state: Arc<ServerState>,
    id: u64,
}

impl Drop for ConnectionGuard {
    fn drop(&mut self) {
        self.state
            .connections
            .lock()
            .expect("connection registry")
            .remove(&self.id);
        self.state.metrics.connection_closed();
    }
}

/// A bound-but-not-yet-running daemon.
pub struct Server {
    pub(crate) listener: TcpListener,
    pub(crate) local_addr: SocketAddr,
    pub(crate) state: Arc<ServerState>,
    pub(crate) max_connections: usize,
    pub(crate) idle_timeout: Option<Duration>,
    pub(crate) write_timeout: Option<Duration>,
    pub(crate) io_model: IoModel,
}

impl Server {
    /// Binds the listen socket and spawns the worker pool. With
    /// `config.trace` set, the access log goes to stderr.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the address cannot be bound.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let trace = config
            .trace
            .then(|| Box::new(std::io::stderr()) as TraceSink);
        Server::bind_inner(config, trace)
    }

    /// Like [`Server::bind`], but sends the NDJSON access log to `trace`
    /// regardless of `config.trace`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the address cannot be bound.
    pub fn bind_with_trace(config: ServerConfig, trace: TraceSink) -> std::io::Result<Server> {
        Server::bind_inner(config, Some(trace))
    }

    fn bind_inner(config: ServerConfig, trace: Option<TraceSink>) -> std::io::Result<Server> {
        let addr = config.addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::other(format!("unresolvable address {}", config.addr))
        })?;
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let timeout = |ms: u64| (ms > 0).then(|| Duration::from_millis(ms));
        Ok(Server {
            listener,
            local_addr,
            state: Arc::new(ServerState::new(&config, trace)),
            max_connections: config.max_connections,
            idle_timeout: timeout(config.idle_timeout_ms),
            write_timeout: timeout(config.write_timeout_ms),
            io_model: config.io_model,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Serves until a `shutdown` request arrives, then drains and returns.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the accept loop fails (per-client
    /// errors only terminate that client), or if the configured
    /// [`IoModel`] is unavailable on this platform.
    pub fn run(self) -> std::io::Result<()> {
        match self.io_model {
            IoModel::Threads => self.run_threads(),
            #[cfg(target_os = "linux")]
            IoModel::Event => crate::event::run(self),
            #[cfg(not(target_os = "linux"))]
            IoModel::Event => Err(std::io::Error::other(
                "io model \"event\" requires Linux (epoll); use \"threads\"",
            )),
        }
    }

    /// The legacy thread-per-connection accept loop.
    fn run_threads(self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
        let mut next_id: u64 = 0;
        while !self.state.shutdown.load(Ordering::SeqCst) {
            // Reap finished connection threads on every pass, so the handle
            // list stays bounded by the number of live connections instead
            // of growing with the total ever accepted.
            reap_finished(&mut handles);
            maybe_persist_snapshot(&self.state);
            match self.listener.accept() {
                Ok((stream, _peer)) => self.admit(stream, &mut next_id, &mut handles),
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => return Err(e),
            }
        }
        // Drain: stop taking new work, finish everything already accepted …
        self.state.pool.shutdown();
        // … then unblock readers stuck on idle connections. Only the read
        // half is shut — a connection thread may still be writing the
        // response for a job the drain just finished, and that write must
        // land before the socket closes (when the joined thread drops it).
        for stream in self
            .state
            .connections
            .lock()
            .expect("connection registry")
            .values()
        {
            stream.shutdown(Shutdown::Read).ok();
        }
        for handle in handles {
            handle.join().ok();
        }
        // Everything the drain computed is in the cache now; capture it so
        // the next start is warm.
        persist_snapshot(&self.state);
        Ok(())
    }

    /// Admits one accepted connection: applies deadlines, sheds past the
    /// connection cap, registers it, and spawns its serving thread. All
    /// failures refuse the connection — a connection that cannot be
    /// registered is never served, because the shutdown sweep could not
    /// unblock its reader.
    fn admit(
        &self,
        stream: TcpStream,
        next_id: &mut u64,
        handles: &mut Vec<std::thread::JoinHandle<()>>,
    ) {
        if stream.set_nonblocking(false).is_err() {
            return; // nothing useful can be written either
        }
        // The write deadline first: even the refusal writes below must not
        // be able to stall the accept loop.
        if let Some(t) = self.write_timeout {
            stream.set_write_timeout(Some(t)).ok();
        }
        let live = self
            .state
            .connections
            .lock()
            .expect("connection registry")
            .len();
        if self.max_connections > 0 && live >= self.max_connections {
            self.state.metrics.record_shed();
            refuse(
                stream,
                "server overloaded: connection limit reached, retry later",
            );
            return;
        }
        if let Some(t) = self.idle_timeout {
            stream.set_read_timeout(Some(t)).ok();
        }
        // Both clones up front, before anything is served: a clone failure
        // refuses the connection instead of serving it unregistered.
        let (reader_stream, registry_stream) = match (stream.try_clone(), stream.try_clone()) {
            (Ok(r), Ok(g)) => (r, g),
            _ => {
                refuse(stream, "connection setup failed: cannot clone the socket");
                return;
            }
        };
        let id = *next_id;
        *next_id += 1;
        self.state
            .connections
            .lock()
            .expect("connection registry")
            .insert(id, registry_stream);
        self.state.metrics.connection_opened();
        let state = Arc::clone(&self.state);
        handles.push(std::thread::spawn(move || {
            let _guard = ConnectionGuard {
                state: Arc::clone(&state),
                id,
            };
            let reader = BufReader::new(reader_stream);
            let mut writer = stream;
            serve_lines(&state, reader, &mut writer).ok();
        }));
    }
}

/// Joins every already-finished handle, keeping the rest.
fn reap_finished(handles: &mut Vec<std::thread::JoinHandle<()>>) {
    let mut i = 0;
    while i < handles.len() {
        if handles[i].is_finished() {
            handles.swap_remove(i).join().ok();
        } else {
            i += 1;
        }
    }
}

/// Writes one structured error line to a connection that is being turned
/// away, then closes it (by drop). Best effort — the peer may already be
/// gone, and the accept loop must not care.
fn refuse(mut stream: TcpStream, message: &str) {
    let response = error_response(None, message).render();
    let _ = writeln!(stream, "{response}");
}

/// Runs the protocol over an arbitrary line stream — the `--stdio` mode.
/// Returns at end-of-input or after a `shutdown` request, draining the
/// worker pool before returning. With `config.trace` set, the access log
/// goes to stderr.
///
/// # Errors
///
/// Returns the underlying I/O error if reading or writing fails.
pub fn run_stdio<R: BufRead, W: Write>(
    config: &ServerConfig,
    input: R,
    output: &mut W,
) -> std::io::Result<()> {
    let trace = config
        .trace
        .then(|| Box::new(std::io::stderr()) as TraceSink);
    run_stdio_inner(config, input, output, trace)
}

/// Like [`run_stdio`], but sends the NDJSON access log to `trace`
/// regardless of `config.trace`.
///
/// # Errors
///
/// Returns the underlying I/O error if reading or writing fails.
pub fn run_stdio_with_trace<R: BufRead, W: Write>(
    config: &ServerConfig,
    input: R,
    output: &mut W,
    trace: TraceSink,
) -> std::io::Result<()> {
    run_stdio_inner(config, input, output, Some(trace))
}

fn run_stdio_inner<R: BufRead, W: Write>(
    config: &ServerConfig,
    input: R,
    output: &mut W,
    trace: Option<TraceSink>,
) -> std::io::Result<()> {
    // Stdio is always the blocking line loop, whatever the TCP model says.
    let mut config = config.clone();
    config.io_model = IoModel::Threads;
    let state = Arc::new(ServerState::new(&config, trace));
    let served = serve_lines(&state, input, output);
    state.pool.shutdown();
    persist_snapshot(&state);
    served
}

/// One bounded read from the line stream.
enum BoundedLine {
    /// A complete line (without its newline), valid UTF-8, within the limit.
    Line(String),
    /// The line ran past the limit; the excess was discarded as it streamed
    /// in. `bytes` is the full observed length.
    TooLong { bytes: usize },
    /// The line fit but is not valid UTF-8.
    InvalidUtf8 { bytes: usize },
    /// The read deadline expired before a complete line arrived.
    TimedOut,
    /// Clean end of input.
    Eof,
}

/// Reads one `\n`-terminated line, enforcing `max` bytes *during* the read:
/// once a line overflows, its bytes are discarded as they arrive (memory
/// stays bounded by the reader's internal block) and the stream is resynced
/// at the next newline.
fn read_bounded_line<R: BufRead>(input: &mut R, max: usize) -> std::io::Result<BoundedLine> {
    let mut buf: Vec<u8> = Vec::new();
    let mut total = 0usize;
    let mut overflowed = false;
    loop {
        let available = match input.fill_buf() {
            Ok(available) => available,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                return Ok(BoundedLine::TimedOut)
            }
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            // End of input; a final unterminated line still counts.
            return Ok(if overflowed {
                BoundedLine::TooLong { bytes: total }
            } else if buf.is_empty() {
                BoundedLine::Eof
            } else {
                finish_line(buf, total)
            });
        }
        let (consumed, done) = match available.iter().position(|&b| b == b'\n') {
            Some(i) => (i + 1, Some(i)),
            None => (available.len(), None),
        };
        let chunk = &available[..done.unwrap_or(consumed)];
        total += chunk.len();
        if !overflowed {
            if total <= max {
                buf.extend_from_slice(chunk);
            } else {
                overflowed = true;
                buf = Vec::new(); // free what was gathered so far
            }
        }
        input.consume(consumed);
        if done.is_some() {
            return Ok(if overflowed {
                BoundedLine::TooLong { bytes: total }
            } else {
                finish_line(buf, total)
            });
        }
    }
}

fn finish_line(buf: Vec<u8>, bytes: usize) -> BoundedLine {
    match String::from_utf8(buf) {
        Ok(line) => BoundedLine::Line(line),
        Err(_) => BoundedLine::InvalidUtf8 { bytes },
    }
}

/// The outcome of serving one request line — everything the transport loop
/// needs for the response, the access log, and flow control.
pub(crate) struct Served {
    pub(crate) response: String,
    pub(crate) shutdown: bool,
    /// The request's wire kind, when recognizable (even from an otherwise
    /// invalid request).
    pub(crate) kind: Option<&'static str>,
    pub(crate) ok: bool,
    pub(crate) cached: bool,
    pub(crate) error: Option<String>,
}

impl Served {
    fn failure(response: String, kind: Option<&'static str>, message: String) -> Served {
        Served {
            response,
            shutdown: false,
            kind,
            ok: false,
            cached: false,
            error: Some(message),
        }
    }
}

/// The per-connection loop shared by TCP and stdio transports.
fn serve_lines<R: BufRead, W: Write>(
    state: &Arc<ServerState>,
    mut input: R,
    output: &mut W,
) -> std::io::Result<()> {
    let mut memo = LineMemo::default();
    // A read error (reset/closed socket) just ends this connection.
    while let Ok(read) = read_bounded_line(&mut input, state.max_line_bytes) {
        match read {
            BoundedLine::Eof => break,
            BoundedLine::TimedOut => {
                state.metrics.record_timeout();
                let message = "idle timeout: no complete request within the read deadline";
                // Best effort — the stalled peer may never read it.
                let response = error_response(None, message).render();
                let _ = writeln!(output, "{response}").and_then(|()| output.flush());
                trace_request(state, None, false, false, 0, Some(message));
                break;
            }
            BoundedLine::TooLong { bytes } => {
                state.metrics.record_error(None);
                let message = format!(
                    "request of {bytes} bytes exceeds the {} byte line limit",
                    state.max_line_bytes
                );
                write_response(state, output, &error_response(None, &message).render())?;
                trace_request(state, None, false, false, bytes, Some(&message));
                // The stream is already resynced at the newline; keep serving.
            }
            BoundedLine::InvalidUtf8 { bytes } => {
                state.metrics.record_error(None);
                let message = "request line is not valid UTF-8";
                let response = error_response(None, message).render();
                let _ = writeln!(output, "{response}").and_then(|()| output.flush());
                trace_request(state, None, false, false, bytes, Some(message));
                // A binary peer won't speak the protocol from here on.
                break;
            }
            BoundedLine::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                let served = process_line(state, &line, &mut memo);
                write_response(state, output, &served.response)?;
                trace_request(
                    state,
                    served.kind,
                    served.ok,
                    served.cached,
                    line.len(),
                    served.error.as_deref(),
                );
                if served.shutdown {
                    state.shutdown.store(true, Ordering::SeqCst);
                    break;
                }
            }
        }
    }
    Ok(())
}

/// Writes one response line, counting a write-deadline expiry (peer stopped
/// reading) as a timeout before propagating the error to close the
/// connection.
fn write_response<W: Write>(
    state: &ServerState,
    output: &mut W,
    response: &str,
) -> std::io::Result<()> {
    writeln!(output, "{response}")
        .and_then(|()| output.flush())
        .inspect_err(|e| {
            if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) {
                state.metrics.record_timeout();
            }
        })
}

/// Emits one NDJSON access-log line, if tracing is enabled. Fields are
/// deliberately timestamp- and duration-free so a replayed session produces
/// a byte-identical trace.
pub(crate) fn trace_request(
    state: &ServerState,
    kind: Option<&str>,
    ok: bool,
    cached: bool,
    bytes_in: usize,
    error: Option<&str>,
) {
    let Some(sink) = &state.trace else {
        return;
    };
    let mut obj = Json::object()
        .field("kind", kind.map_or(Json::Null, Json::from))
        .field("ok", ok)
        .field("cached", cached)
        .field("bytes_in", bytes_in as u64);
    if let Some(message) = error {
        obj = obj.field("error", message);
    }
    let line = obj.build().render();
    let mut out = sink.lock().expect("trace sink poisoned");
    let _ = writeln!(out, "{line}");
    let _ = out.flush();
}

/// What the transport loop should do with one parsed request line: answer
/// immediately, or hand work to the pool first. Produced by
/// [`classify_line`], shared by the blocking loop (which computes in place)
/// and the event loop (which pipelines).
pub(crate) enum LineAction {
    /// The response is ready now (parse error, control request, cache hit).
    Respond(Served),
    /// One analysis must run on a worker; finish with [`finish_compute`].
    Compute {
        id: Option<Json>,
        kind: &'static str,
        body: RequestBody,
        key: Option<String>,
        started: Instant,
    },
    /// A batch whose unique cache misses must run on a worker; finish with
    /// [`finish_batch`].
    Batch {
        id: Option<Json>,
        plan: BatchPlan,
        started: Instant,
    },
}

/// Entries held in one connection's hot tier — small on purpose: it serves
/// the repeated-configuration locality of one client (pipelined sweeps,
/// polling dashboards), not the whole working set.
const HOT_CACHE_ENTRIES: usize = 8;

/// One connection's two-level front cache over the shared LRU.
///
/// The **request memo** (`hit`) remembers the most recent cache-hit request
/// as its raw document: pipelined sweeps fan one configuration out under
/// many ids, and when the next line is identical apart from `id` the
/// resolution is replayed without building a spec or canonicalizing a key.
/// The **hot tier** (`hot`) keeps the rendered payloads of the connection's
/// last few cache hits by canonical key, so a client alternating between a
/// handful of configurations is answered from connection-local memory
/// instead of re-reading a shared cache shard.
///
/// Neither level is allowed to drift from the shared cache: a local copy is
/// only replayed as `"cached":true` after [`ResultCache::touch`] confirms
/// the key is still resident (which also counts the hit and refreshes its
/// recency, keeping the counters consistent with the responses). When the
/// shared cache has evicted the entry, the local copies are discarded and
/// the request honestly recomputes.
#[derive(Default)]
pub(crate) struct LineMemo {
    /// `(request document, kind, canonical key)` of the latest cache hit.
    hit: Option<(Json, &'static str, String)>,
    /// Canonical key → rendered result payload, most recently used last.
    hot: Vec<(String, String)>,
}

impl LineMemo {
    /// The hot-tier payload for `key`, refreshing its recency.
    fn hot_value(&mut self, key: &str) -> Option<String> {
        let i = self.hot.iter().position(|(k, _)| k == key)?;
        let entry = self.hot.remove(i);
        let value = entry.1.clone();
        self.hot.push(entry);
        Some(value)
    }

    /// Stores `key -> rendered` in the hot tier, evicting the least
    /// recently used entry beyond [`HOT_CACHE_ENTRIES`].
    fn hot_put(&mut self, key: String, rendered: String) {
        self.hot.retain(|(k, _)| *k != key);
        self.hot.push((key, rendered));
        if self.hot.len() > HOT_CACHE_ENTRIES {
            self.hot.remove(0);
        }
    }

    /// Drops every local copy of `key` — called when the shared cache no
    /// longer holds it, so stale local state can never resurface as a
    /// phantom `"cached":true`.
    fn forget(&mut self, key: &str) {
        self.hot.retain(|(k, _)| k != key);
        if matches!(&self.hit, Some((_, _, k)) if k == key) {
            self.hit = None;
        }
    }

    /// Records a fresh shared-cache hit in both levels.
    fn remember(&mut self, doc: Json, kind: &'static str, key: String, rendered: String) {
        self.hot_put(key.clone(), rendered);
        self.hit = Some((doc, kind, key));
    }
}

/// Parses and triages one request line: everything except actual analysis
/// work happens here (parse salvage, the request memo, control requests,
/// the cache probe, and batch planning), so both transports share one
/// protocol brain. `memo` is the connection's [`LineMemo`].
pub(crate) fn classify_line(state: &ServerState, line: &str, memo: &mut LineMemo) -> LineAction {
    let started = Instant::now();
    let fail = |message: String, doc: Option<&Json>| {
        // The id — and the kind, for attribution — are worth salvaging
        // even from an invalid request.
        let id = doc.and_then(|d| d.get("id").cloned());
        let kind = doc
            .and_then(|d| d.get("kind"))
            .and_then(Json::as_str)
            .and_then(|k| kind_index(k).map(|i| KIND_NAMES[i]));
        state.metrics.record_error(kind);
        LineAction::Respond(Served::failure(
            error_response(id.as_ref(), &message).render(),
            kind,
            message,
        ))
    };
    if line.len() > state.max_line_bytes {
        let message = format!(
            "request exceeds {} bytes; split it or shrink the profile",
            state.max_line_bytes
        );
        return fail(message, Json::parse(line).ok().as_ref());
    }
    let doc = match Json::parse(line) {
        Ok(doc) => doc,
        Err(e) => return fail(e.to_string(), None),
    };
    if !matches!(doc, Json::Object(_)) {
        return fail("a request must be a JSON object".to_owned(), Some(&doc));
    }

    // The request memo: an identical line (apart from `id`) replays the
    // previous resolution — but only after revalidating that the shared
    // cache still holds the key, so an evicted entry is recomputed instead
    // of being reported `"cached":true` against disagreeing counters.
    let replay = memo.hit.as_ref().and_then(|(prev, kind, key)| {
        json_equal_ignoring_id(&doc, prev).then(|| (*kind, key.clone()))
    });
    if let Some((kind, key)) = replay {
        match memo.hot_value(&key) {
            Some(rendered) if state.cache.touch(&key) => {
                let id = doc.get("id").cloned();
                state.metrics.record_hot_hit();
                let micros = started.elapsed().as_micros() as u64;
                state.metrics.record_ok(kind, micros);
                return LineAction::Respond(Served {
                    response: render_ok_response(id.as_ref(), kind, true, micros, &rendered),
                    shutdown: false,
                    kind: Some(kind),
                    ok: true,
                    cached: true,
                    error: None,
                });
            }
            // Evicted from the shared cache (or gone from the hot tier):
            // drop the stale local state and fall through to the full path,
            // which counts its own hot miss and cache probe.
            Some(_) => memo.forget(&key),
            None => memo.hit = None,
        }
    }

    let body = match body_from_doc(&doc) {
        Ok(body) => body,
        Err(message) => return fail(message, Some(&doc)),
    };
    let id = doc.get("id").cloned();
    let kind = body.kind();
    let success = |response: String, cached: bool, shutdown: bool| Served {
        response,
        shutdown,
        kind: Some(kind),
        ok: true,
        cached,
        error: None,
    };

    // Control requests are served inline: they must work even when every
    // worker is busy (that is exactly when you want `stats`).
    match body {
        RequestBody::Stats => {
            let result = stats_result(state);
            let micros = started.elapsed().as_micros() as u64;
            state.metrics.record_ok(kind, micros);
            return LineAction::Respond(success(
                ok_response(id.as_ref(), kind, false, micros, result).render(),
                false,
                false,
            ));
        }
        RequestBody::Shutdown => {
            let micros = started.elapsed().as_micros() as u64;
            state.metrics.record_ok(kind, micros);
            let result = Json::object().field("stopping", true).build();
            return LineAction::Respond(success(
                ok_response(id.as_ref(), kind, false, micros, result).render(),
                false,
                true,
            ));
        }
        RequestBody::Batch(spec) => {
            let plan = plan_batch(&state.cache, spec);
            if plan.jobs.is_empty() {
                // Every item was a cache hit or a per-item error — no
                // worker needed.
                let all_cached = plan.all_cached;
                return LineAction::Respond(finish_batch(
                    state,
                    id.as_ref(),
                    plan.slots,
                    &plan.payloads,
                    all_cached,
                    Vec::new(),
                    started,
                ));
            }
            return LineAction::Batch { id, plan, started };
        }
        _ => {}
    }

    let key = cache_key(&body);
    if let Some(key) = &key {
        // The hot tier first: a payload this connection recently replayed,
        // revalidated against the shared cache before it may be served.
        if let Some(rendered) = memo.hot_value(key) {
            if state.cache.touch(key) {
                state.metrics.record_hot_hit();
                let micros = started.elapsed().as_micros() as u64;
                state.metrics.record_ok(kind, micros);
                let response = render_ok_response(id.as_ref(), kind, true, micros, &rendered);
                memo.hit = Some((doc, kind, key.clone()));
                return LineAction::Respond(success(response, true, false));
            }
            memo.forget(key);
        }
        state.metrics.record_hot_miss();
        if let Some(rendered) = state.cache.get(key) {
            // The cache holds the rendered result payload; splice it into
            // the envelope directly — no parse, no tree, no re-render.
            let micros = started.elapsed().as_micros() as u64;
            state.metrics.record_ok(kind, micros);
            let response = render_ok_response(id.as_ref(), kind, true, micros, &rendered);
            // Remember the resolution so an identical follow-up line (a
            // pipelined sweep under fresh ids) replays it wholesale.
            memo.remember(doc, kind, key.clone(), rendered);
            return LineAction::Respond(success(response, true, false));
        }
    }
    LineAction::Compute {
        id,
        kind,
        body,
        key,
        started,
    }
}

/// Settles a [`LineAction::Compute`] once its analysis has run (or failed
/// to): caches a keyed success, updates metrics, renders the response.
pub(crate) fn finish_compute(
    state: &ServerState,
    id: Option<&Json>,
    kind: &'static str,
    key: Option<String>,
    started: Instant,
    outcome: Result<Json, String>,
) -> Served {
    match outcome {
        Ok(result) => {
            if let Some(key) = key {
                state.cache.insert(key, result.render());
            }
            let micros = started.elapsed().as_micros() as u64;
            state.metrics.record_ok(kind, micros);
            Served {
                response: ok_response(id, kind, false, micros, result).render(),
                shutdown: false,
                kind: Some(kind),
                ok: true,
                cached: false,
                error: None,
            }
        }
        Err(message) => {
            state.metrics.record_error(Some(kind));
            Served::failure(error_response(id, &message).render(), Some(kind), message)
        }
    }
}

/// One planned batch: per-item response slots plus the deduplicated compute
/// jobs that must run to fill the pending ones.
pub(crate) struct BatchPlan {
    pub(crate) slots: Vec<BatchSlot>,
    pub(crate) jobs: Vec<BatchJob>,
    /// Rendered result payloads answered from the cache, indexed by
    /// [`BatchSlot::Hit`] — stored once no matter how many items share one.
    pub(crate) payloads: Vec<String>,
    /// Every parseable item was answered from the cache.
    pub(crate) all_cached: bool,
}

/// One batch item's response, either already known or waiting on a job.
pub(crate) enum BatchSlot {
    /// Rendered sub-response (a per-item parse error).
    Ready(String),
    /// A cache hit: the sub-response envelope is spliced around
    /// `payloads[payload]` during final assembly, so N items sharing one
    /// payload never copy it more than once each.
    Hit {
        payload: usize,
        id: Option<Json>,
        kind: &'static str,
    },
    /// Waiting on `jobs[job]` — duplicates of one config share a job index.
    Pending {
        job: usize,
        id: Option<Json>,
        kind: &'static str,
    },
}

/// One deduplicated unit of batch work.
pub(crate) struct BatchJob {
    body: RequestBody,
    key: Option<String>,
}

/// How one original batch item resolved, so later duplicates can replay the
/// outcome without re-parsing, re-canonicalizing, or re-probing anything.
enum ItemFate {
    /// The item failed to parse; duplicates fail with the same message.
    Invalid(String),
    /// Answered from the cache; `payloads[payload]` holds the rendered
    /// result.
    Hit { kind: &'static str, payload: usize },
    /// Waiting on a job; duplicates share it. Identical requests are
    /// deterministic, so even an *uncacheable* body computes at most once
    /// per batch.
    Job { kind: &'static str, job: usize },
}

/// Plans a batch against the cache: exactly one cache probe per *unique*
/// canonical key, so N identical sub-requests cost one lookup and (on miss)
/// one compute shared by all N.
pub(crate) fn plan_batch(cache: &ResultCache, spec: BatchSpec) -> BatchPlan {
    let mut slots = Vec::with_capacity(spec.items.len());
    let mut jobs: Vec<BatchJob> = Vec::new();
    let mut payloads: Vec<String> = Vec::new();
    // Per unique key: the payload index (hit) or the job index (miss).
    let mut by_key: HashMap<String, Result<usize, usize>> = HashMap::new();
    // Per item index: how the item resolved. Duplicates get `None` — the
    // parser only ever back-references originals, never other duplicates.
    let mut fates: Vec<Option<ItemFate>> = Vec::with_capacity(spec.items.len());
    let mut all_cached = true;
    for item in spec.items {
        let body = match item.body {
            BatchBody::DuplicateOf(j) => {
                let slot = match fates.get(j).and_then(Option::as_ref) {
                    Some(ItemFate::Invalid(message)) => {
                        all_cached = false;
                        BatchSlot::Ready(error_response(item.id.as_ref(), message).render())
                    }
                    Some(ItemFate::Hit { kind, payload }) => BatchSlot::Hit {
                        payload: *payload,
                        id: item.id,
                        kind,
                    },
                    Some(ItemFate::Job { kind, job }) => {
                        all_cached = false;
                        BatchSlot::Pending {
                            job: *job,
                            id: item.id,
                            kind,
                        }
                    }
                    // A hand-built spec with a dangling or dup-to-dup
                    // reference; the parser never emits one.
                    None => {
                        all_cached = false;
                        BatchSlot::Ready(
                            error_response(item.id.as_ref(), "invalid duplicate back-reference")
                                .render(),
                        )
                    }
                };
                fates.push(None);
                slots.push(slot);
                continue;
            }
            BatchBody::Parsed(Err(message)) => {
                all_cached = false;
                slots.push(BatchSlot::Ready(
                    error_response(item.id.as_ref(), &message).render(),
                ));
                fates.push(Some(ItemFate::Invalid(message)));
                continue;
            }
            BatchBody::Parsed(Ok(body)) => body,
        };
        let kind = body.kind();
        let (slot, fate) = match cache_key(&body) {
            Some(k) => match by_key.get(&k) {
                Some(Ok(payload)) => {
                    let payload = *payload;
                    (
                        BatchSlot::Hit {
                            payload,
                            id: item.id,
                            kind,
                        },
                        ItemFate::Hit { kind, payload },
                    )
                }
                Some(Err(job)) => {
                    let job = *job;
                    (
                        BatchSlot::Pending {
                            job,
                            id: item.id,
                            kind,
                        },
                        ItemFate::Job { kind, job },
                    )
                }
                None => match cache.get(&k) {
                    Some(rendered) => {
                        let payload = payloads.len();
                        payloads.push(rendered);
                        by_key.insert(k, Ok(payload));
                        (
                            BatchSlot::Hit {
                                payload,
                                id: item.id,
                                kind,
                            },
                            ItemFate::Hit { kind, payload },
                        )
                    }
                    None => {
                        let job = jobs.len();
                        jobs.push(BatchJob {
                            body,
                            key: Some(k.clone()),
                        });
                        by_key.insert(k, Err(job));
                        (
                            BatchSlot::Pending {
                                job,
                                id: item.id,
                                kind,
                            },
                            ItemFate::Job { kind, job },
                        )
                    }
                },
            },
            // Uncacheable bodies get one job each; their duplicates still
            // share it via the fate above.
            None => {
                let job = jobs.len();
                jobs.push(BatchJob { body, key: None });
                (
                    BatchSlot::Pending {
                        job,
                        id: item.id,
                        kind,
                    },
                    ItemFate::Job { kind, job },
                )
            }
        };
        if matches!(slot, BatchSlot::Pending { .. }) {
            all_cached = false;
        }
        fates.push(Some(fate));
        slots.push(slot);
    }
    BatchPlan {
        slots,
        jobs,
        payloads,
        all_cached,
    }
}

/// Runs a plan's deduplicated jobs (on a pool worker), caching keyed
/// successes. One entry per job, in job order: the rendered result payload
/// on success (rendered once, shared by every duplicate slot).
pub(crate) fn run_batch_jobs(
    cache: &ResultCache,
    jobs: &[BatchJob],
) -> Vec<Result<String, String>> {
    jobs.iter()
        .map(|job| match compute_result(&job.body) {
            Ok(result) => {
                let rendered = result.render();
                if let Some(key) = &job.key {
                    cache.insert(key.clone(), rendered.clone());
                }
                Ok(rendered)
            }
            Err(message) => Err(message),
        })
        .collect()
}

/// Assembles the batch response once every job has run: pending slots are
/// filled from `results` (shared jobs fan out to every duplicate item).
pub(crate) fn finish_batch(
    state: &ServerState,
    id: Option<&Json>,
    slots: Vec<BatchSlot>,
    payloads: &[String],
    all_cached: bool,
    results: Vec<Result<String, String>>,
    started: Instant,
) -> Served {
    let computed = results.len() as u64;
    let count = slots.len() as u64;
    // Cache hits and computed results are already rendered payload strings;
    // the aggregate result is assembled by splicing them straight into one
    // buffer, never as a tree.
    let ready_bytes: usize = slots
        .iter()
        .map(|slot| match slot {
            BatchSlot::Ready(response) => response.len() + 1,
            BatchSlot::Hit { payload, .. } => payloads[*payload].len() + 96,
            BatchSlot::Pending { job, .. } => results[*job].as_ref().map_or(128, String::len) + 96,
        })
        .sum();
    let mut subs = String::with_capacity(ready_bytes);
    for (i, slot) in slots.into_iter().enumerate() {
        if i > 0 {
            subs.push(',');
        }
        match slot {
            BatchSlot::Ready(response) => subs.push_str(&response),
            BatchSlot::Hit { payload, id, kind } => {
                write_sub_ok_response(&mut subs, id.as_ref(), kind, true, &payloads[payload]);
            }
            BatchSlot::Pending { job, id, kind } => match &results[job] {
                Ok(rendered) => {
                    write_sub_ok_response(&mut subs, id.as_ref(), kind, false, rendered);
                }
                Err(message) => subs.push_str(&error_response(id.as_ref(), message).render()),
            },
        }
    }
    let micros = started.elapsed().as_micros() as u64;
    state.metrics.record_ok("batch", micros);
    Served {
        response: render_batch_ok_response(id, all_cached, micros, count, computed, &subs),
        shutdown: false,
        kind: Some("batch"),
        ok: true,
        cached: all_cached,
        error: None,
    }
}

/// Serves one request line, blocking through the pool — the threads/stdio
/// path. The blocking `submit` (bounded queue) and the blocking `recv` are
/// the backpressure that keeps a flooding client on its own socket.
fn process_line(state: &Arc<ServerState>, line: &str, memo: &mut LineMemo) -> Served {
    match classify_line(state, line, memo) {
        LineAction::Respond(served) => served,
        LineAction::Compute {
            id,
            kind,
            body,
            key,
            started,
        } => {
            state.metrics.record_pipeline_depth(1);
            let (tx, rx) = mpsc::channel::<Result<Json, String>>();
            let submitted = state.pool.submit(Box::new(move || {
                tx.send(compute_result(&body)).ok();
            }));
            let outcome = if submitted.is_err() {
                Err("server is shutting down".to_owned())
            } else {
                rx.recv()
                    .unwrap_or_else(|_| Err("worker dropped the job".to_owned()))
            };
            finish_compute(state, id.as_ref(), kind, key, started, outcome)
        }
        LineAction::Batch { id, plan, started } => {
            state.metrics.record_pipeline_depth(1);
            let BatchPlan {
                slots,
                jobs,
                payloads,
                all_cached,
            } = plan;
            let (tx, rx) = mpsc::channel::<Vec<Result<String, String>>>();
            let worker_state = Arc::clone(state);
            let submitted = state.pool.submit(Box::new(move || {
                tx.send(run_batch_jobs(&worker_state.cache, &jobs)).ok();
            }));
            if submitted.is_err() {
                let message = "server is shutting down".to_owned();
                state.metrics.record_error(Some("batch"));
                return Served::failure(
                    error_response(id.as_ref(), &message).render(),
                    Some("batch"),
                    message,
                );
            }
            match rx.recv() {
                Ok(results) => finish_batch(
                    state,
                    id.as_ref(),
                    slots,
                    &payloads,
                    all_cached,
                    results,
                    started,
                ),
                Err(_) => {
                    let message = "worker dropped the job".to_owned();
                    state.metrics.record_error(Some("batch"));
                    Served::failure(
                        error_response(id.as_ref(), &message).render(),
                        Some("batch"),
                        message,
                    )
                }
            }
        }
    }
}

fn stats_result(state: &ServerState) -> Json {
    let cache = state.cache.stats();
    let metrics = state.metrics.snapshot();
    let registered = state.connections.lock().expect("connection registry").len();
    let mut kinds = Json::object();
    for (i, name) in KIND_NAMES.iter().enumerate() {
        let kind = &metrics.kinds[i];
        kinds = kinds.field(
            *name,
            Json::object()
                .field("requests", kind.requests)
                .field("errors", kind.errors)
                .field("p50_micros", kind.p50_micros)
                .field("p99_micros", kind.p99_micros)
                .field(
                    "histogram",
                    kind.histogram
                        .iter()
                        .map(|&c| Json::from(c))
                        .collect::<Vec<_>>(),
                )
                .build(),
        );
    }
    Json::object()
        .field("requests", metrics.requests)
        .field("errors", metrics.errors)
        .field("queue_depth", state.pool.depth() as u64)
        .field("workers", state.threads as u64)
        .field("simd_backend", sealpaa_sim::Backend::active().name())
        .field("io_model", state.io_model)
        .field("p50_micros", metrics.p50_micros)
        .field("p99_micros", metrics.p99_micros)
        .field(
            "connections",
            Json::object()
                .field("live", metrics.live_connections)
                .field("peak", metrics.peak_connections)
                // The threads model counts its registry; the event model
                // publishes its fd registry through the gauge.
                .field(
                    "registered",
                    (registered as u64).max(metrics.registered_fds),
                )
                .field("shed", metrics.shed_connections)
                .field("timeouts", metrics.timeouts)
                .field("registered_fds", metrics.registered_fds)
                .field("pending_write_bytes", metrics.pending_write_bytes)
                .field("max_pipeline_depth", metrics.max_pipeline_depth)
                .build(),
        )
        .field("kinds", kinds.build())
        .field(
            "cache",
            Json::object()
                .field("hits", cache.hits)
                .field("misses", cache.misses)
                .field("evictions", cache.evictions)
                .field("entries", cache.entries as u64)
                // The per-connection hot tier in front of the shared LRU.
                // Hot hits are a subset of `hits` (each is revalidated
                // against — and counted by — the shared cache).
                .field("hot_hits", metrics.hot_hits)
                .field("hot_misses", metrics.hot_misses)
                .build(),
        )
        .build()
}

/// Runs the engine for one queued request kind and renders its result.
pub(crate) fn compute_result(body: &RequestBody) -> Result<Json, String> {
    match body {
        RequestBody::Analyze(spec) => analyze_result(spec),
        RequestBody::Simulate(spec) => simulate_result(spec),
        RequestBody::Compare(spec) => compare_result(spec),
        RequestBody::Gear(spec) => gear_result(spec),
        RequestBody::Blocks(spec) => blocks_result(spec),
        RequestBody::Dse(spec) => dse_result(spec),
        RequestBody::Profile(spec) => profile_result(spec),
        RequestBody::Datapath(spec) => datapath_result(spec),
        RequestBody::Stats | RequestBody::Shutdown | RequestBody::Batch(_) => {
            unreachable!("control and batch requests are planned inline")
        }
    }
}

fn analyze_result(spec: &AdderSpec) -> Result<Json, String> {
    let analysis = sealpaa_core::analyze(&spec.chain, &spec.profile).map_err(|e| e.to_string())?;
    let stages: Vec<Json> = analysis
        .stages()
        .iter()
        .map(|s| {
            Json::object()
                .field("stage", s.stage)
                .field("cell", spec.chain.stage(s.stage).name())
                .field("p_carry_and_success", *s.carry_out.p_carry_and_success())
                .field(
                    "p_not_carry_and_success",
                    *s.carry_out.p_not_carry_and_success(),
                )
                .field("success_through", s.success_through)
                .build()
        })
        .collect();
    Ok(Json::object()
        .field("adder", spec.chain.to_string())
        .field("width", spec.chain.width())
        .field("error_probability", analysis.error_probability())
        .field("success_probability", analysis.success_probability())
        .field("stages", stages)
        .build())
}

fn simulate_result(spec: &SimulateSpec) -> Result<Json, String> {
    let adder = &spec.adder;
    match spec.mode {
        SimMode::Exhaustive => {
            // Bitsliced + threaded: all integer outputs (cases, error
            // counts) are identical for any thread count; only f64-weighted
            // fields can move in the last ulp.
            let report = sealpaa_sim::exhaustive_with(
                &adder.chain,
                &adder.profile,
                sealpaa_sim::default_threads(),
            )
            .map_err(|e| e.to_string())?;
            Ok(Json::object()
                .field("mode", "exhaustive")
                .field("adder", adder.chain.to_string())
                .field("cases", report.cases)
                .field("error_cases", report.error_cases)
                .field("error_probability", report.output_error_probability)
                .field("stage_error_probability", report.stage_error_probability)
                .field("mean_error_distance", report.metrics.mean_error_distance)
                .field(
                    "mean_absolute_error_distance",
                    report.metrics.mean_absolute_error_distance,
                )
                .field(
                    "max_absolute_error_distance",
                    report.metrics.max_absolute_error_distance,
                )
                .build())
        }
        SimMode::MonteCarlo {
            samples,
            seed,
            threads,
        } => {
            let config = sealpaa_sim::MonteCarloConfig {
                samples,
                seed,
                threads,
                backend: None,
            };
            let report = sealpaa_sim::monte_carlo(&adder.chain, &adder.profile, config)
                .map_err(|e| e.to_string())?;
            Ok(Json::object()
                .field("mode", "monte_carlo")
                .field("adder", adder.chain.to_string())
                .field("samples", report.samples)
                .field("seed", seed)
                .field("threads", threads as u64)
                .field("error_samples", report.error_samples)
                .field("error_probability", report.error_probability())
                .field("standard_error", report.standard_error)
                .field("mean_error_distance", report.metrics.mean_error_distance)
                .build())
        }
    }
}

fn compare_result(spec: &AdderSpec) -> Result<Json, String> {
    let analysis = sealpaa_core::analyze(&spec.chain, &spec.profile).map_err(|e| e.to_string())?;
    let (baseline, terms) = sealpaa_inclexcl::error_probability(&spec.chain, &spec.profile)
        .map_err(|e| e.to_string())?;
    let proposed = analysis.error_probability();
    Ok(Json::object()
        .field("adder", spec.chain.to_string())
        .field("width", spec.chain.width())
        .field("proposed", proposed)
        .field("inclusion_exclusion", baseline)
        .field("terms", terms)
        .field("abs_difference", (proposed - baseline).abs())
        .build())
}

fn gear_result(spec: &GearSpec) -> Result<Json, String> {
    let config =
        sealpaa_gear::GearConfig::new(spec.n, spec.r, spec.overlap).map_err(|e| e.to_string())?;
    let pa = vec![spec.p; spec.n];
    let p_error =
        sealpaa_gear::error_probability(&config, &pa, &pa, spec.cin).map_err(|e| e.to_string())?;
    let mut obj = Json::object()
        .field("n", spec.n)
        .field("r", spec.r)
        .field("overlap", spec.overlap)
        .field("blocks_total", config.block_count())
        .field("error_probability", p_error);
    if spec.blocks {
        let blocks = sealpaa_gear::block_error_probabilities(&config, &pa, &pa, spec.cin)
            .map_err(|e| e.to_string())?;
        obj = obj.field(
            "block_error_probabilities",
            blocks.into_iter().map(Json::from).collect::<Vec<_>>(),
        );
    }
    Ok(obj.build())
}

/// Most PMF/CDF support points a `blocks` response ships; larger supports
/// report summary statistics only (the line limit is the hard bound, this
/// keeps responses readable long before it).
const MAX_BLOCKS_PMF_ENTRIES: usize = 1024;

fn blocks_result(spec: &BlocksSpec) -> Result<Json, String> {
    let dist = sealpaa_blocks::error_distance_distribution(&spec.config, &spec.profile)
        .map_err(|e| e.to_string())?;
    let width = spec.config.width();
    // Error distances are bounded by 2^(width+1) ≤ 2^48, so every support
    // point is exactly representable as an f64 JSON number.
    let points = |pairs: &[(i128, f64)]| -> Vec<Json> {
        pairs
            .iter()
            .map(|&(d, p)| Json::Array(vec![Json::Number(d as f64), Json::Number(p)]))
            .collect()
    };
    let mut obj = Json::object()
        .field("config", spec.config.to_string())
        .field("width", width as u64)
        .field("blocks_total", spec.config.block_count() as u64)
        .field("error_rate", dist.error_rate())
        .field("mean", dist.mean())
        .field("mean_absolute", dist.mean_absolute())
        .field("mean_squared", dist.mean_squared())
        .field(
            "normalized_mean_absolute",
            dist.normalized_mean_absolute(width),
        )
        .field("max_absolute", dist.max_absolute() as u64)
        .field("support", dist.pmf.len() as u64);
    if dist.pmf.len() <= MAX_BLOCKS_PMF_ENTRIES {
        obj = obj.field("pmf", points(&dist.pmf));
        if spec.cdf {
            obj = obj.field("cdf", points(&dist.cdf()));
        }
    } else {
        obj = obj.field("pmf_omitted", true);
    }
    Ok(obj.build())
}

fn dse_result(spec: &DseSpec) -> Result<Json, String> {
    let budget = sealpaa_explore::Budget {
        max_power_nw: spec.budget_power,
        max_area_ge: spec.budget_area,
    };
    let design_json = |design: &sealpaa_explore::HybridDesign| {
        Json::object()
            .field("chain", design.chain.to_string())
            .field(
                "cells",
                design
                    .chain
                    .iter()
                    .map(|c| Json::from(c.name()))
                    .collect::<Vec<_>>(),
            )
            .field("error_probability", design.evaluation.error_probability)
            .field("power_nw", design.evaluation.power_nw)
            .field("area_ge", design.evaluation.area_ge)
            .build()
    };
    // The result is a pure function of (candidates, profile, budget, pareto):
    // the search merges worker results in lexicographic design order, so
    // `threads` affects wall-clock only — which is why it is reported here
    // but excluded from the cache key.
    let best = sealpaa_explore::exhaustive_best_with(
        &spec.candidates,
        &spec.profile,
        &budget,
        spec.threads,
    )
    .map_err(|e| e.to_string())?;
    let mut obj = Json::object()
        .field("width", spec.profile.width() as u64)
        .field(
            "candidates",
            spec.candidates
                .iter()
                .map(|c| Json::from(c.name()))
                .collect::<Vec<_>>(),
        )
        .field(
            "best",
            match &best {
                None => Json::Null,
                Some(design) => design_json(design),
            },
        );
    if spec.pareto {
        let designs =
            sealpaa_explore::exhaustive_designs(&spec.candidates, &spec.profile, spec.threads)
                .map_err(|e| e.to_string())?;
        let front = sealpaa_explore::pareto_front(designs);
        obj = obj.field("pareto", front.iter().map(design_json).collect::<Vec<_>>());
    }
    Ok(obj.build())
}

fn profile_result(spec: &ProfileSpec) -> Result<Json, String> {
    use sealpaa_trace::VarId;
    let (source, records) = match &spec.source {
        ProfileSource::Synth {
            kind,
            records,
            seed,
        } => {
            let generated = sealpaa_trace::generate(*kind, spec.width, *records as usize, *seed)
                .map_err(|e| e.to_string())?;
            (kind.name(), generated)
        }
        ProfileSource::Inline(records) => ("inline", records.clone()),
    };
    let stats =
        sealpaa_trace::TraceStats::from_records(spec.width, &records).map_err(|e| e.to_string())?;
    let probs = |pick: fn(usize) -> VarId| -> Vec<Json> {
        (0..spec.width)
            .map(|i| Json::from(stats.p(pick(i))))
            .collect()
    };
    let mut obj = Json::object()
        .field("source", source)
        .field("width", spec.width as u64)
        .field("records", stats.records())
        .field("pa", probs(VarId::A))
        .field("pb", probs(VarId::B))
        .field("cin", stats.p(VarId::Cin))
        .field("independence_violation", stats.independence_violation());
    if let Some((x, y, score)) = stats.max_violation_pair() {
        obj = obj.field(
            "max_violation_pair",
            Json::object()
                .field("x", x.to_string())
                .field("y", y.to_string())
                .field("score", score)
                .build(),
        );
    }
    Ok(obj.build())
}

fn datapath_result(spec: &DatapathSpec) -> Result<Json, String> {
    use sealpaa_propagate::topologies;
    let (name, topo) = match &spec.topology {
        DatapathTopology::Fir { coefficients } => {
            ("fir", topologies::fir(&spec.cell, coefficients, spec.width))
        }
        DatapathTopology::Conv2d { kernel } => {
            ("conv2d", topologies::conv2d(&spec.cell, kernel, spec.width))
        }
        DatapathTopology::Multiplier => {
            ("multiplier", topologies::multiplier(&spec.cell, spec.width))
        }
    };
    let topo = topo.map_err(|e| e.to_string())?;
    let inputs: Vec<(&str, Vec<f64>)> = topo
        .inputs
        .iter()
        .map(|input| {
            let bits = topo
                .datapath
                .signals()
                .find(|&s| {
                    matches!(topo.datapath.kind(s),
                             sealpaa_datapath::NodeKind::Input { name: n } if n == input)
                })
                .map_or(spec.width, |s| topo.datapath.width(s));
            (input.as_str(), vec![spec.p; bits])
        })
        .collect();
    let prediction = sealpaa_propagate::predict(&topo.datapath, topo.output, &inputs, spec.pmf)
        .map_err(|e| e.to_string())?;
    let m = &prediction.moments;
    let db = |v: Option<f64>| v.map_or(Json::Null, Json::Number);
    let mut obj = Json::object()
        .field("topology", name)
        .field("cell", spec.cell.name())
        .field("width", spec.width as u64)
        .field("adders", m.adders.len() as u64)
        .field("mse", m.error_second)
        .field("mean_error", m.error_mean)
        .field("signal_power", m.value_second)
        .field("snr_db", db(m.snr_db()))
        .field("any_adder_error", m.any_adder_error())
        .field(
            "adder_models",
            m.adders
                .iter()
                .map(|a| {
                    Json::object()
                        .field("signal", a.signal.index() as u64)
                        .field("error_probability", a.error_probability)
                        .field("mean", a.mean)
                        .field("second", a.second)
                        .build()
                })
                .collect::<Vec<_>>(),
        );
    if let Some(pmf) = &prediction.pmf {
        obj = obj
            .field("pmf_points", pmf.points().len() as u64)
            .field("pmf_truncated_mass", pmf.truncated_mass())
            .field("pmf_max_abs_error", pmf.max_absolute_error())
            .field("pmf_error_probability", pmf.error_probability());
    }
    Ok(obj.build())
}

/// Resolves a human-readable list of the standard cells — used by the CLI's
/// `serve --help` so the daemon and CLI agree on the vocabulary.
pub fn standard_cell_names() -> Vec<&'static str> {
    StandardCell::ALL.iter().map(|c| c.name()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::BUCKETS;
    use std::io::Cursor;

    fn run_lines(config: &ServerConfig, lines: &str) -> Vec<Json> {
        let mut out = Vec::new();
        run_stdio(config, Cursor::new(lines.to_owned()), &mut out).expect("stdio run");
        String::from_utf8(out)
            .expect("utf8")
            .lines()
            .map(|l| Json::parse(l).expect("valid response JSON"))
            .collect()
    }

    #[test]
    fn stdio_serves_analyze_and_matches_the_library() {
        let responses = run_lines(
            &ServerConfig::default(),
            "{\"id\":1,\"kind\":\"analyze\",\"width\":2,\"cell\":\"lpaa1\",\"p\":0.1}\n",
        );
        assert_eq!(responses.len(), 1);
        let r = &responses[0];
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(r.get("cached").and_then(Json::as_bool), Some(false));
        let served = r
            .get("result")
            .and_then(|x| x.get("error_probability"))
            .and_then(Json::as_f64)
            .expect("error probability");
        // Paper Table 7: 2-bit LPAA1 at p = 0.1.
        assert!((served - 0.3078).abs() < 1e-4, "served {served}");
    }

    #[test]
    fn repeated_request_is_served_from_cache() {
        let line = "{\"kind\":\"analyze\",\"width\":4,\"cell\":\"lpaa2\"}\n";
        let responses = run_lines(
            &ServerConfig::default(),
            &format!("{line}{line}{{\"kind\":\"stats\"}}\n"),
        );
        assert_eq!(responses.len(), 3);
        assert_eq!(
            responses[0].get("cached").and_then(Json::as_bool),
            Some(false)
        );
        assert_eq!(
            responses[1].get("cached").and_then(Json::as_bool),
            Some(true)
        );
        assert_eq!(
            responses[0].get("result"),
            responses[1].get("result"),
            "cache must return the identical result"
        );
        let stats = responses[2].get("result").expect("stats result");
        assert_eq!(
            stats
                .get("cache")
                .and_then(|c| c.get("hits"))
                .and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn stdio_serves_datapath_and_caches_by_canonical_key() {
        // The second request spells the same cell as its raw truth table:
        // a different wire spelling of the same problem, so it must be a
        // cache hit with the byte-identical result.
        let table = StandardCell::Lpaa5.truth_table().to_spec_string();
        let lines = format!(
            "{{\"id\":1,\"kind\":\"datapath\",\"width\":6,\"cell\":\"lpaa5\",\"coefficients\":[1,2,1]}}\n\
             {{\"id\":2,\"kind\":\"datapath\",\"width\":6,\"cell\":\"{table}\",\"coefficients\":[1,2,1]}}\n"
        );
        let responses = run_lines(&ServerConfig::default(), &lines);
        assert_eq!(responses.len(), 2);
        let first = &responses[0];
        assert_eq!(first.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(first.get("cached").and_then(Json::as_bool), Some(false));
        let result = first.get("result").expect("datapath result");
        assert_eq!(result.get("adders").and_then(Json::as_u64), Some(2));
        let snr = result
            .get("snr_db")
            .and_then(Json::as_f64)
            .expect("approximate FIR has a finite SNR");
        assert!(snr.is_finite() && snr > 0.0, "snr {snr}");
        let second = &responses[1];
        assert_eq!(
            second.get("cached").and_then(Json::as_bool),
            Some(true),
            "equivalent spelling must hit the canonical cache"
        );
        assert_eq!(first.get("result"), second.get("result"));
    }

    #[test]
    fn datapath_pmf_round_trips_over_stdio() {
        let responses = run_lines(
            &ServerConfig::default(),
            "{\"kind\":\"datapath\",\"topology\":\"multiplier\",\"width\":3,\"cell\":\"lpaa2\",\"pmf\":true}\n",
        );
        let result = responses[0].get("result").expect("datapath result");
        assert!(result.get("pmf_points").and_then(Json::as_u64).unwrap_or(0) > 0);
        let p_err = result
            .get("pmf_error_probability")
            .and_then(Json::as_f64)
            .expect("pmf error probability");
        assert!((0.0..=1.0).contains(&p_err), "{p_err}");
    }

    #[test]
    fn eviction_between_identical_requests_is_never_reported_as_cached() {
        // Regression: the per-connection replay path used to report
        // `"cached":true` (and count a hit) from its local copy even after
        // the sharded LRU had evicted the entry. Fill the cache far past
        // capacity between two identical requests; the second must honestly
        // recompute, and the counters must agree with the responses.
        let config = ServerConfig {
            // 16 shards at ceil(16/16)=1 entry each: a sweep of distinct
            // keys is guaranteed to evict every earlier entry.
            cache_entries: 16,
            ..Default::default()
        };
        let target = "{\"kind\":\"analyze\",\"width\":4,\"cell\":\"lpaa2\",\"p\":0.25}\n";
        let mut input = String::new();
        input.push_str(target);
        input.push_str(target); // replayed from the memo while still resident
                                // 200 distinct keys against 16 one-entry shards: the sweep displaces
                                // every shard's resident entry regardless of how keys hash.
        for i in 1..=200 {
            let p = f64::from(i) / 1000.0;
            input.push_str(&format!(
                "{{\"kind\":\"analyze\",\"width\":8,\"cell\":\"lpaa1\",\"p\":{p}}}\n"
            ));
        }
        input.push_str(target); // identical again, but evicted by the sweep
        input.push_str("{\"kind\":\"stats\"}\n");
        let responses = run_lines(&config, &input);
        assert_eq!(responses.len(), 204);
        let cached_of = |r: &Json| r.get("cached").and_then(Json::as_bool).expect("cached");
        assert!(!cached_of(&responses[0]), "first compute");
        assert!(cached_of(&responses[1]), "replay while still resident");
        assert!(
            !cached_of(&responses[202]),
            "after eviction the replay path must recompute, not report cached"
        );
        assert_eq!(
            responses[202].get("result"),
            responses[0].get("result"),
            "the recompute still returns the identical result"
        );
        // Counter consistency: every "cached":true response counted exactly
        // one cache hit.
        let served_cached = responses
            .iter()
            .filter(|r| r.get("cached").and_then(Json::as_bool) == Some(true))
            .count() as u64;
        let stats = responses[203].get("result").expect("stats result");
        let cache = stats.get("cache").expect("cache stats");
        assert_eq!(
            cache.get("hits").and_then(Json::as_u64),
            Some(served_cached),
            "hit counter must match the cached responses"
        );
        assert!(
            cache.get("evictions").and_then(Json::as_u64).expect("ev") > 0,
            "the sweep must actually have evicted"
        );
    }

    #[test]
    fn hot_tier_hits_are_counted_and_stay_within_shared_hits() {
        // Alternate between two configurations: after each config's first
        // shared-cache hit, later repeats are served from the connection's
        // hot tier (and still revalidated + counted as shared hits).
        let a = "{\"kind\":\"analyze\",\"width\":4,\"cell\":\"lpaa2\"}\n";
        let b = "{\"kind\":\"analyze\",\"width\":6,\"cell\":\"lpaa1\"}\n";
        let input = format!("{a}{b}{a}{b}{a}{b}{a}{b}{{\"kind\":\"stats\"}}\n");
        let responses = run_lines(&ServerConfig::default(), &input);
        assert_eq!(responses.len(), 9);
        let stats = responses[8].get("result").expect("stats result");
        let cache = stats.get("cache").expect("cache stats");
        let hits = cache.get("hits").and_then(Json::as_u64).expect("hits");
        let hot_hits = cache.get("hot_hits").and_then(Json::as_u64).expect("hot");
        let hot_misses = cache
            .get("hot_misses")
            .and_then(Json::as_u64)
            .expect("hot misses");
        assert_eq!(hits, 6, "six repeats served cached");
        // The first repeat of each config comes from the shared cache (hot
        // miss, filling the hot tier); the remaining four replays come from
        // the hot tier.
        assert_eq!(hot_hits, 4);
        assert_eq!(hot_misses, 4, "two first requests + two first repeats");
        assert!(hot_hits <= hits, "every hot hit is also a shared hit");
    }

    #[test]
    fn shutdown_request_stops_the_stream_and_later_lines_are_ignored() {
        let responses = run_lines(
            &ServerConfig::default(),
            "{\"kind\":\"shutdown\"}\n{\"kind\":\"stats\"}\n",
        );
        assert_eq!(responses.len(), 1, "no responses after shutdown");
        assert_eq!(
            responses[0]
                .get("result")
                .and_then(|r| r.get("stopping"))
                .and_then(Json::as_bool),
            Some(true)
        );
    }

    #[test]
    fn errors_are_reported_per_request_and_do_not_kill_the_stream() {
        let responses = run_lines(
            &ServerConfig::default(),
            "{\"kind\":\"analyze\"}\nnot json at all\n{\"id\":9,\"kind\":\"stats\"}\n",
        );
        assert_eq!(responses.len(), 3);
        assert_eq!(responses[0].get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(responses[1].get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(responses[2].get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(responses[2].get("id").and_then(Json::as_u64), Some(9));
        let stats = responses[2].get("result").expect("stats result");
        assert_eq!(stats.get("errors").and_then(Json::as_u64), Some(2));
        // The first error had a recognizable kind and is attributed to it;
        // the second was unparseable and counts only in the aggregate.
        assert_eq!(
            stats
                .get("kinds")
                .and_then(|k| k.get("analyze"))
                .and_then(|a| a.get("errors"))
                .and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn stdio_serves_profile_and_caches_synthetic_sources() {
        let synth = r#"{"kind":"profile","width":6,"synth":"uniform","records":2048,"seed":3}"#;
        let inline = r#"{"kind":"profile","width":2,"trace":[[1,2],[3,0,1]]}"#;
        let responses = run_lines(
            &ServerConfig::default(),
            &format!("{synth}\n{synth}\n{inline}\n{inline}\n"),
        );
        assert_eq!(responses.len(), 4);
        for r in &responses {
            assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
            assert_eq!(r.get("kind").and_then(Json::as_str), Some("profile"));
        }
        // Synthetic sources are pure functions of the request and cache.
        assert_eq!(
            responses[0].get("cached").and_then(Json::as_bool),
            Some(false)
        );
        assert_eq!(
            responses[1].get("cached").and_then(Json::as_bool),
            Some(true)
        );
        let result = responses[0].get("result").expect("profile result");
        assert_eq!(result.get("source").and_then(Json::as_str), Some("uniform"));
        assert_eq!(result.get("records").and_then(Json::as_u64), Some(2048));
        assert_eq!(
            result.get("pa").and_then(Json::as_array).map(<[Json]>::len),
            Some(6)
        );
        assert!(result
            .get("independence_violation")
            .and_then(Json::as_f64)
            .is_some());
        // Inline traces are exact and never cached.
        assert_eq!(
            responses[3].get("cached").and_then(Json::as_bool),
            Some(false)
        );
        let result = responses[2].get("result").expect("profile result");
        assert_eq!(result.get("source").and_then(Json::as_str), Some("inline"));
        assert_eq!(result.get("records").and_then(Json::as_u64), Some(2));
        // a = {1, 3}: bit 0 is always set; cin = {0, 1}.
        let pa = result.get("pa").and_then(Json::as_array).expect("pa list");
        assert_eq!(pa[0].as_f64(), Some(1.0));
        assert_eq!(pa[1].as_f64(), Some(0.5));
        assert_eq!(result.get("cin").and_then(Json::as_f64), Some(0.5));
    }

    #[test]
    fn stats_schema_is_pinned() {
        // The observability contract: these fields (and no fewer) are what
        // dashboards may rely on.
        let responses = run_lines(
            &ServerConfig::default(),
            "{\"kind\":\"analyze\",\"width\":2,\"cell\":\"lpaa1\"}\n\
             {\"kind\":\"profile\",\"width\":2,\"trace\":[[1,2]]}\n\
             {\"kind\":\"stats\"}\n",
        );
        let stats = responses[2].get("result").expect("stats result");
        for field in [
            "requests",
            "errors",
            "queue_depth",
            "workers",
            "p50_micros",
            "p99_micros",
        ] {
            assert!(
                stats.get(field).and_then(Json::as_u64).is_some(),
                "missing numeric field {field}"
            );
        }
        assert!(
            stats.get("simd_backend").and_then(Json::as_str).is_some(),
            "missing simd_backend"
        );
        // Stdio always serves through the blocking line loop, whatever the
        // TCP default is.
        assert_eq!(
            stats.get("io_model").and_then(Json::as_str),
            Some("threads"),
            "missing or wrong io_model"
        );
        let connections = stats.get("connections").expect("connection gauges");
        for field in [
            "live",
            "peak",
            "registered",
            "shed",
            "timeouts",
            "registered_fds",
            "pending_write_bytes",
            "max_pipeline_depth",
        ] {
            assert!(
                connections.get(field).and_then(Json::as_u64).is_some(),
                "missing connection gauge {field}"
            );
        }
        let kinds = stats.get("kinds").expect("per-kind metrics");
        for name in KIND_NAMES {
            let kind = kinds
                .get(name)
                .unwrap_or_else(|| panic!("missing kind {name}"));
            for field in ["requests", "errors", "p50_micros", "p99_micros"] {
                assert!(
                    kind.get(field).and_then(Json::as_u64).is_some(),
                    "missing {name}.{field}"
                );
            }
            let histogram = kind
                .get("histogram")
                .and_then(Json::as_array)
                .unwrap_or_else(|| panic!("missing {name}.histogram"));
            assert_eq!(histogram.len(), BUCKETS, "{name} histogram length");
        }
        // Each request is visible in its own kind's counters.
        for name in ["analyze", "profile"] {
            assert_eq!(
                kinds
                    .get(name)
                    .and_then(|a| a.get("requests"))
                    .and_then(Json::as_u64),
                Some(1),
                "{name} counter"
            );
        }
        let cache = stats.get("cache").expect("cache stats");
        for field in [
            "hits",
            "misses",
            "evictions",
            "entries",
            "hot_hits",
            "hot_misses",
        ] {
            assert!(
                cache.get(field).and_then(Json::as_u64).is_some(),
                "missing cache.{field}"
            );
        }
    }

    #[test]
    fn stdio_honors_the_configured_line_limit() {
        // The cross-transport contract: stdio enforces the same configured
        // line limit as TCP, during the read.
        let config = ServerConfig {
            max_line_bytes: 1024,
            ..Default::default()
        };
        let long = "x".repeat(5000);
        let responses = run_lines(
            &config,
            &format!("{long}\n{{\"kind\":\"analyze\",\"width\":2,\"cell\":\"lpaa1\"}}\n"),
        );
        assert_eq!(responses.len(), 2);
        assert_eq!(responses[0].get("ok").and_then(Json::as_bool), Some(false));
        let message = responses[0]
            .get("error")
            .and_then(Json::as_str)
            .expect("message");
        assert!(message.contains("5000 bytes"), "{message}");
        assert!(message.contains("1024 byte"), "{message}");
        assert_eq!(
            responses[1].get("ok").and_then(Json::as_bool),
            Some(true),
            "the stream resyncs at the newline and keeps serving"
        );
    }

    #[test]
    fn invalid_utf8_gets_a_parse_error_response_before_the_close() {
        let mut input: Vec<u8> = Vec::new();
        input.extend_from_slice(b"\"\xff\xfe garbage\n");
        input.extend_from_slice(b"{\"kind\":\"stats\"}\n");
        let mut out = Vec::new();
        run_stdio(&ServerConfig::default(), Cursor::new(input), &mut out).expect("stdio run");
        let out = String::from_utf8(out).expect("responses are utf8");
        let responses: Vec<Json> = out
            .lines()
            .map(|l| Json::parse(l).expect("valid response JSON"))
            .collect();
        // One structured error, then the stream closes — the stats line
        // after the garbage is never served.
        assert_eq!(responses.len(), 1, "{out}");
        assert_eq!(responses[0].get("ok").and_then(Json::as_bool), Some(false));
        assert!(responses[0]
            .get("error")
            .and_then(Json::as_str)
            .expect("message")
            .contains("UTF-8"));
    }

    #[test]
    fn trace_log_is_deterministic_ndjson() {
        use std::sync::{Arc, Mutex};

        #[derive(Clone, Default)]
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().expect("buf").extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let analyze = "{\"kind\":\"analyze\",\"width\":2,\"cell\":\"lpaa1\",\"p\":0.1}";
        let bogus = "nonsense";
        let input = format!("{analyze}\n{analyze}\n{bogus}\n{{\"kind\":\"shutdown\"}}\n");
        let run_once = || {
            let sink = SharedBuf::default();
            let mut out = Vec::new();
            run_stdio_with_trace(
                &ServerConfig::default(),
                Cursor::new(input.clone()),
                &mut out,
                Box::new(sink.clone()),
            )
            .expect("stdio run");
            let bytes = sink.0.lock().expect("buf").clone();
            String::from_utf8(bytes).expect("trace is utf8")
        };

        let trace = run_once();
        let lines: Vec<&str> = trace.lines().collect();
        assert_eq!(lines.len(), 4, "{trace}");
        assert_eq!(
            lines[0],
            format!(
                "{{\"kind\":\"analyze\",\"ok\":true,\"cached\":false,\"bytes_in\":{}}}",
                analyze.len()
            )
        );
        assert_eq!(
            lines[1],
            format!(
                "{{\"kind\":\"analyze\",\"ok\":true,\"cached\":true,\"bytes_in\":{}}}",
                analyze.len()
            )
        );
        let parsed = Json::parse(lines[2]).expect("trace line parses");
        assert_eq!(parsed.get("kind"), Some(&Json::Null));
        assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            parsed.get("bytes_in").and_then(Json::as_u64),
            Some(bogus.len() as u64)
        );
        assert!(parsed.get("error").and_then(Json::as_str).is_some());
        assert!(lines[3].contains("\"kind\":\"shutdown\""));

        // Byte-reproducible: a replayed session emits the identical trace
        // (no timestamps, no latencies).
        assert_eq!(trace, run_once());
    }

    #[test]
    fn bounded_reader_handles_limits_partial_lines_and_eof() {
        let mut input = Cursor::new(b"short\nexactly8\ntoolongline\ntail".to_vec());
        match read_bounded_line(&mut input, 8).expect("read") {
            BoundedLine::Line(l) => assert_eq!(l, "short"),
            _ => panic!("expected a line"),
        }
        match read_bounded_line(&mut input, 8).expect("read") {
            BoundedLine::Line(l) => assert_eq!(l, "exactly8"),
            _ => panic!("a line of exactly the limit fits"),
        }
        match read_bounded_line(&mut input, 8).expect("read") {
            BoundedLine::TooLong { bytes } => assert_eq!(bytes, 11),
            _ => panic!("expected overflow"),
        }
        match read_bounded_line(&mut input, 8).expect("read") {
            BoundedLine::Line(l) => assert_eq!(l, "tail", "final unterminated line"),
            _ => panic!("expected the tail"),
        }
        assert!(matches!(
            read_bounded_line(&mut input, 8).expect("read"),
            BoundedLine::Eof
        ));
    }

    #[test]
    fn bounded_reader_discards_oversized_data_in_small_chunks() {
        // A newline-free flood much larger than the limit: the reader must
        // keep consuming (resync) without accumulating the flood.
        let flood = vec![b'x'; 1 << 20];
        let mut input = std::io::BufReader::with_capacity(512, Cursor::new(flood));
        match read_bounded_line(&mut input, 4096).expect("read") {
            BoundedLine::TooLong { bytes } => assert_eq!(bytes, 1 << 20),
            _ => panic!("expected overflow"),
        }
        assert!(matches!(
            read_bounded_line(&mut input, 4096).expect("read"),
            BoundedLine::Eof
        ));
    }

    #[test]
    fn compare_agrees_with_the_inclusion_exclusion_baseline() {
        let responses = run_lines(
            &ServerConfig::default(),
            "{\"kind\":\"compare\",\"width\":5,\"cell\":\"lpaa3\",\"p\":0.3}\n",
        );
        let result = responses[0].get("result").expect("result");
        let diff = result
            .get("abs_difference")
            .and_then(Json::as_f64)
            .expect("difference");
        assert!(diff < 1e-12, "methods disagree by {diff}");
        assert_eq!(result.get("terms").and_then(Json::as_u64), Some(31));
    }

    #[test]
    fn monte_carlo_is_deterministic_per_seed_and_distinct_across_seeds() {
        let mk = |seed: u64| {
            format!("{{\"kind\":\"simulate\",\"width\":8,\"cell\":\"lpaa6\",\"samples\":20000,\"seed\":{seed}}}\n")
        };
        let p_of = |responses: &[Json]| {
            responses[0]
                .get("result")
                .and_then(|r| r.get("error_probability"))
                .and_then(Json::as_f64)
                .expect("estimate")
        };
        let config = ServerConfig {
            cache_entries: 0, // force recomputation: determinism, not caching
            ..Default::default()
        };
        let a1 = p_of(&run_lines(&config, &mk(7)));
        let a2 = p_of(&run_lines(&config, &mk(7)));
        let b = p_of(&run_lines(&config, &mk(8)));
        assert_eq!(a1, a2, "same seed must reproduce exactly");
        assert_ne!(a1, b, "different seeds should differ");
    }

    #[test]
    fn dse_finds_the_budgeted_best_design() {
        let responses = run_lines(
            &ServerConfig::default(),
            "{\"kind\":\"dse\",\"width\":3,\"p\":0.3,\"budget_power\":0,\"threads\":2}\n",
        );
        let best = responses[0]
            .get("result")
            .and_then(|r| r.get("best"))
            .expect("best design");
        // Only LPAA 5 (0 nW) chains fit a zero power budget.
        let cells = best.get("cells").and_then(Json::as_array).expect("cells");
        assert_eq!(cells.len(), 3);
        assert!(cells.iter().all(|c| c.as_str() == Some("LPAA 5")));
        assert_eq!(best.get("power_nw").and_then(Json::as_f64), Some(0.0));
    }

    #[test]
    fn dse_requests_differing_only_in_threads_share_one_cache_entry() {
        // The satellite contract: `threads` cannot change the result, so it
        // is not in the canonical key — the t=3 request must be a cache hit
        // on the t=1 entry, returning the identical rendered result.
        let mk = |threads: usize| {
            format!("{{\"kind\":\"dse\",\"width\":4,\"p\":0.3,\"pareto\":true,\"threads\":{threads}}}\n")
        };
        let responses = run_lines(&ServerConfig::default(), &format!("{}{}", mk(1), mk(3)));
        assert_eq!(responses.len(), 2);
        assert_eq!(
            responses[0].get("cached").and_then(Json::as_bool),
            Some(false)
        );
        assert_eq!(
            responses[1].get("cached").and_then(Json::as_bool),
            Some(true),
            "a different thread count must hit the same cache entry"
        );
        assert_eq!(responses[0].get("result"), responses[1].get("result"));
    }

    #[test]
    fn dse_result_is_thread_count_invariant_even_uncached() {
        // With caching disabled, both thread counts really run — and the
        // lexicographic merge makes the answers identical anyway.
        let config = ServerConfig {
            cache_entries: 0,
            ..Default::default()
        };
        let mk = |threads: usize| {
            format!("{{\"kind\":\"dse\",\"width\":4,\"p\":0.3,\"pareto\":true,\"threads\":{threads}}}\n")
        };
        let a = run_lines(&config, &mk(1));
        let b = run_lines(&config, &mk(3));
        assert_eq!(a[0].get("result"), b[0].get("result"));
    }

    #[test]
    fn batch_serves_mixed_kinds_in_item_order_with_ids() {
        let batch = concat!(
            "{\"id\":\"b1\",\"kind\":\"batch\",\"requests\":[",
            "{\"id\":\"a\",\"kind\":\"analyze\",\"width\":2,\"cell\":\"lpaa1\",\"p\":0.1},",
            "{\"id\":\"g\",\"kind\":\"gear\",\"n\":8,\"r\":2,\"overlap\":2},",
            "{\"id\":\"bad\",\"kind\":\"analyze\",\"width\":0},",
            "{\"id\":\"a2\",\"kind\":\"analyze\",\"width\":2,\"cell\":\"lpaa1\",\"p\":0.1}",
            "]}\n"
        );
        let responses = run_lines(&ServerConfig::default(), batch);
        assert_eq!(responses.len(), 1);
        let r = &responses[0];
        assert_eq!(r.get("id").and_then(Json::as_str), Some("b1"));
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(r.get("kind").and_then(Json::as_str), Some("batch"));
        let result = r.get("result").expect("batch result");
        assert_eq!(result.get("count").and_then(Json::as_u64), Some(4));
        // The two identical analyzes share one job; gear is the second.
        assert_eq!(result.get("computed").and_then(Json::as_u64), Some(2));
        let subs = result
            .get("results")
            .and_then(Json::as_array)
            .expect("sub-responses");
        assert_eq!(subs.len(), 4);
        // Responses come back in item order, each carrying its item id.
        for (sub, id) in subs.iter().zip(["a", "g", "bad", "a2"]) {
            assert_eq!(sub.get("id").and_then(Json::as_str), Some(id));
        }
        assert_eq!(subs[0].get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(subs[1].get("ok").and_then(Json::as_bool), Some(true));
        // A bad item fails alone without failing the batch.
        assert_eq!(subs[2].get("ok").and_then(Json::as_bool), Some(false));
        assert!(subs[2].get("error").and_then(Json::as_str).is_some());
        // The duplicate shares the first analyze's computed result.
        assert_eq!(subs[3].get("result"), subs[0].get("result"));
        let served = subs[0]
            .get("result")
            .and_then(|x| x.get("error_probability"))
            .and_then(Json::as_f64)
            .expect("error probability");
        assert!((served - 0.3078).abs() < 1e-4, "served {served}");
    }

    #[test]
    fn batch_of_identical_configs_computes_once_and_groups_cache_traffic() {
        // The satellite contract: N identical canonical configs in one
        // batch perform exactly one compute and one cache probe, answered
        // N times consistently.
        let sub = "{\"kind\":\"analyze\",\"width\":4,\"cell\":\"lpaa2\",\"p\":0.2}";
        let batch =
            format!("{{\"kind\":\"batch\",\"requests\":[{sub},{sub},{sub},{sub},{sub}]}}\n");
        let responses = run_lines(
            &ServerConfig::default(),
            &format!("{batch}{batch}{{\"kind\":\"stats\"}}\n"),
        );
        assert_eq!(responses.len(), 3);

        let first = responses[0].get("result").expect("first batch");
        assert_eq!(first.get("count").and_then(Json::as_u64), Some(5));
        assert_eq!(first.get("computed").and_then(Json::as_u64), Some(1));
        let subs = first.get("results").and_then(Json::as_array).expect("subs");
        assert!(subs
            .iter()
            .all(|s| s.get("ok").and_then(Json::as_bool) == Some(true)));
        assert!(
            subs.iter()
                .all(|s| s.get("result") == subs[0].get("result")),
            "all five answers must be identical"
        );
        assert_eq!(
            responses[0].get("cached").and_then(Json::as_bool),
            Some(false)
        );

        // The repeat is answered wholly from the cache: zero computes, and
        // the batch itself reports cached.
        let second = responses[1].get("result").expect("second batch");
        assert_eq!(second.get("computed").and_then(Json::as_u64), Some(0));
        assert_eq!(
            responses[1].get("cached").and_then(Json::as_bool),
            Some(true)
        );

        // Counter-level proof of grouping: ten sub-requests produced one
        // miss (first batch) and one hit (second batch), not five of each.
        let cache = responses[2]
            .get("result")
            .and_then(|r| r.get("cache"))
            .expect("cache stats");
        assert_eq!(cache.get("misses").and_then(Json::as_u64), Some(1));
        assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(1));
        assert_eq!(cache.get("entries").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn batch_counts_as_one_request_of_its_own_kind() {
        let batch = concat!(
            "{\"kind\":\"batch\",\"requests\":[",
            "{\"kind\":\"analyze\",\"width\":2,\"cell\":\"lpaa1\"},",
            "{\"kind\":\"blocks\",\"config\":\"4:0:accurate,2:2:lpaa1\",\"p\":0.3}",
            "]}\n"
        );
        let responses = run_lines(
            &ServerConfig::default(),
            &format!("{batch}{{\"kind\":\"stats\"}}\n"),
        );
        let kinds = responses[1]
            .get("result")
            .and_then(|r| r.get("kinds"))
            .expect("kinds");
        assert_eq!(
            kinds
                .get("batch")
                .and_then(|b| b.get("requests"))
                .and_then(Json::as_u64),
            Some(1),
            "the batch is metered as one batch request"
        );
        assert_eq!(
            kinds
                .get("analyze")
                .and_then(|b| b.get("requests"))
                .and_then(Json::as_u64),
            Some(0),
            "sub-requests are not double-counted under their own kinds"
        );
    }

    #[test]
    fn gear_result_includes_blocks_on_request() {
        let responses = run_lines(
            &ServerConfig::default(),
            "{\"kind\":\"gear\",\"n\":8,\"r\":2,\"overlap\":2,\"blocks\":true}\n",
        );
        let result = responses[0].get("result").expect("result");
        let blocks = result
            .get("block_error_probabilities")
            .and_then(Json::as_array)
            .expect("blocks");
        let config = sealpaa_gear::GearConfig::new(8, 2, 2).expect("valid");
        assert_eq!(blocks.len(), config.block_count() - 1);
        let direct =
            sealpaa_gear::error_probability(&config, &[0.5; 8], &[0.5; 8], 0.0).expect("direct");
        assert_eq!(
            result.get("error_probability").and_then(Json::as_f64),
            Some(direct)
        );
    }
}
