//! The daemon: TCP listener, connection threads, and the `--stdio` mode.
//!
//! One thread accepts connections; each connection gets a reader thread that
//! parses newline-delimited requests and writes newline-delimited responses.
//! Analysis work never runs on connection threads — it is submitted to the
//! shared [`WorkerPool`], whose bounded queue pushes back on flooding
//! clients. Results are cached under their [canonical key](crate::canonical)
//! so a repeated request is answered without recomputation (`"cached": true`
//! in the response).
//!
//! # Robustness
//!
//! Every per-connection resource is bounded:
//!
//! * request lines are length-limited **while being read** — a newline-free
//!   flood is discarded as it streams in (memory stays bounded by the
//!   `BufReader` block size) and answered with a structured error;
//! * idle connections are subject to a read deadline and stalled writers to
//!   a write deadline, so a dead peer can never pin a thread;
//! * concurrent connections are capped — connections beyond the cap get a
//!   structured "overloaded" response and an immediate close (shedding);
//! * finished connection threads are reaped and closed sockets dropped from
//!   the registry as the accept loop runs, so neither grows with connection
//!   churn.
//!
//! # Shutdown
//!
//! A `{"kind":"shutdown"}` request (or end-of-input in `--stdio` mode) stops
//! the daemon gracefully: the listener stops accepting, the worker pool
//! drains every job it has already accepted, in-flight responses are
//! written, and only then are the remaining connections closed.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use sealpaa_cells::StandardCell;

use crate::cache::ResultCache;
use crate::canonical::cache_key;
use crate::json::Json;
use crate::metrics::{kind_index, Metrics, KIND_NAMES};
use crate::pool::WorkerPool;
use crate::protocol::{
    error_response, ok_response, AdderSpec, BlocksSpec, DseSpec, GearSpec, ProfileSource,
    ProfileSpec, Request, RequestBody, SimMode, SimulateSpec, MAX_LINE_BYTES,
};

/// Daemon configuration; [`Default`] gives sensible local settings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:4517`. Port 0 picks an ephemeral
    /// port (query it via [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads executing analyses.
    pub threads: usize,
    /// Total result-cache capacity in entries (0 disables caching).
    pub cache_entries: usize,
    /// Bounded job-queue capacity; submissions beyond it block.
    pub queue_capacity: usize,
    /// Maximum concurrently served TCP connections; connections beyond it
    /// are shed with a structured "overloaded" error (0 disables the cap).
    pub max_connections: usize,
    /// Maximum request-line length in bytes, enforced while reading: longer
    /// lines are discarded as they stream in and answered with a structured
    /// error instead of being buffered.
    pub max_line_bytes: usize,
    /// Idle deadline in milliseconds: a connection that sends no complete
    /// request line for this long is answered with a structured timeout
    /// error and closed (0 disables the deadline; TCP only).
    pub idle_timeout_ms: u64,
    /// Write deadline in milliseconds: a peer that stops reading its
    /// responses for this long is disconnected (0 disables; TCP only).
    pub write_timeout_ms: u64,
    /// Emit one NDJSON access-log line per request (timestamp-free fields
    /// only, so traces are byte-reproducible). [`Server::bind`] and
    /// [`run_stdio`] send the trace to stderr; see
    /// [`Server::bind_with_trace`] / [`run_stdio_with_trace`] to capture it.
    pub trace: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:4517".to_owned(),
            threads: 4,
            cache_entries: 1024,
            queue_capacity: 64,
            max_connections: 256,
            max_line_bytes: MAX_LINE_BYTES,
            idle_timeout_ms: 60_000,
            write_timeout_ms: 60_000,
            trace: false,
        }
    }
}

/// A writer receiving the NDJSON access log.
pub type TraceSink = Box<dyn Write + Send>;

/// Everything shared between connection threads.
struct ServerState {
    cache: ResultCache,
    metrics: Metrics,
    pool: WorkerPool,
    threads: usize,
    max_line_bytes: usize,
    shutdown: AtomicBool,
    /// Live TCP connections by id — the shutdown sweep unblocks exactly
    /// these readers, and each serving thread prunes its own entry on exit
    /// (via [`ConnectionGuard`]) so the registry never outgrows the
    /// connection cap.
    connections: Mutex<HashMap<u64, TcpStream>>,
    trace: Option<Mutex<TraceSink>>,
}

impl ServerState {
    fn new(config: &ServerConfig, trace: Option<TraceSink>) -> ServerState {
        ServerState {
            cache: ResultCache::new(config.cache_entries),
            metrics: Metrics::new(),
            pool: WorkerPool::new(config.threads, config.queue_capacity),
            threads: config.threads.max(1),
            max_line_bytes: config.max_line_bytes.max(1),
            shutdown: AtomicBool::new(false),
            connections: Mutex::new(HashMap::new()),
            trace: trace.map(Mutex::new),
        }
    }
}

/// Removes the connection's registry entry and decrements the live gauge
/// however the serving thread exits (clean EOF, timeout, error, panic).
struct ConnectionGuard {
    state: Arc<ServerState>,
    id: u64,
}

impl Drop for ConnectionGuard {
    fn drop(&mut self) {
        self.state
            .connections
            .lock()
            .expect("connection registry")
            .remove(&self.id);
        self.state.metrics.connection_closed();
    }
}

/// A bound-but-not-yet-running daemon.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    state: Arc<ServerState>,
    max_connections: usize,
    idle_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
}

impl Server {
    /// Binds the listen socket and spawns the worker pool. With
    /// `config.trace` set, the access log goes to stderr.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the address cannot be bound.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let trace = config
            .trace
            .then(|| Box::new(std::io::stderr()) as TraceSink);
        Server::bind_inner(config, trace)
    }

    /// Like [`Server::bind`], but sends the NDJSON access log to `trace`
    /// regardless of `config.trace`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the address cannot be bound.
    pub fn bind_with_trace(config: ServerConfig, trace: TraceSink) -> std::io::Result<Server> {
        Server::bind_inner(config, Some(trace))
    }

    fn bind_inner(config: ServerConfig, trace: Option<TraceSink>) -> std::io::Result<Server> {
        let addr = config.addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::other(format!("unresolvable address {}", config.addr))
        })?;
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let timeout = |ms: u64| (ms > 0).then(|| Duration::from_millis(ms));
        Ok(Server {
            listener,
            local_addr,
            state: Arc::new(ServerState::new(&config, trace)),
            max_connections: config.max_connections,
            idle_timeout: timeout(config.idle_timeout_ms),
            write_timeout: timeout(config.write_timeout_ms),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Serves until a `shutdown` request arrives, then drains and returns.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the accept loop fails (per-client
    /// errors only terminate that client).
    pub fn run(self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
        let mut next_id: u64 = 0;
        while !self.state.shutdown.load(Ordering::SeqCst) {
            // Reap finished connection threads on every pass, so the handle
            // list stays bounded by the number of live connections instead
            // of growing with the total ever accepted.
            reap_finished(&mut handles);
            match self.listener.accept() {
                Ok((stream, _peer)) => self.admit(stream, &mut next_id, &mut handles),
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => return Err(e),
            }
        }
        // Drain: stop taking new work, finish everything already accepted …
        self.state.pool.shutdown();
        // … then unblock readers stuck on idle connections. Only the read
        // half is shut — a connection thread may still be writing the
        // response for a job the drain just finished, and that write must
        // land before the socket closes (when the joined thread drops it).
        for stream in self
            .state
            .connections
            .lock()
            .expect("connection registry")
            .values()
        {
            stream.shutdown(Shutdown::Read).ok();
        }
        for handle in handles {
            handle.join().ok();
        }
        Ok(())
    }

    /// Admits one accepted connection: applies deadlines, sheds past the
    /// connection cap, registers it, and spawns its serving thread. All
    /// failures refuse the connection — a connection that cannot be
    /// registered is never served, because the shutdown sweep could not
    /// unblock its reader.
    fn admit(
        &self,
        stream: TcpStream,
        next_id: &mut u64,
        handles: &mut Vec<std::thread::JoinHandle<()>>,
    ) {
        if stream.set_nonblocking(false).is_err() {
            return; // nothing useful can be written either
        }
        // The write deadline first: even the refusal writes below must not
        // be able to stall the accept loop.
        if let Some(t) = self.write_timeout {
            stream.set_write_timeout(Some(t)).ok();
        }
        let live = self
            .state
            .connections
            .lock()
            .expect("connection registry")
            .len();
        if self.max_connections > 0 && live >= self.max_connections {
            self.state.metrics.record_shed();
            refuse(
                stream,
                "server overloaded: connection limit reached, retry later",
            );
            return;
        }
        if let Some(t) = self.idle_timeout {
            stream.set_read_timeout(Some(t)).ok();
        }
        // Both clones up front, before anything is served: a clone failure
        // refuses the connection instead of serving it unregistered.
        let (reader_stream, registry_stream) = match (stream.try_clone(), stream.try_clone()) {
            (Ok(r), Ok(g)) => (r, g),
            _ => {
                refuse(stream, "connection setup failed: cannot clone the socket");
                return;
            }
        };
        let id = *next_id;
        *next_id += 1;
        self.state
            .connections
            .lock()
            .expect("connection registry")
            .insert(id, registry_stream);
        self.state.metrics.connection_opened();
        let state = Arc::clone(&self.state);
        handles.push(std::thread::spawn(move || {
            let _guard = ConnectionGuard {
                state: Arc::clone(&state),
                id,
            };
            let reader = BufReader::new(reader_stream);
            let mut writer = stream;
            serve_lines(&state, reader, &mut writer).ok();
        }));
    }
}

/// Joins every already-finished handle, keeping the rest.
fn reap_finished(handles: &mut Vec<std::thread::JoinHandle<()>>) {
    let mut i = 0;
    while i < handles.len() {
        if handles[i].is_finished() {
            handles.swap_remove(i).join().ok();
        } else {
            i += 1;
        }
    }
}

/// Writes one structured error line to a connection that is being turned
/// away, then closes it (by drop). Best effort — the peer may already be
/// gone, and the accept loop must not care.
fn refuse(mut stream: TcpStream, message: &str) {
    let response = error_response(None, message).render();
    let _ = writeln!(stream, "{response}");
}

/// Runs the protocol over an arbitrary line stream — the `--stdio` mode.
/// Returns at end-of-input or after a `shutdown` request, draining the
/// worker pool before returning. With `config.trace` set, the access log
/// goes to stderr.
///
/// # Errors
///
/// Returns the underlying I/O error if reading or writing fails.
pub fn run_stdio<R: BufRead, W: Write>(
    config: &ServerConfig,
    input: R,
    output: &mut W,
) -> std::io::Result<()> {
    let trace = config
        .trace
        .then(|| Box::new(std::io::stderr()) as TraceSink);
    run_stdio_inner(config, input, output, trace)
}

/// Like [`run_stdio`], but sends the NDJSON access log to `trace`
/// regardless of `config.trace`.
///
/// # Errors
///
/// Returns the underlying I/O error if reading or writing fails.
pub fn run_stdio_with_trace<R: BufRead, W: Write>(
    config: &ServerConfig,
    input: R,
    output: &mut W,
    trace: TraceSink,
) -> std::io::Result<()> {
    run_stdio_inner(config, input, output, Some(trace))
}

fn run_stdio_inner<R: BufRead, W: Write>(
    config: &ServerConfig,
    input: R,
    output: &mut W,
    trace: Option<TraceSink>,
) -> std::io::Result<()> {
    let state = Arc::new(ServerState::new(config, trace));
    let served = serve_lines(&state, input, output);
    state.pool.shutdown();
    served
}

/// One bounded read from the line stream.
enum BoundedLine {
    /// A complete line (without its newline), valid UTF-8, within the limit.
    Line(String),
    /// The line ran past the limit; the excess was discarded as it streamed
    /// in. `bytes` is the full observed length.
    TooLong { bytes: usize },
    /// The line fit but is not valid UTF-8.
    InvalidUtf8 { bytes: usize },
    /// The read deadline expired before a complete line arrived.
    TimedOut,
    /// Clean end of input.
    Eof,
}

/// Reads one `\n`-terminated line, enforcing `max` bytes *during* the read:
/// once a line overflows, its bytes are discarded as they arrive (memory
/// stays bounded by the reader's internal block) and the stream is resynced
/// at the next newline.
fn read_bounded_line<R: BufRead>(input: &mut R, max: usize) -> std::io::Result<BoundedLine> {
    let mut buf: Vec<u8> = Vec::new();
    let mut total = 0usize;
    let mut overflowed = false;
    loop {
        let available = match input.fill_buf() {
            Ok(available) => available,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                return Ok(BoundedLine::TimedOut)
            }
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            // End of input; a final unterminated line still counts.
            return Ok(if overflowed {
                BoundedLine::TooLong { bytes: total }
            } else if buf.is_empty() {
                BoundedLine::Eof
            } else {
                finish_line(buf, total)
            });
        }
        let (consumed, done) = match available.iter().position(|&b| b == b'\n') {
            Some(i) => (i + 1, Some(i)),
            None => (available.len(), None),
        };
        let chunk = &available[..done.unwrap_or(consumed)];
        total += chunk.len();
        if !overflowed {
            if total <= max {
                buf.extend_from_slice(chunk);
            } else {
                overflowed = true;
                buf = Vec::new(); // free what was gathered so far
            }
        }
        input.consume(consumed);
        if done.is_some() {
            return Ok(if overflowed {
                BoundedLine::TooLong { bytes: total }
            } else {
                finish_line(buf, total)
            });
        }
    }
}

fn finish_line(buf: Vec<u8>, bytes: usize) -> BoundedLine {
    match String::from_utf8(buf) {
        Ok(line) => BoundedLine::Line(line),
        Err(_) => BoundedLine::InvalidUtf8 { bytes },
    }
}

/// The outcome of serving one request line — everything the transport loop
/// needs for the response, the access log, and flow control.
struct Served {
    response: String,
    shutdown: bool,
    /// The request's wire kind, when recognizable (even from an otherwise
    /// invalid request).
    kind: Option<&'static str>,
    ok: bool,
    cached: bool,
    error: Option<String>,
}

impl Served {
    fn failure(response: String, kind: Option<&'static str>, message: String) -> Served {
        Served {
            response,
            shutdown: false,
            kind,
            ok: false,
            cached: false,
            error: Some(message),
        }
    }
}

/// The per-connection loop shared by TCP and stdio transports.
fn serve_lines<R: BufRead, W: Write>(
    state: &Arc<ServerState>,
    mut input: R,
    output: &mut W,
) -> std::io::Result<()> {
    // A read error (reset/closed socket) just ends this connection.
    while let Ok(read) = read_bounded_line(&mut input, state.max_line_bytes) {
        match read {
            BoundedLine::Eof => break,
            BoundedLine::TimedOut => {
                state.metrics.record_timeout();
                let message = "idle timeout: no complete request within the read deadline";
                // Best effort — the stalled peer may never read it.
                let response = error_response(None, message).render();
                let _ = writeln!(output, "{response}").and_then(|()| output.flush());
                trace_request(state, None, false, false, 0, Some(message));
                break;
            }
            BoundedLine::TooLong { bytes } => {
                state.metrics.record_error(None);
                let message = format!(
                    "request of {bytes} bytes exceeds the {} byte line limit",
                    state.max_line_bytes
                );
                write_response(state, output, &error_response(None, &message).render())?;
                trace_request(state, None, false, false, bytes, Some(&message));
                // The stream is already resynced at the newline; keep serving.
            }
            BoundedLine::InvalidUtf8 { bytes } => {
                state.metrics.record_error(None);
                let message = "request line is not valid UTF-8";
                let response = error_response(None, message).render();
                let _ = writeln!(output, "{response}").and_then(|()| output.flush());
                trace_request(state, None, false, false, bytes, Some(message));
                // A binary peer won't speak the protocol from here on.
                break;
            }
            BoundedLine::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                let served = process_line(state, &line);
                write_response(state, output, &served.response)?;
                trace_request(
                    state,
                    served.kind,
                    served.ok,
                    served.cached,
                    line.len(),
                    served.error.as_deref(),
                );
                if served.shutdown {
                    state.shutdown.store(true, Ordering::SeqCst);
                    break;
                }
            }
        }
    }
    Ok(())
}

/// Writes one response line, counting a write-deadline expiry (peer stopped
/// reading) as a timeout before propagating the error to close the
/// connection.
fn write_response<W: Write>(
    state: &ServerState,
    output: &mut W,
    response: &str,
) -> std::io::Result<()> {
    writeln!(output, "{response}")
        .and_then(|()| output.flush())
        .inspect_err(|e| {
            if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) {
                state.metrics.record_timeout();
            }
        })
}

/// Emits one NDJSON access-log line, if tracing is enabled. Fields are
/// deliberately timestamp- and duration-free so a replayed session produces
/// a byte-identical trace.
fn trace_request(
    state: &ServerState,
    kind: Option<&str>,
    ok: bool,
    cached: bool,
    bytes_in: usize,
    error: Option<&str>,
) {
    let Some(sink) = &state.trace else {
        return;
    };
    let mut obj = Json::object()
        .field("kind", kind.map_or(Json::Null, Json::from))
        .field("ok", ok)
        .field("cached", cached)
        .field("bytes_in", bytes_in as u64);
    if let Some(message) = error {
        obj = obj.field("error", message);
    }
    let line = obj.build().render();
    let mut out = sink.lock().expect("trace sink poisoned");
    let _ = writeln!(out, "{line}");
    let _ = out.flush();
}

/// Serves one request line.
fn process_line(state: &Arc<ServerState>, line: &str) -> Served {
    let started = Instant::now();
    let request = match Request::parse_with_limit(line, state.max_line_bytes) {
        Ok(request) => request,
        Err(message) => {
            // The id — and the kind, for attribution — are worth salvaging
            // even from an invalid request.
            let doc = Json::parse(line).ok();
            let id = doc.as_ref().and_then(|d| d.get("id").cloned());
            let kind = doc
                .as_ref()
                .and_then(|d| d.get("kind"))
                .and_then(Json::as_str)
                .and_then(|k| kind_index(k).map(|i| KIND_NAMES[i]));
            state.metrics.record_error(kind);
            return Served::failure(
                error_response(id.as_ref(), &message).render(),
                kind,
                message,
            );
        }
    };
    let id = request.id;
    let kind = request.body.kind();
    let success = |response: String, cached: bool, shutdown: bool| Served {
        response,
        shutdown,
        kind: Some(kind),
        ok: true,
        cached,
        error: None,
    };
    let failure = |response: String, message: String| {
        state.metrics.record_error(Some(kind));
        Served::failure(response, Some(kind), message)
    };

    // Control requests are served inline: they must work even when every
    // worker is busy (that is exactly when you want `stats`).
    match request.body {
        RequestBody::Stats => {
            let result = stats_result(state);
            let micros = started.elapsed().as_micros() as u64;
            state.metrics.record_ok(kind, micros);
            return success(
                ok_response(id.as_ref(), kind, false, micros, result).render(),
                false,
                false,
            );
        }
        RequestBody::Shutdown => {
            let micros = started.elapsed().as_micros() as u64;
            state.metrics.record_ok(kind, micros);
            let result = Json::object().field("stopping", true).build();
            return success(
                ok_response(id.as_ref(), kind, false, micros, result).render(),
                false,
                true,
            );
        }
        _ => {}
    }

    let key = cache_key(&request.body);
    if let Some(key) = &key {
        if let Some(rendered) = state.cache.get(key) {
            let result = Json::parse(&rendered).expect("cache holds rendered JSON");
            let micros = started.elapsed().as_micros() as u64;
            state.metrics.record_ok(kind, micros);
            return success(
                ok_response(id.as_ref(), kind, true, micros, result).render(),
                true,
                false,
            );
        }
    }

    // Miss: run the analysis on a pool worker and wait for its answer. The
    // blocking `submit` (bounded queue) and the blocking `recv` are the
    // backpressure path that keeps a flooding client on its own socket.
    let (tx, rx) = mpsc::channel::<Result<Json, String>>();
    let body = request.body;
    let submitted = state.pool.submit(Box::new(move || {
        tx.send(compute_result(&body)).ok();
    }));
    if submitted.is_err() {
        let message = "server is shutting down".to_owned();
        return failure(error_response(id.as_ref(), &message).render(), message);
    }
    match rx.recv() {
        Ok(Ok(result)) => {
            if let Some(key) = key {
                state.cache.insert(key, result.render());
            }
            let micros = started.elapsed().as_micros() as u64;
            state.metrics.record_ok(kind, micros);
            success(
                ok_response(id.as_ref(), kind, false, micros, result).render(),
                false,
                false,
            )
        }
        Ok(Err(message)) => failure(error_response(id.as_ref(), &message).render(), message),
        Err(_) => {
            let message = "worker dropped the job".to_owned();
            failure(error_response(id.as_ref(), &message).render(), message)
        }
    }
}

fn stats_result(state: &ServerState) -> Json {
    let cache = state.cache.stats();
    let metrics = state.metrics.snapshot();
    let registered = state.connections.lock().expect("connection registry").len();
    let mut kinds = Json::object();
    for (i, name) in KIND_NAMES.iter().enumerate() {
        let kind = &metrics.kinds[i];
        kinds = kinds.field(
            *name,
            Json::object()
                .field("requests", kind.requests)
                .field("errors", kind.errors)
                .field("p50_micros", kind.p50_micros)
                .field("p99_micros", kind.p99_micros)
                .field(
                    "histogram",
                    kind.histogram
                        .iter()
                        .map(|&c| Json::from(c))
                        .collect::<Vec<_>>(),
                )
                .build(),
        );
    }
    Json::object()
        .field("requests", metrics.requests)
        .field("errors", metrics.errors)
        .field("queue_depth", state.pool.depth() as u64)
        .field("workers", state.threads as u64)
        .field("simd_backend", sealpaa_sim::Backend::active().name())
        .field("p50_micros", metrics.p50_micros)
        .field("p99_micros", metrics.p99_micros)
        .field(
            "connections",
            Json::object()
                .field("live", metrics.live_connections)
                .field("peak", metrics.peak_connections)
                .field("registered", registered as u64)
                .field("shed", metrics.shed_connections)
                .field("timeouts", metrics.timeouts)
                .build(),
        )
        .field("kinds", kinds.build())
        .field(
            "cache",
            Json::object()
                .field("hits", cache.hits)
                .field("misses", cache.misses)
                .field("evictions", cache.evictions)
                .field("entries", cache.entries as u64)
                .build(),
        )
        .build()
}

/// Runs the engine for one queued request kind and renders its result.
fn compute_result(body: &RequestBody) -> Result<Json, String> {
    match body {
        RequestBody::Analyze(spec) => analyze_result(spec),
        RequestBody::Simulate(spec) => simulate_result(spec),
        RequestBody::Compare(spec) => compare_result(spec),
        RequestBody::Gear(spec) => gear_result(spec),
        RequestBody::Blocks(spec) => blocks_result(spec),
        RequestBody::Dse(spec) => dse_result(spec),
        RequestBody::Profile(spec) => profile_result(spec),
        RequestBody::Stats | RequestBody::Shutdown => {
            unreachable!("control requests are served inline")
        }
    }
}

fn analyze_result(spec: &AdderSpec) -> Result<Json, String> {
    let analysis = sealpaa_core::analyze(&spec.chain, &spec.profile).map_err(|e| e.to_string())?;
    let stages: Vec<Json> = analysis
        .stages()
        .iter()
        .map(|s| {
            Json::object()
                .field("stage", s.stage)
                .field("cell", spec.chain.stage(s.stage).name())
                .field("p_carry_and_success", *s.carry_out.p_carry_and_success())
                .field(
                    "p_not_carry_and_success",
                    *s.carry_out.p_not_carry_and_success(),
                )
                .field("success_through", s.success_through)
                .build()
        })
        .collect();
    Ok(Json::object()
        .field("adder", spec.chain.to_string())
        .field("width", spec.chain.width())
        .field("error_probability", analysis.error_probability())
        .field("success_probability", analysis.success_probability())
        .field("stages", stages)
        .build())
}

fn simulate_result(spec: &SimulateSpec) -> Result<Json, String> {
    let adder = &spec.adder;
    match spec.mode {
        SimMode::Exhaustive => {
            // Bitsliced + threaded: all integer outputs (cases, error
            // counts) are identical for any thread count; only f64-weighted
            // fields can move in the last ulp.
            let report = sealpaa_sim::exhaustive_with(
                &adder.chain,
                &adder.profile,
                sealpaa_sim::default_threads(),
            )
            .map_err(|e| e.to_string())?;
            Ok(Json::object()
                .field("mode", "exhaustive")
                .field("adder", adder.chain.to_string())
                .field("cases", report.cases)
                .field("error_cases", report.error_cases)
                .field("error_probability", report.output_error_probability)
                .field("stage_error_probability", report.stage_error_probability)
                .field("mean_error_distance", report.metrics.mean_error_distance)
                .field(
                    "mean_absolute_error_distance",
                    report.metrics.mean_absolute_error_distance,
                )
                .field(
                    "max_absolute_error_distance",
                    report.metrics.max_absolute_error_distance,
                )
                .build())
        }
        SimMode::MonteCarlo {
            samples,
            seed,
            threads,
        } => {
            let config = sealpaa_sim::MonteCarloConfig {
                samples,
                seed,
                threads,
                backend: None,
            };
            let report = sealpaa_sim::monte_carlo(&adder.chain, &adder.profile, config)
                .map_err(|e| e.to_string())?;
            Ok(Json::object()
                .field("mode", "monte_carlo")
                .field("adder", adder.chain.to_string())
                .field("samples", report.samples)
                .field("seed", seed)
                .field("threads", threads as u64)
                .field("error_samples", report.error_samples)
                .field("error_probability", report.error_probability())
                .field("standard_error", report.standard_error)
                .field("mean_error_distance", report.metrics.mean_error_distance)
                .build())
        }
    }
}

fn compare_result(spec: &AdderSpec) -> Result<Json, String> {
    let analysis = sealpaa_core::analyze(&spec.chain, &spec.profile).map_err(|e| e.to_string())?;
    let (baseline, terms) = sealpaa_inclexcl::error_probability(&spec.chain, &spec.profile)
        .map_err(|e| e.to_string())?;
    let proposed = analysis.error_probability();
    Ok(Json::object()
        .field("adder", spec.chain.to_string())
        .field("width", spec.chain.width())
        .field("proposed", proposed)
        .field("inclusion_exclusion", baseline)
        .field("terms", terms)
        .field("abs_difference", (proposed - baseline).abs())
        .build())
}

fn gear_result(spec: &GearSpec) -> Result<Json, String> {
    let config =
        sealpaa_gear::GearConfig::new(spec.n, spec.r, spec.overlap).map_err(|e| e.to_string())?;
    let pa = vec![spec.p; spec.n];
    let p_error =
        sealpaa_gear::error_probability(&config, &pa, &pa, spec.cin).map_err(|e| e.to_string())?;
    let mut obj = Json::object()
        .field("n", spec.n)
        .field("r", spec.r)
        .field("overlap", spec.overlap)
        .field("blocks_total", config.block_count())
        .field("error_probability", p_error);
    if spec.blocks {
        let blocks = sealpaa_gear::block_error_probabilities(&config, &pa, &pa, spec.cin)
            .map_err(|e| e.to_string())?;
        obj = obj.field(
            "block_error_probabilities",
            blocks.into_iter().map(Json::from).collect::<Vec<_>>(),
        );
    }
    Ok(obj.build())
}

/// Most PMF/CDF support points a `blocks` response ships; larger supports
/// report summary statistics only (the line limit is the hard bound, this
/// keeps responses readable long before it).
const MAX_BLOCKS_PMF_ENTRIES: usize = 1024;

fn blocks_result(spec: &BlocksSpec) -> Result<Json, String> {
    let dist = sealpaa_blocks::error_distance_distribution(&spec.config, &spec.profile)
        .map_err(|e| e.to_string())?;
    let width = spec.config.width();
    // Error distances are bounded by 2^(width+1) ≤ 2^48, so every support
    // point is exactly representable as an f64 JSON number.
    let points = |pairs: &[(i128, f64)]| -> Vec<Json> {
        pairs
            .iter()
            .map(|&(d, p)| Json::Array(vec![Json::Number(d as f64), Json::Number(p)]))
            .collect()
    };
    let mut obj = Json::object()
        .field("config", spec.config.to_string())
        .field("width", width as u64)
        .field("blocks_total", spec.config.block_count() as u64)
        .field("error_rate", dist.error_rate())
        .field("mean", dist.mean())
        .field("mean_absolute", dist.mean_absolute())
        .field("mean_squared", dist.mean_squared())
        .field(
            "normalized_mean_absolute",
            dist.normalized_mean_absolute(width),
        )
        .field("max_absolute", dist.max_absolute() as u64)
        .field("support", dist.pmf.len() as u64);
    if dist.pmf.len() <= MAX_BLOCKS_PMF_ENTRIES {
        obj = obj.field("pmf", points(&dist.pmf));
        if spec.cdf {
            obj = obj.field("cdf", points(&dist.cdf()));
        }
    } else {
        obj = obj.field("pmf_omitted", true);
    }
    Ok(obj.build())
}

fn dse_result(spec: &DseSpec) -> Result<Json, String> {
    let budget = sealpaa_explore::Budget {
        max_power_nw: spec.budget_power,
        max_area_ge: spec.budget_area,
    };
    let design_json = |design: &sealpaa_explore::HybridDesign| {
        Json::object()
            .field("chain", design.chain.to_string())
            .field(
                "cells",
                design
                    .chain
                    .iter()
                    .map(|c| Json::from(c.name()))
                    .collect::<Vec<_>>(),
            )
            .field("error_probability", design.evaluation.error_probability)
            .field("power_nw", design.evaluation.power_nw)
            .field("area_ge", design.evaluation.area_ge)
            .build()
    };
    // The result is a pure function of (candidates, profile, budget, pareto):
    // the search merges worker results in lexicographic design order, so
    // `threads` affects wall-clock only — which is why it is reported here
    // but excluded from the cache key.
    let best = sealpaa_explore::exhaustive_best_with(
        &spec.candidates,
        &spec.profile,
        &budget,
        spec.threads,
    )
    .map_err(|e| e.to_string())?;
    let mut obj = Json::object()
        .field("width", spec.profile.width() as u64)
        .field(
            "candidates",
            spec.candidates
                .iter()
                .map(|c| Json::from(c.name()))
                .collect::<Vec<_>>(),
        )
        .field(
            "best",
            match &best {
                None => Json::Null,
                Some(design) => design_json(design),
            },
        );
    if spec.pareto {
        let designs =
            sealpaa_explore::exhaustive_designs(&spec.candidates, &spec.profile, spec.threads)
                .map_err(|e| e.to_string())?;
        let front = sealpaa_explore::pareto_front(designs);
        obj = obj.field("pareto", front.iter().map(design_json).collect::<Vec<_>>());
    }
    Ok(obj.build())
}

fn profile_result(spec: &ProfileSpec) -> Result<Json, String> {
    use sealpaa_trace::VarId;
    let (source, records) = match &spec.source {
        ProfileSource::Synth {
            kind,
            records,
            seed,
        } => {
            let generated = sealpaa_trace::generate(*kind, spec.width, *records as usize, *seed)
                .map_err(|e| e.to_string())?;
            (kind.name(), generated)
        }
        ProfileSource::Inline(records) => ("inline", records.clone()),
    };
    let stats =
        sealpaa_trace::TraceStats::from_records(spec.width, &records).map_err(|e| e.to_string())?;
    let probs = |pick: fn(usize) -> VarId| -> Vec<Json> {
        (0..spec.width)
            .map(|i| Json::from(stats.p(pick(i))))
            .collect()
    };
    let mut obj = Json::object()
        .field("source", source)
        .field("width", spec.width as u64)
        .field("records", stats.records())
        .field("pa", probs(VarId::A))
        .field("pb", probs(VarId::B))
        .field("cin", stats.p(VarId::Cin))
        .field("independence_violation", stats.independence_violation());
    if let Some((x, y, score)) = stats.max_violation_pair() {
        obj = obj.field(
            "max_violation_pair",
            Json::object()
                .field("x", x.to_string())
                .field("y", y.to_string())
                .field("score", score)
                .build(),
        );
    }
    Ok(obj.build())
}

/// Resolves a human-readable list of the standard cells — used by the CLI's
/// `serve --help` so the daemon and CLI agree on the vocabulary.
pub fn standard_cell_names() -> Vec<&'static str> {
    StandardCell::ALL.iter().map(|c| c.name()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::BUCKETS;
    use std::io::Cursor;

    fn run_lines(config: &ServerConfig, lines: &str) -> Vec<Json> {
        let mut out = Vec::new();
        run_stdio(config, Cursor::new(lines.to_owned()), &mut out).expect("stdio run");
        String::from_utf8(out)
            .expect("utf8")
            .lines()
            .map(|l| Json::parse(l).expect("valid response JSON"))
            .collect()
    }

    #[test]
    fn stdio_serves_analyze_and_matches_the_library() {
        let responses = run_lines(
            &ServerConfig::default(),
            "{\"id\":1,\"kind\":\"analyze\",\"width\":2,\"cell\":\"lpaa1\",\"p\":0.1}\n",
        );
        assert_eq!(responses.len(), 1);
        let r = &responses[0];
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(r.get("cached").and_then(Json::as_bool), Some(false));
        let served = r
            .get("result")
            .and_then(|x| x.get("error_probability"))
            .and_then(Json::as_f64)
            .expect("error probability");
        // Paper Table 7: 2-bit LPAA1 at p = 0.1.
        assert!((served - 0.3078).abs() < 1e-4, "served {served}");
    }

    #[test]
    fn repeated_request_is_served_from_cache() {
        let line = "{\"kind\":\"analyze\",\"width\":4,\"cell\":\"lpaa2\"}\n";
        let responses = run_lines(
            &ServerConfig::default(),
            &format!("{line}{line}{{\"kind\":\"stats\"}}\n"),
        );
        assert_eq!(responses.len(), 3);
        assert_eq!(
            responses[0].get("cached").and_then(Json::as_bool),
            Some(false)
        );
        assert_eq!(
            responses[1].get("cached").and_then(Json::as_bool),
            Some(true)
        );
        assert_eq!(
            responses[0].get("result"),
            responses[1].get("result"),
            "cache must return the identical result"
        );
        let stats = responses[2].get("result").expect("stats result");
        assert_eq!(
            stats
                .get("cache")
                .and_then(|c| c.get("hits"))
                .and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn shutdown_request_stops_the_stream_and_later_lines_are_ignored() {
        let responses = run_lines(
            &ServerConfig::default(),
            "{\"kind\":\"shutdown\"}\n{\"kind\":\"stats\"}\n",
        );
        assert_eq!(responses.len(), 1, "no responses after shutdown");
        assert_eq!(
            responses[0]
                .get("result")
                .and_then(|r| r.get("stopping"))
                .and_then(Json::as_bool),
            Some(true)
        );
    }

    #[test]
    fn errors_are_reported_per_request_and_do_not_kill_the_stream() {
        let responses = run_lines(
            &ServerConfig::default(),
            "{\"kind\":\"analyze\"}\nnot json at all\n{\"id\":9,\"kind\":\"stats\"}\n",
        );
        assert_eq!(responses.len(), 3);
        assert_eq!(responses[0].get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(responses[1].get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(responses[2].get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(responses[2].get("id").and_then(Json::as_u64), Some(9));
        let stats = responses[2].get("result").expect("stats result");
        assert_eq!(stats.get("errors").and_then(Json::as_u64), Some(2));
        // The first error had a recognizable kind and is attributed to it;
        // the second was unparseable and counts only in the aggregate.
        assert_eq!(
            stats
                .get("kinds")
                .and_then(|k| k.get("analyze"))
                .and_then(|a| a.get("errors"))
                .and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn stdio_serves_profile_and_caches_synthetic_sources() {
        let synth = r#"{"kind":"profile","width":6,"synth":"uniform","records":2048,"seed":3}"#;
        let inline = r#"{"kind":"profile","width":2,"trace":[[1,2],[3,0,1]]}"#;
        let responses = run_lines(
            &ServerConfig::default(),
            &format!("{synth}\n{synth}\n{inline}\n{inline}\n"),
        );
        assert_eq!(responses.len(), 4);
        for r in &responses {
            assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
            assert_eq!(r.get("kind").and_then(Json::as_str), Some("profile"));
        }
        // Synthetic sources are pure functions of the request and cache.
        assert_eq!(
            responses[0].get("cached").and_then(Json::as_bool),
            Some(false)
        );
        assert_eq!(
            responses[1].get("cached").and_then(Json::as_bool),
            Some(true)
        );
        let result = responses[0].get("result").expect("profile result");
        assert_eq!(result.get("source").and_then(Json::as_str), Some("uniform"));
        assert_eq!(result.get("records").and_then(Json::as_u64), Some(2048));
        assert_eq!(
            result.get("pa").and_then(Json::as_array).map(<[Json]>::len),
            Some(6)
        );
        assert!(result
            .get("independence_violation")
            .and_then(Json::as_f64)
            .is_some());
        // Inline traces are exact and never cached.
        assert_eq!(
            responses[3].get("cached").and_then(Json::as_bool),
            Some(false)
        );
        let result = responses[2].get("result").expect("profile result");
        assert_eq!(result.get("source").and_then(Json::as_str), Some("inline"));
        assert_eq!(result.get("records").and_then(Json::as_u64), Some(2));
        // a = {1, 3}: bit 0 is always set; cin = {0, 1}.
        let pa = result.get("pa").and_then(Json::as_array).expect("pa list");
        assert_eq!(pa[0].as_f64(), Some(1.0));
        assert_eq!(pa[1].as_f64(), Some(0.5));
        assert_eq!(result.get("cin").and_then(Json::as_f64), Some(0.5));
    }

    #[test]
    fn stats_schema_is_pinned() {
        // The observability contract: these fields (and no fewer) are what
        // dashboards may rely on.
        let responses = run_lines(
            &ServerConfig::default(),
            "{\"kind\":\"analyze\",\"width\":2,\"cell\":\"lpaa1\"}\n\
             {\"kind\":\"profile\",\"width\":2,\"trace\":[[1,2]]}\n\
             {\"kind\":\"stats\"}\n",
        );
        let stats = responses[2].get("result").expect("stats result");
        for field in [
            "requests",
            "errors",
            "queue_depth",
            "workers",
            "p50_micros",
            "p99_micros",
        ] {
            assert!(
                stats.get(field).and_then(Json::as_u64).is_some(),
                "missing numeric field {field}"
            );
        }
        assert!(
            stats.get("simd_backend").and_then(Json::as_str).is_some(),
            "missing simd_backend"
        );
        let connections = stats.get("connections").expect("connection gauges");
        for field in ["live", "peak", "registered", "shed", "timeouts"] {
            assert!(
                connections.get(field).and_then(Json::as_u64).is_some(),
                "missing connection gauge {field}"
            );
        }
        let kinds = stats.get("kinds").expect("per-kind metrics");
        for name in KIND_NAMES {
            let kind = kinds
                .get(name)
                .unwrap_or_else(|| panic!("missing kind {name}"));
            for field in ["requests", "errors", "p50_micros", "p99_micros"] {
                assert!(
                    kind.get(field).and_then(Json::as_u64).is_some(),
                    "missing {name}.{field}"
                );
            }
            let histogram = kind
                .get("histogram")
                .and_then(Json::as_array)
                .unwrap_or_else(|| panic!("missing {name}.histogram"));
            assert_eq!(histogram.len(), BUCKETS, "{name} histogram length");
        }
        // Each request is visible in its own kind's counters.
        for name in ["analyze", "profile"] {
            assert_eq!(
                kinds
                    .get(name)
                    .and_then(|a| a.get("requests"))
                    .and_then(Json::as_u64),
                Some(1),
                "{name} counter"
            );
        }
        let cache = stats.get("cache").expect("cache stats");
        for field in ["hits", "misses", "evictions", "entries"] {
            assert!(
                cache.get(field).and_then(Json::as_u64).is_some(),
                "missing cache.{field}"
            );
        }
    }

    #[test]
    fn stdio_honors_the_configured_line_limit() {
        // The cross-transport contract: stdio enforces the same configured
        // line limit as TCP, during the read.
        let config = ServerConfig {
            max_line_bytes: 1024,
            ..Default::default()
        };
        let long = "x".repeat(5000);
        let responses = run_lines(
            &config,
            &format!("{long}\n{{\"kind\":\"analyze\",\"width\":2,\"cell\":\"lpaa1\"}}\n"),
        );
        assert_eq!(responses.len(), 2);
        assert_eq!(responses[0].get("ok").and_then(Json::as_bool), Some(false));
        let message = responses[0]
            .get("error")
            .and_then(Json::as_str)
            .expect("message");
        assert!(message.contains("5000 bytes"), "{message}");
        assert!(message.contains("1024 byte"), "{message}");
        assert_eq!(
            responses[1].get("ok").and_then(Json::as_bool),
            Some(true),
            "the stream resyncs at the newline and keeps serving"
        );
    }

    #[test]
    fn invalid_utf8_gets_a_parse_error_response_before_the_close() {
        let mut input: Vec<u8> = Vec::new();
        input.extend_from_slice(b"\"\xff\xfe garbage\n");
        input.extend_from_slice(b"{\"kind\":\"stats\"}\n");
        let mut out = Vec::new();
        run_stdio(&ServerConfig::default(), Cursor::new(input), &mut out).expect("stdio run");
        let out = String::from_utf8(out).expect("responses are utf8");
        let responses: Vec<Json> = out
            .lines()
            .map(|l| Json::parse(l).expect("valid response JSON"))
            .collect();
        // One structured error, then the stream closes — the stats line
        // after the garbage is never served.
        assert_eq!(responses.len(), 1, "{out}");
        assert_eq!(responses[0].get("ok").and_then(Json::as_bool), Some(false));
        assert!(responses[0]
            .get("error")
            .and_then(Json::as_str)
            .expect("message")
            .contains("UTF-8"));
    }

    #[test]
    fn trace_log_is_deterministic_ndjson() {
        use std::sync::{Arc, Mutex};

        #[derive(Clone, Default)]
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().expect("buf").extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let analyze = "{\"kind\":\"analyze\",\"width\":2,\"cell\":\"lpaa1\",\"p\":0.1}";
        let bogus = "nonsense";
        let input = format!("{analyze}\n{analyze}\n{bogus}\n{{\"kind\":\"shutdown\"}}\n");
        let run_once = || {
            let sink = SharedBuf::default();
            let mut out = Vec::new();
            run_stdio_with_trace(
                &ServerConfig::default(),
                Cursor::new(input.clone()),
                &mut out,
                Box::new(sink.clone()),
            )
            .expect("stdio run");
            let bytes = sink.0.lock().expect("buf").clone();
            String::from_utf8(bytes).expect("trace is utf8")
        };

        let trace = run_once();
        let lines: Vec<&str> = trace.lines().collect();
        assert_eq!(lines.len(), 4, "{trace}");
        assert_eq!(
            lines[0],
            format!(
                "{{\"kind\":\"analyze\",\"ok\":true,\"cached\":false,\"bytes_in\":{}}}",
                analyze.len()
            )
        );
        assert_eq!(
            lines[1],
            format!(
                "{{\"kind\":\"analyze\",\"ok\":true,\"cached\":true,\"bytes_in\":{}}}",
                analyze.len()
            )
        );
        let parsed = Json::parse(lines[2]).expect("trace line parses");
        assert_eq!(parsed.get("kind"), Some(&Json::Null));
        assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            parsed.get("bytes_in").and_then(Json::as_u64),
            Some(bogus.len() as u64)
        );
        assert!(parsed.get("error").and_then(Json::as_str).is_some());
        assert!(lines[3].contains("\"kind\":\"shutdown\""));

        // Byte-reproducible: a replayed session emits the identical trace
        // (no timestamps, no latencies).
        assert_eq!(trace, run_once());
    }

    #[test]
    fn bounded_reader_handles_limits_partial_lines_and_eof() {
        let mut input = Cursor::new(b"short\nexactly8\ntoolongline\ntail".to_vec());
        match read_bounded_line(&mut input, 8).expect("read") {
            BoundedLine::Line(l) => assert_eq!(l, "short"),
            _ => panic!("expected a line"),
        }
        match read_bounded_line(&mut input, 8).expect("read") {
            BoundedLine::Line(l) => assert_eq!(l, "exactly8"),
            _ => panic!("a line of exactly the limit fits"),
        }
        match read_bounded_line(&mut input, 8).expect("read") {
            BoundedLine::TooLong { bytes } => assert_eq!(bytes, 11),
            _ => panic!("expected overflow"),
        }
        match read_bounded_line(&mut input, 8).expect("read") {
            BoundedLine::Line(l) => assert_eq!(l, "tail", "final unterminated line"),
            _ => panic!("expected the tail"),
        }
        assert!(matches!(
            read_bounded_line(&mut input, 8).expect("read"),
            BoundedLine::Eof
        ));
    }

    #[test]
    fn bounded_reader_discards_oversized_data_in_small_chunks() {
        // A newline-free flood much larger than the limit: the reader must
        // keep consuming (resync) without accumulating the flood.
        let flood = vec![b'x'; 1 << 20];
        let mut input = std::io::BufReader::with_capacity(512, Cursor::new(flood));
        match read_bounded_line(&mut input, 4096).expect("read") {
            BoundedLine::TooLong { bytes } => assert_eq!(bytes, 1 << 20),
            _ => panic!("expected overflow"),
        }
        assert!(matches!(
            read_bounded_line(&mut input, 4096).expect("read"),
            BoundedLine::Eof
        ));
    }

    #[test]
    fn compare_agrees_with_the_inclusion_exclusion_baseline() {
        let responses = run_lines(
            &ServerConfig::default(),
            "{\"kind\":\"compare\",\"width\":5,\"cell\":\"lpaa3\",\"p\":0.3}\n",
        );
        let result = responses[0].get("result").expect("result");
        let diff = result
            .get("abs_difference")
            .and_then(Json::as_f64)
            .expect("difference");
        assert!(diff < 1e-12, "methods disagree by {diff}");
        assert_eq!(result.get("terms").and_then(Json::as_u64), Some(31));
    }

    #[test]
    fn monte_carlo_is_deterministic_per_seed_and_distinct_across_seeds() {
        let mk = |seed: u64| {
            format!("{{\"kind\":\"simulate\",\"width\":8,\"cell\":\"lpaa6\",\"samples\":20000,\"seed\":{seed}}}\n")
        };
        let p_of = |responses: &[Json]| {
            responses[0]
                .get("result")
                .and_then(|r| r.get("error_probability"))
                .and_then(Json::as_f64)
                .expect("estimate")
        };
        let config = ServerConfig {
            cache_entries: 0, // force recomputation: determinism, not caching
            ..Default::default()
        };
        let a1 = p_of(&run_lines(&config, &mk(7)));
        let a2 = p_of(&run_lines(&config, &mk(7)));
        let b = p_of(&run_lines(&config, &mk(8)));
        assert_eq!(a1, a2, "same seed must reproduce exactly");
        assert_ne!(a1, b, "different seeds should differ");
    }

    #[test]
    fn dse_finds_the_budgeted_best_design() {
        let responses = run_lines(
            &ServerConfig::default(),
            "{\"kind\":\"dse\",\"width\":3,\"p\":0.3,\"budget_power\":0,\"threads\":2}\n",
        );
        let best = responses[0]
            .get("result")
            .and_then(|r| r.get("best"))
            .expect("best design");
        // Only LPAA 5 (0 nW) chains fit a zero power budget.
        let cells = best.get("cells").and_then(Json::as_array).expect("cells");
        assert_eq!(cells.len(), 3);
        assert!(cells.iter().all(|c| c.as_str() == Some("LPAA 5")));
        assert_eq!(best.get("power_nw").and_then(Json::as_f64), Some(0.0));
    }

    #[test]
    fn dse_requests_differing_only_in_threads_share_one_cache_entry() {
        // The satellite contract: `threads` cannot change the result, so it
        // is not in the canonical key — the t=3 request must be a cache hit
        // on the t=1 entry, returning the identical rendered result.
        let mk = |threads: usize| {
            format!("{{\"kind\":\"dse\",\"width\":4,\"p\":0.3,\"pareto\":true,\"threads\":{threads}}}\n")
        };
        let responses = run_lines(&ServerConfig::default(), &format!("{}{}", mk(1), mk(3)));
        assert_eq!(responses.len(), 2);
        assert_eq!(
            responses[0].get("cached").and_then(Json::as_bool),
            Some(false)
        );
        assert_eq!(
            responses[1].get("cached").and_then(Json::as_bool),
            Some(true),
            "a different thread count must hit the same cache entry"
        );
        assert_eq!(responses[0].get("result"), responses[1].get("result"));
    }

    #[test]
    fn dse_result_is_thread_count_invariant_even_uncached() {
        // With caching disabled, both thread counts really run — and the
        // lexicographic merge makes the answers identical anyway.
        let config = ServerConfig {
            cache_entries: 0,
            ..Default::default()
        };
        let mk = |threads: usize| {
            format!("{{\"kind\":\"dse\",\"width\":4,\"p\":0.3,\"pareto\":true,\"threads\":{threads}}}\n")
        };
        let a = run_lines(&config, &mk(1));
        let b = run_lines(&config, &mk(3));
        assert_eq!(a[0].get("result"), b[0].get("result"));
    }

    #[test]
    fn gear_result_includes_blocks_on_request() {
        let responses = run_lines(
            &ServerConfig::default(),
            "{\"kind\":\"gear\",\"n\":8,\"r\":2,\"overlap\":2,\"blocks\":true}\n",
        );
        let result = responses[0].get("result").expect("result");
        let blocks = result
            .get("block_error_probabilities")
            .and_then(Json::as_array)
            .expect("blocks");
        let config = sealpaa_gear::GearConfig::new(8, 2, 2).expect("valid");
        assert_eq!(blocks.len(), config.block_count() - 1);
        let direct =
            sealpaa_gear::error_probability(&config, &[0.5; 8], &[0.5; 8], 0.0).expect("direct");
        assert_eq!(
            result.get("error_probability").and_then(Json::as_f64),
            Some(direct)
        );
    }
}
