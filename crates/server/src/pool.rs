//! A fixed-size worker thread pool over a bounded job queue.
//!
//! Connection threads submit closures; `threads` workers drain them. The
//! queue is bounded: when it is full, [`WorkerPool::submit`] blocks the
//! caller until a slot frees up. That blocking *is* the backpressure — a
//! client flooding the daemon ends up waiting on its own socket rather than
//! growing an unbounded in-memory backlog.
//!
//! Shutdown is graceful by construction: [`WorkerPool::shutdown`] closes the
//! queue to new submissions, and workers keep draining already-accepted jobs
//! until the queue is empty before exiting. Dropping the pool implies
//! shutdown.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A unit of work executed on a pool worker.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why a [`WorkerPool::try_submit`] did not enqueue; the job is handed back
/// either way so the caller can retry or fail it.
pub enum TrySubmit {
    /// The queue is at capacity right now — retry after a completion.
    Full(Job),
    /// The pool has been shut down — the job can never run.
    Closed(Job),
}

struct Queue {
    jobs: VecDeque<Job>,
    closed: bool,
    capacity: usize,
}

struct Shared {
    queue: Mutex<Queue>,
    /// Signalled when a job is pushed or the queue closes (workers wait).
    job_ready: Condvar,
    /// Signalled when a job is popped (blocked submitters wait).
    slot_free: Condvar,
}

/// The pool proper. See the module docs for semantics.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkerPool {
    /// Spawns `threads` workers sharing a queue bounded at `queue_capacity`
    /// pending jobs. Both values are clamped to at least 1.
    pub fn new(threads: usize, queue_capacity: usize) -> WorkerPool {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                closed: false,
                capacity: queue_capacity.max(1),
            }),
            job_ready: Condvar::new(),
            slot_free: Condvar::new(),
        });
        let workers = (0..threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sealpaa-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// Enqueues a job, blocking while the queue is full.
    ///
    /// # Errors
    ///
    /// Returns the job back if the pool has been shut down.
    pub fn submit(&self, job: Job) -> Result<(), Job> {
        let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
        loop {
            if queue.closed {
                return Err(job);
            }
            if queue.jobs.len() < queue.capacity {
                queue.jobs.push_back(job);
                drop(queue);
                self.shared.job_ready.notify_one();
                return Ok(());
            }
            queue = self
                .shared
                .slot_free
                .wait(queue)
                .expect("pool queue poisoned");
        }
    }

    /// Enqueues a job without ever blocking: the event loop's submission
    /// path, where blocking would stall every connection at once. A full
    /// queue hands the job back as [`TrySubmit::Full`]; the caller parks it
    /// and retries when a completion signals that a slot freed up.
    ///
    /// # Errors
    ///
    /// Returns the job back inside [`TrySubmit`] when the queue is full or
    /// the pool has been shut down.
    pub fn try_submit(&self, job: Job) -> Result<(), TrySubmit> {
        let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
        if queue.closed {
            return Err(TrySubmit::Closed(job));
        }
        if queue.jobs.len() >= queue.capacity {
            return Err(TrySubmit::Full(job));
        }
        queue.jobs.push_back(job);
        drop(queue);
        self.shared.job_ready.notify_one();
        Ok(())
    }

    /// The number of jobs currently waiting (not counting jobs already
    /// running on a worker).
    pub fn depth(&self) -> usize {
        self.shared
            .queue
            .lock()
            .expect("pool queue poisoned")
            .jobs
            .len()
    }

    /// Closes the queue and waits for the workers to drain every accepted
    /// job and exit. Idempotent; callable from any thread except a pool
    /// worker itself.
    pub fn shutdown(&self) {
        {
            let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
            if queue.closed {
                return;
            }
            queue.closed = true;
        }
        self.shared.job_ready.notify_all();
        self.shared.slot_free.notify_all();
        let workers = std::mem::take(&mut *self.workers.lock().expect("pool workers poisoned"));
        for worker in workers {
            let _ = worker.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break job;
                }
                if queue.closed {
                    return;
                }
                queue = shared.job_ready.wait(queue).expect("pool queue poisoned");
            }
        };
        shared.slot_free.notify_one();
        job();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn executes_every_submitted_job() {
        let counter = Arc::new(AtomicUsize::new(0));
        let pool = WorkerPool::new(4, 8);
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            pool.submit(Box::new(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            }))
            .ok()
            .expect("pool open");
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn shutdown_drains_in_flight_jobs() {
        // One worker, slow jobs: everything accepted before shutdown must
        // still run to completion.
        let done = Arc::new(AtomicUsize::new(0));
        let pool = WorkerPool::new(1, 16);
        for _ in 0..5 {
            let done = Arc::clone(&done);
            pool.submit(Box::new(move || {
                std::thread::sleep(Duration::from_millis(20));
                done.fetch_add(1, Ordering::SeqCst);
            }))
            .ok()
            .expect("pool open");
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn submit_after_shutdown_returns_the_job() {
        let pool = WorkerPool::new(1, 1);
        pool.shutdown();
        assert!(pool.submit(Box::new(|| {})).is_err());
    }

    #[test]
    fn try_submit_never_blocks_and_reports_why() {
        // Gate the single worker so the 1-slot queue stays occupied.
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let pool = WorkerPool::new(1, 1);
        pool.submit(Box::new(move || {
            gate_rx.recv().ok();
        }))
        .ok()
        .expect("pool open");
        std::thread::sleep(Duration::from_millis(20));
        let ran = Arc::new(AtomicUsize::new(0));
        {
            let ran = Arc::clone(&ran);
            pool.try_submit(Box::new(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            }))
            .ok()
            .expect("one slot free");
        }
        // The queue is now full: try_submit must return immediately with
        // the job, not block like submit does.
        let started = std::time::Instant::now();
        match pool.try_submit(Box::new(|| {})) {
            Err(TrySubmit::Full(_)) => {}
            _ => panic!("expected Full from a saturated queue"),
        }
        assert!(started.elapsed() < Duration::from_secs(1));
        gate_tx.send(()).expect("worker waiting");
        pool.shutdown();
        assert_eq!(ran.load(Ordering::SeqCst), 1, "the parked job still ran");
        match pool.try_submit(Box::new(|| {})) {
            Err(TrySubmit::Closed(_)) => {}
            _ => panic!("expected Closed after shutdown"),
        }
    }

    #[test]
    fn bounded_queue_applies_backpressure() {
        // Block the single worker, fill the 1-slot queue, then verify the
        // next submit does not return until the worker makes progress.
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let pool = Arc::new(WorkerPool::new(1, 1));
        pool.submit(Box::new(move || {
            gate_rx.recv().ok();
        }))
        .ok()
        .expect("pool open");
        // Give the worker a moment to pick up the blocking job, then fill
        // the queue's single slot.
        std::thread::sleep(Duration::from_millis(20));
        pool.submit(Box::new(|| {})).ok().expect("fills the queue");
        assert_eq!(pool.depth(), 1);

        let (probe_tx, probe_rx) = mpsc::channel::<&'static str>();
        let submitter = {
            let pool = Arc::clone(&pool);
            let probe_tx = probe_tx.clone();
            std::thread::spawn(move || {
                pool.submit(Box::new(|| {})).ok().expect("pool open");
                probe_tx.send("submitted").ok();
            })
        };
        // The submitter must be blocked while the worker is gated.
        assert!(
            probe_rx.recv_timeout(Duration::from_millis(100)).is_err(),
            "submit returned although the queue was full"
        );
        gate_tx.send(()).expect("worker waiting");
        assert_eq!(
            probe_rx
                .recv_timeout(Duration::from_secs(5))
                .expect("submit unblocked"),
            "submitted"
        );
        submitter.join().expect("no panic");
        pool.shutdown();
    }
}
