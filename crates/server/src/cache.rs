//! A sharded LRU cache for rendered analysis results.
//!
//! The cache maps [canonical keys](crate::canonical) to rendered result
//! payloads. Keys are hashed to one of `SHARDS` independent shards so that
//! worker threads completing unrelated requests rarely contend on the same
//! lock; each shard is a classic `HashMap` + intrusive doubly-linked list
//! (indices into a slab, no `unsafe`) giving O(1) get/insert/evict.
//!
//! Capacity is split evenly across shards at construction; a capacity below
//! the shard count degenerates gracefully to one entry per shard, and a
//! capacity of zero disables caching entirely (every lookup misses, inserts
//! are dropped).

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of independent shards. A power of two so the shard index is a
/// cheap mask of the key hash.
const SHARDS: usize = 16;

const NIL: usize = usize::MAX;

struct Entry {
    key: String,
    value: String,
    prev: usize,
    next: usize,
}

/// One shard: map from key to slab index, plus an LRU list threaded through
/// the slab (`head` = most recent, `tail` = least recent, `free` = recycled
/// slots).
struct Shard {
    map: HashMap<String, usize>,
    slab: Vec<Entry>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl Shard {
    fn new(capacity: usize) -> Shard {
        Shard {
            map: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slab[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slab[next].prev = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn get(&mut self, key: &str) -> Option<String> {
        let idx = *self.map.get(key)?;
        self.unlink(idx);
        self.push_front(idx);
        Some(self.slab[idx].value.clone())
    }

    /// Inserts `key -> value`, evicting the least-recently-used entry when
    /// full. Returns `true` if an eviction happened.
    fn insert(&mut self, key: String, value: String) -> bool {
        if self.capacity == 0 {
            return false;
        }
        if let Some(&idx) = self.map.get(&key) {
            self.slab[idx].value = value;
            self.unlink(idx);
            self.push_front(idx);
            return false;
        }
        let mut evicted = false;
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            self.unlink(victim);
            let old_key = std::mem::take(&mut self.slab[victim].key);
            self.map.remove(&old_key);
            self.free.push(victim);
            evicted = true;
        }
        let idx = match self.free.pop() {
            Some(slot) => {
                self.slab[slot] = Entry {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                };
                slot
            }
            None => {
                self.slab.push(Entry {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                });
                self.slab.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        evicted
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    /// Appends this shard's entries to `out`, least recently used first, so
    /// that re-inserting them in order reproduces the recency order.
    fn export_into(&self, out: &mut Vec<(String, String)>) {
        let mut idx = self.tail;
        while idx != NIL {
            let entry = &self.slab[idx];
            out.push((entry.key.clone(), entry.value.clone()));
            idx = entry.prev;
        }
    }
}

/// A thread-safe sharded LRU cache from canonical keys to rendered results.
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    inserts: AtomicU64,
}

/// A point-in-time snapshot of the cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the engines.
    pub misses: u64,
    /// Entries discarded to make room.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl ResultCache {
    /// Creates a cache holding at most `capacity` entries in total.
    pub fn new(capacity: usize) -> ResultCache {
        // Spread capacity across shards, rounding up so the total is never
        // below the request (except capacity 0, which disables the cache).
        let per_shard = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(SHARDS)
        };
        ResultCache {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(Shard::new(per_shard)))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
        }
    }

    fn shard_for(&self, key: &str) -> &Mutex<Shard> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) & (SHARDS - 1)]
    }

    /// Looks up `key`, refreshing its recency on a hit and bumping the
    /// hit/miss counters.
    pub fn get(&self, key: &str) -> Option<String> {
        let found = self
            .shard_for(key)
            .lock()
            .expect("cache shard poisoned")
            .get(key);
        match found {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Validates that `key` is still resident *without cloning its value*,
    /// refreshing its recency and counting a hit when it is. This is the
    /// cheap revalidation probe behind connection-local copies of cached
    /// results (the request memo / hot tier): the copy may only be replayed
    /// as `"cached":true` while the entry actually lives in the cache, so
    /// the hit counter, the recency order, and the responses stay
    /// consistent. An absent key is *not* counted as a miss — the caller
    /// falls through to a full [`ResultCache::get`] (or a compute), which
    /// does the counting.
    pub fn touch(&self, key: &str) -> bool {
        let mut shard = self.shard_for(key).lock().expect("cache shard poisoned");
        let Some(&idx) = shard.map.get(key) else {
            return false;
        };
        shard.unlink(idx);
        shard.push_front(idx);
        drop(shard);
        self.hits.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Stores `key -> value`, evicting the shard's least-recently-used entry
    /// if it is full.
    pub fn insert(&self, key: String, value: String) {
        let evicted = self
            .shard_for(&key)
            .lock()
            .expect("cache shard poisoned")
            .insert(key, value);
        self.inserts.fetch_add(1, Ordering::Relaxed);
        if evicted {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total inserts ever performed — a cheap dirtiness clock for the
    /// snapshot persister (unchanged inserts ⇒ nothing new to write).
    pub fn inserts(&self) -> u64 {
        self.inserts.load(Ordering::Relaxed)
    }

    /// Every resident entry, least recently used first within each shard,
    /// so that inserting the exported pairs in order into an empty cache of
    /// the same capacity reproduces both the contents and the per-shard
    /// eviction order (keys hash to the same shard across runs —
    /// `DefaultHasher::new` is deterministic).
    pub fn export(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            shard
                .lock()
                .expect("cache shard poisoned")
                .export_into(&mut out);
        }
        out
    }

    /// The current counters and entry count.
    pub fn stats(&self) -> CacheStats {
        let entries = self
            .shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_evicts_in_lru_order() {
        // Capacity 3 in one shard exercises the list mechanics directly.
        let mut shard = Shard::new(3);
        shard.insert("a".into(), "1".into());
        shard.insert("b".into(), "2".into());
        shard.insert("c".into(), "3".into());
        // Touch "a" so "b" becomes the least recently used.
        assert_eq!(shard.get("a"), Some("1".into()));
        assert!(shard.insert("d".into(), "4".into()), "must evict");
        assert_eq!(shard.get("b"), None, "b was LRU and must be gone");
        assert_eq!(shard.get("a"), Some("1".into()));
        assert_eq!(shard.get("c"), Some("3".into()));
        assert_eq!(shard.get("d"), Some("4".into()));
        assert_eq!(shard.len(), 3);
    }

    #[test]
    fn eviction_order_follows_access_sequence_exactly() {
        let mut shard = Shard::new(2);
        shard.insert("a".into(), "1".into());
        shard.insert("b".into(), "2".into());
        shard.get("a");
        shard.insert("c".into(), "3".into()); // evicts b
        shard.get("c");
        shard.insert("d".into(), "4".into()); // evicts a
        assert_eq!(shard.get("a"), None);
        assert_eq!(shard.get("b"), None);
        assert!(shard.get("c").is_some());
        assert!(shard.get("d").is_some());
    }

    #[test]
    fn reinsert_updates_value_without_eviction() {
        let mut shard = Shard::new(2);
        shard.insert("a".into(), "1".into());
        shard.insert("b".into(), "2".into());
        assert!(!shard.insert("a".into(), "1'".into()));
        assert_eq!(shard.get("a"), Some("1'".into()));
        assert_eq!(shard.get("b"), Some("2".into()));
    }

    #[test]
    fn slots_are_recycled_across_many_evictions() {
        let mut shard = Shard::new(4);
        for i in 0..1000 {
            shard.insert(format!("k{i}"), format!("v{i}"));
        }
        assert_eq!(shard.len(), 4);
        assert!(shard.slab.len() <= 5, "slab must not grow unboundedly");
        for i in 996..1000 {
            assert_eq!(shard.get(&format!("k{i}")), Some(format!("v{i}")));
        }
    }

    #[test]
    fn cache_counts_hits_misses_and_entries() {
        let cache = ResultCache::new(64);
        assert_eq!(cache.get("missing"), None);
        cache.insert("k".into(), "v".into());
        assert_eq!(cache.get("k"), Some("v".into()));
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn touch_refreshes_recency_and_counts_a_hit() {
        let cache = ResultCache::new(64);
        cache.insert("k".into(), "v".into());
        assert!(cache.touch("k"));
        assert!(!cache.touch("gone"), "absent keys are reported honestly");
        let stats = cache.stats();
        assert_eq!(stats.hits, 1, "touch on a resident key counts a hit");
        assert_eq!(stats.misses, 0, "a failed touch is not a miss");
    }

    #[test]
    fn touch_protects_an_entry_from_eviction() {
        // One shard of capacity 2: repeated touches of "a" must keep it the
        // most recently used entry across later inserts.
        let mut shard = Shard::new(2);
        shard.insert("a".into(), "1".into());
        shard.insert("b".into(), "2".into());
        let &idx = shard.map.get("a").expect("resident");
        shard.unlink(idx);
        shard.push_front(idx);
        shard.insert("c".into(), "3".into()); // evicts b, not a
        assert!(shard.get("a").is_some());
        assert_eq!(shard.get("b"), None);
    }

    #[test]
    fn export_reproduces_contents_and_eviction_order() {
        let cache = ResultCache::new(64);
        for i in 0..40 {
            cache.insert(format!("key-{i}"), format!("val-{i}"));
        }
        // Refresh a few entries so the recency order differs from insert
        // order.
        for i in 0..10 {
            cache.get(&format!("key-{i}"));
        }
        let exported = cache.export();
        assert_eq!(exported.len(), cache.stats().entries);
        assert!(!exported.is_empty());

        // Re-inserting the export in order into a fresh same-capacity cache
        // must reproduce the contents *and* the per-shard recency order
        // exactly (export walks LRU-first, so inserts replay that order)...
        let restored = ResultCache::new(64);
        for (key, value) in &exported {
            restored.insert(key.clone(), value.clone());
        }
        assert_eq!(restored.export(), exported);
        // ...which means overflowing both caches with the same filler keys
        // must evict the same survivors.
        let original_after = {
            for i in 100..200 {
                cache.insert(format!("fill-{i}"), "x".into());
            }
            let mut keys: Vec<String> = cache.export().into_iter().map(|(k, _)| k).collect();
            keys.sort();
            keys
        };
        let restored_after = {
            for i in 100..200 {
                restored.insert(format!("fill-{i}"), "x".into());
            }
            let mut keys: Vec<String> = restored.export().into_iter().map(|(k, _)| k).collect();
            keys.sort();
            keys
        };
        assert_eq!(original_after, restored_after);
    }

    #[test]
    fn insert_counter_advances_monotonically() {
        let cache = ResultCache::new(4);
        assert_eq!(cache.inserts(), 0);
        cache.insert("a".into(), "1".into());
        cache.insert("a".into(), "2".into());
        cache.insert("b".into(), "3".into());
        assert_eq!(cache.inserts(), 3, "reinserts and evictions all count");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ResultCache::new(0);
        cache.insert("k".into(), "v".into());
        assert_eq!(cache.get("k"), None);
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn capacity_bound_holds_under_skewed_keys() {
        let cache = ResultCache::new(32);
        for i in 0..10_000 {
            cache.insert(format!("key-{i}"), "x".into());
        }
        let stats = cache.stats();
        // Each of the 16 shards holds at most ceil(32/16) = 2 entries.
        assert!(stats.entries <= 32, "entries = {}", stats.entries);
        assert!(stats.evictions > 0);
    }

    #[test]
    fn concurrent_access_is_safe_and_counted() {
        use std::sync::Arc;
        let cache = Arc::new(ResultCache::new(128));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..500 {
                        let key = format!("k{}", i % 50);
                        if cache.get(&key).is_none() {
                            cache.insert(key, format!("t{t}"));
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no panics");
        }
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 2000);
        assert!(stats.entries <= 50);
    }
}
