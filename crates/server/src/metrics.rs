//! Lock-free request counters, per-kind latency histograms, and connection
//! gauges for the daemon's observability layer.
//!
//! Latencies are recorded in microseconds into power-of-two buckets
//! (`<1 µs`, `<2 µs`, `<4 µs`, …). Quantiles are answered from the bucket
//! counts: the reported p50/p99 is the *upper bound* of the bucket holding
//! that quantile, i.e. exact to within a factor of two — plenty for "is the
//! cache working" dashboards, and recording stays a single relaxed atomic
//! increment on the hot path. Every request kind gets its own counter set
//! and histogram on top of the aggregate, so a slow `simulate` cannot hide
//! behind a million fast cached `analyze`s.
//!
//! Connection-lifecycle gauges (live/peak connections, shed connections,
//! timeouts) are fed by the TCP accept loop and the per-connection threads;
//! they stay zero in `--stdio` mode.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets. Bucket `i` counts latencies in
/// `[2^i, 2^(i+1)) µs` (bucket 0 is `[0, 2)`); the last bucket absorbs
/// everything from `2^30 µs` (~18 minutes) up. The boundaries are fixed, so
/// the `stats` histogram layout is deterministic.
pub const BUCKETS: usize = 31;

/// The request kinds tracked per-kind, in stable wire-name order (this is
/// also the key order of the `stats` response's `"kinds"` object).
pub const KIND_NAMES: [&str; 11] = [
    "analyze", "simulate", "compare", "gear", "blocks", "dse", "profile", "datapath", "batch",
    "stats", "shutdown",
];

/// The index of a wire kind in [`KIND_NAMES`], or `None` for unknown names
/// (e.g. a kind salvaged from an unparseable request).
pub fn kind_index(kind: &str) -> Option<usize> {
    KIND_NAMES.iter().position(|k| *k == kind)
}

/// Counters for one request kind.
struct KindCounters {
    requests: AtomicU64,
    errors: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for KindCounters {
    fn default() -> KindCounters {
        KindCounters {
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Shared request counters for the daemon.
pub struct Metrics {
    requests: AtomicU64,
    errors: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
    kinds: [KindCounters; KIND_NAMES.len()],
    live_connections: AtomicU64,
    peak_connections: AtomicU64,
    shed_connections: AtomicU64,
    timeouts: AtomicU64,
    registered_fds: AtomicU64,
    pending_write_bytes: AtomicU64,
    max_pipeline_depth: AtomicU64,
    hot_hits: AtomicU64,
    hot_misses: AtomicU64,
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics {
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            kinds: std::array::from_fn(|_| KindCounters::default()),
            live_connections: AtomicU64::new(0),
            peak_connections: AtomicU64::new(0),
            shed_connections: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            registered_fds: AtomicU64::new(0),
            pending_write_bytes: AtomicU64::new(0),
            max_pipeline_depth: AtomicU64::new(0),
            hot_hits: AtomicU64::new(0),
            hot_misses: AtomicU64::new(0),
        }
    }
}

/// Per-kind slice of a [`MetricsSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KindSnapshot {
    /// Requests of this kind that produced a successful response.
    pub requests: u64,
    /// Requests of this kind rejected with an error response.
    pub errors: u64,
    /// Median service latency in microseconds (bucket upper bound).
    pub p50_micros: u64,
    /// 99th-percentile service latency in microseconds (bucket upper bound).
    pub p99_micros: u64,
    /// The raw per-bucket counts (bucket `i` covers `[2^i, 2^(i+1)) µs`).
    pub histogram: [u64; BUCKETS],
}

/// A point-in-time snapshot of the metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Requests that produced a successful response.
    pub requests: u64,
    /// Requests rejected with an error response.
    pub errors: u64,
    /// Median service latency in microseconds (bucket upper bound).
    pub p50_micros: u64,
    /// 99th-percentile service latency in microseconds (bucket upper bound).
    pub p99_micros: u64,
    /// Per-kind counters, indexed as [`KIND_NAMES`].
    pub kinds: [KindSnapshot; KIND_NAMES.len()],
    /// TCP connections currently being served.
    pub live_connections: u64,
    /// High-water mark of concurrently served connections.
    pub peak_connections: u64,
    /// Connections refused because the live-connection cap was reached.
    pub shed_connections: u64,
    /// Connections closed by a read (idle) or write deadline.
    pub timeouts: u64,
    /// Sockets currently registered with the readiness poller (0 under the
    /// thread-per-connection model, where there is no poller).
    pub registered_fds: u64,
    /// Response bytes accepted but not yet written to their sockets, summed
    /// over every connection (the event loop's write-backpressure gauge).
    pub pending_write_bytes: u64,
    /// High-water mark of concurrently in-flight computed requests on one
    /// connection — >1 means a client actually pipelined. The
    /// thread-per-connection model serves strictly one request at a time,
    /// so it records 1 per computed request.
    pub max_pipeline_depth: u64,
    /// Cache hits answered from a connection's hot tier (a small
    /// per-connection front cache) without re-reading the shared LRU's
    /// value. Every hot hit is also a shared-cache hit — the hot tier only
    /// replays entries it revalidates as still resident.
    pub hot_hits: u64,
    /// Keyed requests that probed a connection's hot tier and fell through
    /// to the shared LRU (absent, or no longer resident there).
    pub hot_misses: u64,
}

impl Metrics {
    /// Creates zeroed counters.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Records one successfully served request of `kind` and its latency.
    pub fn record_ok(&self, kind: &str, micros: u64) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let bucket = bucket_of(micros);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        if let Some(i) = kind_index(kind) {
            self.kinds[i].requests.fetch_add(1, Ordering::Relaxed);
            self.kinds[i].buckets[bucket].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one request answered with an error. `kind` is the request's
    /// wire kind when it could be salvaged (even from an otherwise invalid
    /// request); pass `None` when not even the kind was recoverable.
    pub fn record_error(&self, kind: Option<&str>) {
        self.errors.fetch_add(1, Ordering::Relaxed);
        if let Some(i) = kind.and_then(kind_index) {
            self.kinds[i].errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Notes a newly accepted connection (bumps the live and peak gauges).
    pub fn connection_opened(&self) {
        let live = self.live_connections.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_connections.fetch_max(live, Ordering::Relaxed);
    }

    /// Notes a connection whose serving thread has exited.
    pub fn connection_closed(&self) {
        self.live_connections.fetch_sub(1, Ordering::Relaxed);
    }

    /// Notes a connection refused at the live-connection cap.
    pub fn record_shed(&self) {
        self.shed_connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Notes a connection closed by a read (idle) or write deadline.
    pub fn record_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Publishes the poller's current registration count (event loop only).
    pub fn set_registered_fds(&self, n: u64) {
        self.registered_fds.store(n, Ordering::Relaxed);
    }

    /// Publishes the total bytes buffered for write across all connections
    /// (event loop only).
    pub fn set_pending_write_bytes(&self, n: u64) {
        self.pending_write_bytes.store(n, Ordering::Relaxed);
    }

    /// Raises the pipeline-depth high-water mark to `depth` if higher.
    pub fn record_pipeline_depth(&self, depth: u64) {
        self.max_pipeline_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// Records a request answered from a connection's hot-tier copy.
    pub fn record_hot_hit(&self) {
        self.hot_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a keyed request that missed the connection's hot tier.
    pub fn record_hot_miss(&self) {
        self.hot_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads all counters. Concurrent recording may tear between counters
    /// (a snapshot is not an atomic cut), which is fine for monitoring.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        MetricsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            p50_micros: quantile(&counts, 0.50),
            p99_micros: quantile(&counts, 0.99),
            kinds: std::array::from_fn(|i| {
                let kind = &self.kinds[i];
                let histogram: [u64; BUCKETS] =
                    std::array::from_fn(|b| kind.buckets[b].load(Ordering::Relaxed));
                KindSnapshot {
                    requests: kind.requests.load(Ordering::Relaxed),
                    errors: kind.errors.load(Ordering::Relaxed),
                    p50_micros: quantile(&histogram, 0.50),
                    p99_micros: quantile(&histogram, 0.99),
                    histogram,
                }
            }),
            live_connections: self.live_connections.load(Ordering::Relaxed),
            peak_connections: self.peak_connections.load(Ordering::Relaxed),
            shed_connections: self.shed_connections.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            registered_fds: self.registered_fds.load(Ordering::Relaxed),
            pending_write_bytes: self.pending_write_bytes.load(Ordering::Relaxed),
            max_pipeline_depth: self.max_pipeline_depth.load(Ordering::Relaxed),
            hot_hits: self.hot_hits.load(Ordering::Relaxed),
            hot_misses: self.hot_misses.load(Ordering::Relaxed),
        }
    }
}

/// The histogram bucket for a latency of `micros`.
fn bucket_of(micros: u64) -> usize {
    if micros < 2 {
        0
    } else {
        (63 - micros.leading_zeros() as usize).min(BUCKETS - 1)
    }
}

/// The upper bound (in µs) of the bucket containing the `q`-quantile sample.
fn quantile(counts: &[u64], q: f64) -> u64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0;
    }
    // Rank of the quantile sample, 1-based: ceil(q * total), clamped to ≥1.
    let rank = ((q * total as f64).ceil() as u64).max(1);
    let mut seen = 0u64;
    for (i, &count) in counts.iter().enumerate() {
        seen += count;
        if seen >= rank {
            return 1u64 << (i + 1);
        }
    }
    1u64 << BUCKETS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_metrics_report_zero() {
        let snap = Metrics::new().snapshot();
        assert_eq!(snap.requests, 0);
        assert_eq!(snap.errors, 0);
        assert_eq!(snap.p50_micros, 0);
        assert_eq!(snap.p99_micros, 0);
        assert_eq!(snap.live_connections, 0);
        assert_eq!(snap.peak_connections, 0);
        for kind in &snap.kinds {
            assert_eq!(kind.requests, 0);
            assert_eq!(kind.histogram, [0u64; BUCKETS]);
        }
    }

    #[test]
    fn quantiles_land_in_the_right_bucket() {
        let metrics = Metrics::new();
        // 99 fast requests (~1 µs) and one slow outlier (~1 ms).
        for _ in 0..99 {
            metrics.record_ok("analyze", 1);
        }
        metrics.record_ok("analyze", 1000);
        let snap = metrics.snapshot();
        assert_eq!(snap.requests, 100);
        assert_eq!(snap.p50_micros, 2, "median is in the fastest bucket");
        // Rank ceil(0.99 * 100) = 99 still falls in the fast bucket; the
        // outlier only shows up beyond p99.
        assert_eq!(snap.p99_micros, 2);

        // Two more slow requests drag p99 into the outlier bucket
        // (rank ceil(.99*102) = 101 > 99 fast ones).
        metrics.record_ok("analyze", 1000);
        metrics.record_ok("analyze", 1000);
        let snap = metrics.snapshot();
        // 1000 µs lies in [512, 1024) → bucket 9 → upper bound 1024.
        assert_eq!(snap.p99_micros, 1024);
    }

    #[test]
    fn uniform_latencies_give_that_bucket_for_all_quantiles() {
        let metrics = Metrics::new();
        for _ in 0..10 {
            metrics.record_ok("gear", 300); // [256, 512) → upper bound 512
        }
        let snap = metrics.snapshot();
        assert_eq!(snap.p50_micros, 512);
        assert_eq!(snap.p99_micros, 512);
    }

    #[test]
    fn huge_latencies_clamp_to_the_last_bucket() {
        let metrics = Metrics::new();
        metrics.record_ok("stats", u64::MAX);
        let snap = metrics.snapshot();
        assert_eq!(snap.p99_micros, 1u64 << BUCKETS);
    }

    #[test]
    fn errors_are_counted_separately() {
        let metrics = Metrics::new();
        metrics.record_ok("analyze", 5);
        metrics.record_error(Some("analyze"));
        metrics.record_error(None);
        let snap = metrics.snapshot();
        assert_eq!(snap.requests, 1);
        assert_eq!(snap.errors, 2);
        let analyze = &snap.kinds[kind_index("analyze").expect("known")];
        assert_eq!(analyze.requests, 1);
        assert_eq!(analyze.errors, 1, "only the attributable error");
    }

    #[test]
    fn per_kind_histograms_are_independent() {
        let metrics = Metrics::new();
        metrics.record_ok("analyze", 1); // bucket 0
        metrics.record_ok("simulate", 1000); // bucket 9
        let snap = metrics.snapshot();
        let analyze = &snap.kinds[kind_index("analyze").expect("known")];
        let simulate = &snap.kinds[kind_index("simulate").expect("known")];
        assert_eq!(analyze.p99_micros, 2);
        assert_eq!(simulate.p99_micros, 1024);
        assert_eq!(analyze.histogram[0], 1);
        assert_eq!(analyze.histogram[9], 0);
        assert_eq!(simulate.histogram[9], 1);
        // The aggregate sees both.
        assert_eq!(snap.requests, 2);
        assert_eq!(snap.p99_micros, 1024);
    }

    #[test]
    fn unknown_kinds_count_only_in_the_aggregate() {
        let metrics = Metrics::new();
        metrics.record_ok("frobnicate", 5);
        let snap = metrics.snapshot();
        assert_eq!(snap.requests, 1);
        assert!(snap.kinds.iter().all(|k| k.requests == 0));
    }

    #[test]
    fn connection_gauges_track_live_peak_shed_and_timeouts() {
        let metrics = Metrics::new();
        metrics.connection_opened();
        metrics.connection_opened();
        metrics.connection_opened();
        metrics.connection_closed();
        metrics.record_shed();
        metrics.record_timeout();
        metrics.record_timeout();
        let snap = metrics.snapshot();
        assert_eq!(snap.live_connections, 2);
        assert_eq!(snap.peak_connections, 3);
        assert_eq!(snap.shed_connections, 1);
        assert_eq!(snap.timeouts, 2);
    }

    #[test]
    fn event_loop_gauges_publish_and_high_water() {
        let metrics = Metrics::new();
        metrics.set_registered_fds(12);
        metrics.set_pending_write_bytes(4096);
        metrics.record_pipeline_depth(3);
        metrics.record_pipeline_depth(9);
        metrics.record_pipeline_depth(2);
        let snap = metrics.snapshot();
        assert_eq!(snap.registered_fds, 12);
        assert_eq!(snap.pending_write_bytes, 4096);
        assert_eq!(snap.max_pipeline_depth, 9, "gauge keeps the high-water");
        metrics.set_registered_fds(0);
        assert_eq!(metrics.snapshot().registered_fds, 0);
    }

    #[test]
    fn hot_tier_counters_track_hits_and_misses() {
        let metrics = Metrics::new();
        metrics.record_hot_hit();
        metrics.record_hot_hit();
        metrics.record_hot_miss();
        let snap = metrics.snapshot();
        assert_eq!(snap.hot_hits, 2);
        assert_eq!(snap.hot_misses, 1);
    }

    #[test]
    fn batch_is_a_tracked_kind() {
        assert!(kind_index("batch").is_some());
        let metrics = Metrics::new();
        metrics.record_ok("batch", 7);
        let snap = metrics.snapshot();
        assert_eq!(snap.kinds[kind_index("batch").expect("known")].requests, 1);
    }

    #[test]
    fn kind_names_resolve_to_their_indices() {
        for (i, name) in KIND_NAMES.iter().enumerate() {
            assert_eq!(kind_index(name), Some(i));
        }
        assert_eq!(kind_index("nope"), None);
    }
}
