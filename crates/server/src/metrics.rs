//! Lock-free request counters and a fixed-bucket latency histogram.
//!
//! Latencies are recorded in microseconds into power-of-two buckets
//! (`<1 µs`, `<2 µs`, `<4 µs`, …). Quantiles are answered from the bucket
//! counts: the reported p50/p99 is the *upper bound* of the bucket holding
//! that quantile, i.e. exact to within a factor of two — plenty for "is the
//! cache working" dashboards, and recording stays a single relaxed atomic
//! increment on the hot path.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets. Bucket `i` counts latencies in
/// `[2^i, 2^(i+1)) µs` (bucket 0 is `[0, 2)`); the last bucket absorbs
/// everything from `2^30 µs` (~18 minutes) up.
const BUCKETS: usize = 31;

/// Shared request counters for the daemon.
pub struct Metrics {
    requests: AtomicU64,
    errors: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics {
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A point-in-time snapshot of the metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Requests that produced a successful response.
    pub requests: u64,
    /// Requests rejected with an error response.
    pub errors: u64,
    /// Median service latency in microseconds (bucket upper bound).
    pub p50_micros: u64,
    /// 99th-percentile service latency in microseconds (bucket upper bound).
    pub p99_micros: u64,
}

impl Metrics {
    /// Creates zeroed counters.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Records one successfully served request and its latency.
    pub fn record_ok(&self, micros: u64) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let bucket = if micros < 2 {
            0
        } else {
            (63 - micros.leading_zeros() as usize).min(BUCKETS - 1)
        };
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request that was answered with an error.
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads all counters. Concurrent recording may tear between counters
    /// (a snapshot is not an atomic cut), which is fine for monitoring.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        MetricsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            p50_micros: quantile(&counts, 0.50),
            p99_micros: quantile(&counts, 0.99),
        }
    }
}

/// The upper bound (in µs) of the bucket containing the `q`-quantile sample.
fn quantile(counts: &[u64], q: f64) -> u64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0;
    }
    // Rank of the quantile sample, 1-based: ceil(q * total), clamped to ≥1.
    let rank = ((q * total as f64).ceil() as u64).max(1);
    let mut seen = 0u64;
    for (i, &count) in counts.iter().enumerate() {
        seen += count;
        if seen >= rank {
            return 1u64 << (i + 1);
        }
    }
    1u64 << BUCKETS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_metrics_report_zero() {
        let snap = Metrics::new().snapshot();
        assert_eq!(snap.requests, 0);
        assert_eq!(snap.errors, 0);
        assert_eq!(snap.p50_micros, 0);
        assert_eq!(snap.p99_micros, 0);
    }

    #[test]
    fn quantiles_land_in_the_right_bucket() {
        let metrics = Metrics::new();
        // 99 fast requests (~1 µs) and one slow outlier (~1 ms).
        for _ in 0..99 {
            metrics.record_ok(1);
        }
        metrics.record_ok(1000);
        let snap = metrics.snapshot();
        assert_eq!(snap.requests, 100);
        assert_eq!(snap.p50_micros, 2, "median is in the fastest bucket");
        // Rank ceil(0.99 * 100) = 99 still falls in the fast bucket; the
        // outlier only shows up beyond p99.
        assert_eq!(snap.p99_micros, 2);

        // Two more slow requests drag p99 into the outlier bucket
        // (rank ceil(.99*102) = 101 > 99 fast ones).
        metrics.record_ok(1000);
        metrics.record_ok(1000);
        let snap = metrics.snapshot();
        // 1000 µs lies in [512, 1024) → bucket 9 → upper bound 1024.
        assert_eq!(snap.p99_micros, 1024);
    }

    #[test]
    fn uniform_latencies_give_that_bucket_for_all_quantiles() {
        let metrics = Metrics::new();
        for _ in 0..10 {
            metrics.record_ok(300); // [256, 512) → upper bound 512
        }
        let snap = metrics.snapshot();
        assert_eq!(snap.p50_micros, 512);
        assert_eq!(snap.p99_micros, 512);
    }

    #[test]
    fn huge_latencies_clamp_to_the_last_bucket() {
        let metrics = Metrics::new();
        metrics.record_ok(u64::MAX);
        let snap = metrics.snapshot();
        assert_eq!(snap.p99_micros, 1u64 << BUCKETS);
    }

    #[test]
    fn errors_are_counted_separately() {
        let metrics = Metrics::new();
        metrics.record_ok(5);
        metrics.record_error();
        metrics.record_error();
        let snap = metrics.snapshot();
        assert_eq!(snap.requests, 1);
        assert_eq!(snap.errors, 2);
    }
}
