//! SEALPAA analysis-as-a-service: a std-only daemon serving the paper's
//! error analyses over a newline-delimited JSON protocol.
//!
//! The DAC'17 method's selling point is that error analysis is `O(N)` —
//! cheap enough to sit inside design-space-exploration loops that evaluate
//! thousands of candidate adders. This crate turns the batch engines into a
//! long-running service:
//!
//! * [`json`] — the JSON value model shared with the CLI (writer + parser),
//! * [`protocol`] — typed request/response model for the wire format,
//! * [`canonical`] — canonicalization of adder configurations so equivalent
//!   requests share one cache entry,
//! * [`cache`] — a sharded LRU result cache,
//! * [`pool`] — a fixed-size worker pool over a bounded job queue with
//!   backpressure,
//! * [`metrics`] — request counters and a fixed-bucket latency histogram,
//! * [`server`] — the TCP daemon and the `--stdio` pipeline mode,
//! * [`snapshot`] — the durable cache-snapshot format behind
//!   `--cache-snapshot` (magic/version framing, bounded reader, atomic
//!   write-then-rename) so a restarted daemon warms instantly,
//! * `sys` (Linux) — a thin in-repo `epoll`/`pipe` syscall wrapper,
//! * `event` (Linux) — the readiness-driven connection layer: one poll
//!   thread multiplexing every socket, per-connection state machines, and
//!   pipelined out-of-order responses tagged by request id,
//! * [`route`] (Linux) — the `sealpaa route` gateway: consistent-hashes
//!   canonical cache keys across backend daemons and multiplexes clients
//!   onto per-backend pipelined links.
//!
//! The daemon serves TCP under one of two I/O models
//! ([`server::IoModel`]): the default event loop (`--io-model event`,
//! Linux), where ten thousand idle connections cost a registry entry each,
//! or the legacy thread-per-connection path (`--io-model threads`), kept
//! for comparison and for platforms without `epoll`.
//!
//! # Quickstart
//!
//! ```no_run
//! use sealpaa_server::server::{Server, ServerConfig};
//!
//! let server = Server::bind(ServerConfig::default()).expect("bind");
//! println!("listening on {}", server.local_addr());
//! server.run().expect("serve");
//! ```

// `deny` rather than `forbid`: the `sys` module opts back in for its four
// syscall wrappers (the crate's only unsafe), which `forbid` would not allow.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod canonical;
#[cfg(target_os = "linux")]
mod event;
pub mod json;
pub mod metrics;
pub mod pool;
pub mod protocol;
#[cfg(target_os = "linux")]
pub mod route;
pub mod server;
pub mod snapshot;
#[cfg(target_os = "linux")]
mod sys;
