//! SEALPAA analysis-as-a-service: a std-only daemon serving the paper's
//! error analyses over a newline-delimited JSON protocol.
//!
//! The DAC'17 method's selling point is that error analysis is `O(N)` —
//! cheap enough to sit inside design-space-exploration loops that evaluate
//! thousands of candidate adders. This crate turns the batch engines into a
//! long-running service:
//!
//! * [`json`] — the JSON value model shared with the CLI (writer + parser),
//! * [`protocol`] — typed request/response model for the wire format,
//! * [`canonical`] — canonicalization of adder configurations so equivalent
//!   requests share one cache entry,
//! * [`cache`] — a sharded LRU result cache,
//! * [`pool`] — a fixed-size worker pool over a bounded job queue with
//!   backpressure,
//! * [`metrics`] — request counters and a fixed-bucket latency histogram,
//! * [`server`] — the TCP daemon and the `--stdio` pipeline mode.
//!
//! # Quickstart
//!
//! ```no_run
//! use sealpaa_server::server::{Server, ServerConfig};
//!
//! let server = Server::bind(ServerConfig::default()).expect("bind");
//! println!("listening on {}", server.local_addr());
//! server.run().expect("serve");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod canonical;
pub mod json;
pub mod metrics;
pub mod pool;
pub mod protocol;
pub mod server;
