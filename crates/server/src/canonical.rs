//! Canonical cache keys for analysis requests.
//!
//! Two requests that describe the *same mathematical problem* must map to the
//! same cache entry even when they are spelled differently on the wire. The
//! canonical form is name-independent and bit-exact:
//!
//! * each stage is reduced to its 16-bit truth-table encoding (8 sum bits +
//!   8 carry bits over the row order of [`FaInput::index`]), so `"lpaa1"` and
//!   the equivalent `SSSSSSSS/CCCCCCCC` custom spec collide as they should;
//! * probabilities are keyed by their IEEE-754 bit patterns with `-0.0`
//!   normalized to `+0.0` (the only distinct-bits pair that compares equal),
//!   so a constant `p` and an explicit per-bit list of the same value agree;
//! * when every stage's truth table is symmetric in its `a`/`b` operands the
//!   analysis cannot distinguish the two operand profiles, so the `(pa, pb)`
//!   vector pair is sorted — swapping the operands hits the same entry.
//!
//! `simulate` keys additionally carry the simulation regime: exhaustive runs
//! depend only on the adder, while Monte-Carlo runs are deterministic in
//! `(samples, seed, threads)` and those parameters are part of the key.
//!
//! [`FaInput::index`]: sealpaa_cells::FaInput::index

use std::fmt::Write as _;

use sealpaa_cells::{AdderChain, FaInput, InputProfile, TruthTable};

use crate::protocol::{
    AdderSpec, BlocksSpec, DatapathSpec, DatapathTopology, DseSpec, GearSpec, ProfileSource,
    ProfileSpec, RequestBody, SimMode, SimulateSpec,
};

/// Returns the canonical cache key for a request body, or `None` when the
/// request is not cacheable (`stats`, `shutdown`, and `profile` requests
/// that ship their trace inline — keying those would mean hashing the full
/// payload, and a hash collision would silently serve the wrong profile).
pub fn cache_key(body: &RequestBody) -> Option<String> {
    match body {
        RequestBody::Analyze(spec) => Some(format!("analyze|{}", adder_key(spec))),
        RequestBody::Compare(spec) => Some(format!("compare|{}", adder_key(spec))),
        RequestBody::Simulate(spec) => Some(simulate_key(spec)),
        RequestBody::Gear(spec) => Some(gear_key(spec)),
        RequestBody::Blocks(spec) => Some(blocks_key(spec)),
        RequestBody::Dse(spec) => Some(dse_key(spec)),
        RequestBody::Profile(spec) => profile_key(spec),
        RequestBody::Datapath(spec) => Some(datapath_key(spec)),
        // A batch is not cached as a whole: each sub-request is routed
        // through the cache under its own canonical key, which is what lets
        // duplicate configurations inside one batch compute once.
        RequestBody::Batch(_) => None,
        RequestBody::Stats | RequestBody::Shutdown => None,
    }
}

/// Encodes one truth table as 16 bits: bit `i` of the low byte is the sum
/// output for [`FaInput::from_index`]`(i)`, bit `i` of the high byte the
/// carry output.
fn table_code(table: &TruthTable) -> u16 {
    let mut sum_bits = 0u16;
    let mut carry_bits = 0u16;
    for (i, row) in table.rows().iter().enumerate() {
        if row.sum {
            sum_bits |= 1 << i;
        }
        if row.carry_out {
            carry_bits |= 1 << i;
        }
    }
    (carry_bits << 8) | sum_bits
}

/// True when `eval(a, b, cin) == eval(b, a, cin)` for all eight rows.
fn is_ab_symmetric(table: &TruthTable) -> bool {
    FaInput::all().all(|input| {
        let swapped = FaInput::new(input.b, input.a, input.carry_in);
        table.eval(input) == table.eval(swapped)
    })
}

/// One probability as a stable hex token: the IEEE-754 bit pattern with
/// `-0.0` folded into `+0.0`.
fn prob_token(p: f64) -> u64 {
    let p = if p == 0.0 { 0.0 } else { p };
    p.to_bits()
}

fn chain_tokens(chain: &AdderChain) -> (String, bool) {
    let mut symmetric = true;
    let mut out = String::new();
    // Most chains are uniform; reuse the previous stage's symmetry verdict
    // whenever the table repeats instead of re-evaluating all eight rows.
    let mut prev: Option<(u16, bool)> = None;
    for (i, cell) in chain.iter().enumerate() {
        let table = cell.truth_table();
        let code = table_code(table);
        let sym = match prev {
            Some((prev_code, prev_sym)) if prev_code == code => prev_sym,
            _ => is_ab_symmetric(table),
        };
        prev = Some((code, sym));
        symmetric &= sym;
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{code:04x}");
    }
    (out, symmetric)
}

fn profile_vec_token(profile: &InputProfile<f64>, pick_a: bool) -> String {
    let width = profile.width();
    let mut out = String::with_capacity(width * 17);
    for i in 0..width {
        let p = if pick_a { profile.pa(i) } else { profile.pb(i) };
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{:016x}", prob_token(*p));
    }
    out
}

/// The canonical token for an adder configuration (chain + profile).
fn adder_key(spec: &AdderSpec) -> String {
    let (chain, symmetric) = chain_tokens(&spec.chain);
    let mut pa = profile_vec_token(&spec.profile, true);
    let mut pb = profile_vec_token(&spec.profile, false);
    if symmetric && pb < pa {
        std::mem::swap(&mut pa, &mut pb);
    }
    format!(
        "{chain}|{pa}|{pb}|{:016x}",
        prob_token(*spec.profile.p_cin())
    )
}

fn simulate_key(spec: &SimulateSpec) -> String {
    let adder = adder_key(&spec.adder);
    match spec.mode {
        SimMode::Exhaustive => format!("simulate.exhaustive|{adder}"),
        SimMode::MonteCarlo {
            samples,
            seed,
            threads,
        } => format!("simulate.mc|{samples}|{seed}|{threads}|{adder}"),
    }
}

/// The `dse` key covers the candidate tables, the profile, the budget and
/// the `pareto` flag — but deliberately NOT `threads`: the exploration
/// merges worker results in lexicographic design order, so the answer is
/// byte-identical for every thread count and requests differing only in
/// `threads` must share one cache entry.
fn dse_key(spec: &DseSpec) -> String {
    let mut symmetric = true;
    let candidates: Vec<String> = spec
        .candidates
        .iter()
        .map(|cell| {
            symmetric &= is_ab_symmetric(cell.truth_table());
            format!("{:04x}", table_code(cell.truth_table()))
        })
        .collect();
    let mut pa = profile_vec_token(&spec.profile, true);
    let mut pb = profile_vec_token(&spec.profile, false);
    // As in `adder_key`: when every candidate table is a/b-symmetric, no
    // searched chain can distinguish the operand profiles.
    if symmetric && pb < pa {
        std::mem::swap(&mut pa, &mut pb);
    }
    let cap = |c: Option<f64>| match c {
        None => "-".to_owned(),
        Some(v) => format!("{:016x}", prob_token(v)),
    };
    format!(
        "dse|{}|{pa}|{pb}|{:016x}|{}|{}|{}",
        candidates.join(","),
        prob_token(*spec.profile.p_cin()),
        cap(spec.budget_power),
        cap(spec.budget_area),
        spec.pareto
    )
}

/// Synthetic-source `profile` requests are pure functions of
/// `(kind, width, records, seed)` and get a canonical key; inline traces
/// are served uncached (see [`cache_key`]).
fn profile_key(spec: &ProfileSpec) -> Option<String> {
    match &spec.source {
        ProfileSource::Synth {
            kind,
            records,
            seed,
        } => Some(format!(
            "profile|{}|{}|{records}|{seed}",
            kind.name(),
            spec.width
        )),
        ProfileSource::Inline(_) => None,
    }
}

/// The `blocks` key folds behaviorally equivalent configurations together.
/// The result is purely behavioral (error-distance statistics — no
/// power/area, which could differ between equivalent spellings), so keying
/// on the *canonical* configuration is sound:
///
/// * each block is reduced to `width:prediction:table-code` after
///   [`BlockConfig::canonicalized`] merges adjacent blocks whose windows
///   start at the same bit with the same truth table (folding into block 0
///   additionally requires `P(cin) = 0`, which the key checks on the
///   profile);
/// * probabilities are tokenized exactly as in [`adder_key`], including the
///   operand-swap fold when every block's cell is a/b-symmetric.
///
/// [`BlockConfig::canonicalized`]: sealpaa_blocks::BlockConfig::canonicalized
fn blocks_key(spec: &BlocksSpec) -> String {
    let cin_is_zero = prob_token(*spec.profile.p_cin()) == 0.0f64.to_bits();
    let canonical = spec.config.canonicalized(cin_is_zero);
    let mut symmetric = true;
    let blocks: Vec<String> = canonical
        .blocks()
        .iter()
        .map(|b| {
            symmetric &= is_ab_symmetric(b.cell.truth_table());
            format!(
                "{}:{}:{:04x}",
                b.width,
                b.prediction,
                table_code(b.cell.truth_table())
            )
        })
        .collect();
    let mut pa = profile_vec_token(&spec.profile, true);
    let mut pb = profile_vec_token(&spec.profile, false);
    if symmetric && pb < pa {
        std::mem::swap(&mut pa, &mut pb);
    }
    format!(
        "blocks|{}|{pa}|{pb}|{:016x}|{}",
        blocks.join(","),
        prob_token(*spec.profile.p_cin()),
        spec.cdf
    )
}

/// The `datapath` key is a pure function of the graph shape and the input
/// model: topology parameters, the adder cell's 16-bit truth-table code (so
/// a named cell and its spelled-out table collide, as in [`adder_key`]),
/// the input width, the per-bit probability token, and the `pmf` flag.
/// The analytical propagation is single-pass and deterministic, so there is
/// no threads/seed dimension to exclude.
fn datapath_key(spec: &DatapathSpec) -> String {
    let topo = match &spec.topology {
        DatapathTopology::Fir { coefficients } => {
            let taps: Vec<String> = coefficients.iter().map(u64::to_string).collect();
            format!("fir:{}", taps.join(","))
        }
        DatapathTopology::Conv2d { kernel } => {
            let rows: Vec<String> = kernel
                .iter()
                .map(|row| row.iter().map(u64::to_string).collect::<Vec<_>>().join(","))
                .collect();
            format!("conv2d:{}", rows.join(";"))
        }
        DatapathTopology::Multiplier => "multiplier".to_owned(),
    };
    format!(
        "datapath|{topo}|{:04x}|{}|{:016x}|{}",
        table_code(spec.cell.truth_table()),
        spec.width,
        prob_token(spec.p),
        spec.pmf
    )
}

fn gear_key(spec: &GearSpec) -> String {
    format!(
        "gear|{}|{}|{}|{:016x}|{:016x}|{}",
        spec.n,
        spec.r,
        spec.overlap,
        prob_token(spec.p),
        prob_token(spec.cin),
        spec.blocks
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Request;

    fn key_of(line: &str) -> String {
        let req = Request::parse(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        cache_key(&req.body).expect("cacheable")
    }

    #[test]
    fn named_cell_and_equivalent_truth_table_share_a_key() {
        let named = key_of(r#"{"kind":"analyze","width":4,"cell":"lpaa1"}"#);
        let spec = sealpaa_cells::StandardCell::Lpaa1
            .truth_table()
            .to_spec_string();
        let spelled = key_of(&format!(
            r#"{{"kind":"analyze","width":4,"cell":"{spec}"}}"#
        ));
        assert_eq!(named, spelled);
    }

    #[test]
    fn constant_p_and_explicit_lists_share_a_key() {
        let constant = key_of(r#"{"kind":"analyze","width":3,"cell":"lpaa2","p":0.25}"#);
        let listed = key_of(
            r#"{"kind":"analyze","width":3,"cell":"lpaa2","pa":[0.25,0.25,0.25],"pb":[0.25,0.25,0.25],"cin":0.25}"#,
        );
        assert_eq!(constant, listed);
    }

    #[test]
    fn negative_zero_folds_into_zero() {
        let plus = key_of(r#"{"kind":"analyze","width":2,"cell":"lpaa1","p":0.0}"#);
        let minus = key_of(r#"{"kind":"analyze","width":2,"cell":"lpaa1","p":-0.0}"#);
        assert_eq!(plus, minus);
    }

    #[test]
    fn operand_swap_shares_a_key_for_symmetric_cells() {
        // The accurate full adder is a/b-symmetric.
        let ab = key_of(
            r#"{"kind":"analyze","width":2,"cell":"accurate","pa":[0.1,0.2],"pb":[0.3,0.4]}"#,
        );
        let ba = key_of(
            r#"{"kind":"analyze","width":2,"cell":"accurate","pa":[0.3,0.4],"pb":[0.1,0.2]}"#,
        );
        assert_eq!(ab, ba);
    }

    #[test]
    fn operand_swap_distinguished_for_asymmetric_cells() {
        // LPAA5 (approximate mirror adder 3 in the paper's numbering) treats
        // its operands asymmetrically, so the swap must NOT collide. Guard
        // with an explicit symmetry check so the test tracks the library.
        let table = sealpaa_cells::StandardCell::Lpaa5.truth_table();
        assert!(!is_ab_symmetric(&table), "pick an asymmetric cell");
        let ab =
            key_of(r#"{"kind":"analyze","width":2,"cell":"lpaa5","pa":[0.1,0.2],"pb":[0.3,0.4]}"#);
        let ba =
            key_of(r#"{"kind":"analyze","width":2,"cell":"lpaa5","pa":[0.3,0.4],"pb":[0.1,0.2]}"#);
        assert_ne!(ab, ba);
    }

    #[test]
    fn different_kinds_never_collide() {
        let analyze = key_of(r#"{"kind":"analyze","width":4,"cell":"lpaa1"}"#);
        let compare = key_of(r#"{"kind":"compare","width":4,"cell":"lpaa1"}"#);
        let simulate = key_of(r#"{"kind":"simulate","width":4,"cell":"lpaa1"}"#);
        assert_ne!(analyze, compare);
        assert_ne!(analyze, simulate);
        assert_ne!(compare, simulate);
    }

    #[test]
    fn monte_carlo_key_tracks_sampling_parameters() {
        let a = key_of(r#"{"kind":"simulate","width":4,"cell":"lpaa1","samples":100,"seed":1}"#);
        let b = key_of(r#"{"kind":"simulate","width":4,"cell":"lpaa1","samples":100,"seed":2}"#);
        let c = key_of(r#"{"kind":"simulate","width":4,"cell":"lpaa1","samples":200,"seed":1}"#);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gear_key_covers_every_parameter() {
        let base = key_of(r#"{"kind":"gear","n":8,"r":2,"overlap":2}"#);
        for other in [
            r#"{"kind":"gear","n":16,"r":2,"overlap":2}"#,
            r#"{"kind":"gear","n":8,"r":4,"overlap":2}"#,
            r#"{"kind":"gear","n":8,"r":2,"overlap":4}"#,
            r#"{"kind":"gear","n":8,"r":2,"overlap":2,"p":0.3}"#,
            r#"{"kind":"gear","n":8,"r":2,"overlap":2,"cin":1.0}"#,
            r#"{"kind":"gear","n":8,"r":2,"overlap":2,"blocks":true}"#,
        ] {
            assert_ne!(base, key_of(other), "{other}");
        }
    }

    #[test]
    fn dse_key_excludes_threads_but_covers_everything_else() {
        // `threads` cannot change the answer (lexicographic merge), so it
        // must not fragment the cache.
        let base = key_of(r#"{"kind":"dse","width":4,"p":0.3}"#);
        assert_eq!(
            base,
            key_of(r#"{"kind":"dse","width":4,"p":0.3,"threads":1}"#)
        );
        assert_eq!(
            base,
            key_of(r#"{"kind":"dse","width":4,"p":0.3,"threads":7}"#)
        );
        // Everything that does change the answer changes the key.
        for other in [
            r#"{"kind":"dse","width":5,"p":0.3}"#,
            r#"{"kind":"dse","width":4,"p":0.4}"#,
            r#"{"kind":"dse","width":4,"p":0.3,"candidates":["lpaa1","lpaa2"]}"#,
            r#"{"kind":"dse","width":4,"p":0.3,"budget_power":3000}"#,
            r#"{"kind":"dse","width":4,"p":0.3,"budget_area":20}"#,
            r#"{"kind":"dse","width":4,"p":0.3,"pareto":true}"#,
        ] {
            assert_ne!(base, key_of(other), "{other}");
        }
    }

    #[test]
    fn equivalent_block_configs_share_a_key() {
        // A depth-2 block whose window starts exactly where the previous
        // block's accurate window starts is a seamless continuation: with
        // cin = 0 the split spelling and the merged one behave identically
        // and must share a cache entry.
        let split = key_of(
            r#"{"kind":"blocks","config":"2:0:accurate,2:2:accurate,2:4:accurate","cin":0.0}"#,
        );
        let merged = key_of(r#"{"kind":"blocks","config":"6:0:accurate","cin":0.0}"#);
        assert_eq!(split, merged);
        // With a non-zero carry-in probability block 0 is NOT mergeable
        // (its window starts from the real cin, the others from 0).
        let split = key_of(r#"{"kind":"blocks","config":"2:0:accurate,2:2:accurate","cin":0.5}"#);
        let merged = key_of(r#"{"kind":"blocks","config":"4:0:accurate","cin":0.5}"#);
        assert_ne!(split, merged);
    }

    #[test]
    fn blocks_key_covers_every_parameter() {
        let base = key_of(r#"{"kind":"blocks","config":"4:0:accurate,4:2:lpaa1"}"#);
        for other in [
            r#"{"kind":"blocks","config":"4:0:accurate,4:3:lpaa1"}"#,
            r#"{"kind":"blocks","config":"4:0:accurate,4:2:lpaa2"}"#,
            r#"{"kind":"blocks","config":"4:0:accurate,4:2:lpaa1","p":0.3}"#,
            r#"{"kind":"blocks","config":"4:0:accurate,4:2:lpaa1","cin":0.0}"#,
            r#"{"kind":"blocks","config":"4:0:accurate,4:2:lpaa1","cdf":true}"#,
        ] {
            assert_ne!(base, key_of(other), "{other}");
        }
        // Operand swap folds when every cell is a/b-symmetric (the accurate
        // table is xor/majority)...
        let ab = key_of(
            r#"{"kind":"blocks","config":"2:0:accurate,2:1:accurate","pa":[0.1,0.2,0.3,0.4],"pb":[0.5,0.6,0.7,0.8]}"#,
        );
        let ba = key_of(
            r#"{"kind":"blocks","config":"2:0:accurate,2:1:accurate","pa":[0.5,0.6,0.7,0.8],"pb":[0.1,0.2,0.3,0.4]}"#,
        );
        assert_eq!(ab, ba);
        // ...but NOT when any cell distinguishes its operands: LPAA 1 errs on
        // (a,b,cin) = (0,1,0) and (1,0,0) with different outputs.
        let ab = key_of(
            r#"{"kind":"blocks","config":"2:0:accurate,2:1:lpaa1","pa":[0.1,0.2,0.3,0.4],"pb":[0.5,0.6,0.7,0.8]}"#,
        );
        let ba = key_of(
            r#"{"kind":"blocks","config":"2:0:accurate,2:1:lpaa1","pa":[0.5,0.6,0.7,0.8],"pb":[0.1,0.2,0.3,0.4]}"#,
        );
        assert_ne!(ab, ba);
    }

    #[test]
    fn profile_synth_key_covers_every_parameter() {
        let base = key_of(r#"{"kind":"profile","width":8,"synth":"uniform"}"#);
        for other in [
            r#"{"kind":"profile","width":9,"synth":"uniform"}"#,
            r#"{"kind":"profile","width":8,"synth":"random-walk"}"#,
            r#"{"kind":"profile","width":8,"synth":"uniform","records":128}"#,
            r#"{"kind":"profile","width":8,"synth":"uniform","seed":1}"#,
        ] {
            assert_ne!(base, key_of(other), "{other}");
        }
        // Spelling the defaults out changes nothing.
        assert_eq!(
            base,
            key_of(r#"{"kind":"profile","width":8,"synth":"uniform","records":65536,"seed":0}"#)
        );
    }

    #[test]
    fn datapath_named_cell_and_truth_table_share_a_key() {
        let named =
            key_of(r#"{"kind":"datapath","width":8,"cell":"lpaa5","coefficients":[1,2,1]}"#);
        let spec = sealpaa_cells::StandardCell::Lpaa5
            .truth_table()
            .to_spec_string();
        let spelled = key_of(&format!(
            r#"{{"kind":"datapath","width":8,"cell":"{spec}","coefficients":[1,2,1]}}"#
        ));
        assert_eq!(named, spelled);
        // Spelling the defaults out changes nothing.
        assert_eq!(
            named,
            key_of(
                r#"{"kind":"datapath","topology":"fir","width":8,"cell":"lpaa5","coefficients":[1,2,1],"p":0.5,"pmf":false}"#
            )
        );
    }

    #[test]
    fn datapath_key_covers_every_parameter() {
        let base = key_of(r#"{"kind":"datapath","width":8,"cell":"lpaa5","coefficients":[1,2,1]}"#);
        for other in [
            r#"{"kind":"datapath","width":8,"cell":"lpaa5","coefficients":[1,2,2]}"#,
            r#"{"kind":"datapath","width":8,"cell":"lpaa2","coefficients":[1,2,1]}"#,
            r#"{"kind":"datapath","width":6,"cell":"lpaa5","coefficients":[1,2,1]}"#,
            r#"{"kind":"datapath","width":8,"cell":"lpaa5","coefficients":[1,2,1],"p":0.3}"#,
            r#"{"kind":"datapath","width":8,"cell":"lpaa5","coefficients":[1,2,1],"pmf":true}"#,
            r#"{"kind":"datapath","topology":"multiplier","width":8,"cell":"lpaa5"}"#,
            r#"{"kind":"datapath","topology":"conv2d","width":8,"cell":"lpaa5","kernel":[[1,2,1]]}"#,
        ] {
            assert_ne!(base, key_of(other), "{other}");
        }
    }

    #[test]
    fn inline_profile_traces_are_uncacheable() {
        let req = Request::parse(r#"{"kind":"profile","width":4,"trace":[[1,2]]}"#).expect("valid");
        assert!(cache_key(&req.body).is_none());
    }

    #[test]
    fn control_requests_are_uncacheable() {
        for line in [r#"{"kind":"stats"}"#, r#"{"kind":"shutdown"}"#] {
            let req = Request::parse(line).expect("valid");
            assert!(cache_key(&req.body).is_none());
        }
    }
}
