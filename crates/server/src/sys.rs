//! A thin Linux `epoll`/`pipe` wrapper for the event-driven connection
//! layer — raw syscall declarations instead of a third-party crate, keeping
//! the workspace fully offline.
//!
//! This module is the server crate's only unsafe code: four FFI wrappers
//! ([`Poller`], [`WakePipe`], [`Waker`], and their syscalls), each a direct
//! translation of the C API with the return-value convention mapped onto
//! [`std::io::Result`]. Everything above this module is `#[deny(unsafe_code)]`
//! clean. `std` already links libc, so the `extern "C"` declarations resolve
//! without adding a dependency.
#![allow(unsafe_code)]

use std::io;
use std::os::fd::RawFd;

/// Readable (or a peer hangup pending — reads will return 0).
pub const EPOLLIN: u32 = 0x1;
/// Writable without blocking.
pub const EPOLLOUT: u32 = 0x4;
/// Error condition; always reported, never requested.
pub const EPOLLERR: u32 = 0x8;
/// Hangup; always reported, never requested.
pub const EPOLLHUP: u32 = 0x10;
/// Peer closed its write half.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0x80000;
const O_NONBLOCK: i32 = 0x800;
const O_CLOEXEC: i32 = 0x80000;

/// The kernel's `struct epoll_event`. On x86-64 the kernel ABI packs it
/// (no padding between `events` and `data`); other architectures use the
/// natural layout.
#[derive(Clone, Copy)]
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn pipe2(fds: *mut i32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
}

fn check(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// One readiness notification: the `token` the fd was registered under and
/// the ready-event mask ([`EPOLLIN`] / [`EPOLLOUT`] / error bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Readiness {
    /// The registration token.
    pub token: u64,
    /// The ready events.
    pub events: u32,
}

impl Readiness {
    /// The fd is readable (or has an error/hangup pending, which a read
    /// will surface).
    pub fn readable(self) -> bool {
        self.events & (EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0
    }

    /// The fd is writable (or has an error pending, which a write will
    /// surface).
    pub fn writable(self) -> bool {
        self.events & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0
    }
}

/// An `epoll` instance: register fds under `u64` tokens, then wait for
/// readiness.
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// Creates the epoll instance (close-on-exec).
    ///
    /// # Errors
    ///
    /// Returns the OS error from `epoll_create1`.
    pub fn new() -> io::Result<Poller> {
        let epfd = check(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        let mut event = EpollEvent {
            events,
            data: token,
        };
        check(unsafe { epoll_ctl(self.epfd, op, fd, &mut event) }).map(|_| ())
    }

    /// Starts watching `fd` for `events`, reporting it under `token`.
    ///
    /// # Errors
    ///
    /// Returns the OS error from `epoll_ctl`.
    pub fn register(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, events)
    }

    /// Changes the watched events (and token) of an already-registered fd.
    ///
    /// # Errors
    ///
    /// Returns the OS error from `epoll_ctl`.
    pub fn modify(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, events)
    }

    /// Stops watching `fd`. Closing an fd deregisters it implicitly, so this
    /// is only needed to keep an open fd quiet.
    ///
    /// # Errors
    ///
    /// Returns the OS error from `epoll_ctl`.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        let mut event = EpollEvent { events: 0, data: 0 };
        check(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut event) }).map(|_| ())
    }

    /// Blocks until at least one registered fd is ready or `timeout_ms`
    /// elapses (`None` = wait forever), then fills `ready` with the
    /// notifications. Retries transparently on `EINTR`.
    ///
    /// # Errors
    ///
    /// Returns the OS error from `epoll_wait`.
    pub fn wait(&self, ready: &mut Vec<Readiness>, timeout_ms: Option<i32>) -> io::Result<()> {
        ready.clear();
        let mut events = [EpollEvent { events: 0, data: 0 }; 256];
        let timeout = timeout_ms.unwrap_or(-1);
        let n = loop {
            let ret =
                unsafe { epoll_wait(self.epfd, events.as_mut_ptr(), events.len() as i32, timeout) };
            match check(ret) {
                Ok(n) => break n as usize,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        };
        for event in &events[..n] {
            // Copy out of the (possibly packed) struct by value; taking
            // references into it would be unaligned.
            let ev = *event;
            ready.push(Readiness {
                token: ev.data,
                events: ev.events,
            });
        }
        Ok(())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe { close(self.epfd) };
    }
}

/// A nonblocking self-pipe: worker threads [`Waker::wake`] the write end to
/// pull the poll thread out of [`Poller::wait`]; the poll thread registers
/// the read end and [`WakePipe::drain`]s it on wakeup.
pub struct WakePipe {
    read_fd: RawFd,
    write_fd: RawFd,
}

impl WakePipe {
    /// Creates the pipe (both ends nonblocking and close-on-exec).
    ///
    /// # Errors
    ///
    /// Returns the OS error from `pipe2`.
    pub fn new() -> io::Result<WakePipe> {
        let mut fds = [0i32; 2];
        check(unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) })?;
        Ok(WakePipe {
            read_fd: fds[0],
            write_fd: fds[1],
        })
    }

    /// The read end, for registration with a [`Poller`].
    pub fn read_fd(&self) -> RawFd {
        self.read_fd
    }

    /// A cloneable handle to the write end for worker threads. The handle
    /// borrows the pipe's fd: it must not outlive the `WakePipe` (the event
    /// loop joins its workers before dropping the pipe).
    pub fn waker(&self) -> Waker {
        Waker { fd: self.write_fd }
    }

    /// Consumes every pending wake byte so the next wake triggers a fresh
    /// edge. Nonblocking: returns once the pipe is empty.
    pub fn drain(&self) {
        let mut sink = [0u8; 64];
        loop {
            let n = unsafe { read(self.read_fd, sink.as_mut_ptr(), sink.len()) };
            if n <= 0 {
                // Empty (EAGAIN), closed, or a transient error: either way
                // the poll thread goes back to waiting.
                break;
            }
        }
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        unsafe {
            close(self.read_fd);
            close(self.write_fd);
        }
    }
}

/// The write end of a [`WakePipe`], cheap to clone into worker closures.
#[derive(Clone, Copy)]
pub struct Waker {
    fd: RawFd,
}

impl Waker {
    /// Writes one byte into the pipe. A full pipe means a wake is already
    /// pending, so `EAGAIN` (like every other error here) is ignored.
    pub fn wake(&self) {
        let byte = [1u8];
        unsafe { write(self.fd, byte.as_ptr(), 1) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::os::fd::AsRawFd;

    #[test]
    fn wake_pipe_rouses_a_waiting_poller() {
        let poller = Poller::new().expect("epoll instance");
        let pipe = WakePipe::new().expect("wake pipe");
        poller
            .register(pipe.read_fd(), 42, EPOLLIN)
            .expect("register");

        let mut ready = Vec::new();
        poller.wait(&mut ready, Some(0)).expect("wait");
        assert!(ready.is_empty(), "nothing is ready yet");

        pipe.waker().wake();
        poller.wait(&mut ready, Some(5000)).expect("wait");
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].token, 42);
        assert!(ready[0].readable());

        // Drained, the pipe goes quiet again.
        pipe.drain();
        poller.wait(&mut ready, Some(0)).expect("wait");
        assert!(ready.is_empty(), "drain consumed the wake");
    }

    #[test]
    fn repeated_wakes_coalesce_and_never_block() {
        let pipe = WakePipe::new().expect("wake pipe");
        let waker = pipe.waker();
        // Far more wakes than the pipe buffer holds: the nonblocking write
        // end must absorb the overflow as "wake already pending".
        for _ in 0..100_000 {
            waker.wake();
        }
        pipe.drain();
    }

    #[test]
    fn poller_reports_listener_readability_and_interest_changes() {
        use std::io::Write;
        use std::net::{TcpListener, TcpStream};

        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.set_nonblocking(true).expect("nonblocking");
        let poller = Poller::new().expect("epoll instance");
        poller
            .register(listener.as_raw_fd(), 7, EPOLLIN)
            .expect("register");

        let mut ready = Vec::new();
        poller.wait(&mut ready, Some(0)).expect("wait");
        assert!(ready.is_empty(), "no pending connection yet");

        let mut client = TcpStream::connect(listener.local_addr().expect("addr")).expect("conn");
        poller.wait(&mut ready, Some(5000)).expect("wait");
        assert!(ready.iter().any(|r| r.token == 7 && r.readable()));

        // Accept, register the connection for reads, and see data arrive.
        let (conn, _) = listener.accept().expect("accept");
        conn.set_nonblocking(true).expect("nonblocking");
        poller
            .register(conn.as_raw_fd(), 8, EPOLLIN | EPOLLRDHUP)
            .expect("register conn");
        client.write_all(b"hello").expect("send");
        client.flush().expect("flush");
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            poller.wait(&mut ready, Some(1000)).expect("wait");
            if ready.iter().any(|r| r.token == 8 && r.readable()) {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "data never reported");
        }

        // Interest can be narrowed to write-only and back.
        poller
            .modify(conn.as_raw_fd(), 8, EPOLLOUT)
            .expect("modify");
        poller.wait(&mut ready, Some(5000)).expect("wait");
        assert!(ready.iter().any(|r| r.token == 8 && r.writable()));
        poller.deregister(conn.as_raw_fd()).expect("deregister");
        poller.wait(&mut ready, Some(0)).expect("wait");
        assert!(ready.is_empty(), "deregistered fds stay silent");
    }
}
