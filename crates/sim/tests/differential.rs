//! Differential tests: the bitsliced / multithreaded engines against the
//! scalar reference engines, and the bitsliced Monte-Carlo estimator
//! against the paper's published numbers.
//!
//! Contract being enforced (see DESIGN.md, "Simulation engine"):
//!
//! * For exact probability types (`Rational`) the bitsliced exhaustive
//!   sweep, the scalar sweep, and every thread count of the parallel sweep
//!   produce **identical** reports — probabilities, histograms, counts and
//!   work accounting.
//! * For `f64` profiles the weighted probabilities agree to ~1e-12 (float
//!   addition is not associative, so grouping differences survive).
//! * The Monte-Carlo engines are statistically exchangeable: both
//!   reproduce exhaustive ground truth and the paper's Table 7 values
//!   within sampling error.

use sealpaa_cells::{AdderChain, InputProfile, StandardCell};
use sealpaa_num::Rational;
use sealpaa_sim::{
    exhaustive, exhaustive_scalar, exhaustive_with, monte_carlo, monte_carlo_scalar,
    MonteCarloConfig,
};

/// A hybrid chain mixing several approximate cells with accurate stages —
/// deliberately irregular so per-stage compilation bugs cannot cancel.
fn hybrid_chain() -> AdderChain {
    AdderChain::from_stages(vec![
        StandardCell::Lpaa2.cell(),
        StandardCell::Lpaa5.cell(),
        StandardCell::Accurate.cell(),
        StandardCell::Lpaa7.cell(),
        StandardCell::Lpaa1.cell(),
        StandardCell::Lpaa6.cell(),
        StandardCell::Accurate.cell(),
        StandardCell::Lpaa4.cell(),
    ])
}

#[test]
fn bitsliced_exhaustive_equals_scalar_for_every_standard_cell() {
    // Width 6 (the narrowest width that runs the bitsliced kernel) at a
    // biased Rational profile: the kernel must be *identical* to the
    // scalar walk, cell by cell. Wider widths are covered by the f64 and
    // parallel tests below; the scalar Rational oracle is too slow there.
    let profile = InputProfile::<Rational>::constant(6, Rational::from_ratio(3, 7));
    for cell in StandardCell::ALL {
        let chain = AdderChain::uniform(cell.cell(), 6);
        let fast = exhaustive(&chain, &profile).expect("feasible");
        let slow = exhaustive_scalar(&chain, &profile).expect("feasible");
        assert_eq!(fast.error_cases, slow.error_cases, "{cell}");
        assert_eq!(
            fast.output_error_probability, slow.output_error_probability,
            "{cell}"
        );
        assert_eq!(
            fast.stage_error_probability, slow.stage_error_probability,
            "{cell}"
        );
        assert_eq!(fast.histogram, slow.histogram, "{cell}");
        assert_eq!(fast.work, slow.work, "{cell}");
    }
}

#[test]
fn bitsliced_exhaustive_matches_scalar_metrics_for_f64() {
    let profile = InputProfile::<f64>::constant(8, 0.2);
    let chain = hybrid_chain();
    let fast = exhaustive(&chain, &profile).expect("feasible");
    let slow = exhaustive_scalar(&chain, &profile).expect("feasible");
    assert_eq!(fast.error_cases, slow.error_cases);
    assert_eq!(fast.histogram, slow.histogram);
    assert!((fast.output_error_probability - slow.output_error_probability).abs() < 1e-12);
    assert!((fast.stage_error_probability - slow.stage_error_probability).abs() < 1e-12);
    assert!(
        (fast.metrics.error_probability - slow.metrics.error_probability).abs() < 1e-12,
        "bitsliced {} vs scalar {}",
        fast.metrics.error_probability,
        slow.metrics.error_probability
    );
    assert!((fast.metrics.mean_error_distance - slow.metrics.mean_error_distance).abs() < 1e-9);
    assert!(
        (fast.metrics.mean_absolute_error_distance - slow.metrics.mean_absolute_error_distance)
            .abs()
            < 1e-9
    );
    assert_eq!(
        fast.metrics.max_absolute_error_distance,
        slow.metrics.max_absolute_error_distance
    );
}

#[test]
fn parallel_exhaustive_equals_serial_for_all_thread_counts() {
    let profile = InputProfile::<Rational>::new(
        (1..=7).map(|i| Rational::from_ratio(i, 13)).collect(),
        (1..=7).map(|i| Rational::from_ratio(9 - i, 10)).collect(),
        Rational::from_ratio(1, 3),
    )
    .expect("valid profile");
    let chain = AdderChain::from_stages(vec![
        StandardCell::Lpaa2.cell(),
        StandardCell::Lpaa5.cell(),
        StandardCell::Accurate.cell(),
        StandardCell::Lpaa7.cell(),
        StandardCell::Lpaa1.cell(),
        StandardCell::Lpaa6.cell(),
        StandardCell::Lpaa4.cell(),
    ]);
    let serial = exhaustive(&chain, &profile).expect("feasible");
    for threads in [1usize, 2, 5, 64] {
        let parallel = exhaustive_with(&chain, &profile, threads).expect("feasible");
        assert_eq!(
            parallel.output_error_probability, serial.output_error_probability,
            "threads={threads}"
        );
        assert_eq!(
            parallel.stage_error_probability, serial.stage_error_probability,
            "threads={threads}"
        );
        assert_eq!(parallel.histogram, serial.histogram, "threads={threads}");
        assert_eq!(
            parallel.error_cases, serial.error_cases,
            "threads={threads}"
        );
        assert_eq!(parallel.work, serial.work, "threads={threads}");
        assert_eq!(
            parallel.metrics.max_absolute_error_distance,
            serial.metrics.max_absolute_error_distance
        );
    }
}

#[test]
fn parallel_exhaustive_equals_scalar_reference_end_to_end() {
    // The full chain of trust in one assertion: threaded bitsliced vs the
    // plain one-case-at-a-time loop.
    let profile = InputProfile::<Rational>::constant(7, Rational::from_ratio(1, 4));
    let chain = AdderChain::uniform(StandardCell::Lpaa4.cell(), 7);
    let reference = exhaustive_scalar(&chain, &profile).expect("feasible");
    let threaded = exhaustive_with(&chain, &profile, 5).expect("feasible");
    assert_eq!(
        threaded.output_error_probability,
        reference.output_error_probability
    );
    assert_eq!(
        threaded.stage_error_probability,
        reference.stage_error_probability
    );
    assert_eq!(threaded.histogram, reference.histogram);
    assert_eq!(threaded.work, reference.work);
}

#[test]
fn bitsliced_monte_carlo_reproduces_paper_table7_lpaa6() {
    // Paper Table 7, 8-bit LPAA 6 at p = 0.1: P(E) = 0.16953 (1M-sample
    // LabVIEW simulation; the analytical value agrees to the shown digits).
    let chain = AdderChain::uniform(StandardCell::Lpaa6.cell(), 8);
    let profile = InputProfile::constant(8, 0.1);
    let report = monte_carlo(
        &chain,
        &profile,
        MonteCarloConfig {
            samples: 400_000,
            seed: 0xDAC1_7ADD,
            threads: 1,
            backend: None,
        },
    )
    .expect("valid");
    let expected = 0.16953;
    assert!(
        (report.error_probability() - expected).abs() < 5.0 * report.standard_error,
        "MC {} vs paper {expected} (5σ = {})",
        report.error_probability(),
        5.0 * report.standard_error
    );
}

#[test]
fn bitsliced_monte_carlo_reproduces_paper_table6_lpaa1_uniform() {
    // Paper Table 6 regime: uniform inputs (p = 0.5). 8-bit LPAA 1 ground
    // truth from the exhaustive sweep, Monte-Carlo within 5σ.
    let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), 8);
    let profile = InputProfile::constant(8, 0.5);
    let truth = exhaustive(&chain, &profile)
        .expect("feasible")
        .output_error_probability;
    let report = monte_carlo(
        &chain,
        &profile,
        MonteCarloConfig {
            samples: 300_000,
            seed: 99,
            threads: 2,
            backend: None,
        },
    )
    .expect("valid");
    assert!(
        (report.error_probability() - truth).abs() < 5.0 * report.standard_error + 1e-9,
        "MC {} vs exact {truth}",
        report.error_probability()
    );
}

#[test]
fn both_monte_carlo_engines_agree_statistically() {
    let chain = AdderChain::uniform(StandardCell::Lpaa5.cell(), 10);
    let profile = InputProfile::constant(10, 0.3);
    let cfg = MonteCarloConfig {
        samples: 100_000,
        seed: 1234,
        threads: 1,
        backend: None,
    };
    let fast = monte_carlo(&chain, &profile, cfg).expect("valid");
    let slow = monte_carlo_scalar(&chain, &profile, cfg).expect("valid");
    assert!(
        (fast.error_probability() - slow.error_probability()).abs()
            < 5.0 * (fast.standard_error + slow.standard_error) + 1e-9,
        "bitsliced {} vs scalar {}",
        fast.error_probability(),
        slow.error_probability()
    );
    // Error-distance statistics must agree too, not just the hit rate.
    assert!(
        (fast.metrics.mean_absolute_error_distance - slow.metrics.mean_absolute_error_distance)
            .abs()
            < 0.05 * (1.0 + slow.metrics.mean_absolute_error_distance),
        "MED: bitsliced {} vs scalar {}",
        fast.metrics.mean_absolute_error_distance,
        slow.metrics.mean_absolute_error_distance
    );
}
